// Thread-pool Monte-Carlo measurement: a drop-in for measure() that
// fans the trials across worker threads.
//
// Trials were already embarrassingly parallel — measure() derives one
// independent, replayable RNG stream per trial index — so the pool just
// claims chunks of trial indices, runs them, and writes results into a
// per-trial slot. Samples are then assembled in trial order, exactly as
// the serial loop would have, which makes the returned Measurement
// bit-identical to measure() regardless of thread count or scheduling
// (tests/parallel_measure_test.cpp pins this down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "harness/measure.h"

namespace crp::harness {

/// Runs fn(t) for every trial index t in [0, trials) across `threads`
/// workers (0 = all hardware threads; <= 1 runs inline on the calling
/// thread). Workers claim chunks of consecutive indices, so fn must be
/// safe to call concurrently on distinct t. The first exception thrown
/// is rethrown on the caller's thread after the pool drains.
void parallel_trials(std::size_t trials, std::size_t threads,
                     const std::function<void(std::size_t)>& fn);

/// Runs `trials` independent trials on `threads` workers (0 = all
/// hardware threads; 1 falls back to the serial measure()). The trial
/// callable must be safe to invoke concurrently: the library's
/// schedules, policies, advice functions, and BatchNoCdSampler all are.
/// The first exception thrown by a trial is rethrown on the caller's
/// thread after the pool drains.
Measurement measure_parallel(const Trial& trial, std::size_t trials,
                             std::uint64_t seed, std::size_t threads = 0);

}  // namespace crp::harness
