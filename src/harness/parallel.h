// Thread-pool execution for the Monte-Carlo harness: workers steal
// fixed-size *blocks* of trial indices, not individual trials.
//
// The block partition of [0, trials) depends only on the trial count
// and block size — never on the thread count or scheduling — and every
// consumer derives per-trial (or per-block) state purely from the
// block's index range. Results assembled in trial order are therefore
// bit-identical to a serial run at any thread count
// (tests/parallel_measure_test.cpp pins this down).
//
// Layering: channel/engine.h defines *what* runs on a block (columnar
// engines), this header defines *where* blocks run, and
// harness/measure.h glues the two into Measurements.
//
/// Ownership: the pool is per call — threads are spawned inside
/// parallel_blocks and joined before it returns; no worker, queue, or
/// task outlives the call, and callbacks only borrow caller state.
///
/// Thread-safety: fn is invoked concurrently on distinct blocks and
/// must be safe under that; the first exception thrown is rethrown on
/// the caller's thread after the pool drains.
///
/// Determinism: the block partition depends only on (total,
/// block_size) — never on the thread count or on which worker claims
/// which block — so consumers that derive state per block index and
/// fold in trial order are bit-identical to a serial run at any
/// thread count (tests/parallel_measure_test.cpp pins this down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "harness/measure.h"

namespace crp::harness {

/// Block size used by the columnar measurement paths. A fixed power of
/// two (not derived from the thread count) so the partition — and any
/// per-block derived state — is identical at every thread count.
inline constexpr std::size_t kTrialBlockSize = 1024;

/// Runs fn(begin, end) for every block [begin, end) of the fixed
/// partition of [0, total) into `block_size`-sized blocks (the last
/// block may be short) across `threads` workers (0 = all hardware
/// threads; <= 1 runs inline on the calling thread, in block order).
/// Workers claim whole blocks, so fn must be safe to call concurrently
/// on distinct blocks. The first exception thrown is rethrown on the
/// caller's thread after the pool drains.
void parallel_blocks(std::size_t total, std::size_t threads,
                     const std::function<void(std::size_t, std::size_t)>& fn,
                     std::size_t block_size = kTrialBlockSize);

/// The number of workers parallel_blocks would actually spawn for
/// (total, threads, block_size) — threads resolved (0 = hardware),
/// then capped by the block count, never below 1. Callers that give
/// each worker private state (scratch columns, streaming accumulators)
/// size their arrays with this.
std::size_t parallel_worker_count(std::size_t total, std::size_t threads,
                                  std::size_t block_size = kTrialBlockSize);

/// parallel_blocks with a stable worker identity: fn(worker, begin,
/// end), worker in [0, parallel_worker_count(...)). A worker runs its
/// blocks sequentially, so per-worker state needs no synchronization.
/// Which blocks land on which worker is scheduling-dependent — only
/// folds that are exact and commutative across blocks (integer
/// accumulators, element-indexed writes) may depend on worker state;
/// see harness/accumulate.h for the streaming-fold contract.
void parallel_blocks_indexed(
    std::size_t total, std::size_t threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t block_size = kTrialBlockSize);

/// Runs fn(t) for every trial index t in [0, trials) across `threads`
/// workers (0 = all hardware threads; <= 1 runs inline on the calling
/// thread). A convenience wrapper over parallel_blocks with a small
/// block size, for callers priced per trial rather than per column.
void parallel_trials(std::size_t trials, std::size_t threads,
                     const std::function<void(std::size_t)>& fn);

/// Runs `trials` independent trials on `threads` workers (0 = all
/// hardware threads; 1 falls back to the serial measure()). The trial
/// callable must be safe to invoke concurrently: the library's
/// schedules, policies, advice functions, and BatchNoCdSampler all are.
/// The first exception thrown by a trial is rethrown on the caller's
/// thread after the pool drains.
Measurement measure_parallel(const Trial& trial, std::size_t trials,
                             std::uint64_t seed, std::size_t threads = 0);

}  // namespace crp::harness
