// Self-healing sweep supervisor: a long-running driver that keeps a
// fleet of journaled `crp_shard` worker subprocesses healthy until the
// merged sweep CSV exists — the service layer the ROADMAP's
// "adaptively-allocated sweep service" item calls for, built on the
// crash-safe shard substrate (harness/checkpoint.h, harness/shard.h).
//
// The supervisor plans the grid into one contiguous cell range per
// worker, spawns each range as a `crp_shard run --cells B:E`
// subprocess (re-exec of the same binary), and reacts to the
// documented exit-code taxonomy:
//
//   0   done                 range complete, manifest on disk
//   75  resumable interrupt  respawn `resume` immediately (clean stop;
//                            the journal is flushed)
//   4   I/O error            retry with deterministic exponential
//                            backoff + seeded jitter
//   3   validation error     permanent for this range — bisect it to
//                            isolate the poisoned cell(s)
//   killed / crashed         respawn `resume` after a backoff step;
//                            the journal's valid prefix survives
//
// A per-worker wall-clock timeout turns hangs into failures: SIGTERM
// first (the worker finishes its in-flight cell and exits 75), SIGKILL
// after a grace period. Ranges that exhaust their retry budget are
// bisected; a single cell that still fails lands on the quarantine
// list, and the run degrades gracefully — the final merge ships with a
// crp-quarantine-v1 JSON report naming the quarantined cells instead
// of losing the whole sweep. Once the fleet drains, the supervisor
// loops `merge --allow-partial`-style missing-range reports into
// `--cells` backfill jobs until every non-quarantined cell is present,
// then writes the merged CSV atomically. The CSV is byte-identical to
// a monolithic `crp_shard run` with the quarantined rows deleted — the
// determinism contract extended to the service layer (the CI chaos
// gate cmp's it under random kill -9s).
//
// The supervisor keeps its own crash-safe state journal
// (crp-supervisor-journal-v1: atomic header + fsync'd checksummed
// records, same discipline as the worker journals) recording every
// bisection and quarantine decision, so `supervise --resume` restarts
// the fleet idempotently: completed ranges are detected by their
// manifests, partially-run ranges respawn as `resume`, and the
// bisection tree and quarantine list replay instead of re-deriving
// themselves through fresh failures.
//
/// Ownership: RetryPolicy and the journal structs own plain data.
/// run_supervisor borrows its cells exactly as run_sweep_shard does.
///
/// Thread-safety: the supervisor is single-threaded (concurrency lives
/// in the worker processes); a supervisor journal must only ever be
/// appended to by one process at a time.
///
/// Determinism: every retry/backoff/timeout/quarantine decision is a
/// pure function of (config, observed outcomes, injected clock) —
/// RetryPolicy takes no wall-clock and seeds its jitter explicitly, so
/// tests/supervisor_test.cpp covers every decision path with a
/// FakeClock and zero sleeps. The artifact bytes are deterministic
/// regardless of scheduling: workers derive cell seeds from global
/// grid indices, so any interleaving of crashes, retries, and
/// bisections converges to the same merged CSV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "harness/shard.h"
#include "harness/sweep.h"

namespace crp::harness {

// ---------------------------------------------------------------------------
// Clock seam

/// Monotonic time source the fleet loop runs against. Injected so the
/// timeout/backoff machinery is testable without sleeping; production
/// uses steady_clock_source().
class Clock {
 public:
  virtual ~Clock() = default;
  /// Milliseconds since an arbitrary epoch; monotonic, never wall time.
  virtual std::int64_t now_ms() = 0;
  virtual void sleep_ms(std::int64_t ms) = 0;
};

/// The production clock: std::chrono::steady_clock + this_thread sleep.
std::unique_ptr<Clock> steady_clock_source();

/// Deterministic test clock: now_ms() returns a counter, sleep_ms()
/// advances it. No test that uses this ever blocks.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t start_ms = 0) : now_(start_ms) {}
  std::int64_t now_ms() override { return now_; }
  void sleep_ms(std::int64_t ms) override { advance_ms(ms); }
  void advance_ms(std::int64_t ms) { now_ += ms; }

 private:
  std::int64_t now_;
};

// ---------------------------------------------------------------------------
// Retry / backoff / timeout policy (pure)

struct RetryPolicyConfig {
  /// Nominal backoff before the first delayed retry; attempt k waits
  /// base * multiplier^(k-1), clamped to max_backoff_ms, then jittered.
  std::int64_t base_backoff_ms = 500;
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_ms = 60'000;
  /// Jitter spreads retries to ±this fraction of the nominal backoff
  /// (0 disables). Deterministic: drawn by hashing (jitter_seed, cell
  /// range, attempt), never from a global RNG or the clock.
  double jitter_fraction = 0.25;
  std::uint64_t jitter_seed = 0;
  /// Consecutive no-progress failures a job may accrue before it is
  /// escalated (bisected, or quarantined once it is a single cell).
  /// Progress — the worker journaled at least one new cell — resets
  /// the count: a range is only ever escalated for failing repeatedly
  /// *without* advancing.
  std::size_t retry_budget = 3;
  /// Wall-clock budget per worker process (0 = unlimited). Exceeding
  /// it draws a SIGTERM; kill_grace_ms later, a SIGKILL.
  std::int64_t worker_timeout_ms = 0;
  std::int64_t kill_grace_ms = 2'000;
};

/// How a worker attempt ended, as the supervisor classified it from
/// waitpid status (exit codes per the crp_shard taxonomy) plus its own
/// timeout bookkeeping.
enum class WorkerOutcome {
  kSuccess,     ///< exit 0: manifest + CSV are on disk
  kResumable,   ///< exit 75: clean stop, journal flushed
  kIoError,     ///< exit 4: transient by contract — retry helps
  kValidation,  ///< exit 3: permanent for these inputs — retry won't
  kCrash,       ///< killed by a signal, or an unexpected exit code
  kTimeout,     ///< the supervisor killed it for exceeding its budget
};

/// Mutable per-job scheduling state the policy decides over.
struct JobState {
  std::size_t cell_begin = 0;
  std::size_t cell_end = 0;  ///< one past the last cell; end - begin >= 1
  /// Consecutive failures since the last attempt that made progress.
  std::size_t attempts = 0;
};

enum class ActionKind {
  kDone,        ///< leave the fleet; the range's artifacts are final
  kRetryNow,    ///< respawn immediately (resume path)
  kRetryAfter,  ///< respawn after Decision::delay_ms
  kBisect,      ///< split the range in two to isolate the failure
  kQuarantine,  ///< single cell, budget exhausted or poisoned: give up
};

struct Decision {
  ActionKind kind = ActionKind::kDone;
  std::int64_t delay_ms = 0;  ///< meaningful for kRetryAfter only
};

/// What the supervisor should do to a running worker right now, given
/// only timestamps — the timeout half of the policy, pure over its
/// arguments so the escalation ladder is testable with a FakeClock.
enum class TimeoutAction {
  kNone,
  kSigterm,  ///< budget exceeded: ask for a clean exit-75 stop
  kSigkill,  ///< grace expired after SIGTERM: force it
};

/// The pure retry/backoff scheduler. Construction validates the
/// config (throws std::invalid_argument on nonsensical values);
/// decide() and backoff_ms() are const and deterministic.
class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryPolicyConfig& config);

  const RetryPolicyConfig& config() const { return config_; }

  /// The jittered backoff before retry `attempt` (1-based) of the job
  /// covering [cell_begin, cell_end): exponential growth clamped to
  /// max_backoff_ms, scaled by a factor in [1 - jitter, 1 + jitter]
  /// drawn deterministically from (jitter_seed, range, attempt) — two
  /// policies with the same config produce identical schedules, and
  /// distinct ranges/attempts de-synchronize instead of thundering
  /// back in lockstep.
  std::int64_t backoff_ms(std::size_t attempt, std::size_t cell_begin,
                          std::size_t cell_end) const;

  /// The decision table (see the header comment). Mutates
  /// `state.attempts`: progress resets it, failures increment it, and
  /// crossing retry_budget escalates — kBisect while the range has
  /// more than one cell, kQuarantine once it is down to one.
  /// kValidation escalates immediately (retry cannot help); kResumable
  /// retries immediately (a clean stop is not a failure unless it
  /// stops making progress); kIoError/kCrash/kTimeout retry after
  /// backoff_ms(attempts).
  Decision decide(JobState& state, WorkerOutcome outcome,
                  bool progressed) const;

  /// Timeout ladder for a worker started at `started_ms`:
  /// kSigterm once now - started >= worker_timeout_ms (when a timeout
  /// is configured), kSigkill once now - *term_sent_ms >=
  /// kill_grace_ms, kNone otherwise. A caller that already sent
  /// SIGTERM for its own reasons (graceful shutdown) passes
  /// term_sent_ms and gets the same escalation.
  TimeoutAction timeout_action(std::int64_t now_ms, std::int64_t started_ms,
                               std::optional<std::int64_t> term_sent_ms) const;

 private:
  RetryPolicyConfig config_;
};

/// Bisection midpoint of [begin, end), end - begin >= 2: the split
/// both the live escalation path and the journal replay use, so a
/// resumed supervisor reconstructs exactly the bisection tree the
/// crashed one grew. Throws std::invalid_argument on ranges too small
/// to split.
std::size_t bisect_midpoint(std::size_t cell_begin, std::size_t cell_end);

/// [begin, end) minus the quarantined cells (sorted ascending): the
/// maximal runs of non-quarantined cells, in order — how a missing
/// range from a partial merge becomes backfill jobs without
/// resurrecting cells already given up on.
std::vector<MissingCellRange> subtract_quarantined(
    std::size_t cell_begin, std::size_t cell_end,
    std::span<const std::size_t> quarantined_sorted);

// ---------------------------------------------------------------------------
// Supervisor state journal (crp-supervisor-journal-v1)

/// One cell the supervisor gave up on, and why.
struct QuarantinedCell {
  std::size_t cell_index = 0;
  /// Failed attempts the final single-cell job accrued.
  std::size_t attempts = 0;
  /// Human-readable cause ("validation error (exit 3)", "hung past
  /// the 500 ms timeout", ...). May contain spaces; length-prefixed
  /// on disk.
  std::string reason;
};

/// A bisection decision: [cell_begin, cell_end) was split at mid.
struct BisectRecord {
  std::size_t cell_begin = 0;
  std::size_t mid = 0;
  std::size_t cell_end = 0;
};

/// The supervisor's durable identity + decision log. Same discipline
/// as the worker journals: the header is written whole via atomic
/// temp-file + rename + fsync, records are appended with a length
/// prefix, an FNV-1a checksum, and an end-of-record marker, each
/// append fsync'd — after a crash the file is a valid prefix plus at
/// most a detectably-torn tail.
struct SupervisorJournal {
  std::uint64_t grid_hash = 0;
  std::uint64_t master_seed = 0;
  std::size_t trials = 0;
  std::size_t total_cells = 0;
  std::size_t workers = 0;
  std::string engine;
  std::string cd_engine;
  std::vector<QuarantinedCell> quarantined;
  std::vector<BisectRecord> bisections;
  std::size_t valid_bytes = 0;
  std::size_t torn_bytes = 0;  ///< 0 = clean
};

/// Serialized journal pieces (exposed for tests, as with the worker
/// journal's format_checkpoint_*).
std::string format_supervisor_header(const SupervisorJournal& identity);
std::string format_supervisor_quarantine(const QuarantinedCell& cell);
std::string format_supervisor_bisect(const BisectRecord& record);

/// Parses a supervisor journal. Torn tails are reported via
/// torn_bytes; corruption (checksum mismatch, malformed complete
/// records, header damage) throws std::invalid_argument naming the
/// path and byte offset. Throws IoError when unreadable.
SupervisorJournal read_supervisor_journal(const std::string& path);

// ---------------------------------------------------------------------------
// The fleet

enum class SuperviseStatus {
  kCompleted,    ///< merged CSV + quarantine report are on disk
  kInterrupted,  ///< stopped via stop_requested; `supervise --resume`
                 ///< continues (workers exited 75 or finished)
};

struct SuperviseOptions {
  /// Path of the crp_shard binary to re-exec for workers (argv[0]).
  std::string exe;
  /// Grid/sweep flags forwarded verbatim to every worker ("--grid",
  /// "table1", "--n", ..., "--seed", ...). The supervisor appends the
  /// mode, "--cells B:E", and "--out-dir".
  std::vector<std::string> worker_flags;
  /// Worker artifact directory (journals, shard CSVs, manifests) and
  /// home of supervisor.journal.
  std::string out_dir;
  /// Final merged CSV path; the quarantine report lands next to it as
  /// OUT.quarantine.json.
  std::string out;
  /// Fleet width: concurrent workers, and the initial shard split.
  std::size_t workers = 3;
  /// false: out_dir must hold no supervisor.journal yet. true: it
  /// must, and the run resumes idempotently from it.
  bool resume = false;
  RetryPolicyConfig retry;
  /// Injected clock (null = steady_clock_source()). Note the fleet
  /// loop does real process management; unit tests exercise the pure
  /// policy layer instead, and the CLI tests drive this loop with
  /// real subprocesses.
  Clock* clock = nullptr;
  /// Fleet poll cadence while workers run.
  std::int64_t poll_interval_ms = 25;
  /// Polled between fleet events; return true to stop: running
  /// workers get SIGTERM (exit 75, journals flushed), the supervisor
  /// journal stays valid, and run_supervisor returns kInterrupted.
  std::function<bool()> stop_requested;
  /// Progress narration sink (null = silent).
  std::ostream* log = nullptr;
};

struct SuperviseResult {
  SuperviseStatus status = SuperviseStatus::kCompleted;
  std::size_t total_cells = 0;
  /// Cells given up on, ascending by index (kCompleted only; also
  /// serialized to OUT.quarantine.json).
  std::vector<QuarantinedCell> quarantined;
  /// Worker processes launched over the whole session.
  std::size_t workers_spawned = 0;
  /// Merge/backfill rounds taken after the first fleet drain.
  std::size_t backfill_rounds = 0;
};

/// Runs the fleet to convergence (see the header comment for the full
/// lifecycle). Throws std::invalid_argument for identity/validation
/// problems (journal mismatch on resume, fresh run over an existing
/// journal), IoError for artifact I/O failures, and std::runtime_error
/// when supervision itself cannot proceed (a worker exited with a
/// usage/internal error — a supervisor bug, not a worker fault — or a
/// backfill round made no progress).
SuperviseResult run_supervisor(std::span<const SweepCell> cells,
                               const SweepOptions& sweep_options,
                               const SuperviseOptions& options);

/// Serializes the crp-quarantine-v1 report: grid hash (hex string),
/// total cell count, and the quarantined cells with attempts and
/// reason. Written next to the merged CSV on every completed
/// supervised run — empty list means a clean sweep.
void write_quarantine_report(std::ostream& out, std::uint64_t grid_hash,
                             std::size_t total_cells,
                             std::span<const QuarantinedCell> quarantined);

}  // namespace crp::harness
