#include "harness/measure.h"

#include <algorithm>
#include <stdexcept>

#include "channel/rng.h"

namespace crp::harness {

double Measurement::solved_within(double budget) const {
  if (trials == 0) return 0.0;
  const auto solved = static_cast<double>(
      std::count_if(samples.begin(), samples.end(),
                    [budget](double r) { return r <= budget; }));
  return solved / static_cast<double>(trials);
}

Measurement measure(const Trial& trial, std::size_t trials,
                    std::uint64_t seed) {
  Measurement result;
  result.trials = trials;
  result.samples.reserve(trials);
  std::size_t solved = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto rng = channel::derive_rng(seed, t);
    const channel::RunResult run = trial(t, rng);
    if (run.solved) {
      ++solved;
      result.samples.push_back(static_cast<double>(run.rounds));
    }
  }
  result.success_rate =
      trials == 0 ? 0.0
                  : static_cast<double>(solved) / static_cast<double>(trials);
  result.rounds = summarize(result.samples);
  return result;
}

Measurement measure_uniform_no_cd(const channel::ProbabilitySchedule& schedule,
                                  const info::SizeDistribution& actual,
                                  std::size_t trials, std::uint64_t seed,
                                  std::size_t max_rounds) {
  return measure(
      [&](std::size_t, std::mt19937_64& rng) {
        const std::size_t k = actual.sample(rng);
        return channel::run_uniform_no_cd(schedule, k, rng,
                                          {.max_rounds = max_rounds});
      },
      trials, seed);
}

Measurement measure_uniform_cd(const channel::CollisionPolicy& policy,
                               const info::SizeDistribution& actual,
                               std::size_t trials, std::uint64_t seed,
                               std::size_t max_rounds) {
  return measure(
      [&](std::size_t, std::mt19937_64& rng) {
        const std::size_t k = actual.sample(rng);
        return channel::run_uniform_cd(policy, k, rng,
                                       {.max_rounds = max_rounds});
      },
      trials, seed);
}

Measurement measure_uniform_no_cd_fixed_k(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    std::size_t trials, std::uint64_t seed, std::size_t max_rounds) {
  return measure(
      [&](std::size_t, std::mt19937_64& rng) {
        return channel::run_uniform_no_cd(schedule, k, rng,
                                          {.max_rounds = max_rounds});
      },
      trials, seed);
}

Measurement measure_uniform_cd_fixed_k(const channel::CollisionPolicy& policy,
                                       std::size_t k, std::size_t trials,
                                       std::uint64_t seed,
                                       std::size_t max_rounds) {
  return measure(
      [&](std::size_t, std::mt19937_64& rng) {
        return channel::run_uniform_cd(policy, k, rng,
                                       {.max_rounds = max_rounds});
      },
      trials, seed);
}

std::vector<std::size_t> random_participant_set(std::size_t n, std::size_t k,
                                                std::mt19937_64& rng) {
  if (k > n) throw std::invalid_argument("cannot pick k > n participants");
  // Partial Fisher-Yates over the id space.
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, n - 1);
    std::swap(ids[i], ids[pick(rng)]);
  }
  ids.resize(k);
  return ids;
}

Measurement measure_deterministic_advice(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, const info::SizeDistribution& actual,
    std::size_t n, bool collision_detection, std::size_t trials,
    std::uint64_t seed, std::size_t max_rounds) {
  return measure(
      [&](std::size_t, std::mt19937_64& rng) {
        const std::size_t k = actual.sample(rng);
        const auto participants = random_participant_set(n, k, rng);
        const auto bits = advice.advise(participants);
        return channel::run_deterministic(protocol, bits, participants,
                                          collision_detection,
                                          {.max_rounds = max_rounds});
      },
      trials, seed);
}

double worst_case_deterministic_rounds(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t k,
    bool collision_detection, std::size_t probes, std::uint64_t seed,
    std::size_t max_rounds) {
  if (k > n) throw std::invalid_argument("cannot pick k > n participants");
  double worst = 0.0;
  const auto run_set = [&](const std::vector<std::size_t>& participants) {
    const auto bits = advice.advise(participants);
    const auto result = channel::run_deterministic(
        protocol, bits, participants, collision_detection,
        {.max_rounds = max_rounds});
    worst = std::max(
        worst, result.solved ? static_cast<double>(result.rounds)
                             : static_cast<double>(max_rounds));
  };

  // Random probes.
  for (std::size_t p = 0; p < probes; ++p) {
    auto rng = channel::derive_rng(seed, p);
    run_set(random_participant_set(n, k, rng));
  }
  // Crafted adversarial probes. "Tail": consecutive ids ending at the
  // highest id, which puts the minimum active id as deep as possible
  // into whatever subtree the advice names (worst for linear scans).
  // "Head": the first k ids, whose shared prefixes force a collision at
  // every level of a collision-detector descent (worst for tree
  // protocols).
  std::vector<std::size_t> crafted(k);
  for (std::size_t i = 0; i < k; ++i) crafted[i] = n - k + i;
  run_set(crafted);
  for (std::size_t i = 0; i < k; ++i) crafted[i] = i;
  run_set(crafted);
  return worst;
}

}  // namespace crp::harness
