#include "harness/measure.h"

#include <algorithm>
#include <stdexcept>

#include "channel/engine.h"
#include "channel/history_engine.h"
#include "channel/rng.h"
#include "harness/parallel.h"

namespace crp::harness {

namespace {

/// Legacy entry points (plain max_rounds) keep the seed behavior:
/// serial execution, exact binomial engine, raw sample vector.
MeasureOptions legacy_options(std::size_t max_rounds) {
  return MeasureOptions{.max_rounds = max_rounds,
                        .threads = 1,
                        .engine = NoCdEngine::kBinomial,
                        .keep_samples = true};
}

/// Engine dispatch shared by the drawn-k and fixed-k no-CD helpers:
/// every engine choice runs through the same block scheduler.
Measurement measure_no_cd(const channel::ProbabilitySchedule& schedule,
                          const channel::SizeSource& sizes,
                          std::size_t trials, std::uint64_t seed,
                          const MeasureOptions& options) {
  switch (options.engine) {
    case NoCdEngine::kBatch: {
      const channel::BatchColumnarEngine engine(schedule);
      return measure_blocks(engine, sizes, trials, seed, options);
    }
    case NoCdEngine::kPerPlayer: {
      const channel::PerPlayerColumnarEngine engine(schedule);
      return measure_blocks(engine, sizes, trials, seed, options);
    }
    case NoCdEngine::kBinomial:
    default: {
      const channel::BinomialColumnarEngine engine(schedule);
      return measure_blocks(engine, sizes, trials, seed, options);
    }
  }
}

/// Engine dispatch for the CD helpers, mirroring measure_no_cd. A
/// shared tree cache (when the caller provides one) replaces the
/// per-call engine so expansions amortize across calls; the engine's
/// results are a pure function of (policy, options), so both routes
/// measure identically.
Measurement measure_cd(const channel::CollisionPolicy& policy,
                       const channel::SizeSource& sizes, std::size_t trials,
                       std::uint64_t seed, const MeasureOptions& options) {
  if (options.cd_engine == CdEngine::kHistoryTree) {
    if (options.tree_cache != nullptr) {
      const auto engine = options.tree_cache->engine_for(policy);
      return measure_blocks(*engine, sizes, trials, seed, options);
    }
    const channel::HistoryTreeEngine engine(policy);
    return measure_blocks(engine, sizes, trials, seed, options);
  }
  const channel::CollisionPolicyColumnarEngine engine(policy);
  return measure_blocks(engine, sizes, trials, seed, options);
}

/// Columnar adapter for the Section 3 advice protocols: per trial, one
/// derived mt19937_64 stream draws the participant count, the
/// participant set, and runs the protocol on the advice — the same
/// draw order as the scalar Trial path it replaces.
class DeterministicAdviceEngine final : public channel::Engine {
 public:
  DeterministicAdviceEngine(const channel::DeterministicProtocol& protocol,
                            const core::AdviceFunction& advice, std::size_t n,
                            bool collision_detection)
      : protocol_(protocol),
        advice_(advice),
        n_(n),
        collision_detection_(collision_detection) {}

  void run_many(channel::TrialBlock& block) const override {
    channel::run_adapter_block(
        block, [this](std::size_t k, std::mt19937_64& rng,
                      const channel::SimOptions& options) {
          const auto participants = random_participant_set(n_, k, rng);
          const auto bits = advice_.advise(participants);
          return channel::run_deterministic(protocol_, bits, participants,
                                            collision_detection_, options);
        });
  }

 private:
  const channel::DeterministicProtocol& protocol_;
  const core::AdviceFunction& advice_;
  std::size_t n_;
  bool collision_detection_;
};

}  // namespace

Measurement measurement_from_runs(std::span<const channel::RunResult> runs) {
  Measurement result;
  result.trials = runs.size();
  result.samples.reserve(runs.size());
  std::size_t solved = 0;
  for (const auto& run : runs) {
    if (run.solved) {
      ++solved;
      result.samples.push_back(static_cast<double>(run.rounds));
      result.histogram.add_solved(run.rounds);
    } else {
      result.histogram.add_unsolved();
    }
  }
  result.success_rate =
      runs.empty() ? 0.0
                   : static_cast<double>(solved) /
                         static_cast<double>(runs.size());
  result.rounds = summarize(result.samples);
  return result;
}

Measurement measurement_from_columns(std::span<const std::uint8_t> solved,
                                     std::span<const std::uint64_t> rounds) {
  if (solved.size() != rounds.size()) {
    throw std::invalid_argument("result columns disagree on length");
  }
  Measurement result;
  result.trials = solved.size();
  result.samples.reserve(solved.size());
  std::size_t solved_count = 0;
  for (std::size_t t = 0; t < solved.size(); ++t) {
    if (solved[t]) {
      ++solved_count;
      result.samples.push_back(static_cast<double>(rounds[t]));
    }
  }
  result.histogram.add_columns(solved, rounds);
  result.success_rate =
      solved.empty() ? 0.0
                     : static_cast<double>(solved_count) /
                           static_cast<double>(solved.size());
  result.rounds = summarize(result.samples);
  return result;
}

Measurement measurement_from_histogram(RoundHistogram histogram) {
  Measurement result;
  result.trials = histogram.trials();
  result.success_rate = histogram.success_rate();
  result.rounds = histogram.summary();
  result.histogram = std::move(histogram);
  return result;
}

Measurement measure_blocks(const channel::Engine& engine,
                           const channel::SizeSource& sizes,
                           std::size_t trials, std::uint64_t seed,
                           const MeasureOptions& options) {
  if (options.keep_samples) {
    // Sample-retaining path: whole-measurement columns, folded in
    // trial order (the pre-streaming behavior, bit for bit).
    std::vector<std::uint8_t> solved(trials);
    std::vector<std::uint64_t> rounds(trials);
    std::vector<std::uint64_t> transmissions(
        options.measure_transmissions ? trials : 0);
    parallel_blocks(trials, options.threads,
                    [&](std::size_t begin, std::size_t end) {
                      channel::TrialBlock block;
                      block.seed = seed;
                      block.first_trial = begin;
                      block.max_rounds = options.max_rounds;
                      block.sizes = sizes;
                      block.solved =
                          std::span(solved).subspan(begin, end - begin);
                      block.rounds =
                          std::span(rounds).subspan(begin, end - begin);
                      if (options.measure_transmissions) {
                        block.transmissions = std::span(transmissions)
                                                  .subspan(begin, end - begin);
                      }
                      engine.run_many(block);
                    });
    Measurement result = measurement_from_columns(solved, rounds);
    if (options.measure_transmissions) {
      result.transmissions.add_column(transmissions);
    }
    return result;
  }

  // Streaming path: workers fold their blocks into private integer
  // accumulators through fixed-size scratch columns; memory is
  // O(workers * (block size + max observed round)) however many
  // trials run. The merged result is bit-identical to the trial-order
  // fold for count/min/max/mean/quantiles (harness/accumulate.h).
  const std::size_t workers =
      parallel_worker_count(trials, options.threads, kTrialBlockSize);
  struct WorkerState {
    std::vector<std::uint8_t> solved;
    std::vector<std::uint64_t> rounds;
    std::vector<std::uint64_t> transmissions;
    RoundHistogram histogram;
    MomentAccumulator energy;
  };
  std::vector<WorkerState> states(workers);
  parallel_blocks_indexed(
      trials, options.threads,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        WorkerState& state = states[worker];
        const std::size_t count = end - begin;
        state.solved.resize(count);
        state.rounds.resize(count);
        channel::TrialBlock block;
        block.seed = seed;
        block.first_trial = begin;
        block.max_rounds = options.max_rounds;
        block.sizes = sizes;
        block.solved = std::span(state.solved);
        block.rounds = std::span(state.rounds);
        if (options.measure_transmissions) {
          state.transmissions.resize(count);
          block.transmissions = std::span(state.transmissions);
        }
        engine.run_many(block);
        state.histogram.add_columns(block.solved, block.rounds);
        if (options.measure_transmissions) {
          state.energy.add_column(block.transmissions);
        }
      });
  RoundHistogram histogram;
  MomentAccumulator energy;
  for (const WorkerState& state : states) {
    histogram.merge(state.histogram);
    energy.merge(state.energy);
  }
  Measurement result = measurement_from_histogram(std::move(histogram));
  if (options.measure_transmissions) result.transmissions = energy;
  return result;
}

double Measurement::solved_within(double budget) const {
  if (trials == 0) return 0.0;
  // The library fold paths always fill the histogram; hand-assembled
  // Measurements (tests, external callers) may carry samples only.
  if (histogram.trials() == trials) {
    return static_cast<double>(histogram.solved_by(budget)) /
           static_cast<double>(trials);
  }
  const auto solved = static_cast<double>(
      std::count_if(samples.begin(), samples.end(),
                    [budget](double r) { return r <= budget; }));
  return solved / static_cast<double>(trials);
}

Measurement measure(const Trial& trial, std::size_t trials,
                    std::uint64_t seed) {
  Measurement result;
  result.trials = trials;
  result.samples.reserve(trials);
  std::size_t solved = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto rng = channel::derive_rng(seed, t);
    const channel::RunResult run = trial(t, rng);
    if (run.solved) {
      ++solved;
      result.samples.push_back(static_cast<double>(run.rounds));
      result.histogram.add_solved(run.rounds);
    } else {
      result.histogram.add_unsolved();
    }
  }
  result.success_rate =
      trials == 0 ? 0.0
                  : static_cast<double>(solved) / static_cast<double>(trials);
  result.rounds = summarize(result.samples);
  return result;
}

Measurement measure_uniform_no_cd(const channel::ProbabilitySchedule& schedule,
                                  const info::SizeDistribution& actual,
                                  std::size_t trials, std::uint64_t seed,
                                  std::size_t max_rounds) {
  return measure_uniform_no_cd(schedule, actual, trials, seed,
                               legacy_options(max_rounds));
}

Measurement measure_uniform_no_cd(const channel::ProbabilitySchedule& schedule,
                                  const info::SizeDistribution& actual,
                                  std::size_t trials, std::uint64_t seed,
                                  const MeasureOptions& options) {
  return measure_no_cd(schedule, channel::SizeSource{&actual, 0}, trials,
                       seed, options);
}

Measurement measure_uniform_cd(const channel::CollisionPolicy& policy,
                               const info::SizeDistribution& actual,
                               std::size_t trials, std::uint64_t seed,
                               std::size_t max_rounds) {
  return measure_uniform_cd(policy, actual, trials, seed,
                            legacy_options(max_rounds));
}

Measurement measure_uniform_cd(const channel::CollisionPolicy& policy,
                               const info::SizeDistribution& actual,
                               std::size_t trials, std::uint64_t seed,
                               const MeasureOptions& options) {
  return measure_cd(policy, channel::SizeSource{&actual, 0}, trials, seed,
                    options);
}

Measurement measure_uniform_no_cd_fixed_k(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    std::size_t trials, std::uint64_t seed, std::size_t max_rounds) {
  return measure_uniform_no_cd_fixed_k(schedule, k, trials, seed,
                                       legacy_options(max_rounds));
}

Measurement measure_uniform_no_cd_fixed_k(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    std::size_t trials, std::uint64_t seed, const MeasureOptions& options) {
  return measure_no_cd(schedule, channel::SizeSource{nullptr, k}, trials,
                       seed, options);
}

Measurement measure_uniform_cd_fixed_k(const channel::CollisionPolicy& policy,
                                       std::size_t k, std::size_t trials,
                                       std::uint64_t seed,
                                       std::size_t max_rounds) {
  return measure_uniform_cd_fixed_k(policy, k, trials, seed,
                                    legacy_options(max_rounds));
}

Measurement measure_uniform_cd_fixed_k(const channel::CollisionPolicy& policy,
                                       std::size_t k, std::size_t trials,
                                       std::uint64_t seed,
                                       const MeasureOptions& options) {
  return measure_cd(policy, channel::SizeSource{nullptr, k}, trials, seed,
                    options);
}

std::vector<std::size_t> random_participant_set(std::size_t n, std::size_t k,
                                                std::mt19937_64& rng) {
  if (k > n) throw std::invalid_argument("cannot pick k > n participants");
  // Partial Fisher-Yates over the id space.
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, n - 1);
    std::swap(ids[i], ids[pick(rng)]);
  }
  ids.resize(k);
  return ids;
}

Measurement measure_deterministic_advice(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, const info::SizeDistribution& actual,
    std::size_t n, bool collision_detection, std::size_t trials,
    std::uint64_t seed, std::size_t max_rounds) {
  return measure_deterministic_advice(protocol, advice, actual, n,
                                      collision_detection, trials, seed,
                                      legacy_options(max_rounds));
}

Measurement measure_deterministic_advice(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, const info::SizeDistribution& actual,
    std::size_t n, bool collision_detection, std::size_t trials,
    std::uint64_t seed, const MeasureOptions& options) {
  const DeterministicAdviceEngine engine(protocol, advice, n,
                                         collision_detection);
  return measure_blocks(engine, channel::SizeSource{&actual, 0}, trials,
                        seed, options);
}

double worst_case_deterministic_rounds(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t k,
    bool collision_detection, std::size_t probes, std::uint64_t seed,
    std::size_t max_rounds) {
  return worst_case_deterministic_rounds(
      protocol, advice, n, k, collision_detection, probes, seed,
      MeasureOptions{.max_rounds = max_rounds, .threads = 1});
}

double worst_case_deterministic_rounds(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t k,
    bool collision_detection, std::size_t probes, std::uint64_t seed,
    const MeasureOptions& options) {
  if (k > n) throw std::invalid_argument("cannot pick k > n participants");
  const auto cost_of = [&](const std::vector<std::size_t>& participants) {
    const auto bits = advice.advise(participants);
    const auto result = channel::run_deterministic(
        protocol, bits, participants, collision_detection,
        {.max_rounds = options.max_rounds});
    return result.solved ? static_cast<double>(result.rounds)
                         : static_cast<double>(options.max_rounds);
  };

  // Random probes: independent (one derived stream each), so they fan
  // out over the block scheduler; the max-fold is order-free, making
  // the result thread-count invariant.
  std::vector<double> probe_cost(probes);
  parallel_trials(probes, options.threads, [&](std::size_t p) {
    auto rng = channel::derive_rng(seed, p);
    probe_cost[p] = cost_of(random_participant_set(n, k, rng));
  });
  double worst = 0.0;
  for (const double cost : probe_cost) worst = std::max(worst, cost);

  // Crafted adversarial probes. "Tail": consecutive ids ending at the
  // highest id, which puts the minimum active id as deep as possible
  // into whatever subtree the advice names (worst for linear scans).
  // "Head": the first k ids, whose shared prefixes force a collision at
  // every level of a collision-detector descent (worst for tree
  // protocols).
  std::vector<std::size_t> crafted(k);
  for (std::size_t i = 0; i < k; ++i) crafted[i] = n - k + i;
  worst = std::max(worst, cost_of(crafted));
  for (std::size_t i = 0; i < k; ++i) crafted[i] = i;
  worst = std::max(worst, cost_of(crafted));
  return worst;
}

}  // namespace crp::harness
