#include "harness/measure.h"

#include <algorithm>
#include <stdexcept>

#include "channel/batch.h"
#include "channel/rng.h"
#include "harness/parallel.h"

namespace crp::harness {

namespace {

/// Legacy entry points (plain max_rounds) keep the seed behavior:
/// serial execution, exact binomial engine.
MeasureOptions legacy_options(std::size_t max_rounds) {
  return MeasureOptions{
      .max_rounds = max_rounds, .threads = 1, .engine = NoCdEngine::kBinomial};
}

/// Serial vs thread-pool dispatch (the two are bit-identical).
Measurement run_trials(const Trial& trial, std::size_t trials,
                       std::uint64_t seed, std::size_t threads) {
  return threads == 1 ? measure(trial, trials, seed)
                      : measure_parallel(trial, trials, seed, threads);
}

/// The batch-engine measurement loop. Does not route through Trial:
/// each trial derives a lightweight SplitMix64 stream (seeding a
/// mt19937_64 costs microseconds — more than the analytic sampling
/// itself) and spends one draw on the participant count and one on the
/// inverse-CDF solve round. Bit-identical across thread counts.
Measurement measure_batch(
    const channel::BatchNoCdSampler& sampler,
    const std::function<std::size_t(channel::SplitMix64&)>& draw_k,
    std::size_t trials, std::uint64_t seed, const MeasureOptions& options) {
  std::vector<channel::RunResult> runs(trials);
  parallel_trials(trials, options.threads, [&](std::size_t t) {
    auto rng = channel::derive_fast_rng(seed, t);
    const std::size_t k = draw_k(rng);
    runs[t] = sampler.sample(k, rng, options.max_rounds);
  });
  return measurement_from_runs(runs);
}

/// Engine dispatch shared by the drawn-k and fixed-k no-CD helpers:
/// the batch engine gets the lightweight-stream loop, the exact
/// engines route through the Trial interface.
Measurement measure_no_cd_dispatch(
    const channel::ProbabilitySchedule& schedule,
    const std::function<std::size_t(channel::SplitMix64&)>& draw_k_fast,
    const std::function<std::size_t(std::mt19937_64&)>& draw_k,
    std::size_t trials, std::uint64_t seed, const MeasureOptions& options) {
  if (options.engine == NoCdEngine::kBatch) {
    const channel::BatchNoCdSampler sampler(schedule);
    return measure_batch(sampler, draw_k_fast, trials, seed, options);
  }
  return run_trials(
      [&](std::size_t, std::mt19937_64& rng) {
        const std::size_t k = draw_k(rng);
        return options.engine == NoCdEngine::kPerPlayer
                   ? channel::run_uniform_no_cd_per_player(
                         schedule, k, rng, {.max_rounds = options.max_rounds})
                   : channel::run_uniform_no_cd(
                         schedule, k, rng, {.max_rounds = options.max_rounds});
      },
      trials, seed, options.threads);
}

}  // namespace

Measurement measurement_from_runs(std::span<const channel::RunResult> runs) {
  Measurement result;
  result.trials = runs.size();
  result.samples.reserve(runs.size());
  std::size_t solved = 0;
  for (const auto& run : runs) {
    if (run.solved) {
      ++solved;
      result.samples.push_back(static_cast<double>(run.rounds));
    }
  }
  result.success_rate =
      runs.empty() ? 0.0
                   : static_cast<double>(solved) /
                         static_cast<double>(runs.size());
  result.rounds = summarize(result.samples);
  return result;
}

double Measurement::solved_within(double budget) const {
  if (trials == 0) return 0.0;
  const auto solved = static_cast<double>(
      std::count_if(samples.begin(), samples.end(),
                    [budget](double r) { return r <= budget; }));
  return solved / static_cast<double>(trials);
}

Measurement measure(const Trial& trial, std::size_t trials,
                    std::uint64_t seed) {
  Measurement result;
  result.trials = trials;
  result.samples.reserve(trials);
  std::size_t solved = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto rng = channel::derive_rng(seed, t);
    const channel::RunResult run = trial(t, rng);
    if (run.solved) {
      ++solved;
      result.samples.push_back(static_cast<double>(run.rounds));
    }
  }
  result.success_rate =
      trials == 0 ? 0.0
                  : static_cast<double>(solved) / static_cast<double>(trials);
  result.rounds = summarize(result.samples);
  return result;
}

Measurement measure_uniform_no_cd(const channel::ProbabilitySchedule& schedule,
                                  const info::SizeDistribution& actual,
                                  std::size_t trials, std::uint64_t seed,
                                  std::size_t max_rounds) {
  return measure_uniform_no_cd(schedule, actual, trials, seed,
                               legacy_options(max_rounds));
}

Measurement measure_uniform_no_cd(const channel::ProbabilitySchedule& schedule,
                                  const info::SizeDistribution& actual,
                                  std::size_t trials, std::uint64_t seed,
                                  const MeasureOptions& options) {
  return measure_no_cd_dispatch(
      schedule,
      [&actual](channel::SplitMix64& rng) {
        std::uniform_real_distribution<double> unit(0.0, 1.0);
        return actual.sample_at(unit(rng));
      },
      [&actual](std::mt19937_64& rng) { return actual.sample(rng); },
      trials, seed, options);
}

Measurement measure_uniform_cd(const channel::CollisionPolicy& policy,
                               const info::SizeDistribution& actual,
                               std::size_t trials, std::uint64_t seed,
                               std::size_t max_rounds) {
  return measure_uniform_cd(policy, actual, trials, seed,
                            legacy_options(max_rounds));
}

Measurement measure_uniform_cd(const channel::CollisionPolicy& policy,
                               const info::SizeDistribution& actual,
                               std::size_t trials, std::uint64_t seed,
                               const MeasureOptions& options) {
  return run_trials(
      [&](std::size_t, std::mt19937_64& rng) {
        const std::size_t k = actual.sample(rng);
        return channel::run_uniform_cd(policy, k, rng,
                                       {.max_rounds = options.max_rounds});
      },
      trials, seed, options.threads);
}

Measurement measure_uniform_no_cd_fixed_k(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    std::size_t trials, std::uint64_t seed, std::size_t max_rounds) {
  return measure_uniform_no_cd_fixed_k(schedule, k, trials, seed,
                                       legacy_options(max_rounds));
}

Measurement measure_uniform_no_cd_fixed_k(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    std::size_t trials, std::uint64_t seed, const MeasureOptions& options) {
  return measure_no_cd_dispatch(
      schedule, [k](channel::SplitMix64&) { return k; },
      [k](std::mt19937_64&) { return k; }, trials, seed, options);
}

Measurement measure_uniform_cd_fixed_k(const channel::CollisionPolicy& policy,
                                       std::size_t k, std::size_t trials,
                                       std::uint64_t seed,
                                       std::size_t max_rounds) {
  return measure_uniform_cd_fixed_k(policy, k, trials, seed,
                                    legacy_options(max_rounds));
}

Measurement measure_uniform_cd_fixed_k(const channel::CollisionPolicy& policy,
                                       std::size_t k, std::size_t trials,
                                       std::uint64_t seed,
                                       const MeasureOptions& options) {
  return run_trials(
      [&](std::size_t, std::mt19937_64& rng) {
        return channel::run_uniform_cd(policy, k, rng,
                                       {.max_rounds = options.max_rounds});
      },
      trials, seed, options.threads);
}

std::vector<std::size_t> random_participant_set(std::size_t n, std::size_t k,
                                                std::mt19937_64& rng) {
  if (k > n) throw std::invalid_argument("cannot pick k > n participants");
  // Partial Fisher-Yates over the id space.
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, n - 1);
    std::swap(ids[i], ids[pick(rng)]);
  }
  ids.resize(k);
  return ids;
}

Measurement measure_deterministic_advice(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, const info::SizeDistribution& actual,
    std::size_t n, bool collision_detection, std::size_t trials,
    std::uint64_t seed, std::size_t max_rounds) {
  return measure_deterministic_advice(protocol, advice, actual, n,
                                      collision_detection, trials, seed,
                                      legacy_options(max_rounds));
}

Measurement measure_deterministic_advice(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, const info::SizeDistribution& actual,
    std::size_t n, bool collision_detection, std::size_t trials,
    std::uint64_t seed, const MeasureOptions& options) {
  return run_trials(
      [&](std::size_t, std::mt19937_64& rng) {
        const std::size_t k = actual.sample(rng);
        const auto participants = random_participant_set(n, k, rng);
        const auto bits = advice.advise(participants);
        return channel::run_deterministic(protocol, bits, participants,
                                          collision_detection,
                                          {.max_rounds = options.max_rounds});
      },
      trials, seed, options.threads);
}

double worst_case_deterministic_rounds(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t k,
    bool collision_detection, std::size_t probes, std::uint64_t seed,
    std::size_t max_rounds) {
  if (k > n) throw std::invalid_argument("cannot pick k > n participants");
  double worst = 0.0;
  const auto run_set = [&](const std::vector<std::size_t>& participants) {
    const auto bits = advice.advise(participants);
    const auto result = channel::run_deterministic(
        protocol, bits, participants, collision_detection,
        {.max_rounds = max_rounds});
    worst = std::max(
        worst, result.solved ? static_cast<double>(result.rounds)
                             : static_cast<double>(max_rounds));
  };

  // Random probes.
  for (std::size_t p = 0; p < probes; ++p) {
    auto rng = channel::derive_rng(seed, p);
    run_set(random_participant_set(n, k, rng));
  }
  // Crafted adversarial probes. "Tail": consecutive ids ending at the
  // highest id, which puts the minimum active id as deep as possible
  // into whatever subtree the advice names (worst for linear scans).
  // "Head": the first k ids, whose shared prefixes force a collision at
  // every level of a collision-detector descent (worst for tree
  // protocols).
  std::vector<std::size_t> crafted(k);
  for (std::size_t i = 0; i < k; ++i) crafted[i] = n - k + i;
  run_set(crafted);
  for (std::size_t i = 0; i < k; ++i) crafted[i] = i;
  run_set(crafted);
  return worst;
}

}  // namespace crp::harness
