#include "harness/supervisor.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "harness/checkpoint.h"
#include "harness/csv.h"
#include "harness/hash.h"

namespace crp::harness {

namespace {

constexpr const char* kSupervisorMagic = "crp-supervisor-journal-v1";
constexpr const char* kQuarantineTag = "quarantine";
constexpr const char* kBisectTag = "bisect";
/// Same end-of-record framing as the worker journals
/// (harness/checkpoint.cpp): newline, '.', newline after the payload —
/// a marker a torn append cannot fake.
constexpr const char* kEndMarker = "\n.\n";

std::string hex(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

class SteadyClock final : public Clock {
 public:
  SteadyClock() : start_(std::chrono::steady_clock::now()) {}
  std::int64_t now_ms() override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void sleep_ms(std::int64_t ms) override {
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::unique_ptr<Clock> steady_clock_source() {
  return std::make_unique<SteadyClock>();
}

// ---------------------------------------------------------------------------
// RetryPolicy

RetryPolicy::RetryPolicy(const RetryPolicyConfig& config) : config_(config) {
  const auto fail = [](const std::string& message) {
    throw std::invalid_argument("RetryPolicy: " + message);
  };
  if (config_.base_backoff_ms < 0) fail("base_backoff_ms must be >= 0");
  if (!(config_.backoff_multiplier >= 1.0)) {
    fail("backoff_multiplier must be >= 1");
  }
  if (config_.max_backoff_ms < config_.base_backoff_ms) {
    fail("max_backoff_ms must be >= base_backoff_ms");
  }
  if (!(config_.jitter_fraction >= 0.0) || config_.jitter_fraction >= 1.0) {
    fail("jitter_fraction must be in [0, 1)");
  }
  if (config_.worker_timeout_ms < 0) fail("worker_timeout_ms must be >= 0");
  if (config_.kill_grace_ms < 0) fail("kill_grace_ms must be >= 0");
}

std::int64_t RetryPolicy::backoff_ms(std::size_t attempt,
                                     std::size_t cell_begin,
                                     std::size_t cell_end) const {
  if (attempt == 0) {
    throw std::invalid_argument("RetryPolicy::backoff_ms: attempts are "
                                "1-based");
  }
  double nominal = static_cast<double>(config_.base_backoff_ms);
  const double cap = static_cast<double>(config_.max_backoff_ms);
  for (std::size_t k = 1; k < attempt && nominal < cap; ++k) {
    nominal *= config_.backoff_multiplier;
  }
  nominal = std::min(nominal, cap);
  if (config_.jitter_fraction > 0.0) {
    // Deterministic jitter: FNV-1a over (seed, range, attempt) mapped
    // to [1 - f, 1 + f). No global RNG, no clock — two supervisors
    // with the same config compute the same schedule.
    Fnv1a h;
    h.u64(config_.jitter_seed);
    h.u64(cell_begin);
    h.u64(cell_end);
    h.u64(attempt);
    const double unit = static_cast<double>(h.state >> 11) * 0x1p-53;
    nominal *= 1.0 - config_.jitter_fraction +
               2.0 * config_.jitter_fraction * unit;
  }
  return static_cast<std::int64_t>(std::llround(nominal));
}

namespace {

Decision escalate(const JobState& state) {
  if (state.cell_end - state.cell_begin > 1) return {ActionKind::kBisect, 0};
  return {ActionKind::kQuarantine, 0};
}

}  // namespace

Decision RetryPolicy::decide(JobState& state, WorkerOutcome outcome,
                             bool progressed) const {
  if (state.cell_end <= state.cell_begin) {
    throw std::invalid_argument("RetryPolicy::decide: empty cell range");
  }
  // Progress is the health signal: a range is only escalated for
  // failing repeatedly *without* journaling anything new.
  if (progressed) state.attempts = 0;
  switch (outcome) {
    case WorkerOutcome::kSuccess:
      return {ActionKind::kDone, 0};
    case WorkerOutcome::kValidation:
      // Retrying identical inputs cannot change a validation verdict;
      // isolate the poison instead.
      return escalate(state);
    case WorkerOutcome::kResumable:
      // A clean stop with a flushed journal: resume immediately. Only
      // a stop that made no progress counts against the budget (a
      // worker stuck in an exit-75 loop must not spin forever).
      if (!progressed && ++state.attempts > config_.retry_budget) {
        return escalate(state);
      }
      return {ActionKind::kRetryNow, 0};
    case WorkerOutcome::kIoError:
    case WorkerOutcome::kCrash:
    case WorkerOutcome::kTimeout:
      if (++state.attempts > config_.retry_budget) return escalate(state);
      return {ActionKind::kRetryAfter,
              backoff_ms(state.attempts, state.cell_begin, state.cell_end)};
  }
  throw std::invalid_argument("RetryPolicy::decide: unknown outcome");
}

TimeoutAction RetryPolicy::timeout_action(
    std::int64_t now_ms, std::int64_t started_ms,
    std::optional<std::int64_t> term_sent_ms) const {
  if (term_sent_ms.has_value()) {
    return now_ms - *term_sent_ms >= config_.kill_grace_ms
               ? TimeoutAction::kSigkill
               : TimeoutAction::kNone;
  }
  if (config_.worker_timeout_ms > 0 &&
      now_ms - started_ms >= config_.worker_timeout_ms) {
    return TimeoutAction::kSigterm;
  }
  return TimeoutAction::kNone;
}

std::size_t bisect_midpoint(std::size_t cell_begin, std::size_t cell_end) {
  if (cell_end - cell_begin < 2) {
    throw std::invalid_argument(
        "bisect_midpoint: range [" + std::to_string(cell_begin) + ", " +
        std::to_string(cell_end) + ") has fewer than two cells");
  }
  return cell_begin + (cell_end - cell_begin) / 2;
}

std::vector<MissingCellRange> subtract_quarantined(
    std::size_t cell_begin, std::size_t cell_end,
    std::span<const std::size_t> quarantined_sorted) {
  std::vector<MissingCellRange> out;
  std::size_t run_begin = cell_begin;
  for (std::size_t cell = cell_begin; cell < cell_end; ++cell) {
    const bool quarantined = std::binary_search(
        quarantined_sorted.begin(), quarantined_sorted.end(), cell);
    if (quarantined) {
      if (run_begin < cell) out.push_back({run_begin, cell});
      run_begin = cell + 1;
    }
  }
  if (run_begin < cell_end) out.push_back({run_begin, cell_end});
  return out;
}

// ---------------------------------------------------------------------------
// Supervisor journal

namespace {

std::uint64_t supervisor_header_checksum(const SupervisorJournal& identity) {
  Fnv1a h;
  h.u64(identity.grid_hash);
  h.u64(identity.master_seed);
  h.u64(identity.trials);
  h.u64(identity.total_cells);
  h.u64(identity.workers);
  h.str(identity.engine);
  h.str(identity.cd_engine);
  return h.state;
}

std::uint64_t quarantine_checksum(const QuarantinedCell& cell) {
  Fnv1a h;
  h.u64(cell.cell_index);
  h.u64(cell.attempts);
  h.str(cell.reason);
  return h.state;
}

std::uint64_t bisect_checksum(const BisectRecord& record) {
  Fnv1a h;
  h.u64(record.cell_begin);
  h.u64(record.mid);
  h.u64(record.cell_end);
  return h.state;
}

std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const auto space = line.find(' ', start);
    if (space == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, space - start));
    start = space + 1;
  }
  return fields;
}

std::optional<std::uint64_t> parse_hex_u64(const std::string& raw) {
  if (raw.size() < 3 || raw.size() > 18 || raw[0] != '0' || raw[1] != 'x') {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 2; i < raw.size(); ++i) {
    const char c = raw[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;
    }
    value = value * 16 + static_cast<std::uint64_t>(digit);
  }
  return value;
}

/// Supervisor-journal twin of checkpoint.cpp's parser: same framing,
/// same torn-vs-corrupt discipline.
struct SupervisorParser {
  const std::string& path;
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(std::size_t offset, const std::string& message) {
    throw std::invalid_argument("supervisor journal " + path + " at byte " +
                                std::to_string(offset) + ": " + message);
  }

  std::optional<std::string_view> next_line() {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) return std::nullopt;
    std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    return line;
  }

  std::uint64_t field_uint(const std::string& field, std::size_t offset,
                           const std::string& what) {
    const auto value = parse_csv_unsigned(field);
    if (!value) {
      fail(offset, what + " must be a plain non-negative integer, got \"" +
                       field + "\"");
    }
    return *value;
  }

  std::uint64_t field_hex(const std::string& field, std::size_t offset,
                          const std::string& what) {
    const auto value = parse_hex_u64(field);
    if (!value) {
      fail(offset, what + " must be an \"0x...\" hex value, got \"" + field +
                       "\"");
    }
    return *value;
  }

  std::optional<std::string> payload(std::size_t offset, std::size_t length) {
    const std::size_t marker_len = std::strlen(kEndMarker);
    if (length > text.size() - pos ||
        marker_len > text.size() - pos - length) {
      return std::nullopt;  // the file ends inside payload or marker
    }
    if (text.compare(pos + length, marker_len, kEndMarker) != 0) {
      fail(offset,
           "end-of-record marker missing — the record is damaged, not torn");
    }
    std::string out = text.substr(pos, length);
    pos += length + marker_len;
    return out;
  }
};

}  // namespace

std::string format_supervisor_header(const SupervisorJournal& identity) {
  std::string out = kSupervisorMagic;
  out += ' ';
  out += hex(identity.grid_hash);
  out += ' ';
  out += hex(identity.master_seed);
  out += ' ';
  out += std::to_string(identity.trials);
  out += ' ';
  out += std::to_string(identity.total_cells);
  out += ' ';
  out += std::to_string(identity.workers);
  out += ' ';
  out += identity.engine;
  out += ' ';
  out += identity.cd_engine;
  out += ' ';
  out += hex(supervisor_header_checksum(identity));
  out += '\n';
  return out;
}

std::string format_supervisor_quarantine(const QuarantinedCell& cell) {
  std::string out = kQuarantineTag;
  out += ' ';
  out += std::to_string(cell.cell_index);
  out += ' ';
  out += std::to_string(cell.attempts);
  out += ' ';
  out += std::to_string(cell.reason.size());
  out += ' ';
  out += hex(quarantine_checksum(cell));
  out += '\n';
  out += cell.reason;
  out += kEndMarker;
  return out;
}

std::string format_supervisor_bisect(const BisectRecord& record) {
  std::string out = kBisectTag;
  out += ' ';
  out += std::to_string(record.cell_begin);
  out += ' ';
  out += std::to_string(record.mid);
  out += ' ';
  out += std::to_string(record.cell_end);
  out += ' ';
  out += hex(bisect_checksum(record));
  out += '\n';
  out += kEndMarker;  // empty payload; the marker still seals the record
  return out;
}

SupervisorJournal read_supervisor_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open supervisor journal " + path + ": " +
                  std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw IoError("cannot read supervisor journal " + path);
  const std::string text = buffer.str();
  SupervisorParser parser{path, text};
  SupervisorJournal journal;

  // Header: written whole via atomic temp-file + rename, so damage
  // here is corruption, never a torn append.
  const auto header_line = parser.next_line();
  if (!header_line) {
    parser.fail(0, "incomplete header line (the header is written "
                   "atomically — this file is damaged, not torn)");
  }
  const auto fields = split_fields(*header_line);
  if (fields.size() != 9 || fields[0] != kSupervisorMagic) {
    parser.fail(0, "not a " + std::string(kSupervisorMagic) + " header: \"" +
                       std::string(*header_line) + "\"");
  }
  journal.grid_hash = parser.field_hex(fields[1], 0, "grid hash");
  journal.master_seed = parser.field_hex(fields[2], 0, "master seed");
  journal.trials = parser.field_uint(fields[3], 0, "trials");
  journal.total_cells = parser.field_uint(fields[4], 0, "total cell count");
  journal.workers = parser.field_uint(fields[5], 0, "worker count");
  journal.engine = fields[6];
  journal.cd_engine = fields[7];
  const std::uint64_t header_crc = parser.field_hex(fields[8], 0, "checksum");
  if (supervisor_header_checksum(journal) != header_crc) {
    parser.fail(0, "header checksum mismatch — expected " + hex(header_crc) +
                       ", computed " +
                       hex(supervisor_header_checksum(journal)));
  }
  journal.valid_bytes = parser.pos;

  std::vector<bool> quarantined_seen(journal.total_cells, false);
  while (parser.pos < text.size()) {
    const std::size_t record_start = parser.pos;
    const auto line = parser.next_line();
    if (!line) break;  // torn: the file ends mid-line
    const auto record_fields = split_fields(*line);
    if (record_fields.empty()) {
      parser.fail(record_start, "empty record line");
    }
    if (record_fields[0] == kQuarantineTag) {
      if (record_fields.size() != 5) {
        parser.fail(record_start, "malformed quarantine record \"" +
                                      std::string(*line) + "\"");
      }
      QuarantinedCell cell;
      cell.cell_index =
          parser.field_uint(record_fields[1], record_start, "cell index");
      cell.attempts =
          parser.field_uint(record_fields[2], record_start, "attempts");
      const std::size_t reason_len =
          parser.field_uint(record_fields[3], record_start, "reason length");
      const std::uint64_t crc =
          parser.field_hex(record_fields[4], record_start, "record checksum");
      auto reason = parser.payload(record_start, reason_len);
      if (!reason) {
        parser.pos = record_start;  // torn
        break;
      }
      cell.reason = std::move(*reason);
      if (quarantine_checksum(cell) != crc) {
        parser.fail(record_start,
                    "quarantine record checksum mismatch for cell " +
                        std::to_string(cell.cell_index));
      }
      if (cell.cell_index >= journal.total_cells) {
        parser.fail(record_start,
                    "quarantined cell " + std::to_string(cell.cell_index) +
                        " is outside the grid of " +
                        std::to_string(journal.total_cells) + " cells");
      }
      if (quarantined_seen[cell.cell_index]) {
        parser.fail(record_start,
                    "duplicate quarantine record for cell " +
                        std::to_string(cell.cell_index));
      }
      quarantined_seen[cell.cell_index] = true;
      journal.quarantined.push_back(std::move(cell));
    } else if (record_fields[0] == kBisectTag) {
      if (record_fields.size() != 5) {
        parser.fail(record_start,
                    "malformed bisect record \"" + std::string(*line) + "\"");
      }
      BisectRecord record;
      record.cell_begin =
          parser.field_uint(record_fields[1], record_start, "cell_begin");
      record.mid = parser.field_uint(record_fields[2], record_start, "mid");
      record.cell_end =
          parser.field_uint(record_fields[3], record_start, "cell_end");
      const std::uint64_t crc =
          parser.field_hex(record_fields[4], record_start, "record checksum");
      auto empty = parser.payload(record_start, 0);
      if (!empty) {
        parser.pos = record_start;  // torn
        break;
      }
      if (bisect_checksum(record) != crc) {
        parser.fail(record_start, "bisect record checksum mismatch for [" +
                                      std::to_string(record.cell_begin) +
                                      ", " + std::to_string(record.cell_end) +
                                      ")");
      }
      if (record.cell_begin >= record.mid || record.mid >= record.cell_end ||
          record.cell_end > journal.total_cells) {
        parser.fail(record_start,
                    "bisect record [" + std::to_string(record.cell_begin) +
                        ", " + std::to_string(record.mid) + ", " +
                        std::to_string(record.cell_end) +
                        ") is not a strict split inside the grid");
      }
      journal.bisections.push_back(record);
    } else {
      parser.fail(record_start,
                  "unknown record tag \"" + record_fields[0] + "\"");
    }
    journal.valid_bytes = parser.pos;
  }
  journal.torn_bytes = text.size() - journal.valid_bytes;
  return journal;
}

// ---------------------------------------------------------------------------
// Quarantine report

void write_quarantine_report(std::ostream& out, std::uint64_t grid_hash,
                             std::size_t total_cells,
                             std::span<const QuarantinedCell> quarantined) {
  out << "{\n"
      << "  \"format\": \"crp-quarantine-v1\",\n"
      << "  \"grid_hash\": \"" << hex(grid_hash) << "\",\n"
      << "  \"total_cells\": " << total_cells << ",\n"
      << "  \"quarantined_cells\": " << quarantined.size() << ",\n"
      << "  \"quarantined\": [";
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    const QuarantinedCell& cell = quarantined[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\n"
        << "      \"cell_index\": " << cell.cell_index << ",\n"
        << "      \"attempts\": " << cell.attempts << ",\n"
        << "      \"reason\": \"" << json_escape(cell.reason) << "\"\n"
        << "    }";
  }
  out << (quarantined.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

// ---------------------------------------------------------------------------
// The fleet

namespace {

namespace fs = std::filesystem;

/// One unit of fleet work: a contiguous cell range to bring to a
/// completed manifest.
struct FleetJob {
  JobState state;
  std::int64_t ready_at = 0;
};

struct RunningWorker {
  JobState state;
  pid_t pid = -1;
  std::int64_t started_ms = 0;
  std::optional<std::int64_t> term_sent_ms;
  bool timed_out = false;  ///< the supervisor killed it over its budget
  std::uintmax_t journal_bytes_at_spawn = 0;
  std::string journal_path;
};

std::string range_text(const JobState& state) {
  return "[" + std::to_string(state.cell_begin) + ", " +
         std::to_string(state.cell_end) + ")";
}

/// Artifact stem for a --cells worker, matching crp_shard's explicit
/// range naming — the supervisor predicts every worker artifact path.
std::string job_stem(const JobState& state) {
  return "shard-cells-" + std::to_string(state.cell_begin) + "-" +
         std::to_string(state.cell_end);
}

std::string outcome_text(WorkerOutcome outcome, int wait_status) {
  switch (outcome) {
    case WorkerOutcome::kSuccess:
      return "completed (exit 0)";
    case WorkerOutcome::kResumable:
      return "stopped cleanly (exit 75)";
    case WorkerOutcome::kIoError:
      return "I/O error (exit 4)";
    case WorkerOutcome::kValidation:
      return "validation error (exit 3)";
    case WorkerOutcome::kTimeout:
      return "timed out (killed by the supervisor)";
    case WorkerOutcome::kCrash:
      if (WIFSIGNALED(wait_status)) {
        return "killed by signal " + std::to_string(WTERMSIG(wait_status));
      }
      return "crashed (exit " + std::to_string(WEXITSTATUS(wait_status)) +
             ")";
  }
  return "unknown outcome";
}

/// Everything run_supervisor tracks across the fleet's lifetime.
struct Fleet {
  const SuperviseOptions& options;
  const RetryPolicy policy;
  Clock* clock;
  std::ostream* log;
  fs::path dir;

  std::deque<FleetJob> pending{};
  std::vector<RunningWorker> running{};
  /// Replayed + live bisection tree: range -> midpoint.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> bisected{};
  std::vector<QuarantinedCell> quarantined{};
  std::unique_ptr<CheckpointSink> journal_sink{};
  std::size_t workers_spawned = 0;

  void narrate(const std::string& message) const {
    if (log != nullptr) *log << "crp_shard supervise: " << message << "\n";
  }

  bool is_quarantined(std::size_t cell) const {
    return std::any_of(quarantined.begin(), quarantined.end(),
                       [cell](const QuarantinedCell& q) {
                         return q.cell_index == cell;
                       });
  }

  std::vector<std::size_t> quarantined_sorted() const {
    std::vector<std::size_t> cells;
    cells.reserve(quarantined.size());
    for (const QuarantinedCell& q : quarantined) cells.push_back(q.cell_index);
    std::sort(cells.begin(), cells.end());
    return cells;
  }

  /// Enqueues the job(s) for [begin, end): replayed bisections route
  /// to their children, quarantined single cells are skipped, and
  /// ranges whose manifest + CSV already exist are already done —
  /// exactly what makes `supervise --resume` idempotent.
  void create_job(std::size_t begin, std::size_t end, std::int64_t ready_at) {
    if (begin >= end) return;
    const auto split = bisected.find({begin, end});
    if (split != bisected.end()) {
      create_job(begin, split->second, ready_at);
      create_job(split->second, end, ready_at);
      return;
    }
    if (end - begin == 1 && is_quarantined(begin)) return;
    const std::string stem =
        job_stem(JobState{.cell_begin = begin, .cell_end = end});
    if (fs::exists(dir / (stem + ".manifest.json")) &&
        fs::exists(dir / (stem + ".csv"))) {
      narrate("cells [" + std::to_string(begin) + ", " + std::to_string(end) +
              ") already have a completed manifest — skipping");
      return;
    }
    pending.push_back(
        {JobState{.cell_begin = begin, .cell_end = end}, ready_at});
  }

  void journal_append(const std::string& record) {
    journal_sink->append(record);
    journal_sink->sync();
  }

  void quarantine(const JobState& state, const std::string& reason) {
    QuarantinedCell cell{.cell_index = state.cell_begin,
                        .attempts = state.attempts,
                        .reason = reason};
    journal_append(format_supervisor_quarantine(cell));
    narrate("quarantined cell " + std::to_string(cell.cell_index) + ": " +
            reason);
    quarantined.push_back(std::move(cell));
  }

  void bisect(const JobState& state, std::int64_t now) {
    const std::size_t mid = bisect_midpoint(state.cell_begin, state.cell_end);
    const BisectRecord record{.cell_begin = state.cell_begin,
                              .mid = mid,
                              .cell_end = state.cell_end};
    journal_append(format_supervisor_bisect(record));
    bisected[{state.cell_begin, state.cell_end}] = mid;
    narrate("bisecting cells " + range_text(state) + " at " +
            std::to_string(mid) + " to isolate the failure");
    // create_job re-consults the map, so the parent range routes
    // straight to its two halves.
    create_job(state.cell_begin, state.cell_end, now);
  }

  void spawn(FleetJob job, std::int64_t now) {
    const std::string stem = job_stem(job.state);
    const std::string journal_path = (dir / (stem + ".journal")).string();
    std::error_code ec;
    const bool has_journal = fs::exists(journal_path, ec);
    const std::uintmax_t journal_bytes =
        has_journal ? fs::file_size(journal_path, ec) : 0;
    const std::string mode = has_journal ? "resume" : "run";

    std::vector<std::string> args;
    args.push_back(options.exe);
    args.push_back(mode);
    args.insert(args.end(), options.worker_flags.begin(),
                options.worker_flags.end());
    args.push_back("--cells");
    args.push_back(std::to_string(job.state.cell_begin) + ":" +
                   std::to_string(job.state.cell_end));
    args.push_back("--out-dir");
    args.push_back(options.out_dir);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      throw IoError("cannot fork worker for cells " + range_text(job.state) +
                    ": " + std::strerror(errno));
    }
    if (pid == 0) {
      ::execv(options.exe.c_str(), argv.data());
      // Unreachable on success; exec failure is a supervisor
      // misconfiguration (bad exe path), not a worker fault.
      ::perror("crp_shard supervise: execv");
      // crp-lint: allow(exit-taxonomy) -- 127 is the shell/POSIX
      // exec-failure convention, deliberately outside the worker
      // taxonomy so handle_exit aborts supervision loudly instead of
      // retrying a misconfigured exe path.
      ::_exit(127);
    }
    ++workers_spawned;
    narrate("worker " + std::to_string(pid) + " " + mode + " cells " +
            range_text(job.state) + " (attempt " +
            std::to_string(job.state.attempts + 1) + ")");
    running.push_back({job.state, pid, now, std::nullopt, false,
                       journal_bytes, journal_path});
  }

  /// Classifies a waitpid status. Exit codes outside the documented
  /// taxonomy (usage, internal, exec failure) are supervisor bugs —
  /// retrying them would loop forever, so they abort supervision.
  WorkerOutcome classify(const RunningWorker& worker, int status) const {
    if (worker.timed_out) return WorkerOutcome::kTimeout;
    if (WIFSIGNALED(status)) return WorkerOutcome::kCrash;
    switch (WEXITSTATUS(status)) {
      case 0:
        return WorkerOutcome::kSuccess;
      case 75:
        return WorkerOutcome::kResumable;
      case 4:
        return WorkerOutcome::kIoError;
      case 3:
        return WorkerOutcome::kValidation;
      default:
        throw std::runtime_error(
            "crp_shard supervise: worker for cells " +
            range_text(worker.state) + " exited with code " +
            std::to_string(WEXITSTATUS(status)) +
            " (usage/internal — not retryable); aborting supervision");
    }
  }

  void handle_exit(RunningWorker worker, int status, std::int64_t now) {
    const WorkerOutcome outcome = classify(worker, status);
    std::error_code ec;
    const std::uintmax_t journal_bytes =
        fs::exists(worker.journal_path, ec)
            ? fs::file_size(worker.journal_path, ec)
            : 0;
    const bool progressed = journal_bytes > worker.journal_bytes_at_spawn;
    const std::string what = outcome_text(outcome, status);
    JobState state = worker.state;
    const Decision decision = policy.decide(state, outcome, progressed);
    switch (decision.kind) {
      case ActionKind::kDone:
        narrate("worker " + std::to_string(worker.pid) + " cells " +
                range_text(state) + " " + what);
        break;
      case ActionKind::kRetryNow:
        narrate("worker " + std::to_string(worker.pid) + " cells " +
                range_text(state) + " " + what + "; resuming immediately");
        pending.push_back({state, now});
        break;
      case ActionKind::kRetryAfter:
        narrate("worker " + std::to_string(worker.pid) + " cells " +
                range_text(state) + " " + what + "; retry " +
                std::to_string(state.attempts) + "/" +
                std::to_string(policy.config().retry_budget) + " in " +
                std::to_string(decision.delay_ms) + " ms");
        pending.push_back({state, now + decision.delay_ms});
        break;
      case ActionKind::kBisect:
        narrate("worker " + std::to_string(worker.pid) + " cells " +
                range_text(state) + " " + what + "; retry budget exhausted");
        bisect(state, now);
        break;
      case ActionKind::kQuarantine:
        quarantine(state,
                   outcome == WorkerOutcome::kValidation
                       ? what
                       : what + " after " + std::to_string(state.attempts) +
                             " no-progress attempt(s)");
        break;
    }
  }
};

}  // namespace

SuperviseResult run_supervisor(std::span<const SweepCell> cells,
                               const SweepOptions& sweep_options,
                               const SuperviseOptions& options) {
  if (options.workers == 0) {
    throw std::invalid_argument("supervise: workers must be >= 1");
  }
  if (options.exe.empty() || options.out.empty() || options.out_dir.empty()) {
    throw std::invalid_argument(
        "supervise: exe, out, and out_dir are all required");
  }
  std::unique_ptr<Clock> owned_clock;
  Clock* clock = options.clock;
  if (clock == nullptr) {
    owned_clock = steady_clock_source();
    clock = owned_clock.get();
  }

  Fleet fleet{options, RetryPolicy(options.retry), clock, options.log,
              fs::path(options.out_dir)};

  // ---- identity + state journal ----
  SupervisorJournal identity;
  identity.grid_hash = grid_fingerprint(cells);
  identity.master_seed = sweep_options.seed;
  identity.trials = sweep_options.trials;
  identity.total_cells = cells.size();
  identity.workers = options.workers;
  identity.engine = engine_name(sweep_options.engine);
  identity.cd_engine = engine_name(sweep_options.cd_engine);

  const std::string journal_path =
      (fleet.dir / "supervisor.journal").string();
  const bool journal_exists = fs::exists(journal_path);
  if (options.resume) {
    if (!journal_exists) {
      throw std::invalid_argument(
          "supervise resume: journal " + journal_path +
          " does not exist — nothing to resume (run fresh instead)");
    }
    const SupervisorJournal journal = read_supervisor_journal(journal_path);
    const auto fail = [&journal_path](const std::string& message) {
      throw std::invalid_argument("supervise resume " + journal_path + ": " +
                                  message);
    };
    if (journal.grid_hash != identity.grid_hash) {
      fail("grid fingerprint " + hex(journal.grid_hash) + " != " +
           hex(identity.grid_hash) +
           " — the journal was written for a different grid");
    }
    if (journal.master_seed != identity.master_seed) {
      fail("master seed " + hex(journal.master_seed) + " != " +
           hex(identity.master_seed));
    }
    if (journal.trials != identity.trials) {
      fail("trials " + std::to_string(journal.trials) + " != " +
           std::to_string(identity.trials));
    }
    if (journal.total_cells != identity.total_cells) {
      fail("total cells " + std::to_string(journal.total_cells) + " != " +
           std::to_string(identity.total_cells));
    }
    if (journal.workers != identity.workers) {
      fail("worker count " + std::to_string(journal.workers) + " != " +
           std::to_string(identity.workers) +
           " — the worker count fixes the initial shard split; resume with "
           "the same --workers");
    }
    if (journal.engine != identity.engine ||
        journal.cd_engine != identity.cd_engine) {
      fail("engine configuration (" + journal.engine + ", " +
           journal.cd_engine + ") != (" + identity.engine + ", " +
           identity.cd_engine + ")");
    }
    if (journal.torn_bytes > 0) {
      std::error_code ec;
      fs::resize_file(journal_path, journal.valid_bytes, ec);
      if (ec) {
        throw IoError("cannot truncate torn tail of " + journal_path + ": " +
                      ec.message());
      }
    }
    fleet.quarantined = journal.quarantined;
    for (const BisectRecord& record : journal.bisections) {
      fleet.bisected[{record.cell_begin, record.cell_end}] = record.mid;
    }
    fleet.narrate("resuming: " + std::to_string(journal.quarantined.size()) +
                  " quarantined cell(s), " +
                  std::to_string(journal.bisections.size()) +
                  " recorded bisection(s)");
  } else {
    if (journal_exists) {
      throw std::invalid_argument(
          "supervise: journal " + journal_path +
          " already exists — resume it (--resume) or remove the directory "
          "before starting fresh");
    }
    atomic_write_file(journal_path, format_supervisor_header(identity));
  }
  fleet.journal_sink = open_file_checkpoint_sink(journal_path);

  // ---- initial fleet: one contiguous range per worker ----
  for (std::size_t i = 0; i < options.workers; ++i) {
    ShardOptions shard;
    shard.shard_index = i;
    shard.shard_count = options.workers;
    const ShardPlan plan = plan_shards(cells, shard);
    fleet.create_job(plan.cell_begin, plan.cell_end, clock->now_ms());
  }

  SuperviseResult result;
  result.total_cells = cells.size();

  // ---- fleet loop ----
  bool stopping = false;
  std::vector<MissingCellRange> last_backfill;
  while (true) {
    const std::int64_t now = clock->now_ms();

    if (!stopping && options.stop_requested && options.stop_requested()) {
      stopping = true;
      fleet.narrate("stop requested — signalling " +
                    std::to_string(fleet.running.size()) +
                    " running worker(s) and flushing");
      for (RunningWorker& worker : fleet.running) {
        ::kill(worker.pid, SIGTERM);
        worker.term_sent_ms = now;
      }
    }

    // Reap exited workers and apply the policy to each outcome.
    for (std::size_t i = 0; i < fleet.running.size();) {
      int status = 0;
      const pid_t reaped =
          ::waitpid(fleet.running[i].pid, &status, WNOHANG);
      if (reaped == fleet.running[i].pid) {
        RunningWorker worker = std::move(fleet.running[i]);
        fleet.running.erase(fleet.running.begin() +
                            static_cast<std::ptrdiff_t>(i));
        fleet.handle_exit(std::move(worker), status, now);
      } else {
        ++i;
      }
    }

    // Timeout ladder: SIGTERM past the budget, SIGKILL past the grace
    // period (and the same grace escalation covers a graceful stop).
    for (RunningWorker& worker : fleet.running) {
      switch (fleet.policy.timeout_action(now, worker.started_ms,
                                          worker.term_sent_ms)) {
        case TimeoutAction::kNone:
          break;
        case TimeoutAction::kSigterm:
          fleet.narrate("worker " + std::to_string(worker.pid) + " cells " +
                        range_text(worker.state) + " exceeded " +
                        std::to_string(
                            fleet.policy.config().worker_timeout_ms) +
                        " ms — sending SIGTERM");
          worker.timed_out = true;
          worker.term_sent_ms = now;
          ::kill(worker.pid, SIGTERM);
          break;
        case TimeoutAction::kSigkill:
          fleet.narrate("worker " + std::to_string(worker.pid) + " cells " +
                        range_text(worker.state) +
                        " ignored SIGTERM for " +
                        std::to_string(fleet.policy.config().kill_grace_ms) +
                        " ms — sending SIGKILL");
          if (!stopping) worker.timed_out = true;
          worker.term_sent_ms = now;  // restart the grace window
          ::kill(worker.pid, SIGKILL);
          break;
      }
    }

    if (stopping) {
      if (fleet.running.empty()) {
        result.status = SuperviseStatus::kInterrupted;
        result.quarantined = fleet.quarantined;
        result.workers_spawned = fleet.workers_spawned;
        fleet.narrate(
            "stopped cleanly; supervisor journal is durable — continue "
            "with `crp_shard supervise --resume` and the same flags");
        return result;
      }
      clock->sleep_ms(options.poll_interval_ms);
      continue;
    }

    // Spawn ready jobs up to the fleet width.
    for (std::size_t i = 0;
         i < fleet.pending.size() && fleet.running.size() < options.workers;) {
      if (fleet.pending[i].ready_at <= now) {
        FleetJob job = fleet.pending[i];
        fleet.pending.erase(fleet.pending.begin() +
                            static_cast<std::ptrdiff_t>(i));
        fleet.spawn(job, now);
      } else {
        ++i;
      }
    }

    if (fleet.running.empty() && fleet.pending.empty()) {
      // Fleet drained: merge what exists, turn the missing ranges
      // into backfill jobs, and finish once only quarantined cells
      // are absent.
      std::vector<std::string> manifest_paths;
      std::error_code ec;
      for (const auto& entry : fs::directory_iterator(fleet.dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 14 &&
            name.compare(name.size() - 14, 14, ".manifest.json") == 0) {
          manifest_paths.push_back(entry.path().string());
        }
      }
      if (ec) {
        throw IoError("cannot scan " + fleet.dir.string() + ": " +
                      ec.message());
      }
      std::sort(manifest_paths.begin(), manifest_paths.end());
      if (manifest_paths.empty()) {
        throw std::runtime_error(
            "crp_shard supervise: the fleet drained without producing a "
            "single shard manifest — every range failed; see the quarantine "
            "journal " + journal_path);
      }
      std::vector<ShardArtifact> artifacts;
      artifacts.reserve(manifest_paths.size());
      for (const std::string& path : manifest_paths) {
        artifacts.push_back(read_shard_artifact_file(path));
      }
      std::ostringstream merged;
      const PartialMergeReport report = merge_shard_csvs_partial(
          merged, std::span<const ShardArtifact>(artifacts));

      const std::vector<std::size_t> quarantined_cells =
          fleet.quarantined_sorted();
      std::vector<MissingCellRange> backfill;
      for (const MissingCellRange& missing : report.missing) {
        const auto runs = subtract_quarantined(
            missing.begin, missing.end,
            std::span<const std::size_t>(quarantined_cells));
        backfill.insert(backfill.end(), runs.begin(), runs.end());
      }

      if (backfill.empty()) {
        atomic_write_file(options.out, merged.str());
        std::ostringstream report_json;
        write_quarantine_report(
            report_json, identity.grid_hash, identity.total_cells,
            std::span<const QuarantinedCell>(fleet.quarantined));
        const std::string report_path = options.out + ".quarantine.json";
        atomic_write_file(report_path, report_json.str());
        fleet.narrate("converged: " + std::to_string(report.present_cells) +
                      "/" + std::to_string(report.total_cells) +
                      " cells merged into " + options.out + ", " +
                      std::to_string(fleet.quarantined.size()) +
                      " quarantined (report " + report_path + ")");
        result.status = SuperviseStatus::kCompleted;
        result.quarantined = fleet.quarantined;
        std::sort(result.quarantined.begin(), result.quarantined.end(),
                  [](const QuarantinedCell& a, const QuarantinedCell& b) {
                    return a.cell_index < b.cell_index;
                  });
        result.workers_spawned = fleet.workers_spawned;
        return result;
      }

      // A backfill round that re-derives exactly the previous round's
      // work-list made no progress — refuse to loop forever.
      if (!last_backfill.empty() && backfill.size() == last_backfill.size() &&
          std::equal(backfill.begin(), backfill.end(), last_backfill.begin(),
                     [](const MissingCellRange& a, const MissingCellRange& b) {
                       return a.begin == b.begin && a.end == b.end;
                     })) {
        throw std::runtime_error(
            "crp_shard supervise: backfill round made no progress (still "
            "missing the same cell ranges) — aborting instead of looping");
      }
      last_backfill = backfill;
      ++result.backfill_rounds;
      std::string ranges;
      for (const MissingCellRange& range : backfill) {
        ranges += " [" + std::to_string(range.begin) + ", " +
                  std::to_string(range.end) + ")";
      }
      fleet.narrate("merge found " + std::to_string(report.present_cells) +
                    "/" + std::to_string(report.total_cells) +
                    " cells present — backfilling" + ranges);
      for (const MissingCellRange& range : backfill) {
        fleet.create_job(range.begin, range.end, now);
      }
      continue;
    }

    clock->sleep_ms(options.poll_interval_ms);
  }
}

}  // namespace crp::harness
