#include "harness/history_tree.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <utility>

#include "harness/exact.h"
#include "harness/parallel.h"

namespace crp::harness {

namespace {

/// A pending history to process: the node for it is created when the
/// frame is popped (and survives the prune check), at which point the
/// parent's child slot is linked.
struct Frame {
  channel::BitString history;
  double reach = 0.0;
  std::int64_t parent = HistoryTreeNode::kNoChild;  ///< local node index
  bool collision_child = false;
};

/// Accumulators of one expansion unit (the pre-split prefix or one
/// subtree shard). solve_at is indexed by absolute round, so shards
/// merge by plain element-wise addition.
struct Shard {
  std::vector<HistoryTreeNode> nodes;
  std::vector<double> solve_at;
  double pruned = 0.0;
  double frontier = 0.0;
  bool truncated = false;
};

/// Depth-first expansion of every frame on `stack` down to `cap`
/// rounds. Frames alive at `cap` are captured into `frontier_out`
/// when provided (the pre-split phase) and otherwise accounted as
/// frontier mass (cap == horizon). The prune check runs at pop time —
/// exactly the order the historical exact_profile_cd enumeration used —
/// so a frame at the cap counts as frontier even when its reach is
/// below the prune threshold.
///
/// `budget` is the frame budget *shared by every shard of one
/// expansion*: whether the whole expansion needs more than max_nodes
/// frames is a deterministic property of (policy, k, options), so the
/// resulting `truncated` flag is scheduling-independent even though
/// which shard trips the budget first is not — a truncated tree's
/// partial contents are never consumed.
void expand_frames(const channel::CollisionPolicy& policy, std::size_t k,
                   std::vector<Frame>& stack, std::size_t cap,
                   const HistoryTreeOptions& options,
                   std::atomic<std::size_t>& budget, Shard& shard,
                   std::vector<Frame>* frontier_out) {
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const std::size_t depth = frame.history.size();
    if (depth >= cap) {
      if (frontier_out != nullptr) {
        frontier_out->push_back(std::move(frame));
      } else {
        shard.frontier += frame.reach;
      }
      continue;
    }
    if (frame.reach < options.prune_below) {
      shard.pruned += frame.reach;
      continue;
    }
    if (budget.fetch_add(1, std::memory_order_relaxed) >=
        options.max_nodes) {
      shard.truncated = true;
      return;
    }

    std::int64_t node_index = HistoryTreeNode::kNoChild;
    const double p = policy.probability(frame.history);
    const auto outcome = round_outcome_probabilities(k, p);
    if (options.store_nodes) {
      node_index = static_cast<std::int64_t>(shard.nodes.size());
      HistoryTreeNode node;
      node.cum_success = outcome.success;
      node.cum_no_collision = outcome.success + outcome.silence;
      shard.nodes.push_back(node);
      if (frame.parent != HistoryTreeNode::kNoChild) {
        auto& parent = shard.nodes[static_cast<std::size_t>(frame.parent)];
        (frame.collision_child ? parent.collision : parent.silence) =
            node_index;
      }
    }
    shard.solve_at[depth] += frame.reach * outcome.success;

    if (outcome.silence > 0.0) {
      Frame child;
      child.history = frame.history;
      child.history.push_back(false);
      child.reach = frame.reach * outcome.silence;
      child.parent = node_index;
      child.collision_child = false;
      stack.push_back(std::move(child));
    }
    if (outcome.collision > 0.0) {
      Frame child;
      child.history = std::move(frame.history);
      child.history.push_back(true);
      child.reach = frame.reach * outcome.collision;
      child.parent = node_index;
      child.collision_child = true;
      stack.push_back(std::move(child));
    }
  }
}

}  // namespace

HistoryTree expand_history_tree(const channel::CollisionPolicy& policy,
                                std::size_t k,
                                const HistoryTreeOptions& options) {
  HistoryTree tree;
  tree.k = k;
  tree.horizon = options.horizon;
  tree.prune_below = options.prune_below;

  // Phase 1: expand the prefix down to the split depth (or the whole
  // horizon when it is at most the split depth), capturing the frames
  // alive at the split as subtree roots.
  const bool split = options.split_depth < options.horizon;
  const std::size_t cap = split ? options.split_depth : options.horizon;
  std::atomic<std::size_t> budget{0};
  Shard prefix;
  prefix.solve_at.assign(options.horizon, 0.0);
  std::vector<Frame> roots;
  {
    std::vector<Frame> stack;
    stack.push_back(Frame{{}, 1.0, HistoryTreeNode::kNoChild, false});
    expand_frames(policy, k, stack, cap, options, budget, prefix,
                  split ? &roots : nullptr);
  }
  tree.nodes = std::move(prefix.nodes);
  tree.solve_at = std::move(prefix.solve_at);
  tree.pruned_mass = prefix.pruned;
  tree.frontier_mass = prefix.frontier;
  tree.truncated = prefix.truncated;

  // Phase 2: expand every captured subtree independently. Each shard
  // owns its accumulators, so workers never share mutable state; the
  // shard partition (one subtree per block) is fixed, making the fan-
  // out invisible to the result.
  std::vector<Shard> shards(roots.size());
  parallel_blocks(
      roots.size(), options.threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          shards[i].solve_at.assign(options.horizon, 0.0);
          std::vector<Frame> stack;
          // The subtree root's parent lives in the prefix node array;
          // relink at merge time instead of sharing it with the shard.
          // roots[i] keeps its history (the merge only reads the
          // parent/collision_child scalars, but moved-from state is
          // not worth reasoning about).
          Frame root;
          root.history = roots[i].history;
          root.reach = roots[i].reach;
          stack.push_back(std::move(root));
          expand_frames(policy, k, stack, options.horizon, options, budget,
                        shards[i], nullptr);
        }
      },
      /*block_size=*/1);

  // Phase 3: merge in subtree order — index offsets for the node
  // arrays, element-wise sums for the masses. The order is a function
  // of the phase-1 capture order only, so the merged tree is identical
  // at every thread count.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    Shard& shard = shards[i];
    const std::int64_t base = static_cast<std::int64_t>(tree.nodes.size());
    if (options.store_nodes && !shard.nodes.empty()) {
      for (auto& node : shard.nodes) {
        if (node.silence != HistoryTreeNode::kNoChild) node.silence += base;
        if (node.collision != HistoryTreeNode::kNoChild) {
          node.collision += base;
        }
      }
      // The shard root (local index 0) becomes the captured frame's
      // parent's child; a pruned shard root leaves the slot kNoChild.
      const Frame& root = roots[i];
      if (root.parent != HistoryTreeNode::kNoChild) {
        auto& parent = tree.nodes[static_cast<std::size_t>(root.parent)];
        (root.collision_child ? parent.collision : parent.silence) = base;
      }
      tree.nodes.insert(tree.nodes.end(), shard.nodes.begin(),
                        shard.nodes.end());
    }
    for (std::size_t r = 0; r < options.horizon; ++r) {
      tree.solve_at[r] += shard.solve_at[r];
    }
    tree.pruned_mass += shard.pruned;
    tree.frontier_mass += shard.frontier;
    tree.truncated = tree.truncated || shard.truncated;
  }
  if (tree.nodes.size() > options.max_nodes) tree.truncated = true;

  tree.solve_cdf.resize(options.horizon);
  double cumulative = 0.0;
  for (std::size_t r = 0; r < options.horizon; ++r) {
    cumulative += tree.solve_at[r];
    tree.solve_cdf[r] = cumulative;
  }
  tree.padded_solve_cdf.assign(std::bit_ceil(options.horizon + 1),
                               std::numeric_limits<double>::infinity());
  tree.padded_solve_cdf[0] = 0.0;  // sentinel <= every u in [0, 1)
  std::copy(tree.solve_cdf.begin(), tree.solve_cdf.end(),
            tree.padded_solve_cdf.begin() + 1);
  return tree;
}

}  // namespace crp::harness
