// Crash-safe checkpoint/resume for sweep shards: a durable per-cell
// progress journal in front of the deterministic shard pipeline
// (harness/shard.h), so a worker killed at any byte boundary — power
// loss, kill -9, disk full — loses at most the cell it was executing
// and can never leave a silently corrupt artifact.
//
// The journal is append-only. It opens with a header block recording
// the shard's full identity (grid fingerprint, master seed, trials,
// engine names, cell range, the sweep CSV header) and then carries one
// record per completed cell: the cell's global index, its derived
// seed, and its CSV row bytes — exactly the bytes write_sweep_csv
// would emit — each framed with a length prefix, an FNV-1a checksum,
// and an explicit end-of-record marker. The header block is created
// via atomic temp-file + rename + fsync and every record append is
// fsync'd, so after a crash the file is either a valid prefix of
// records or a valid prefix plus a detectably-torn tail; the reader
// distinguishes the two and *rejects* (naming file and byte offset)
// anything that is neither — a complete record with a wrong checksum
// is corruption, not a crash, and must never be replayed.
//
// Resume is bit-exact by construction: PR 5's determinism contract
// pins every cell's seed to its global grid index, so replaying
// journaled rows verbatim and executing only the remainder yields a
// CSV byte-identical to an uninterrupted run
// (tests/fault_injection_test.cpp proves this at every kill point).
//
/// Ownership: CheckpointJournal and CheckpointRunResult own plain
/// data. run_sweep_shard_checkpointed borrows its cells exactly as
/// run_sweep_shard does.
///
/// Thread-safety: the runner executes cells sequentially (each cell
/// parallelizes internally via run_sweep); a journal file must only
/// ever be appended to by one process at a time.
///
/// Determinism: the 5th leg of the determinism contract
/// (docs/ARCHITECTURE.md): journal replay is byte-identical to live
/// execution, so any interleaving of crashes and resumes converges to
/// the same artifact bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "harness/shard.h"

namespace crp::harness {

/// An I/O failure (open/write/fsync/rename) in the checkpoint or
/// artifact layer. Distinct from std::invalid_argument (validation:
/// corrupt or mismatched inputs) so callers — crp_shard's exit-code
/// taxonomy — can map the two to different retry policies.
struct IoError : std::runtime_error {
  explicit IoError(const std::string& message) : std::runtime_error(message) {}
};

/// Writes `contents` under `path` atomically: temp file in the same
/// directory, write, fsync, rename over the final name, fsync the
/// directory. A crash or disk-full at any point leaves either the old
/// file (or nothing) or the complete new file under `path` — never a
/// half-written artifact under the final name. Creates parent
/// directories as needed, and fsyncs the parent of every directory it
/// creates: a new directory is itself just an entry in *its* parent,
/// so without the chain fsync a power loss right after the rename
/// could forget the whole directory tree even though the file's own
/// directory entry was flushed. Throws IoError.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Durability seam for journal appends. The production sink is an
/// O_APPEND file descriptor with fsync; tests inject sinks that fail,
/// short-write, or truncate at the Nth append to prove every recovery
/// path (tests/fault_injection_test.cpp).
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  /// Appends bytes at the end of the journal. Throws IoError.
  virtual void append(std::string_view bytes) = 0;
  /// Durably flushes everything appended so far (fsync). Throws IoError.
  virtual void sync() = 0;
};

/// The production sink: append-only writes + fsync on `sync()`. The
/// file must already exist (the journal header is created atomically
/// by atomic_write_file first).
std::unique_ptr<CheckpointSink> open_file_checkpoint_sink(
    const std::string& path);

/// Factory seam: given the journal path, an opened append sink.
using CheckpointSinkFactory =
    std::function<std::unique_ptr<CheckpointSink>(const std::string& path)>;

/// One journaled cell: its global grid index, the derived seed it ran
/// under, and its CSV row bytes (no trailing newline; may contain
/// embedded newlines inside quoted fields).
struct CheckpointRecord {
  std::size_t cell_index = 0;
  std::uint64_t cell_seed = 0;
  std::string row;
};

/// A parsed journal: the header identity plus the valid prefix of
/// records. `torn_bytes` is set when the file ends in a partially
/// written record (the crash case) — the bytes from `valid_bytes` to
/// EOF are the torn tail and must be truncated before appending.
struct CheckpointJournal {
  std::uint64_t grid_hash = 0;
  std::uint64_t master_seed = 0;
  std::size_t trials = 0;
  std::size_t total_cells = 0;
  std::size_t cell_begin = 0;
  std::size_t cell_end = 0;
  std::string engine;
  std::string cd_engine;
  std::string csv_header;
  std::vector<CheckpointRecord> records;
  /// Byte length of the valid prefix (header + complete records).
  std::size_t valid_bytes = 0;
  /// Bytes of detectably-torn tail after the valid prefix (0 = clean).
  std::size_t torn_bytes = 0;
};

/// Serialized journal pieces, exposed so tests (and external tools)
/// can compose or corrupt journals deliberately. The header block
/// embeds the sweep CSV header line; the record embeds the row bytes.
/// Both are self-framing: length prefix + FNV-1a checksum + ".\n"
/// end marker.
std::string format_checkpoint_header(const ShardManifest& identity,
                                     const std::string& csv_header);
std::string format_checkpoint_record(const CheckpointRecord& record);

/// Parses a journal file. The valid prefix is returned; a torn tail
/// (file ends inside a record) is reported via `torn_bytes`, not an
/// error. Everything else — a malformed or checksum-mismatched
/// complete record, a duplicate or out-of-range cell index, any
/// header damage — throws std::invalid_argument naming `path` and the
/// byte offset of the offending record. Throws IoError when the file
/// cannot be read.
CheckpointJournal read_checkpoint_journal(const std::string& path);

/// Why run_sweep_shard_checkpointed returned.
enum class CheckpointRunStatus {
  kCompleted,    ///< every cell in the range is journaled; csv is final
  kInterrupted,  ///< stopped between cells (signal / cell budget);
                 ///< journal holds the completed prefix, resume later
};

struct CheckpointRunOptions {
  /// Journal file path (required).
  std::string journal_path;
  /// false: the journal must not exist yet (fresh run). true: it must
  /// exist and validate against the plan (resume).
  bool resume = false;
  /// Polled between cells; return true to stop cleanly after the
  /// in-flight cell (the SIGINT/SIGTERM hook — the handler sets a
  /// flag, the runner finishes the cell, flushes, and returns
  /// kInterrupted).
  std::function<bool()> interrupted;
  /// Stop after executing this many cells in this session (0 =
  /// unlimited). Scheduler aid: bounded work quanta per invocation.
  std::size_t max_cells = 0;
  /// Sink factory; null = open_file_checkpoint_sink.
  CheckpointSinkFactory sink_factory;
  /// Fault-injection seams (null = no-op): called with the *global*
  /// grid index of each freshly executed cell — on_cell_start just
  /// before the cell runs, on_cell_executed right after its record is
  /// durably appended. crp_shard wires these to the CRP_FAULT_* env
  /// vars so supervisor tests can drive real subprocess failures
  /// deterministically; replayed cells never trigger them.
  std::function<void(std::size_t)> on_cell_start;
  std::function<void(std::size_t)> on_cell_executed;
};

/// The outcome of a checkpointed shard session.
struct CheckpointRunResult {
  CheckpointRunStatus status = CheckpointRunStatus::kCompleted;
  /// The shard's manifest (csv field left empty for the caller), with
  /// cell_seeds covering the full range — valid for both outcomes.
  ShardManifest manifest;
  /// The complete artifact CSV (header + rows in cell order), only
  /// when status == kCompleted; empty otherwise.
  std::string csv;
  std::size_t replayed_cells = 0;  ///< taken verbatim from the journal
  std::size_t executed_cells = 0;  ///< run live this session
  std::size_t remaining_cells = 0;  ///< still unjournaled (0 iff completed)
};

/// run_sweep_shard with a durable journal: plans the shard, validates
/// or creates the journal, replays journaled cells verbatim, executes
/// the remainder cell by cell (appending + fsyncing one record per
/// completed cell), and assembles the artifact CSV. The result CSV is
/// byte-identical to write_sweep_csv over run_sweep_shard(...).results
/// regardless of how many crash/resume cycles preceded it.
///
/// Resume validation: journal header vs the plan (grid fingerprint,
/// master seed, trials, engine names, range, CSV header) and every
/// record's seed vs the seed derived from its global index; a torn
/// tail is truncated before appending. Mismatches throw
/// std::invalid_argument; I/O failures throw IoError.
CheckpointRunResult run_sweep_shard_checkpointed(
    std::span<const SweepCell> cells, const ShardOptions& shard_options,
    const SweepOptions& sweep_options, const CheckpointRunOptions& options);

}  // namespace crp::harness
