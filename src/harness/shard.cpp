#include "harness/shard.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "channel/protocol.h"
#include "harness/checkpoint.h"
#include "harness/csv.h"
#include "harness/hash.h"
#include "info/distribution.h"

namespace crp::harness {

namespace {

std::string hex(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

[[noreturn]] void merge_error(const std::string& message) {
  throw std::invalid_argument("shard merge: " + message);
}

/// Shared manifest-set validation for merge_shards/merge_shard_csvs:
/// identical grid identity everywhere, internally consistent ranges,
/// and ranges tiling [0, total_cells). Returns the shard indices in
/// cell order. When `missing` is non-null the tiling requirement is
/// relaxed: uncovered ranges are appended to it instead of thrown
/// (the --allow-partial merge); overlaps always throw.
std::vector<std::size_t> validated_cell_order(
    const std::vector<const ShardManifest*>& manifests,
    std::vector<MissingCellRange>* missing = nullptr) {
  if (manifests.empty()) merge_error("no shards given");
  const ShardManifest& ref = *manifests.front();
  for (std::size_t s = 0; s < manifests.size(); ++s) {
    const ShardManifest& m = *manifests[s];
    if (m.grid_hash != ref.grid_hash) {
      merge_error("shard " + std::to_string(s) + ": grid hash " +
                  hex(m.grid_hash) + " != " + hex(ref.grid_hash) +
                  " — the shards were produced from different grids");
    }
    if (m.master_seed != ref.master_seed) {
      merge_error("shard " + std::to_string(s) + ": master seed " +
                  hex(m.master_seed) + " != " + hex(ref.master_seed) +
                  " — re-run every shard under one master seed");
    }
    if (m.trials != ref.trials) {
      merge_error("shard " + std::to_string(s) + ": trials " +
                  std::to_string(m.trials) + " != " +
                  std::to_string(ref.trials) +
                  " — re-run every shard with one trial count");
    }
    if (m.engine != ref.engine || m.cd_engine != ref.cd_engine) {
      merge_error("shard " + std::to_string(s) + ": engine configuration (" +
                  m.engine + ", " + m.cd_engine + ") != (" + ref.engine +
                  ", " + ref.cd_engine +
                  ") — engines agree only up to Monte-Carlo noise; re-run "
                  "every shard under one configuration");
    }
    if (m.total_cells != ref.total_cells) {
      merge_error("shard " + std::to_string(s) + ": total cell count " +
                  std::to_string(m.total_cells) + " != " +
                  std::to_string(ref.total_cells));
    }
    if (m.cell_begin > m.cell_end || m.cell_end > m.total_cells) {
      merge_error("shard " + std::to_string(s) + ": cell range [" +
                  std::to_string(m.cell_begin) + ", " +
                  std::to_string(m.cell_end) + ") is not within [0, " +
                  std::to_string(m.total_cells) + ")");
    }
    if (m.cell_seeds.size() != m.cell_end - m.cell_begin) {
      merge_error("shard " + std::to_string(s) + ": manifest records " +
                  std::to_string(m.cell_seeds.size()) +
                  " cell seeds for a range of " +
                  std::to_string(m.cell_end - m.cell_begin) + " cells");
    }
  }
  std::vector<std::size_t> order(manifests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Tie-break equal begins by end so an *empty* shard ([x, x) — legal
  // when shard_count exceeds the cell count) sorts before the
  // non-empty shard starting at x; begin-only ordering could place it
  // after and misreport the valid set as overlapping.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return manifests[a]->cell_begin != manifests[b]->cell_begin
               ? manifests[a]->cell_begin < manifests[b]->cell_begin
               : manifests[a]->cell_end < manifests[b]->cell_end;
  });
  std::size_t expected = 0;
  for (const std::size_t s : order) {
    const ShardManifest& m = *manifests[s];
    if (m.cell_begin > expected) {
      if (missing == nullptr) {
        merge_error("gap: cells [" + std::to_string(expected) + ", " +
                    std::to_string(m.cell_begin) +
                    ") are covered by no shard — a shard is missing");
      }
      missing->push_back({expected, m.cell_begin});
    }
    if (m.cell_begin < expected) {
      merge_error("overlap: shard " + std::to_string(s) + " starts at cell " +
                  std::to_string(m.cell_begin) + " but cells up to " +
                  std::to_string(expected) +
                  " are already covered by another shard");
    }
    expected = std::max(expected, m.cell_end);
  }
  if (expected != ref.total_cells) {
    if (missing == nullptr) {
      merge_error("gap: cells [" + std::to_string(expected) + ", " +
                  std::to_string(ref.total_cells) +
                  ") are covered by no shard — a shard is missing");
    }
    missing->push_back({expected, ref.total_cells});
  }
  return order;
}

}  // namespace

namespace {

/// Behavioral probe of a no-CD schedule: its cycling hint and its
/// first 64 round probabilities. Two schedules that differ only in
/// parameters (e.g. decay over different network sizes) share a name
/// but diverge here, so the fingerprint sees the change.
std::uint64_t schedule_probe(const channel::ProbabilitySchedule& schedule) {
  Fnv1a h;
  h.u64(schedule.period());
  for (std::size_t round = 0; round < 64; ++round) {
    h.f64(schedule.probability(round));
  }
  return h.state;
}

/// Behavioral probe of a CD policy: its probabilities on a fixed,
/// deterministic family of short collision histories (all-collision,
/// all-silence, alternating, at depths 0..7) — enough to separate
/// same-named policies with different parameters.
std::uint64_t policy_probe(const channel::CollisionPolicy& policy) {
  Fnv1a h;
  for (std::size_t depth = 0; depth <= 7; ++depth) {
    for (int pattern = 0; pattern < 3; ++pattern) {
      channel::BitString history(depth);
      for (std::size_t r = 0; r < depth; ++r) {
        history[r] = pattern == 0 || (pattern == 2 && r % 2 == 0);
      }
      h.f64(policy.probability(history));
    }
  }
  return h.state;
}

}  // namespace

std::uint64_t grid_fingerprint(std::span<const SweepCell> cells) {
  Fnv1a h;
  h.u64(cells.size());
  // Contents hash once per distinct object; grids share schedules,
  // policies, and distributions across many cells.
  std::unordered_map<const info::SizeDistribution*, std::uint64_t> memo;
  std::unordered_map<const void*, std::uint64_t> algo_memo;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    h.str(cell.algorithm.name);
    if (cell.algorithm.schedule != nullptr) {
      auto [it, inserted] = algo_memo.try_emplace(cell.algorithm.schedule, 0);
      if (inserted) it->second = schedule_probe(*cell.algorithm.schedule);
      h.u64(1);
      h.u64(it->second);
    } else if (cell.algorithm.policy != nullptr) {
      auto [it, inserted] = algo_memo.try_emplace(cell.algorithm.policy, 0);
      if (inserted) it->second = policy_probe(*cell.algorithm.policy);
      h.u64(2);
      h.u64(it->second);
    } else {
      h.u64(0);
    }
    h.str(cell.sizes.name);
    if (cell.sizes.distribution != nullptr) {
      auto [it, inserted] = memo.try_emplace(cell.sizes.distribution, 0);
      if (inserted) {
        // The compact support view, not the dense n+1 vector: the
        // paper's lifted distributions have ~log n support points in
        // a 2^16-wide table, and (n, support sizes, support masses)
        // determines the dense vector exactly.
        const info::SizeDistribution& dist = *cell.sizes.distribution;
        Fnv1a d;
        d.u64(dist.n());
        for (const std::uint32_t k : dist.support_sizes()) {
          d.u64(k);
          d.f64(dist.prob(k));
        }
        it->second = d.state;
      }
      h.u64(3);
      h.u64(it->second);
    } else {
      h.u64(4);
      h.u64(cell.sizes.fixed_k);
    }
    h.u64(cell.max_rounds);
    h.u64(cell.trials);
    h.u64(cell.seed_stream == kSeedStreamFromIndex ? i : cell.seed_stream);
  }
  return h.state;
}

ShardPlan plan_shards(std::span<const SweepCell> cells,
                      const ShardOptions& options) {
  if (cells.empty()) {
    throw std::invalid_argument("plan_shards: cannot shard an empty grid");
  }
  if (options.shard_count == 0) {
    throw std::invalid_argument("plan_shards: shard_count must be >= 1");
  }
  const bool begin_set = options.cell_begin != ShardOptions::kAutoRange;
  const bool end_set = options.cell_end != ShardOptions::kAutoRange;
  std::size_t begin = 0;
  std::size_t end = 0;
  if (begin_set || end_set) {
    if (!begin_set || !end_set) {
      throw std::invalid_argument(
          "plan_shards: cell_begin and cell_end must be set together");
    }
    if (options.cell_begin > options.cell_end ||
        options.cell_end > cells.size()) {
      throw std::invalid_argument(
          "plan_shards: explicit cell range [" +
          std::to_string(options.cell_begin) + ", " +
          std::to_string(options.cell_end) + ") is not within [0, " +
          std::to_string(cells.size()) + ")");
    }
    begin = options.cell_begin;
    end = options.cell_end;
  } else {
    if (options.shard_index >= options.shard_count) {
      throw std::invalid_argument(
          "plan_shards: shard_index " + std::to_string(options.shard_index) +
          " must be < shard_count " + std::to_string(options.shard_count));
    }
    // Balanced contiguous partition: disjoint, covering, and stable —
    // a pure function of (total cells, shard_count, shard_index).
    begin = options.shard_index * cells.size() / options.shard_count;
    end = (options.shard_index + 1) * cells.size() / options.shard_count;
  }
  ShardPlan plan{.shard_index = options.shard_index,
                 .shard_count = options.shard_count,
                 .cell_begin = begin,
                 .cell_end = end,
                 .total_cells = cells.size(),
                 .grid_hash = grid_fingerprint(cells),
                 .cells = {}};
  plan.cells.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    SweepCell cell = cells[i];
    // The determinism keystone: a sharded cell's seed stream is its
    // *global* grid index (or its explicit pin), never its position
    // within the shard — so every shard reproduces the full-grid
    // seeds bit for bit.
    cell.seed_stream = cell.seed_stream == kSeedStreamFromIndex
                           ? i
                           : pinned_seed_stream(cell.seed_stream);
    plan.cells.push_back(std::move(cell));
  }
  return plan;
}

ShardPlan plan_shards(const SweepGrid& grid, const ShardOptions& options) {
  const auto cells = grid.cells();
  return plan_shards(std::span<const SweepCell>(cells), options);
}

std::string engine_name(NoCdEngine engine) {
  switch (engine) {
    case NoCdEngine::kBinomial: return "binomial";
    case NoCdEngine::kPerPlayer: return "per-player";
    case NoCdEngine::kBatch: return "batch";
  }
  throw std::invalid_argument("unknown NoCdEngine");
}

std::string engine_name(CdEngine engine) {
  switch (engine) {
    case CdEngine::kSimulate: return "simulate";
    case CdEngine::kHistoryTree: return "history-tree";
  }
  throw std::invalid_argument("unknown CdEngine");
}

ShardRun run_sweep_shard(std::span<const SweepCell> cells,
                         const ShardOptions& shard_options,
                         const SweepOptions& options) {
  ShardPlan plan = plan_shards(cells, shard_options);
  ShardRun run;
  run.results =
      run_sweep(std::span<const SweepCell>(plan.cells), options);
  run.manifest = ShardManifest{.csv = {},
                               .engine = engine_name(options.engine),
                               .cd_engine = engine_name(options.cd_engine),
                               .grid_hash = plan.grid_hash,
                               .master_seed = options.seed,
                               .trials = options.trials,
                               .total_cells = plan.total_cells,
                               .shard_index = plan.shard_index,
                               .shard_count = plan.shard_count,
                               .cell_begin = plan.cell_begin,
                               .cell_end = plan.cell_end,
                               .cell_seeds = {}};
  run.manifest.cell_seeds.reserve(run.results.size());
  for (std::size_t j = 0; j < run.results.size(); ++j) {
    run.results[j].cell_index = plan.cell_begin + j;
    run.manifest.cell_seeds.push_back(run.results[j].cell_seed);
  }
  return run;
}

ShardRun run_sweep_shard(const SweepGrid& grid,
                         const ShardOptions& shard_options,
                         const SweepOptions& options) {
  const auto cells = grid.cells();
  return run_sweep_shard(std::span<const SweepCell>(cells), shard_options,
                         options);
}

std::vector<SweepResult> merge_shards(std::span<const ShardRun> shards) {
  std::vector<const ShardManifest*> manifests;
  manifests.reserve(shards.size());
  for (const ShardRun& shard : shards) manifests.push_back(&shard.manifest);
  const auto order = validated_cell_order(manifests);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardManifest& m = shards[s].manifest;
    const auto& results = shards[s].results;
    if (results.size() != m.cell_end - m.cell_begin) {
      merge_error("shard " + std::to_string(s) + ": " +
                  std::to_string(results.size()) +
                  " results for a manifest range of " +
                  std::to_string(m.cell_end - m.cell_begin) + " cells");
    }
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (results[j].cell_index != m.cell_begin + j) {
        merge_error("shard " + std::to_string(s) + ": result " +
                    std::to_string(j) + " carries cell index " +
                    std::to_string(results[j].cell_index) + ", expected " +
                    std::to_string(m.cell_begin + j));
      }
      if (results[j].cell_seed != m.cell_seeds[j]) {
        merge_error("shard " + std::to_string(s) + ": cell " +
                    std::to_string(m.cell_begin + j) + " ran under seed " +
                    hex(results[j].cell_seed) + " but the manifest records " +
                    hex(m.cell_seeds[j]) +
                    " — the shard partition changed a cell seed");
      }
    }
  }
  std::vector<SweepResult> merged;
  merged.reserve(manifests.front()->total_cells);
  for (const std::size_t s : order) {
    merged.insert(merged.end(), shards[s].results.begin(),
                  shards[s].results.end());
  }
  return merged;
}

// ---- manifest JSON ----

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

constexpr const char* kManifestFormat = "crp-shard-manifest-v1";

/// A strict parser for exactly the manifest schema: one flat object
/// whose values are strings, plain non-negative integers, or an array
/// of hex strings. Everything else — signs, decimal points, exponents,
/// bare words such as nan/inf/null, duplicate or unknown keys — is
/// rejected with the offending field named, so a corrupted manifest
/// fails the merge instead of poisoning it.
class ManifestParser {
 public:
  explicit ManifestParser(std::string text) : text_(std::move(text)) {}

  ShardManifest parse() {
    ShardManifest manifest;
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') break;
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string key = parse_string("field name");
      skip_ws();
      expect(':');
      if (!seen_.insert(key).second) {
        fail("duplicate manifest field \"" + key + "\"");
      }
      if (key == "format") {
        const std::string format = parse_string(key);
        if (format != kManifestFormat) {
          fail("unsupported manifest format \"" + format + "\" (expected \"" +
               kManifestFormat + "\")");
        }
      } else if (key == "csv") {
        manifest.csv = parse_string(key);
      } else if (key == "engine") {
        manifest.engine = parse_string(key);
      } else if (key == "cd_engine") {
        manifest.cd_engine = parse_string(key);
      } else if (key == "grid_hash") {
        manifest.grid_hash = parse_hex_u64(key);
      } else if (key == "master_seed") {
        manifest.master_seed = parse_hex_u64(key);
      } else if (key == "trials") {
        manifest.trials = parse_uint(key);
      } else if (key == "total_cells") {
        manifest.total_cells = parse_uint(key);
      } else if (key == "shard_index") {
        manifest.shard_index = parse_uint(key);
      } else if (key == "shard_count") {
        manifest.shard_count = parse_uint(key);
      } else if (key == "cell_begin") {
        manifest.cell_begin = parse_uint(key);
      } else if (key == "cell_end") {
        manifest.cell_end = parse_uint(key);
      } else if (key == "cell_seeds") {
        skip_ws();
        expect('[');
        skip_ws();
        if (peek() != ']') {
          while (true) {
            manifest.cell_seeds.push_back(parse_hex_u64(key));
            skip_ws();
            if (peek() == ']') break;
            expect(',');
          }
        }
        expect(']');
      } else {
        fail("unknown manifest field \"" + key + "\"");
      }
      skip_ws();
    }
    expect('}');
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after manifest object");
    for (const char* required :
         {"format", "engine", "cd_engine", "grid_hash", "master_seed",
          "trials", "total_cells", "shard_index", "shard_count",
          "cell_begin", "cell_end", "cell_seeds"}) {
      if (seen_.find(required) == seen_.end()) {
        fail("missing manifest field \"" + std::string(required) + "\"");
      }
    }
    return manifest;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("shard manifest: " + message);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) {
      std::string message = "expected '";
      message.push_back(c);
      message += "', got ";
      if (pos_ < text_.size()) {
        message.push_back('\'');
        message.push_back(text_[pos_]);
        message.push_back('\'');
      } else {
        message += "end of input";
      }
      fail(message);
    }
    ++pos_;
  }

  std::string parse_string(const std::string& what) {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // json_escape emits \u00xx for control characters; accept
            // any code point that fits one byte, reject the rest (the
            // manifest writer never produces them).
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape in " + what);
            }
            unsigned code = 0;
            for (int d = 0; d < 4; ++d) {
              const char hc = text_[pos_ + d];
              if (!std::isxdigit(static_cast<unsigned char>(hc))) {
                fail("malformed \\u escape in " + what);
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         hc <= '9'   ? hc - '0'
                         : hc <= 'F' ? hc - 'A' + 10
                                     : hc - 'a' + 10);
            }
            if (code > 0xFF) {
              fail("\\u escape beyond one byte in " + what);
            }
            pos_ += 4;
            c = static_cast<char>(code);
            break;
          }
          default:
            fail("unsupported escape \\" + std::string(1, esc) + " in " +
                 what);
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string in " + what);
    ++pos_;  // closing quote
    return out;
  }

  /// Plain non-negative decimal integer. Anything else strtod would
  /// happily read — "nan", "inf", "-1", "1.5", "1e3" — is malformed
  /// here (the non-finite guard of the manifest reader, via the same
  /// parse_csv_unsigned the shard CSV reader uses).
  std::uint64_t parse_uint(const std::string& key) {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() && text_[end] != ',' && text_[end] != '}' &&
           text_[end] != ']' &&
           !std::isspace(static_cast<unsigned char>(text_[end]))) {
      ++end;
    }
    const std::string token = text_.substr(pos_, end - pos_);
    const auto value = parse_csv_unsigned(token);
    if (!value) {
      fail("field \"" + key + "\" must be a plain non-negative 64-bit "
           "integer, got \"" + token + "\"");
    }
    pos_ = end;
    return *value;
  }

  /// A seed/hash value: a string "0x" + 1..16 hex digits.
  std::uint64_t parse_hex_u64(const std::string& key) {
    skip_ws();
    const std::string raw = parse_string(key);
    if (raw.size() < 3 || raw.size() > 18 || raw[0] != '0' || raw[1] != 'x') {
      fail("field \"" + key + "\" must be an \"0x...\" hex string, got \"" +
           raw + "\"");
    }
    std::uint64_t value = 0;
    for (std::size_t i = 2; i < raw.size(); ++i) {
      const char c = raw[i];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        fail("field \"" + key + "\" has a non-hex digit in \"" + raw + "\"");
      }
      value = value * 16 + static_cast<std::uint64_t>(digit);
    }
    return value;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::unordered_set<std::string> seen_;
};

}  // namespace

void write_shard_manifest(std::ostream& out, const ShardManifest& manifest) {
  out << "{\n"
      << "  \"format\": \"" << kManifestFormat << "\",\n"
      << "  \"csv\": \"" << json_escape(manifest.csv) << "\",\n"
      << "  \"engine\": \"" << json_escape(manifest.engine) << "\",\n"
      << "  \"cd_engine\": \"" << json_escape(manifest.cd_engine) << "\",\n"
      << "  \"grid_hash\": \"" << hex(manifest.grid_hash) << "\",\n"
      << "  \"master_seed\": \"" << hex(manifest.master_seed) << "\",\n"
      << "  \"trials\": " << manifest.trials << ",\n"
      << "  \"total_cells\": " << manifest.total_cells << ",\n"
      << "  \"shard_index\": " << manifest.shard_index << ",\n"
      << "  \"shard_count\": " << manifest.shard_count << ",\n"
      << "  \"cell_begin\": " << manifest.cell_begin << ",\n"
      << "  \"cell_end\": " << manifest.cell_end << ",\n"
      << "  \"cell_seeds\": [";
  for (std::size_t i = 0; i < manifest.cell_seeds.size(); ++i) {
    if (i > 0) out << ", ";
    out << '"' << hex(manifest.cell_seeds[i]) << '"';
  }
  out << "]\n}\n";
}

ShardManifest read_shard_manifest(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ManifestParser(buffer.str()).parse();
}

// ---- shard CSV re-reading and CSV-level merge ----

namespace {

[[noreturn]] void csv_error(std::size_t line_number,
                            const std::string& message) {
  throw std::invalid_argument("shard CSV line " +
                              std::to_string(line_number) + ": " + message);
}

std::uint64_t parse_csv_u64(const std::string& field, std::size_t line_number,
                            const std::string& column) {
  const auto value = parse_csv_unsigned(field);
  if (!value) {
    csv_error(line_number, column + " must be a plain non-negative 64-bit "
                                    "integer, got \"" + field + "\"");
  }
  return *value;
}

void check_csv_finite(const std::string& field, std::size_t line_number,
                      const std::string& column) {
  if (!parse_csv_finite(field)) {
    csv_error(line_number, "non-finite or non-numeric " + column + " \"" +
                               field + "\"");
  }
}

/// Reads one logical CSV record: a physical line, extended across
/// further lines while a quoted field is still open (an RFC-4180
/// quoted field may contain raw newlines — csv_quote emits them for
/// newline-bearing names). Open-quote detection is the parity of the
/// record's double quotes: a complete record contains an even number
/// (opening/closing pairs plus doubled escapes). Returns false at end
/// of input; `lines_read` reports physical lines consumed.
bool read_csv_record(std::istream& in, std::string& record,
                     std::size_t& lines_read) {
  lines_read = 0;
  if (!std::getline(in, record)) return false;
  lines_read = 1;
  auto quote_count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '"');
  };
  auto quotes = quote_count(record);
  std::string more;
  while (quotes % 2 == 1 && std::getline(in, more)) {
    record += '\n';
    record += more;
    ++lines_read;
    quotes += quote_count(more);
  }
  return true;
}

}  // namespace

ShardCsv read_shard_csv(std::istream& in) {
  ShardCsv csv;
  if (!std::getline(in, csv.header)) {
    throw std::invalid_argument("shard CSV: empty input (no header row)");
  }
  const auto header = split_csv_row(csv.header);
  std::size_t seed_column = header.size();
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == "cell_seed") seed_column = c;
  }
  if (seed_column == header.size()) {
    throw std::invalid_argument(
        "shard CSV: header lacks a cell_seed column: " + csv.header);
  }
  // Numeric-column guard, keyed by header name so the check follows
  // any future column reordering.
  const auto is_uint_column = [](const std::string& name) {
    return name == "budget" || name == "trials" || name == "cell_seed";
  };
  const auto is_double_column = [](const std::string& name) {
    return name == "mean" || name == "ci95" || name == "p50" ||
           name == "p90" || name == "p99" || name == "success_rate";
  };
  std::string line;
  std::size_t line_number = 1;
  std::size_t lines_read = 0;
  while (read_csv_record(in, line, lines_read)) {
    line_number += lines_read;
    if (line.empty()) continue;
    const auto fields = split_csv_row(line);
    if (fields.size() != header.size()) {
      csv_error(line_number,
                "expected " + std::to_string(header.size()) +
                    " fields, got " + std::to_string(fields.size()));
    }
    for (std::size_t c = 0; c < fields.size(); ++c) {
      if (is_uint_column(header[c])) {
        (void)parse_csv_u64(fields[c], line_number, header[c]);
      } else if (is_double_column(header[c])) {
        check_csv_finite(fields[c], line_number, header[c]);
      }
    }
    csv.row_seeds.push_back(
        parse_csv_u64(fields[seed_column], line_number, "cell_seed"));
    csv.rows.push_back(line);
  }
  return csv;
}

namespace {

/// Per-shard CSV validation shared by the strict and gap-tolerant
/// merges: header agreement, manifest-range row counts, and row-seed /
/// manifest-seed agreement.
void validate_shard_csvs(std::span<const ShardArtifact> shards) {
  const std::string& header = shards.front().csv.header;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardManifest& m = shards[s].manifest;
    const ShardCsv& csv = shards[s].csv;
    if (csv.header != header) {
      merge_error("shard " + std::to_string(s) + ": CSV header \"" +
                  csv.header + "\" differs from shard 0's \"" + header +
                  "\"");
    }
    if (csv.rows.size() != m.cell_end - m.cell_begin) {
      merge_error("shard " + std::to_string(s) + ": CSV has " +
                  std::to_string(csv.rows.size()) +
                  " rows for a manifest range of " +
                  std::to_string(m.cell_end - m.cell_begin) + " cells");
    }
    for (std::size_t j = 0; j < csv.row_seeds.size(); ++j) {
      if (csv.row_seeds[j] != m.cell_seeds[j]) {
        merge_error("shard " + std::to_string(s) + ": CSV row for cell " +
                    std::to_string(m.cell_begin + j) + " carries cell_seed " +
                    hex(csv.row_seeds[j]) + " but the manifest records " +
                    hex(m.cell_seeds[j]));
      }
    }
  }
}

/// Row emission shared by both merges: one header, then every present
/// row in cell order, verbatim.
void write_merged_rows(std::ostream& out,
                       std::span<const ShardArtifact> shards,
                       const std::vector<std::size_t>& order) {
  out << shards.front().csv.header << '\n';
  for (const std::size_t s : order) {
    for (const std::string& row : shards[s].csv.rows) out << row << '\n';
  }
}

}  // namespace

ShardArtifact read_shard_artifact_file(const std::string& manifest_path) {
  std::ifstream manifest_in(manifest_path);
  if (!manifest_in) {
    throw IoError("cannot open manifest " + manifest_path);
  }
  ShardArtifact shard;
  try {
    shard.manifest = read_shard_manifest(manifest_in);
  } catch (const std::invalid_argument& error) {
    // Corruption errors must name the file, not just the field.
    throw std::invalid_argument(manifest_path + ": " + error.what());
  }
  if (shard.manifest.csv.empty()) {
    throw std::invalid_argument("manifest " + manifest_path +
                                " names no CSV artifact");
  }
  const auto csv_path =
      std::filesystem::path(manifest_path).parent_path() / shard.manifest.csv;
  std::ifstream csv_in(csv_path);
  if (!csv_in) {
    throw IoError("cannot open shard CSV " + csv_path.string() +
                  " (named by " + manifest_path + ")");
  }
  try {
    shard.csv = read_shard_csv(csv_in);
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(csv_path.string() + ": " + error.what());
  }
  return shard;
}

void merge_shard_csvs(std::ostream& out,
                      std::span<const ShardArtifact> shards) {
  std::vector<const ShardManifest*> manifests;
  manifests.reserve(shards.size());
  for (const ShardArtifact& shard : shards) {
    manifests.push_back(&shard.manifest);
  }
  const auto order = validated_cell_order(manifests);
  validate_shard_csvs(shards);
  // Rows pass through verbatim: the merged file is byte-identical to
  // the monolithic write_sweep_csv output.
  write_merged_rows(out, shards, order);
}

PartialMergeReport merge_shard_csvs_partial(
    std::ostream& out, std::span<const ShardArtifact> shards) {
  std::vector<const ShardManifest*> manifests;
  manifests.reserve(shards.size());
  for (const ShardArtifact& shard : shards) {
    manifests.push_back(&shard.manifest);
  }
  PartialMergeReport report;
  const auto order = validated_cell_order(manifests, &report.missing);
  validate_shard_csvs(shards);
  report.grid_hash = manifests.front()->grid_hash;
  report.total_cells = manifests.front()->total_cells;
  std::size_t missing_cells = 0;
  for (const MissingCellRange& range : report.missing) {
    missing_cells += range.end - range.begin;
  }
  report.present_cells = report.total_cells - missing_cells;
  write_merged_rows(out, shards, order);
  return report;
}

void write_partial_merge_report(std::ostream& out,
                                const PartialMergeReport& report) {
  out << "{\n"
      << "  \"format\": \"crp-partial-merge-v1\",\n"
      << "  \"grid_hash\": \"" << hex(report.grid_hash) << "\",\n"
      << "  \"total_cells\": " << report.total_cells << ",\n"
      << "  \"present_cells\": " << report.present_cells << ",\n"
      << "  \"missing_ranges\": [";
  for (std::size_t i = 0; i < report.missing.size(); ++i) {
    if (i > 0) out << ", ";
    out << '[' << report.missing[i].begin << ", " << report.missing[i].end
        << ']';
  }
  out << "]\n}\n";
}

}  // namespace crp::harness
