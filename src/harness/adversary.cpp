#include "harness/adversary.h"

#include <limits>
#include <stdexcept>

#include "channel/simulator.h"
#include "harness/parallel.h"

namespace crp::harness {

namespace {

/// Combinations per enumeration block. Large enough to amortize the
/// block claim and the unranking of the block's first set, small
/// enough to load-balance the C(n, k) ~ 10^6 regimes the module is
/// meant for.
constexpr std::size_t kSetBlock = 4096;

/// C(n, k), saturating at SIZE_MAX on overflow. Callers must treat
/// SIZE_MAX as "too many to enumerate" — exact_worst_case refuses such
/// inputs rather than silently under-enumerating.
std::size_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t c = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    // c * (n - k + i) / i is exact at every step; guard the multiply.
    const std::size_t factor = n - k + i;
    if (c > std::numeric_limits<std::size_t>::max() / factor) {
      return std::numeric_limits<std::size_t>::max();
    }
    c = c * factor / i;
  }
  return c;
}

/// The `rank`-th (0-based) k-subset of {0..n-1} in lexicographic
/// order, via the combinatorial number system: position by position,
/// take the smallest candidate whose tail count covers the rank.
std::vector<std::size_t> unrank_combination(std::size_t n, std::size_t k,
                                            std::size_t rank) {
  std::vector<std::size_t> subset(k);
  std::size_t candidate = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (;; ++candidate) {
      const std::size_t tail = binomial(n - 1 - candidate, k - 1 - i);
      if (rank < tail) break;
      rank -= tail;
    }
    subset[i] = candidate++;
  }
  return subset;
}

/// Advances `subset` to its lexicographic successor; returns false at
/// the last combination.
bool next_combination(std::vector<std::size_t>& subset, std::size_t n) {
  const std::size_t k = subset.size();
  std::size_t i = k;
  while (i > 0) {
    --i;
    if (subset[i] < n - k + i) {
      ++subset[i];
      for (std::size_t j = i + 1; j < k; ++j) {
        subset[j] = subset[j - 1] + 1;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

ExactWorstCase exact_worst_case(const channel::DeterministicProtocol& protocol,
                                const core::AdviceFunction& advice,
                                std::size_t n, std::size_t k,
                                bool collision_detection,
                                std::size_t max_rounds, std::size_t threads) {
  if (k == 0 || k > n) {
    throw std::invalid_argument("need 1 <= k <= n participants");
  }
  const std::size_t total = binomial(n, k);
  if (total == std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument(
        "C(n, k) overflows 64 bits; exhaustive enumeration is infeasible");
  }

  // Each block folds its own worst case; blocks are then reduced in
  // rank order with a strict comparison, reproducing the serial
  // "first maximum wins" witness at any thread count.
  const std::size_t blocks = (total + kSetBlock - 1) / kSetBlock;
  std::vector<ExactWorstCase> partial(blocks);
  parallel_blocks(
      total, threads,
      [&](std::size_t begin, std::size_t end) {
        ExactWorstCase& out = partial[begin / kSetBlock];
        std::vector<std::size_t> subset = unrank_combination(n, k, begin);
        for (std::size_t rank = begin; rank < end; ++rank) {
          ++out.sets_checked;
          const auto bits = advice.advise(subset);
          const auto result = channel::run_deterministic(
              protocol, bits, subset, collision_detection,
              {.max_rounds = max_rounds});
          out.all_solved = out.all_solved && result.solved;
          const std::size_t cost = result.solved ? result.rounds : max_rounds;
          if (cost > out.rounds) {
            out.rounds = cost;
            out.witness = subset;
          }
          if (rank + 1 < end) next_combination(subset, n);
        }
      },
      kSetBlock);

  ExactWorstCase worst;
  for (const auto& block : partial) {
    worst.sets_checked += block.sets_checked;
    worst.all_solved = worst.all_solved && block.all_solved;
    if (block.rounds > worst.rounds) {
      worst.rounds = block.rounds;
      worst.witness = block.witness;
    }
  }
  return worst;
}

ExactWorstCase exact_worst_case_all_sizes(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t max_k,
    bool collision_detection, std::size_t max_rounds, std::size_t threads) {
  ExactWorstCase worst;
  for (std::size_t k = 1; k <= max_k && k <= n; ++k) {
    const auto at_k = exact_worst_case(protocol, advice, n, k,
                                       collision_detection, max_rounds,
                                       threads);
    worst.sets_checked += at_k.sets_checked;
    worst.all_solved = worst.all_solved && at_k.all_solved;
    if (at_k.rounds > worst.rounds) {
      worst.rounds = at_k.rounds;
      worst.witness = at_k.witness;
    }
  }
  return worst;
}

}  // namespace crp::harness
