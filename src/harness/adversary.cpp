#include "harness/adversary.h"

#include <stdexcept>

#include "channel/simulator.h"

namespace crp::harness {

namespace {

/// Calls `visit` with every k-subset of {0..n-1} (lexicographic).
template <typename Visitor>
void for_each_subset(std::size_t n, std::size_t k, Visitor&& visit) {
  std::vector<std::size_t> subset(k);
  for (std::size_t i = 0; i < k; ++i) subset[i] = i;
  while (true) {
    visit(subset);
    // Advance to the next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] < n - k + i) {
        ++subset[i];
        for (std::size_t j = i + 1; j < k; ++j) {
          subset[j] = subset[j - 1] + 1;
        }
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

}  // namespace

ExactWorstCase exact_worst_case(const channel::DeterministicProtocol& protocol,
                                const core::AdviceFunction& advice,
                                std::size_t n, std::size_t k,
                                bool collision_detection,
                                std::size_t max_rounds) {
  if (k == 0 || k > n) {
    throw std::invalid_argument("need 1 <= k <= n participants");
  }
  ExactWorstCase worst;
  for_each_subset(n, k, [&](const std::vector<std::size_t>& subset) {
    ++worst.sets_checked;
    const auto bits = advice.advise(subset);
    const auto result = channel::run_deterministic(
        protocol, bits, subset, collision_detection,
        {.max_rounds = max_rounds});
    worst.all_solved = worst.all_solved && result.solved;
    const std::size_t cost = result.solved ? result.rounds : max_rounds;
    if (cost > worst.rounds) {
      worst.rounds = cost;
      worst.witness = subset;
    }
  });
  return worst;
}

ExactWorstCase exact_worst_case_all_sizes(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t max_k,
    bool collision_detection, std::size_t max_rounds) {
  ExactWorstCase worst;
  for (std::size_t k = 1; k <= max_k && k <= n; ++k) {
    const auto at_k = exact_worst_case(protocol, advice, n, k,
                                       collision_detection, max_rounds);
    worst.sets_checked += at_k.sets_checked;
    worst.all_solved = worst.all_solved && at_k.all_solved;
    if (at_k.rounds > worst.rounds) {
      worst.rounds = at_k.rounds;
      worst.witness = at_k.witness;
    }
  }
  return worst;
}

}  // namespace crp::harness
