// Monte-Carlo measurement of contention-resolution round complexity.
//
// The execution stack is columnar: a channel::Engine fills
// structure-of-arrays result columns for whole blocks of trials
// (channel/engine.h), workers steal blocks (harness/parallel.h), and
// measure_blocks() folds the columns into a Measurement in trial
// order — bit-identical at every thread count. By default the fold is
// *streaming*: each worker folds its blocks into an exact counting
// histogram (harness/accumulate.h) and the per-worker histograms merge
// exactly, so a cell's memory is O(max observed round) regardless of
// the trial count; MeasureOptions::keep_samples restores the raw
// per-trial sample vector for consumers that need it. The measure_*
// helpers below wire the common cases (a uniform algorithm against a
// network-size distribution, an advice protocol against sampled
// participant sets) onto that stack; the scalar Trial interface and
// measure() remain as compatibility shims for per-trial callbacks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <random>
#include <span>
#include <vector>

#include "channel/engine.h"
#include "channel/protocol.h"
#include "channel/simulator.h"
#include "core/advice.h"
#include "harness/accumulate.h"
#include "harness/stats.h"
#include "info/distribution.h"

namespace crp::channel {
class HistoryTreeCache;  // channel/history_engine.h
}  // namespace crp::channel

namespace crp::harness {

/// Aggregated outcome of a batch of trials.
struct Measurement {
  SummaryStats rounds;        ///< over *solved* trials
  double success_rate = 0.0;  ///< fraction solved within the budget
  std::size_t trials = 0;

  /// Fraction of trials solved within `budget` rounds (one-shot success
  /// probability at that budget). Reads the histogram when the library
  /// fold filled it, else the raw samples — identical answers.
  double solved_within(double budget) const;

  /// Rounds of solved trials, in trial order. Filled by the scalar
  /// shims and, when MeasureOptions::keep_samples is set, by the block
  /// fold; empty on the (default) streaming path.
  std::vector<double> samples;

  /// Exact per-round counts of the solved trials; filled by every
  /// library fold path (the streaming default stores only this).
  RoundHistogram histogram;

  /// Transmission-count moments over all trials; populated only when
  /// MeasureOptions::measure_transmissions requested the energy column.
  MomentAccumulator transmissions;
};

using Trial = std::function<channel::RunResult(std::size_t trial_index,
                                               std::mt19937_64& rng)>;

/// Compatibility shim for per-trial callbacks: runs `trials`
/// independent trials serially, deriving (and paying for) one
/// mt19937_64 stream per trial from `seed` (replayable regardless of
/// execution order). See harness/parallel.h for the bit-identical
/// thread-pool drop-in, and measure_blocks() for the columnar path the
/// measure_* helpers use — which seeds no mt19937_64 on the analytic
/// engine at all.
Measurement measure(const Trial& trial, std::size_t trials,
                    std::uint64_t seed);

/// Folds per-trial outcomes (already in trial order) into a
/// Measurement — exactly the aggregation the serial measure() loop
/// performs, shared by the thread-pool and batch measurement paths.
Measurement measurement_from_runs(std::span<const channel::RunResult> runs);

/// Columnar counterpart of measurement_from_runs: folds SoA result
/// columns (`rounds[t]` is consulted only where `solved[t]`) with the
/// identical aggregation, visiting trials in order.
Measurement measurement_from_columns(std::span<const std::uint8_t> solved,
                                     std::span<const std::uint64_t> rounds);

/// Streaming counterpart: a Measurement read entirely from a merged
/// round histogram (count/min/max/mean/quantiles bit-identical to the
/// vector fold; see harness/accumulate.h for the stddev caveat).
Measurement measurement_from_histogram(RoundHistogram histogram);

/// Which engine simulates a uniform no-CD trial.
enum class NoCdEngine {
  kBinomial,   ///< exact per-round loop, one binomial draw per round
  kPerPlayer,  ///< exact per-round loop, one coin per player per round
  kBatch,      ///< analytic inverse-CDF sampling (channel/batch.h)
};

/// Which engine runs a uniform CD trial. Both produce the same
/// distribution of (solved, rounds); the history-tree sampler consumes
/// randomness differently, so individual trials at a fixed seed differ
/// (tests/history_tree_engine_test.cpp cross-validates the two).
enum class CdEngine {
  kSimulate,     ///< exact per-round Markov simulation (the adapter)
  kHistoryTree,  ///< cached history-tree sampler (channel/history_engine.h)
};

/// Execution knobs for the measure_* helpers. The defaults select the
/// fast path: the analytic engine where one applies and every hardware
/// thread; the measured statistics are engine- and thread-count-
/// independent (up to Monte-Carlo noise for the engine choice, exactly
/// for the thread count).
struct MeasureOptions {
  std::size_t max_rounds = 1 << 20;
  /// Worker threads: 1 = serial, 0 = all hardware threads.
  std::size_t threads = 0;
  /// Engine used by the uniform no-CD helpers (others ignore it).
  NoCdEngine engine = NoCdEngine::kBatch;
  /// Engine used by the uniform CD helpers (others ignore it). The
  /// simulated default keeps every published fixed-seed golden stable;
  /// sweeps and benches opt into the history-tree sampler explicitly.
  CdEngine cd_engine = CdEngine::kSimulate;
  /// When true, the fold keeps Measurement::samples (rounds of solved
  /// trials, in trial order) and computes the summary from that vector
  /// — the pre-streaming behavior, O(trials) memory, needed by callers
  /// that consume raw samples. The default folds into the counting
  /// histogram only: memory flat in the trial count, with count, min,
  /// max, mean, and quantiles bit-identical to the vector fold.
  bool keep_samples = false;
  /// When true, engines fill the transmissions column and the fold
  /// accumulates Measurement::transmissions (exact integer moments
  /// over all trials). Off by default: the analytic no-CD engine
  /// reports the column as 0 (see channel/batch.h) — meaningful with
  /// the exact engines.
  bool measure_transmissions = false;
  /// Shared history-tree engine cache for the CD helpers (used only
  /// when cd_engine is kHistoryTree). Null = construct a private
  /// engine per call, the non-sweep default; run_sweep passes one
  /// cache for the whole grid so cells sharing a policy expand each
  /// tree once. Results are identical either way.
  const channel::HistoryTreeCache* tree_cache = nullptr;
};

/// Runs `trials` trials through a columnar engine: workers steal
/// fixed-size blocks (harness/parallel.h) and write the SoA result
/// columns in place; the fold visits trials in order, so the
/// Measurement is bit-identical at every thread count. This is the
/// execution core under every measure_* helper; call it directly to
/// drive a custom channel::Engine.
Measurement measure_blocks(const channel::Engine& engine,
                           const channel::SizeSource& sizes,
                           std::size_t trials, std::uint64_t seed,
                           const MeasureOptions& options);

/// Uniform no-CD algorithm vs. sizes drawn from `actual`.
Measurement measure_uniform_no_cd(const channel::ProbabilitySchedule& schedule,
                                  const info::SizeDistribution& actual,
                                  std::size_t trials, std::uint64_t seed,
                                  std::size_t max_rounds = 1 << 20);
Measurement measure_uniform_no_cd(const channel::ProbabilitySchedule& schedule,
                                  const info::SizeDistribution& actual,
                                  std::size_t trials, std::uint64_t seed,
                                  const MeasureOptions& options);

/// Uniform CD algorithm vs. sizes drawn from `actual`.
Measurement measure_uniform_cd(const channel::CollisionPolicy& policy,
                               const info::SizeDistribution& actual,
                               std::size_t trials, std::uint64_t seed,
                               std::size_t max_rounds = 1 << 20);
Measurement measure_uniform_cd(const channel::CollisionPolicy& policy,
                               const info::SizeDistribution& actual,
                               std::size_t trials, std::uint64_t seed,
                               const MeasureOptions& options);

/// Uniform no-CD algorithm with the participant count fixed to k.
Measurement measure_uniform_no_cd_fixed_k(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    std::size_t trials, std::uint64_t seed, std::size_t max_rounds = 1 << 20);
Measurement measure_uniform_no_cd_fixed_k(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    std::size_t trials, std::uint64_t seed, const MeasureOptions& options);

/// Uniform CD algorithm with the participant count fixed to k.
Measurement measure_uniform_cd_fixed_k(const channel::CollisionPolicy& policy,
                                       std::size_t k, std::size_t trials,
                                       std::uint64_t seed,
                                       std::size_t max_rounds = 1 << 20);
Measurement measure_uniform_cd_fixed_k(const channel::CollisionPolicy& policy,
                                       std::size_t k, std::size_t trials,
                                       std::uint64_t seed,
                                       const MeasureOptions& options);

/// Draws a uniformly random k-subset of {0, ..., n-1}.
std::vector<std::size_t> random_participant_set(std::size_t n, std::size_t k,
                                                std::mt19937_64& rng);

/// Deterministic advice protocol: per trial, draw k from `actual`, draw
/// a random participant set of that size, compute advice, run.
Measurement measure_deterministic_advice(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, const info::SizeDistribution& actual,
    std::size_t n, bool collision_detection, std::size_t trials,
    std::uint64_t seed, std::size_t max_rounds = 1 << 20);
Measurement measure_deterministic_advice(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, const info::SizeDistribution& actual,
    std::size_t n, bool collision_detection, std::size_t trials,
    std::uint64_t seed, const MeasureOptions& options);

/// Worst-case (maximum over participant sets) round count of a
/// deterministic advice protocol at fixed k, approximated by `probes`
/// random sets plus the adversarial set concentrated at the tail of the
/// advised subtree. The probes are independent, so the MeasureOptions
/// overload fans them across the block scheduler (options.threads);
/// the result is thread-count invariant. See harness/adversary.h for
/// the exhaustive (exact) counterpart.
double worst_case_deterministic_rounds(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t k,
    bool collision_detection, std::size_t probes, std::uint64_t seed,
    std::size_t max_rounds = 1 << 20);
double worst_case_deterministic_rounds(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t k,
    bool collision_detection, std::size_t probes, std::uint64_t seed,
    const MeasureOptions& options);

}  // namespace crp::harness
