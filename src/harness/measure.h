// Monte-Carlo measurement of contention-resolution round complexity.
// Every experiment is a function (trial index, rng) -> RunResult; the
// helpers below wire the common cases: a uniform algorithm against a
// network-size distribution, and an advice protocol against sampled
// participant sets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "channel/protocol.h"
#include "channel/simulator.h"
#include "core/advice.h"
#include "harness/stats.h"
#include "info/distribution.h"

namespace crp::harness {

/// Aggregated outcome of a batch of trials.
struct Measurement {
  SummaryStats rounds;        ///< over *solved* trials
  double success_rate = 0.0;  ///< fraction solved within the budget
  std::size_t trials = 0;

  /// Fraction of trials solved within `budget` rounds (one-shot success
  /// probability at that budget), computed from the raw samples.
  double solved_within(double budget) const;

  std::vector<double> samples;  ///< rounds of solved trials
};

using Trial = std::function<channel::RunResult(std::size_t trial_index,
                                               std::mt19937_64& rng)>;

/// Runs `trials` independent trials, deriving one RNG stream per trial
/// from `seed` (replayable regardless of execution order).
Measurement measure(const Trial& trial, std::size_t trials,
                    std::uint64_t seed);

/// Uniform no-CD algorithm vs. sizes drawn from `actual`.
Measurement measure_uniform_no_cd(const channel::ProbabilitySchedule& schedule,
                                  const info::SizeDistribution& actual,
                                  std::size_t trials, std::uint64_t seed,
                                  std::size_t max_rounds = 1 << 20);

/// Uniform CD algorithm vs. sizes drawn from `actual`.
Measurement measure_uniform_cd(const channel::CollisionPolicy& policy,
                               const info::SizeDistribution& actual,
                               std::size_t trials, std::uint64_t seed,
                               std::size_t max_rounds = 1 << 20);

/// Uniform no-CD algorithm with the participant count fixed to k.
Measurement measure_uniform_no_cd_fixed_k(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    std::size_t trials, std::uint64_t seed, std::size_t max_rounds = 1 << 20);

/// Uniform CD algorithm with the participant count fixed to k.
Measurement measure_uniform_cd_fixed_k(const channel::CollisionPolicy& policy,
                                       std::size_t k, std::size_t trials,
                                       std::uint64_t seed,
                                       std::size_t max_rounds = 1 << 20);

/// Draws a uniformly random k-subset of {0, ..., n-1}.
std::vector<std::size_t> random_participant_set(std::size_t n, std::size_t k,
                                                std::mt19937_64& rng);

/// Deterministic advice protocol: per trial, draw k from `actual`, draw
/// a random participant set of that size, compute advice, run.
Measurement measure_deterministic_advice(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, const info::SizeDistribution& actual,
    std::size_t n, bool collision_detection, std::size_t trials,
    std::uint64_t seed, std::size_t max_rounds = 1 << 20);

/// Worst-case (maximum over participant sets) round count of a
/// deterministic advice protocol at fixed k, approximated by `probes`
/// random sets plus the adversarial set concentrated at the tail of the
/// advised subtree.
double worst_case_deterministic_rounds(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t k,
    bool collision_detection, std::size_t probes, std::uint64_t seed,
    std::size_t max_rounds = 1 << 20);

}  // namespace crp::harness
