// Declarative sweep-grid specs: a strict JSON format
// (crp-grid-spec-v1) describing algorithms × size distributions ×
// round budgets × trial counts × seed streams, parsed into the same
// SweepCell vector the compiled-in grids (harness/grids.h) produce —
// so the shard driver (tools/crp_shard.cpp) can sweep arbitrary
// user-submitted grids without a recompile, and an external scheduler
// can `crp_shard plan` a spec's shard → cell-range map before any
// worker starts.
//
// The determinism contract carries over unchanged: a spec-built grid
// hashes into grid_fingerprint (harness/shard.h) exactly as its
// compiled-in equivalent would — the checked-in
// examples/grids/table1.json reproduces the built-in "table1" grid's
// fingerprint, per-cell seeds, and merged sweep CSV byte for byte
// (tests/gridspec_test.cpp pins this across shard counts) — and spec
// cells flow through shard planning, checkpoint journals, and
// manifest-validated merges with no special cases.
//
// The reader follows the shard-manifest discipline (harness/shard.h):
// unknown, duplicate, or missing fields, non-finite numerics, bare
// words such as nan/inf, out-of-range values, and malformed hex are
// all rejected with the offending field named plus its line/column —
// never a crash, a silent default, or a silently different grid. The
// grammar is documented in docs/GRIDSPEC.md; the short of it:
//
//   {
//     "format": "crp-grid-spec-v1",
//     "name": "table1-n1024",              // optional display label
//     "n": 1024,                           // network size bound
//     "sources": {                         // condensed sources over L(n)
//       "u1": {"family": "uniform_ranges", "m": 1},
//       "g":  {"family": "geometric_ranges", "decay": 0.5}
//     },
//     "algorithms": {                      // display name defaults to key
//       "lik": {"type": "likelihood", "source": "u1",
//               "name": "likelihood"},     // optional "cycle"
//       "cod": {"type": "coded", "source": "u1"}  // optional "backend"
//     },
//     "sizes": {
//       "h0":  {"type": "lift", "source": "u1", "placement": "high"},
//       "tab": {"type": "support", "entries": [[4, 0.5], [8, 0.5]]},
//       "csv": {"type": "csv", "path": "dist.csv"},  // spec-relative
//       "k64": {"type": "fixed_k", "k": 64}
//     },
//     "cells": [                           // explicit (paired) cells...
//       {"algorithm": "lik", "sizes": "h0", "budget": 262144}
//     ],
//     "product": {                         // ...then the cross product
//       "algorithms": ["lik", "cod"], "sizes": ["tab", "k64"],
//       "budgets": [16384]
//     }
//   }
//
// Cells may pin "trials" (per-cell override, 0 is rejected — absent
// means the sweep-level default) and "seed_stream" (an "0x..." hex
// string routed through pinned_seed_stream, so the reserved
// kSeedStreamFromIndex sentinel is rejected by name instead of
// silently decaying to index-derived seeds).
//
/// Ownership: GridSpec owns every constructed schedule, policy, and
/// distribution its cells borrow (stable heap addresses), so it is
/// move-only and must outlive any run_sweep/plan_shards call over its
/// cells.
///
/// Thread-safety: parsing is a pure function of its inputs; a parsed
/// GridSpec is immutable and safe to share across threads.
///
/// Determinism: the constructed objects go through the same
/// constructors the compiled-in grids use, so equal specs produce
/// bit-identical grids on every host — the spec is the portable,
/// recompile-free identity of a sweep.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "channel/protocol.h"
#include "harness/sweep.h"
#include "info/distribution.h"

namespace crp::harness {

/// A parsed crp-grid-spec-v1: the sweep cells plus the algorithm and
/// distribution objects they borrow. Move-only (the cells hold
/// pointers into the owned storage).
struct GridSpec {
  /// Optional display label (top-level "name"); empty when absent.
  std::string name;
  /// Network size bound n every distribution in the spec lives under.
  std::size_t n = 0;
  /// The grid, in declaration order: explicit "cells" first, then the
  /// "product" cross product (algorithm-major, then sizes, then
  /// budget) — the same order SweepGrid::cells() uses.
  std::vector<SweepCell> cells;

  /// Owned storage the cells borrow; unique_ptr keeps addresses
  /// stable across moves and makes GridSpec move-only.
  std::vector<std::unique_ptr<const channel::ProbabilitySchedule>> schedules;
  std::vector<std::unique_ptr<const channel::CollisionPolicy>> policies;
  std::vector<std::unique_ptr<const info::SizeDistribution>> distributions;
};

/// Parse knobs for the text-level entry point.
struct GridSpecOptions {
  /// Directory that relative "csv" size-source paths resolve against;
  /// empty = the process working directory. read_grid_spec_file sets
  /// it to the spec file's parent directory.
  std::string base_dir;
};

/// Parses a spec from JSON text. Throws std::invalid_argument on any
/// schema or value violation — always naming the offending field and
/// its line/column — and IoError (harness/checkpoint.h) when a
/// referenced size-distribution CSV cannot be opened.
GridSpec parse_grid_spec(std::string_view text,
                         const GridSpecOptions& options = {});

/// Reads and parses a spec file. Throws IoError when the file cannot
/// be read (exit 4 in crp_shard's taxonomy — retry may help), and
/// std::invalid_argument, prefixed with the path, on any validation
/// failure (exit 3 — retry will not).
GridSpec read_grid_spec_file(const std::string& path);

}  // namespace crp::harness
