#include "harness/sweep.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "channel/history_engine.h"
#include "channel/rng.h"
#include "harness/csv.h"
#include "harness/parallel.h"

namespace crp::harness {

namespace {

std::string size_source_label(const SweepSizes& sizes) {
  if (!sizes.name.empty()) return sizes.name;
  return sizes.distribution != nullptr ? "drawn"
                                       : "k=" + std::to_string(sizes.fixed_k);
}

Measurement run_cell(const SweepCell& cell, std::size_t trials,
                     std::uint64_t cell_seed, std::size_t threads,
                     NoCdEngine engine, CdEngine cd_engine,
                     const channel::HistoryTreeCache* tree_cache) {
  const MeasureOptions options{.max_rounds = cell.max_rounds,
                               .threads = threads,
                               .engine = engine,
                               .cd_engine = cd_engine,
                               .tree_cache = tree_cache};
  if (cell.algorithm.schedule != nullptr) {
    return cell.sizes.distribution != nullptr
               ? measure_uniform_no_cd(*cell.algorithm.schedule,
                                       *cell.sizes.distribution, trials,
                                       cell_seed, options)
               : measure_uniform_no_cd_fixed_k(*cell.algorithm.schedule,
                                               cell.sizes.fixed_k, trials,
                                               cell_seed, options);
  }
  if (cell.algorithm.policy != nullptr) {
    return cell.sizes.distribution != nullptr
               ? measure_uniform_cd(*cell.algorithm.policy,
                                    *cell.sizes.distribution, trials,
                                    cell_seed, options)
               : measure_uniform_cd_fixed_k(*cell.algorithm.policy,
                                            cell.sizes.fixed_k, trials,
                                            cell_seed, options);
  }
  throw std::invalid_argument("sweep cell '" + cell.algorithm.name +
                              "' names neither a schedule nor a policy");
}

}  // namespace

std::uint64_t pinned_seed_stream(std::uint64_t stream) {
  if (stream == kSeedStreamFromIndex) {
    throw std::invalid_argument(
        "seed_stream 0xFFFFFFFFFFFFFFFF is reserved as the "
        "derive-from-grid-index sentinel (kSeedStreamFromIndex); an "
        "explicit pin of this value would silently produce "
        "position-dependent seeds");
  }
  return stream;
}

SweepGrid& SweepGrid::add_algorithm(SweepAlgorithm algorithm) {
  algorithms_.push_back(std::move(algorithm));
  return *this;
}

SweepGrid& SweepGrid::add_sizes(SweepSizes sizes) {
  sizes_.push_back(std::move(sizes));
  return *this;
}

SweepGrid& SweepGrid::add_budget(std::size_t max_rounds) {
  budgets_.push_back(max_rounds);
  return *this;
}

SweepGrid& SweepGrid::add_cell(SweepCell cell) {
  cells_.push_back(std::move(cell));
  return *this;
}

std::vector<SweepCell> SweepGrid::cells() const {
  std::vector<SweepCell> cells = cells_;
  const std::vector<std::size_t> budgets =
      budgets_.empty() ? std::vector<std::size_t>{1 << 20} : budgets_;
  for (const auto& algorithm : algorithms_) {
    for (const auto& sizes : sizes_) {
      for (const std::size_t budget : budgets) {
        cells.push_back(SweepCell{
            .algorithm = algorithm, .sizes = sizes, .max_rounds = budget});
      }
    }
  }
  return cells;
}

std::vector<SweepResult> run_sweep(std::span<const SweepCell> cells,
                                   const SweepOptions& options) {
  std::vector<SweepResult> results(cells.size());
  const std::size_t workers =
      options.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options.threads;
  // Wide grids keep every worker busy with whole cells; narrow grids
  // parallelize inside each measurement instead. Identical results
  // either way: a cell's outcome is a function of (cell, cell seed,
  // trials) only.
  const bool cells_in_parallel = cells.size() >= workers;
  const std::size_t inner_threads = cells_in_parallel ? 1 : options.threads;
  // One history-tree engine cache for the whole sweep: cells sharing a
  // CD policy expand each (policy, k, horizon) tree once instead of
  // once per cell. Results are identical to per-cell engines (the
  // expansion is deterministic), so the cache is purely an
  // amortization.
  const channel::HistoryTreeCache tree_cache;
  const channel::HistoryTreeCache* shared_trees =
      options.cd_engine == CdEngine::kHistoryTree
          ? (options.tree_cache != nullptr ? options.tree_cache : &tree_cache)
          : nullptr;
  const auto execute = [&](std::size_t i) {
    const SweepCell& cell = cells[i];
    const std::uint64_t stream =
        cell.seed_stream == kSeedStreamFromIndex ? i : cell.seed_stream;
    const std::uint64_t cell_seed =
        channel::derive_stream_seed(options.seed, stream);
    const std::size_t trials = cell.trials != 0 ? cell.trials : options.trials;
    results[i] = SweepResult{
        .cell = cell,
        .cell_index = i,
        .cell_seed = cell_seed,
        .measurement = run_cell(cell, trials, cell_seed, inner_threads,
                                options.engine, options.cd_engine,
                                shared_trees)};
  };
  if (cells_in_parallel) {
    // One cell per block: a cell is thousands of trials, so the claim
    // overhead is irrelevant and every worker gets its own cell
    // (parallel_trials' 32-wide chunks would lump small grids onto one
    // worker).
    parallel_blocks(
        cells.size(), options.threads,
        [&execute](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) execute(i);
        },
        /*block_size=*/1);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) execute(i);
  }
  return results;
}

std::vector<SweepResult> run_sweep(const SweepGrid& grid,
                                   const SweepOptions& options) {
  const auto cells = grid.cells();
  return run_sweep(std::span<const SweepCell>(cells), options);
}

Table sweep_table(std::span<const SweepResult> results) {
  Table table({"algorithm", "sizes", "budget", "trials", "mean", "ci95",
               "p50", "p90", "p99", "solved"});
  for (const auto& result : results) {
    const auto& m = result.measurement;
    table.add_row({result.cell.algorithm.name,
                   size_source_label(result.cell.sizes),
                   fmt(result.cell.max_rounds), fmt(m.trials),
                   fmt(m.rounds.mean, 2), fmt(m.rounds.ci95, 2),
                   fmt(m.rounds.p50, 1), fmt(m.rounds.p90, 1),
                   fmt(m.rounds.p99, 1),
                   fmt(100.0 * m.success_rate, 1) + "%"});
  }
  return table;
}

std::string sweep_csv_header() {
  auto header = CsvWriter::measurement_header();
  header.insert(header.begin(), {"algorithm", "sizes", "budget", "trials",
                                 "cell_seed"});
  return csv_row_string(header);
}

std::string sweep_csv_row(const SweepResult& result) {
  auto cells = CsvWriter::measurement_cells(result.measurement);
  // cell_seed makes every row independently replayable: re-running
  // the cell's measure_* call under this seed reproduces the row,
  // which is what lets a driver shard a grid's cells across
  // processes, checkpoint them cell by cell, and merge the CSVs
  // (tests/sweep_test.cpp round-trips this).
  cells.insert(cells.begin(),
               {result.cell.algorithm.name,
                size_source_label(result.cell.sizes),
                std::to_string(result.cell.max_rounds),
                std::to_string(result.measurement.trials),
                std::to_string(result.cell_seed)});
  return csv_row_string(cells);
}

void write_sweep_csv(std::ostream& out,
                     std::span<const SweepResult> results) {
  out << sweep_csv_header() << '\n';
  for (const auto& result : results) out << sweep_csv_row(result) << '\n';
}

}  // namespace crp::harness
