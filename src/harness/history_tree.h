// Shared history-tree expansion for collision-detection policies.
//
// A uniform CD execution is a Markov chain over collision histories:
// after history h the policy transmits with p = policy.probability(h),
// and the round ends in success (terminating), silence (append 0), or
// collision (append 1) with the exact trichotomy probabilities of
// round_outcome_probabilities(k, p). Expanding that chain breadth- or
// depth-first down to a horizon yields the exact distribution of the
// solving round — the enumeration harness/exact.h's exact_profile_cd
// has always performed, refactored here so exact profiling and the
// sampling engine (channel/history_engine.h) share one expansion.
//
// Ownership: expand_history_tree returns a self-contained value; the
// policy is only dereferenced during the call and need not outlive the
// returned tree.
//
// Thread-safety: expansion may fan out over subtrees rooted at a fixed
// split depth (HistoryTreeOptions::threads), with per-shard solve/
// pruned/frontier accumulators merged in deterministic shard order.
// The returned HistoryTree is immutable and safe to share across
// threads.
//
// Determinism: the expansion (node layout, per-round solve masses, and
// the pruned/frontier accounting) is a pure function of (policy, k,
// options.horizon, options.prune_below, options.split_depth,
// options.max_nodes) — bit-identical at every thread count, because the
// shard partition and the merge order never depend on scheduling
// (tests/harness_exact_test.cpp pins serial == parallel).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "channel/protocol.h"

namespace crp::harness {

/// Expansion knobs.
struct HistoryTreeOptions {
  /// Expansion depth: rounds [0, horizon) are enumerated; branches
  /// still alive at `horizon` contribute to frontier_mass.
  std::size_t horizon = 48;
  /// Branches whose reach probability drops below this are dropped and
  /// their mass accounted in pruned_mass (solve_at stays a valid lower
  /// bound, solve + pruned + frontier an exact partition of 1).
  double prune_below = 1e-12;
  /// Worker threads for the subtree fan-out (0 = all hardware threads,
  /// <= 1 = inline). The result is identical for every value.
  std::size_t threads = 1;
  /// Depth at which the expansion splits into independent subtree
  /// shards. Purely a parallelism granule: the output is the same for
  /// every value (the serial path runs the identical shard structure).
  std::size_t split_depth = 8;
  /// Hard cap on expanded frames across the whole expansion (all
  /// shards share one budget). When hit, the tree is returned with
  /// `truncated == true` and must not be sampled from; callers fall
  /// back to per-round simulation. Guards policies whose trees grow as
  /// 2^horizon faster than pruning can cut them — the expanded node
  /// count is on the order of (surviving mass) / prune_below when the
  /// tree branches freely, which dwarfs any usable cache.
  std::size_t max_nodes = 1 << 21;
  /// When false, only the masses (solve_at, pruned, frontier) are
  /// computed and `nodes` stays empty — what exact_profile_cd needs;
  /// the sampling engine stores nodes to walk them.
  bool store_nodes = true;
};

/// One expanded history node. The cumulative outcome table lets a
/// sampler resolve the round with a single uniform u in [0, 1):
/// u < cum_success => success; u < cum_no_collision => silence child;
/// otherwise collision child.
struct HistoryTreeNode {
  double cum_success = 0.0;        ///< Pr(success | node reached)
  double cum_no_collision = 0.0;   ///< + Pr(silence | node reached)
  /// Child node indices; kNoChild marks a branch that was pruned or
  /// lies beyond the horizon (samplers continue by simulation there).
  std::int64_t silence = -1;
  std::int64_t collision = -1;

  static constexpr std::int64_t kNoChild = -1;
};

/// The cached expansion of one (policy, k) pair down to a horizon.
struct HistoryTree {
  std::size_t k = 0;
  std::size_t horizon = 0;
  double prune_below = 0.0;

  /// Expanded nodes; nodes[0] is the root (empty history). Empty when
  /// the expansion ran with store_nodes == false.
  std::vector<HistoryTreeNode> nodes;

  /// solve_at[r] = Pr(execution succeeds in 1-based round r + 1),
  /// summed over every expanded branch; size horizon.
  std::vector<double> solve_at;
  /// Prefix sums of solve_at: solve_cdf[r] = Pr(solved within r + 1
  /// rounds); size horizon. The inverse-CDF sampling table.
  std::vector<double> solve_cdf;
  /// solve_cdf prepared for the lane upper-bound probe
  /// (channel/kernels): a 0.0 sentinel at [0], solve_cdf at
  /// [1..horizon], then +inf padding up to a power of two. Built by
  /// expand_history_tree; empty on hand-assembled trees, in which case
  /// samplers fall back to std::upper_bound over solve_cdf.
  std::vector<double> padded_solve_cdf;

  /// Mass dropped by prune_below (fate unknown within the horizon).
  double pruned_mass = 0.0;
  /// Mass still alive at exactly `horizon` rounds (unsolved so far).
  double frontier_mass = 0.0;
  /// True when max_nodes stopped the expansion; masses and nodes are
  /// then incomplete and the tree must not be used.
  bool truncated = false;

  /// Total mass resolved as solved within the horizon.
  double solved_mass() const {
    return solve_cdf.empty() ? 0.0 : solve_cdf.back();
  }
  /// Mass whose solve round the tree cannot answer exactly.
  double unresolved_mass() const { return pruned_mass + frontier_mass; }
};

/// Expands the history tree of `policy` with k participants. See the
/// file comment for the determinism contract.
HistoryTree expand_history_tree(const channel::CollisionPolicy& policy,
                                std::size_t k,
                                const HistoryTreeOptions& options = {});

}  // namespace crp::harness
