#include "harness/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "channel/history_engine.h"
#include "channel/rng.h"
#include "harness/csv.h"
#include "harness/hash.h"

namespace crp::harness {

namespace {

constexpr const char* kJournalMagic = "crp-checkpoint-journal-v1";
constexpr const char* kRecordTag = "cell";
/// Every framed block ends with newline, '.', newline: the completion
/// marker a torn write cannot fake (truncation removes it, and a
/// short write that stops inside it leaves a detectably-incomplete
/// record).
constexpr const char* kEndMarker = "\n.\n";

std::string hex(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

[[noreturn]] void io_fail(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// write(2) until everything is out; EINTR retried, any other failure
/// (including a kernel-reported short write on a full disk) throws.
void write_all(int fd, std::string_view bytes, const std::string& what) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("cannot write " + what);
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) io_fail("cannot fsync " + what);
}

/// fsync on the directory entry, so the rename (or file creation)
/// itself is durable — without this a power loss can forget the file
/// existed even though its contents were flushed.
void fsync_directory(const std::filesystem::path& dir) {
  const std::string name = dir.empty() ? "." : dir.string();
  const int fd = ::open(name.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) io_fail("cannot open directory " + name + " for fsync");
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    io_fail("cannot fsync directory " + name);
  }
  ::close(fd);
}

class FileCheckpointSink final : public CheckpointSink {
 public:
  explicit FileCheckpointSink(std::string path) : path_(std::move(path)) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0) io_fail("cannot open checkpoint journal " + path_);
  }
  ~FileCheckpointSink() override {
    if (fd_ >= 0) ::close(fd_);
  }
  FileCheckpointSink(const FileCheckpointSink&) = delete;
  FileCheckpointSink& operator=(const FileCheckpointSink&) = delete;

  void append(std::string_view bytes) override {
    write_all(fd_, bytes, "checkpoint journal " + path_);
  }
  void sync() override { fsync_or_throw(fd_, "checkpoint journal " + path_); }

 private:
  std::string path_;
  int fd_ = -1;
};

std::uint64_t header_checksum(const ShardManifest& identity,
                              const std::string& csv_header) {
  Fnv1a h;
  h.u64(identity.grid_hash);
  h.u64(identity.master_seed);
  h.u64(identity.trials);
  h.u64(identity.total_cells);
  h.u64(identity.cell_begin);
  h.u64(identity.cell_end);
  h.str(identity.engine);
  h.str(identity.cd_engine);
  h.str(csv_header);
  return h.state;
}

std::uint64_t record_checksum(const CheckpointRecord& record) {
  Fnv1a h;
  h.u64(record.cell_index);
  h.u64(record.cell_seed);
  h.str(record.row);
  return h.state;
}

/// Splits a complete journal line on single spaces (no field in the
/// format may contain one; engine names are hyphenated).
std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const auto space = line.find(' ', start);
    if (space == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, space - start));
    start = space + 1;
  }
  return fields;
}

std::optional<std::uint64_t> parse_hex_u64(const std::string& raw) {
  if (raw.size() < 3 || raw.size() > 18 || raw[0] != '0' || raw[1] != 'x') {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 2; i < raw.size(); ++i) {
    const char c = raw[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;
    }
    value = value * 16 + static_cast<std::uint64_t>(digit);
  }
  return value;
}

/// Journal parse state shared between the header and record loops.
struct JournalParser {
  const std::string& path;
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(std::size_t offset, const std::string& message) {
    throw std::invalid_argument("checkpoint journal " + path + " at byte " +
                                std::to_string(offset) + ": " + message);
  }

  /// The next complete line (without its newline), or nullopt when no
  /// newline follows — the file ends mid-line.
  std::optional<std::string_view> next_line() {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) return std::nullopt;
    std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    return line;
  }

  std::uint64_t field_uint(const std::string& field, std::size_t offset,
                           const std::string& what) {
    const auto value = parse_csv_unsigned(field);
    if (!value) {
      fail(offset, what + " must be a plain non-negative integer, got \"" +
                       field + "\"");
    }
    return *value;
  }

  std::uint64_t field_hex(const std::string& field, std::size_t offset,
                          const std::string& what) {
    const auto value = parse_hex_u64(field);
    if (!value) {
      fail(offset, what + " must be an \"0x...\" hex value, got \"" + field +
                       "\"");
    }
    return *value;
  }

  /// Consumes `length` payload bytes plus the end marker; nullopt when
  /// the file ends first (a torn record — the caller decides whether
  /// that position may legally be torn).
  std::optional<std::string> payload(std::size_t offset, std::size_t length) {
    // Overflow-safe: `length` may be a bit-flipped garbage value, so
    // never compute pos + length directly.
    const std::size_t marker_len = std::strlen(kEndMarker);
    if (length > text.size() - pos ||
        marker_len > text.size() - pos - length) {
      return std::nullopt;  // the file ends inside payload or marker
    }
    if (text.compare(pos + length, marker_len, kEndMarker) != 0) {
      fail(offset,
           "end-of-record marker missing — the record is damaged, not torn "
           "(bytes continue past where it should end)");
    }
    std::string out = text.substr(pos, length);
    pos += length + std::strlen(kEndMarker);
    return out;
  }
};

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    // Note which ancestors are about to be created (deepest first):
    // each new directory is an entry in *its* parent, so every such
    // parent needs an fsync or a power loss can forget the chain.
    std::vector<fs::path> created;
    for (fs::path p = target.parent_path(); !p.empty() && !fs::exists(p, ec);
         p = p.parent_path()) {
      created.push_back(p);
    }
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      throw IoError("cannot create directory " +
                    target.parent_path().string() + ": " + ec.message());
    }
    for (auto it = created.rbegin(); it != created.rend(); ++it) {
      fsync_directory(it->parent_path());
    }
  }
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_fail("cannot create " + tmp);
  try {
    write_all(fd, contents, tmp);
    fsync_or_throw(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    io_fail("cannot close " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    io_fail("cannot rename " + tmp + " to " + path);
  }
  fsync_directory(target.parent_path());
}

std::unique_ptr<CheckpointSink> open_file_checkpoint_sink(
    const std::string& path) {
  return std::make_unique<FileCheckpointSink>(path);
}

std::string format_checkpoint_header(const ShardManifest& identity,
                                     const std::string& csv_header) {
  std::string out = kJournalMagic;
  out += ' ';
  out += hex(identity.grid_hash);
  out += ' ';
  out += hex(identity.master_seed);
  out += ' ';
  out += std::to_string(identity.trials);
  out += ' ';
  out += std::to_string(identity.total_cells);
  out += ' ';
  out += std::to_string(identity.cell_begin);
  out += ' ';
  out += std::to_string(identity.cell_end);
  out += ' ';
  out += identity.engine;
  out += ' ';
  out += identity.cd_engine;
  out += ' ';
  out += std::to_string(csv_header.size());
  out += ' ';
  out += hex(header_checksum(identity, csv_header));
  out += '\n';
  out += csv_header;
  out += kEndMarker;
  return out;
}

std::string format_checkpoint_record(const CheckpointRecord& record) {
  std::string out = kRecordTag;
  out += ' ';
  out += std::to_string(record.cell_index);
  out += ' ';
  out += hex(record.cell_seed);
  out += ' ';
  out += std::to_string(record.row.size());
  out += ' ';
  out += hex(record_checksum(record));
  out += '\n';
  out += record.row;
  out += kEndMarker;
  return out;
}

CheckpointJournal read_checkpoint_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open checkpoint journal " + path + ": " +
                  std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw IoError("cannot read checkpoint journal " + path);
  }
  const std::string text = buffer.str();
  JournalParser parser{path, text};
  CheckpointJournal journal;

  // ---- header block ----
  // The header is created whole via atomic temp-file + rename before
  // any record is appended, so unlike a record it is never legally
  // torn: any damage here is corruption.
  const auto header_line = parser.next_line();
  if (!header_line) {
    parser.fail(0, "incomplete header line (the header is written "
                   "atomically — this file is damaged, not torn)");
  }
  const auto fields = split_fields(*header_line);
  if (fields.size() != 11 || fields[0] != kJournalMagic) {
    parser.fail(0, "not a " + std::string(kJournalMagic) + " header: \"" +
                       std::string(*header_line) + "\"");
  }
  journal.grid_hash = parser.field_hex(fields[1], 0, "grid hash");
  journal.master_seed = parser.field_hex(fields[2], 0, "master seed");
  journal.trials = parser.field_uint(fields[3], 0, "trials");
  journal.total_cells = parser.field_uint(fields[4], 0, "total cell count");
  journal.cell_begin = parser.field_uint(fields[5], 0, "cell_begin");
  journal.cell_end = parser.field_uint(fields[6], 0, "cell_end");
  journal.engine = fields[7];
  journal.cd_engine = fields[8];
  const std::size_t header_len =
      parser.field_uint(fields[9], 0, "header length");
  const std::uint64_t header_crc = parser.field_hex(fields[10], 0, "checksum");
  auto header_payload = parser.payload(0, header_len);
  if (!header_payload) {
    parser.fail(0, "truncated header block (the header is written "
                   "atomically — this file is damaged, not torn)");
  }
  journal.csv_header = std::move(*header_payload);
  if (journal.cell_begin > journal.cell_end ||
      journal.cell_end > journal.total_cells) {
    parser.fail(0, "cell range [" + std::to_string(journal.cell_begin) +
                       ", " + std::to_string(journal.cell_end) +
                       ") is not within [0, " +
                       std::to_string(journal.total_cells) + ")");
  }
  {
    ShardManifest identity;
    identity.grid_hash = journal.grid_hash;
    identity.master_seed = journal.master_seed;
    identity.trials = journal.trials;
    identity.total_cells = journal.total_cells;
    identity.cell_begin = journal.cell_begin;
    identity.cell_end = journal.cell_end;
    identity.engine = journal.engine;
    identity.cd_engine = journal.cd_engine;
    if (header_checksum(identity, journal.csv_header) != header_crc) {
      parser.fail(0, "header checksum mismatch — expected " +
                         hex(header_crc) + ", computed " +
                         hex(header_checksum(identity, journal.csv_header)));
    }
  }
  journal.valid_bytes = parser.pos;

  // ---- records ----
  std::vector<bool> seen(journal.cell_end - journal.cell_begin, false);
  while (parser.pos < text.size()) {
    const std::size_t record_start = parser.pos;
    const auto line = parser.next_line();
    if (!line) break;  // torn: the file ends mid-line
    const auto record_fields = split_fields(*line);
    // A complete line (its newline made it to disk) with bad structure
    // cannot come from a torn append — appends are sequential, so a
    // crash only ever removes a suffix. Reject as corruption.
    if (record_fields.size() != 5 || record_fields[0] != kRecordTag) {
      parser.fail(record_start, "malformed record header \"" +
                                    std::string(*line) + "\"");
    }
    CheckpointRecord record;
    record.cell_index = parser.field_uint(record_fields[1], record_start,
                                          "record cell index");
    record.cell_seed =
        parser.field_hex(record_fields[2], record_start, "record cell seed");
    const std::size_t row_len =
        parser.field_uint(record_fields[3], record_start, "record length");
    const std::uint64_t crc =
        parser.field_hex(record_fields[4], record_start, "record checksum");
    auto row = parser.payload(record_start, row_len);
    if (!row) {
      parser.pos = record_start;  // torn: the payload never finished
      break;
    }
    record.row = std::move(*row);
    if (record_checksum(record) != crc) {
      parser.fail(record_start,
                  "record checksum mismatch for cell " +
                      std::to_string(record.cell_index) + " — expected " +
                      hex(crc) + ", computed " + hex(record_checksum(record)) +
                      " (the record is corrupt, not torn)");
    }
    if (record.cell_index < journal.cell_begin ||
        record.cell_index >= journal.cell_end) {
      parser.fail(record_start,
                  "record cell index " + std::to_string(record.cell_index) +
                      " is outside the shard range [" +
                      std::to_string(journal.cell_begin) + ", " +
                      std::to_string(journal.cell_end) + ")");
    }
    if (seen[record.cell_index - journal.cell_begin]) {
      parser.fail(record_start,
                  "duplicate record for cell " +
                      std::to_string(record.cell_index) +
                      " — each cell must be journaled exactly once");
    }
    seen[record.cell_index - journal.cell_begin] = true;
    journal.records.push_back(std::move(record));
    journal.valid_bytes = parser.pos;
  }
  journal.torn_bytes = text.size() - journal.valid_bytes;
  return journal;
}

namespace {

/// Resume-time identity check: the journal must describe exactly the
/// shard the caller is about to run.
void validate_journal_against_plan(const CheckpointJournal& journal,
                                   const std::string& path,
                                   const ShardManifest& identity,
                                   const std::string& csv_header) {
  const auto fail = [&path](const std::string& message) {
    throw std::invalid_argument("checkpoint resume " + path + ": " + message);
  };
  if (journal.grid_hash != identity.grid_hash) {
    fail("grid fingerprint " + hex(journal.grid_hash) + " != " +
         hex(identity.grid_hash) +
         " — the journal was written for a different grid");
  }
  if (journal.master_seed != identity.master_seed) {
    fail("master seed " + hex(journal.master_seed) + " != " +
         hex(identity.master_seed) +
         " — resume under the seed the journal was started with");
  }
  if (journal.trials != identity.trials) {
    fail("trials " + std::to_string(journal.trials) + " != " +
         std::to_string(identity.trials));
  }
  if (journal.engine != identity.engine ||
      journal.cd_engine != identity.cd_engine) {
    fail("engine configuration (" + journal.engine + ", " +
         journal.cd_engine + ") != (" + identity.engine + ", " +
         identity.cd_engine + ")");
  }
  if (journal.total_cells != identity.total_cells ||
      journal.cell_begin != identity.cell_begin ||
      journal.cell_end != identity.cell_end) {
    fail("cell range [" + std::to_string(journal.cell_begin) + ", " +
         std::to_string(journal.cell_end) + ") of " +
         std::to_string(journal.total_cells) + " != planned [" +
         std::to_string(identity.cell_begin) + ", " +
         std::to_string(identity.cell_end) + ") of " +
         std::to_string(identity.total_cells));
  }
  if (journal.csv_header != csv_header) {
    fail("CSV header \"" + journal.csv_header +
         "\" does not match this build's sweep CSV header \"" + csv_header +
         "\"");
  }
}

}  // namespace

CheckpointRunResult run_sweep_shard_checkpointed(
    std::span<const SweepCell> cells, const ShardOptions& shard_options,
    const SweepOptions& sweep_options, const CheckpointRunOptions& options) {
  if (options.journal_path.empty()) {
    throw std::invalid_argument(
        "checkpoint: CheckpointRunOptions::journal_path is required");
  }
  const std::string& path = options.journal_path;
  ShardPlan plan = plan_shards(cells, shard_options);
  const std::size_t range = plan.cell_end - plan.cell_begin;
  const std::string csv_header = sweep_csv_header();

  CheckpointRunResult result;
  result.manifest = ShardManifest{.csv = {},
                                  .engine = engine_name(sweep_options.engine),
                                  .cd_engine =
                                      engine_name(sweep_options.cd_engine),
                                  .grid_hash = plan.grid_hash,
                                  .master_seed = sweep_options.seed,
                                  .trials = sweep_options.trials,
                                  .total_cells = plan.total_cells,
                                  .shard_index = plan.shard_index,
                                  .shard_count = plan.shard_count,
                                  .cell_begin = plan.cell_begin,
                                  .cell_end = plan.cell_end,
                                  .cell_seeds = {}};
  result.manifest.cell_seeds.reserve(range);
  for (std::size_t j = 0; j < range; ++j) {
    result.manifest.cell_seeds.push_back(channel::derive_stream_seed(
        sweep_options.seed, plan.cells[j].seed_stream));
  }

  std::vector<std::optional<std::string>> rows(range);
  const bool exists = std::filesystem::exists(path);
  if (options.resume) {
    if (!exists) {
      throw std::invalid_argument(
          "checkpoint resume: journal " + path +
          " does not exist — nothing to resume (run fresh instead)");
    }
    const CheckpointJournal journal = read_checkpoint_journal(path);
    validate_journal_against_plan(journal, path, result.manifest, csv_header);
    const std::size_t header_columns = split_csv_row(csv_header).size();
    for (const CheckpointRecord& record : journal.records) {
      const std::size_t j = record.cell_index - plan.cell_begin;
      if (record.cell_seed != result.manifest.cell_seeds[j]) {
        throw std::invalid_argument(
            "checkpoint resume " + path + ": cell " +
            std::to_string(record.cell_index) + " was journaled under seed " +
            hex(record.cell_seed) + " but the plan derives " +
            hex(result.manifest.cell_seeds[j]) +
            " — the journal belongs to a different partition");
      }
      // Row cross-check: the journaled bytes must actually be one CSV
      // row of this shard — right column count, cell_seed column equal
      // to the record seed — so a writer bug cannot smuggle a foreign
      // row through an otherwise-valid checksum.
      const auto row_fields = split_csv_row(record.row);
      if (row_fields.size() != header_columns) {
        throw std::invalid_argument(
            "checkpoint resume " + path + ": cell " +
            std::to_string(record.cell_index) + " row has " +
            std::to_string(row_fields.size()) + " columns, expected " +
            std::to_string(header_columns));
      }
      const auto row_seed = parse_csv_unsigned(row_fields[4]);
      if (!row_seed || *row_seed != record.cell_seed) {
        throw std::invalid_argument(
            "checkpoint resume " + path + ": cell " +
            std::to_string(record.cell_index) +
            " row carries cell_seed \"" + row_fields[4] +
            "\" but the record was journaled under " +
            hex(record.cell_seed));
      }
      rows[j] = record.row;
      ++result.replayed_cells;
    }
    if (journal.torn_bytes > 0) {
      std::error_code ec;
      std::filesystem::resize_file(path, journal.valid_bytes, ec);
      if (ec) {
        throw IoError("cannot truncate torn tail of " + path + ": " +
                      ec.message());
      }
    }
  } else {
    if (exists) {
      throw std::invalid_argument(
          "checkpoint: journal " + path +
          " already exists — resume it or remove it before starting fresh");
    }
    atomic_write_file(path,
                      format_checkpoint_header(result.manifest, csv_header));
  }

  std::unique_ptr<CheckpointSink> sink = options.sink_factory
                                             ? options.sink_factory(path)
                                             : open_file_checkpoint_sink(path);

  // One history-tree cache across the per-cell run_sweep calls, so a
  // checkpointed CD sweep expands each (policy, k, horizon) tree once,
  // matching the monolithic run_sweep's amortization.
  const channel::HistoryTreeCache tree_cache;
  SweepOptions cell_options = sweep_options;
  if (cell_options.cd_engine == CdEngine::kHistoryTree &&
      cell_options.tree_cache == nullptr) {
    cell_options.tree_cache = &tree_cache;
  }

  for (std::size_t j = 0; j < range; ++j) {
    if (rows[j].has_value()) continue;
    if (options.interrupted && options.interrupted()) break;
    if (options.max_cells != 0 && result.executed_cells >= options.max_cells) {
      break;
    }
    if (options.on_cell_start) options.on_cell_start(plan.cell_begin + j);
    auto cell_results =
        run_sweep(std::span<const SweepCell>(&plan.cells[j], 1), cell_options);
    SweepResult cell_result = std::move(cell_results.front());
    cell_result.cell_index = plan.cell_begin + j;
    CheckpointRecord record{.cell_index = cell_result.cell_index,
                            .cell_seed = cell_result.cell_seed,
                            .row = sweep_csv_row(cell_result)};
    // Append + fsync per cell: after this returns, a crash at any
    // later byte boundary preserves this cell.
    sink->append(format_checkpoint_record(record));
    sink->sync();
    rows[j] = std::move(record.row);
    ++result.executed_cells;
    if (options.on_cell_executed) {
      options.on_cell_executed(plan.cell_begin + j);
    }
  }

  for (const auto& row : rows) {
    if (!row.has_value()) ++result.remaining_cells;
  }
  if (result.remaining_cells == 0) {
    result.status = CheckpointRunStatus::kCompleted;
    std::string csv = csv_header;
    csv += '\n';
    for (const auto& row : rows) {
      csv += *row;
      csv += '\n';
    }
    result.csv = std::move(csv);
  } else {
    result.status = CheckpointRunStatus::kInterrupted;
  }
  return result;
}

}  // namespace crp::harness
