#include "harness/fit.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace crp::harness {

namespace {

void check_inputs(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("x and y must have equal length");
  }
  if (x.size() < 2) {
    throw std::invalid_argument("need at least two points");
  }
}

double mean_of(std::span<const double> v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

std::vector<double> ranks_of(std::span<const double> v) {
  std::vector<std::size_t> order(v.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(v.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) +
                             static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t t = i; t <= j; ++t) ranks[order[t]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

OriginFit fit_through_origin(std::span<const double> x,
                             std::span<const double> y) {
  check_inputs(x, y);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  if (sxx == 0.0) throw std::invalid_argument("x is identically zero");
  OriginFit fit;
  fit.slope = sxy / sxx;
  const double y_mean = mean_of(y);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - fit.slope * x[i];
    ss_res += r * r;
    const double d = y[i] - y_mean;
    ss_tot += d * d;
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  check_inputs(x, y);
  const double x_mean = mean_of(x);
  const double y_mean = mean_of(y);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - x_mean) * (x[i] - x_mean);
    sxy += (x[i] - x_mean) * (y[i] - y_mean);
  }
  if (sxx == 0.0) throw std::invalid_argument("x has zero variance");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = y_mean - fit.slope * x_mean;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += r * r;
    const double d = y[i] - y_mean;
    ss_tot += d * d;
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  check_inputs(x, y);
  const double x_mean = mean_of(x);
  const double y_mean = mean_of(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - x_mean) * (y[i] - y_mean);
    sxx += (x[i] - x_mean) * (x[i] - x_mean);
    syy += (y[i] - y_mean) * (y[i] - y_mean);
  }
  if (sxx == 0.0 || syy == 0.0) {
    throw std::invalid_argument("inputs have zero variance");
  }
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  check_inputs(x, y);
  const auto rx = ranks_of(x);
  const auto ry = ranks_of(y);
  return pearson(rx, ry);
}

}  // namespace crp::harness
