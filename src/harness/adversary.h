// Exact adversarial analysis of deterministic advice protocols.
//
// The Section 3 bounds are worst-case over the adversary's choice of
// participant set P. `worst_case_deterministic_rounds` (measure.h)
// approximates that maximum by sampling; this module computes it
// EXACTLY by enumerating every k-subset of [n] — exponential, so meant
// for the small-(n, k) regimes where it both validates the sampler and
// pins the Table 2 constants to the round.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/protocol.h"
#include "core/advice.h"

namespace crp::harness {

struct ExactWorstCase {
  /// Maximum rounds over all participant sets of the given size.
  std::size_t rounds = 0;
  /// A witness set achieving the maximum.
  std::vector<std::size_t> witness;
  /// Number of participant sets enumerated.
  std::size_t sets_checked = 0;
  /// True iff every enumerated set was solved within the budget.
  bool all_solved = true;
};

/// Enumerates every k-subset of {0..n-1} and runs the protocol with the
/// advice function on each. Cost is C(n, k) full executions — keep
/// C(n, k) under ~10^6. The enumeration is embarrassingly parallel:
/// workers steal fixed blocks of combination ranks (the same block
/// scheduler as the Monte-Carlo harness), unrank the block's first set
/// via the combinatorial number system, and advance lexicographically
/// from there; the fold visits blocks in rank order, so the result —
/// witness included — is identical to the serial scan at any thread
/// count (`threads`: 0 = all hardware threads, 1 = serial).
ExactWorstCase exact_worst_case(const channel::DeterministicProtocol& protocol,
                                const core::AdviceFunction& advice,
                                std::size_t n, std::size_t k,
                                bool collision_detection,
                                std::size_t max_rounds = 1 << 16,
                                std::size_t threads = 0);

/// Same maximum taken over ALL set sizes 1..max_k.
ExactWorstCase exact_worst_case_all_sizes(
    const channel::DeterministicProtocol& protocol,
    const core::AdviceFunction& advice, std::size_t n, std::size_t max_k,
    bool collision_detection, std::size_t max_rounds = 1 << 16,
    std::size_t threads = 0);

}  // namespace crp::harness
