// Summary statistics for Monte-Carlo round-complexity measurements.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace crp::harness {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< sample standard deviation
  double ci95 = 0.0;     ///< 1.96 * stddev / sqrt(count)
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string describe() const;
};

/// Computes summary statistics over `samples` (empty input -> zeros).
SummaryStats summarize(std::span<const double> samples);

/// Linear interpolation percentile (q in [0, 1]) of a sorted copy.
double percentile(std::span<const double> samples, double q);

}  // namespace crp::harness
