// Summary statistics for Monte-Carlo round-complexity measurements.
//
// Two equivalent inputs: a raw sample vector (summarize/percentile,
// the seed path) or an exact counting histogram over integer values
// (summarize_counts/percentile_counts, the streaming accumulator
// path — see harness/accumulate.h). Count, min, max, mean, and every
// quantile agree bit for bit between the two: both read the same
// integers, and the histogram evaluates the identical interpolation
// arithmetic on the order statistics the sorted vector would hold.
// Only stddev/ci95 may differ in the last floating-point bits (the
// vector sums squared deviations in sample order, the histogram per
// bin).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace crp::harness {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< sample standard deviation
  double ci95 = 0.0;     ///< 1.96 * stddev / sqrt(count)
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string describe() const;
};

/// Computes summary statistics over `samples` (empty input -> zeros).
SummaryStats summarize(std::span<const double> samples);

/// Linear interpolation percentile (q in [0, 1]) of a sorted copy.
double percentile(std::span<const double> samples, double q);

/// Histogram counterpart of summarize(): `counts[v]` is the number of
/// samples with integer value v. All-zero counts -> zeros.
SummaryStats summarize_counts(std::span<const std::uint64_t> counts);

/// Histogram counterpart of percentile(): the same linear-interpolation
/// quantile, read from bin counts instead of a sorted copy.
double percentile_counts(std::span<const std::uint64_t> counts, double q);

}  // namespace crp::harness
