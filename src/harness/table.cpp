#include "harness/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace crp::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("table needs at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt(std::size_t value) { return std::to_string(value); }

}  // namespace crp::harness
