#include "harness/sparkline.h"

#include <algorithm>
#include <cmath>

namespace crp::harness {

std::string sparkline(std::span<const double> values, std::size_t width) {
  static constexpr char kLevels[] = " .:-=+*#%@";
  constexpr std::size_t kNumLevels = sizeof(kLevels) - 2;  // index 0..9
  if (values.empty() || width == 0) return "";
  const std::size_t points = std::min(width, values.size());
  std::string out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Sample the value at the end of this stride window.
    const std::size_t index =
        ((i + 1) * values.size()) / points - 1;
    const double clamped = std::clamp(values[index], 0.0, 1.0);
    const auto level = static_cast<std::size_t>(
        std::llround(clamped * static_cast<double>(kNumLevels)));
    out.push_back(kLevels[level]);
  }
  return out;
}

}  // namespace crp::harness
