#include "harness/exact.h"

#include <cmath>
#include <stdexcept>

namespace crp::harness {

double success_probability(std::size_t k, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("probability outside [0, 1]");
  }
  if (k == 0 || p == 0.0) return 0.0;
  if (p == 1.0) return k == 1 ? 1.0 : 0.0;
  // k p (1-p)^{k-1}, computed in log space for large k.
  const double log_value = std::log(static_cast<double>(k)) + std::log(p) +
                           static_cast<double>(k - 1) * std::log1p(-p);
  return std::exp(log_value);
}

RoundOutcomeProbabilities round_outcome_probabilities(std::size_t k,
                                                      double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("probability outside [0, 1]");
  }
  RoundOutcomeProbabilities out;
  if (k == 0 || p == 0.0) {
    out.silence = 1.0;
    return out;
  }
  out.silence =
      p == 1.0 ? 0.0
               : std::exp(static_cast<double>(k) * std::log1p(-p));
  out.success = success_probability(k, p);
  out.collision = std::max(0.0, 1.0 - out.silence - out.success);
  return out;
}

ExactProfile exact_profile_no_cd(const channel::ProbabilitySchedule& schedule,
                                 std::size_t k, std::size_t horizon) {
  ExactProfile profile;
  profile.solve_by.assign(horizon + 1, 0.0);
  double alive = 1.0;       // Pr(not solved before round r)
  double expectation = 0.0;
  for (std::size_t r = 0; r < horizon; ++r) {
    const double s = success_probability(k, schedule.probability(r));
    const double solve_here = alive * s;
    expectation += solve_here * static_cast<double>(r + 1);
    alive *= (1.0 - s);
    profile.solve_by[r + 1] = 1.0 - alive;
  }
  profile.tail_mass = alive;
  profile.truncated_expectation =
      expectation + alive * static_cast<double>(horizon + 1);
  return profile;
}

double exact_expected_rounds_no_cd(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    double tail_bound, std::size_t max_horizon) {
  double alive = 1.0;
  double expectation = 0.0;
  for (std::size_t r = 0; r < max_horizon; ++r) {
    const double s = success_probability(k, schedule.probability(r));
    expectation += alive * s * static_cast<double>(r + 1);
    alive *= (1.0 - s);
    if (alive < tail_bound) return expectation / (1.0 - alive);
  }
  throw std::runtime_error(
      "tail mass did not fall below the bound within max_horizon; "
      "the schedule may be unable to solve this participant count");
}

ExactProfile exact_profile_cd(const channel::CollisionPolicy& policy,
                              std::size_t k, std::size_t horizon,
                              double prune_below) {
  ExactProfile profile;
  profile.solve_by.assign(horizon + 1, 0.0);
  double expectation = 0.0;
  double solved_mass = 0.0;
  double pruned_mass = 0.0;

  // Depth-first enumeration of the history tree. Each node carries the
  // probability of reaching it; children follow silence (bit 0) and
  // collision (bit 1); success terminates the branch.
  struct Frame {
    channel::BitString history;
    double reach;
  };
  std::vector<Frame> stack;
  stack.push_back({{}, 1.0});
  std::vector<double> solve_at(horizon, 0.0);  // mass solving in round r
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const std::size_t round = frame.history.size();
    if (round >= horizon) continue;  // contributes to tail via solved sum
    if (frame.reach < prune_below) {
      pruned_mass += frame.reach;
      continue;
    }
    const double p = policy.probability(frame.history);
    const auto outcome = round_outcome_probabilities(k, p);
    solve_at[round] += frame.reach * outcome.success;
    if (outcome.silence > 0.0) {
      Frame child;
      child.history = frame.history;
      child.history.push_back(false);
      child.reach = frame.reach * outcome.silence;
      stack.push_back(std::move(child));
    }
    if (outcome.collision > 0.0) {
      Frame child;
      child.history = std::move(frame.history);
      child.history.push_back(true);
      child.reach = frame.reach * outcome.collision;
      stack.push_back(std::move(child));
    }
  }
  for (std::size_t r = 0; r < horizon; ++r) {
    solved_mass += solve_at[r];
    expectation += solve_at[r] * static_cast<double>(r + 1);
    profile.solve_by[r + 1] = solved_mass;
  }
  profile.tail_mass = std::max(0.0, 1.0 - solved_mass);
  profile.truncated_expectation =
      expectation + profile.tail_mass * static_cast<double>(horizon + 1);
  (void)pruned_mass;  // included in tail_mass by construction
  return profile;
}

}  // namespace crp::harness
