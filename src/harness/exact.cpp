#include "harness/exact.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harness/history_tree.h"

namespace crp::harness {

double success_probability(std::size_t k, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("probability outside [0, 1]");
  }
  if (k == 0 || p == 0.0) return 0.0;
  if (p == 1.0) return k == 1 ? 1.0 : 0.0;
  // k p (1-p)^{k-1}, computed in log space for large k.
  const double log_value = std::log(static_cast<double>(k)) + std::log(p) +
                           static_cast<double>(k - 1) * std::log1p(-p);
  return std::exp(log_value);
}

RoundOutcomeProbabilities round_outcome_probabilities(std::size_t k,
                                                      double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("probability outside [0, 1]");
  }
  RoundOutcomeProbabilities out;
  if (k == 0 || p == 0.0) {
    out.silence = 1.0;
    return out;
  }
  out.silence =
      p == 1.0 ? 0.0
               : std::exp(static_cast<double>(k) * std::log1p(-p));
  out.success = success_probability(k, p);
  out.collision = std::max(0.0, 1.0 - out.silence - out.success);
  return out;
}

ExactProfile exact_profile_no_cd(const channel::ProbabilitySchedule& schedule,
                                 std::size_t k, std::size_t horizon) {
  ExactProfile profile;
  profile.solve_by.assign(horizon + 1, 0.0);
  double alive = 1.0;       // Pr(not solved before round r)
  double expectation = 0.0;
  for (std::size_t r = 0; r < horizon; ++r) {
    const double s = success_probability(k, schedule.probability(r));
    const double solve_here = alive * s;
    expectation += solve_here * static_cast<double>(r + 1);
    alive *= (1.0 - s);
    profile.solve_by[r + 1] = 1.0 - alive;
  }
  profile.tail_mass = alive;
  profile.truncated_expectation =
      expectation + alive * static_cast<double>(horizon + 1);
  return profile;
}

double exact_expected_rounds_no_cd(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    double tail_bound, std::size_t max_horizon) {
  double alive = 1.0;
  double expectation = 0.0;
  for (std::size_t r = 0; r < max_horizon; ++r) {
    const double s = success_probability(k, schedule.probability(r));
    expectation += alive * s * static_cast<double>(r + 1);
    alive *= (1.0 - s);
    if (alive < tail_bound) return expectation / (1.0 - alive);
  }
  throw std::runtime_error(
      "tail mass did not fall below the bound within max_horizon; "
      "the schedule may be unable to solve this participant count");
}

ExactProfile exact_profile_cd(const channel::CollisionPolicy& policy,
                              std::size_t k, std::size_t horizon,
                              double prune_below, std::size_t threads) {
  // The enumeration itself lives in harness/history_tree.h (shared
  // with the sampling engine); a profile only needs the per-round
  // masses, so node storage is skipped and no node cap applies.
  HistoryTreeOptions options;
  options.horizon = horizon;
  options.prune_below = prune_below;
  options.threads = threads;
  options.store_nodes = false;
  options.max_nodes = ~std::size_t{0};
  const HistoryTree tree = expand_history_tree(policy, k, options);

  ExactProfile profile;
  profile.solve_by.assign(horizon + 1, 0.0);
  double expectation = 0.0;
  for (std::size_t r = 0; r < horizon; ++r) {
    expectation += tree.solve_at[r] * static_cast<double>(r + 1);
    profile.solve_by[r + 1] = tree.solve_cdf[r];
  }
  // Pruned and frontier mass both land in the tail by construction.
  profile.tail_mass = std::max(0.0, 1.0 - tree.solved_mass());
  profile.truncated_expectation =
      expectation + profile.tail_mass * static_cast<double>(horizon + 1);
  return profile;
}

}  // namespace crp::harness
