// Scaling-law diagnostics: the reproduction does not chase the paper's
// absolute constants (there are none), it checks *shapes*. These
// helpers quantify how well measured round counts track a candidate
// bound shape (2^{2H}, H^2, log n / 2^b, ...).
#pragma once

#include <span>
#include <string>

namespace crp::harness {

/// Least-squares slope of y = a * x through the origin, plus the R^2 of
/// that restricted model.
struct OriginFit {
  double slope = 0.0;
  double r_squared = 0.0;
};
OriginFit fit_through_origin(std::span<const double> x,
                             std::span<const double> y);

/// Ordinary least squares y = a x + b with R^2.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (monotonicity check robust to the exact
/// functional form).
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace crp::harness
