// Shared content-hashing primitive for the harness' durable formats:
// the grid fingerprint (harness/shard.h) and the checkpoint journal's
// per-record checksums (harness/checkpoint.h) both need a hash that is
// stable across processes, machines, and architectures — artifacts
// written on one host are validated on another.
//
/// Determinism: FNV-1a over an explicit little-endian byte
/// serialization; no pointers, no host byte order, no padding bytes
/// ever enter the state.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace crp::harness {

/// FNV-1a 64-bit accumulator. Feed values through the typed helpers;
/// `state` is the digest at any point.
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ULL;

  void byte(unsigned char b) {
    state ^= b;
    state *= 0x100000001b3ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// Length-prefixed, so consecutive strings cannot alias ("ab","c"
  /// vs "a","bc" hash apart).
  void str(std::string_view s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
};

}  // namespace crp::harness
