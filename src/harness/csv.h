// CSV import/export: load learned size distributions produced by an
// external model, and export measurement sweeps for plotting. Formats:
//
//   distribution CSV:  header optional, rows "size,probability"
//                      (sizes in [2, n]; probabilities renormalized)
//   measurement CSV:   one header row then one row per sweep point.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "harness/measure.h"
#include "info/distribution.h"

namespace crp::harness {

/// Parses a distribution from "size,probability" rows. `n` is the
/// maximum network size; rows must satisfy 2 <= size <= n. Lines that
/// are empty, start with '#', or form a non-numeric header are skipped.
/// Probabilities are renormalized to sum to 1.
/// Throws std::invalid_argument on malformed rows.
info::SizeDistribution read_size_distribution_csv(std::istream& in,
                                                  std::size_t n);

/// Convenience: reads from a file path.
info::SizeDistribution read_size_distribution_csv_file(
    const std::string& path, std::size_t n);

/// Writes "size,probability" rows (only positive-probability sizes).
void write_size_distribution_csv(std::ostream& out,
                                 const info::SizeDistribution& dist);

/// The one support-table validator behind every entry point that
/// builds a SizeDistribution from explicit (size, probability) rows —
/// read_size_distribution_csv and the grid-spec inline support tables
/// (harness/gridspec.h) — so the acceptance rules cannot drift between
/// the two: sizes must be integers in [2, n] (finiteness checked
/// before any comparison, so NaN cannot slip past an ordering test),
/// probabilities finite and non-negative, duplicate sizes accumulate,
/// and the total renormalizes to exactly mass 1 at build time.
class SupportTableBuilder {
 public:
  /// `n` is the maximum network size; throws std::invalid_argument
  /// when n < 2.
  explicit SupportTableBuilder(std::size_t n);

  /// Validates and accumulates one entry. `where` prefixes any
  /// rejection (the CSV reader passes "line N", the grid-spec reader
  /// the offending field's name and position).
  void add(double size, double probability, const std::string& where);

  /// Renormalizes and builds the distribution. Throws
  /// std::invalid_argument when no positive-probability entry was
  /// added; `where` prefixes the error when non-empty.
  info::SizeDistribution build(const std::string& where = {}) const;

  /// True until the first successfully validated entry.
  bool empty() const { return !saw_data_; }

 private:
  std::vector<double> probs_;
  double total_ = 0.0;
  bool saw_data_ = false;
};

/// Strict numeric field parsing, shared by the distribution reader,
/// the shard manifest/CSV readers (harness/shard.h), and CLI flag
/// parsing. parse_csv_unsigned accepts plain decimal digits only —
/// no sign, point, exponent, or words like nan/inf — and nullopt's
/// on anything else (including 64-bit overflow). parse_csv_finite
/// accepts exactly what strtod fully consumes *and* is finite:
/// "nan"/"inf" parse but are rejected, because a NaN slips through
/// ordering checks and poisons aggregates.
std::optional<std::uint64_t> parse_csv_unsigned(const std::string& field);
std::optional<double> parse_csv_finite(const std::string& field);

/// Minimal RFC-4180 quoting: a field containing a comma, double quote,
/// CR, or LF is wrapped in double quotes with embedded quotes doubled;
/// any other field passes through unchanged (so existing all-plain
/// outputs are byte-stable). CsvWriter applies this to every header
/// and row cell.
std::string csv_quote(const std::string& field);

/// Quote-aware inverse of csv_quote over one CSV line: splits on
/// unquoted commas and unescapes quoted fields (doubled quotes, and
/// commas inside quotes survive). Unlike the lenient distribution
/// parser it preserves whitespace and empty trailing fields exactly.
/// Throws std::invalid_argument on an unterminated quote or trailing
/// garbage after a closing quote.
std::vector<std::string> split_csv_row(const std::string& line);

/// One serialized CSV row (no trailing newline): cells joined with
/// commas, each through csv_quote. This is *the* row serialization —
/// CsvWriter::row and the sweep/checkpoint layers all emit rows
/// through it, so a row journaled per cell (harness/checkpoint.h) is
/// byte-identical to the same row inside a full write_sweep_csv dump.
std::string csv_row_string(const std::vector<std::string>& cells);

/// A row-oriented CSV writer for sweep results. Cells are quoted with
/// csv_quote on the way out, so algorithm/size-source names containing
/// commas or quotes round-trip through split_csv_row instead of
/// silently corrupting the row.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Appends one row; must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: a measurement summary as columns
  /// mean,ci95,p50,p90,p99,success_rate.
  static std::vector<std::string> measurement_cells(const Measurement& m);
  static std::vector<std::string> measurement_header();

 private:
  std::ostream& out_;
  std::size_t columns_;
};

}  // namespace crp::harness
