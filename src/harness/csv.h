// CSV import/export: load learned size distributions produced by an
// external model, and export measurement sweeps for plotting. Formats:
//
//   distribution CSV:  header optional, rows "size,probability"
//                      (sizes in [2, n]; probabilities renormalized)
//   measurement CSV:   one header row then one row per sweep point.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/measure.h"
#include "info/distribution.h"

namespace crp::harness {

/// Parses a distribution from "size,probability" rows. `n` is the
/// maximum network size; rows must satisfy 2 <= size <= n. Lines that
/// are empty, start with '#', or form a non-numeric header are skipped.
/// Probabilities are renormalized to sum to 1.
/// Throws std::invalid_argument on malformed rows.
info::SizeDistribution read_size_distribution_csv(std::istream& in,
                                                  std::size_t n);

/// Convenience: reads from a file path.
info::SizeDistribution read_size_distribution_csv_file(
    const std::string& path, std::size_t n);

/// Writes "size,probability" rows (only positive-probability sizes).
void write_size_distribution_csv(std::ostream& out,
                                 const info::SizeDistribution& dist);

/// A row-oriented CSV writer for sweep results.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Appends one row; must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: a measurement summary as columns
  /// mean,ci95,p50,p90,p99,success_rate.
  static std::vector<std::string> measurement_cells(const Measurement& m);
  static std::vector<std::string> measurement_header();

 private:
  std::ostream& out_;
  std::size_t columns_;
};

}  // namespace crp::harness
