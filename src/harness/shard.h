// Multi-process sweep sharding: partition a sweep grid's cells across
// processes (or machines), run each partition independently, and
// reassemble the shards into exactly the result the single-process
// run_sweep() would have produced — bit for bit.
//
// The contract that makes this safe is the sweep scheduler's seed
// derivation (harness/sweep.h): a cell's measurement is a function of
// (cell configuration, derive_stream_seed(master_seed, stream), trials)
// only. plan_shards() pins every cell's seed stream to its *global*
// grid index before slicing, so any subset of shards reproduces the
// full-grid seeds regardless of how the grid was cut; the shard
// partition is never allowed to change a cell seed.
//
// A shard run is self-describing: its CSV rows (write_sweep_csv format,
// one per cell) travel with a JSON manifest recording the grid
// fingerprint, master seed, trial count, the shard's cell range, and
// every per-cell seed. merge_shards()/merge_shard_csvs() validate the
// manifests against each other — same grid/seed/trials, ranges tile
// the grid with no gaps or overlaps, per-cell seeds cross-check — and
// reassemble the results in cell order, so a `for i in 0..N` loop of
// `crp_shard run --shard i/N` followed by `crp_shard merge` is
// byte-identical to one monolithic run (tests/shard_test.cpp and the
// CI shard-smoke step pin this down).
//
/// Ownership: ShardPlan copies its SweepCells out of the grid, but the
/// cells still *borrow* their schedules/policies/distributions — the
/// referenced objects must outlive run_sweep_shard(), exactly as for
/// run_sweep(). Manifests and ShardCsv own plain data.
///
/// Thread-safety: run_sweep_shard() is run_sweep() on a sub-span and
/// inherits its synchronization contract; the plan/merge/serialize
/// helpers are pure functions over their arguments.
///
/// Determinism: the partition is a pure function of (total cells,
/// shard_count) — balanced contiguous ranges — and seed pinning is a
/// pure function of the grid index, so plans are stable across
/// processes, machines, and shard counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "harness/sweep.h"

namespace crp::harness {

/// Which slice of the grid a shard owns. Either the balanced
/// shard_index/shard_count partition (the default) or an explicit
/// [cell_begin, cell_end) range for drivers that balance by hand.
struct ShardOptions {
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;
  /// Explicit cell range override; both kAutoRange = use the balanced
  /// partition. When set, both must be set, with
  /// cell_begin <= cell_end <= total cells.
  static constexpr std::size_t kAutoRange = ~std::size_t{0};
  std::size_t cell_begin = kAutoRange;
  std::size_t cell_end = kAutoRange;
};

/// A deterministic slice of a grid: the shard's cells with their seed
/// streams pinned to their global grid indices, plus the full-grid
/// identity (total cell count and fingerprint) every shard of the same
/// grid agrees on.
struct ShardPlan {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t cell_begin = 0;  ///< global index of the first owned cell
  std::size_t cell_end = 0;    ///< one past the last owned cell
  std::size_t total_cells = 0;
  std::uint64_t grid_hash = 0;  ///< grid_fingerprint of the *full* grid
  /// The owned cells, in grid order. Cells that defaulted to
  /// kSeedStreamFromIndex carry their global index as an explicit
  /// seed_stream; explicitly pinned streams are kept as-is.
  std::vector<SweepCell> cells;
};

/// Content fingerprint of a full grid: FNV-1a over every cell's
/// algorithm name and *behavior* (a deterministic probe of the
/// schedule's early round probabilities and period, or of the
/// policy's probabilities on a fixed family of short collision
/// histories), size-source name and contents (the distribution's n
/// and compact support — sizes and masses — or the fixed k), round
/// budget, trial override, and resolved seed stream. Pointer-free, so
/// two processes that build the same grid independently agree; two
/// grids differing in any of the above — including distribution
/// contents or algorithm parameters under identical names — do not.
std::uint64_t grid_fingerprint(std::span<const SweepCell> cells);

/// Deterministically partitions the grid and returns shard
/// `options.shard_index`'s plan. Balanced contiguous ranges: shard i
/// of N owns [i*C/N, (i+1)*C/N), which is disjoint, covering, and
/// stable under re-planning. Throws std::invalid_argument on an empty
/// grid, shard_index >= shard_count, a half-set or out-of-range
/// explicit cell range, or a cell whose explicit seed_stream equals
/// the reserved kSeedStreamFromIndex sentinel.
ShardPlan plan_shards(std::span<const SweepCell> cells,
                      const ShardOptions& options);
ShardPlan plan_shards(const SweepGrid& grid, const ShardOptions& options);

/// The self-describing identity of one executed shard. `csv` names the
/// sibling CSV artifact (relative filename; empty for in-memory use).
/// Seeds and the grid hash serialize as hex strings — JSON numbers are
/// doubles and cannot carry 64 bits.
struct ShardManifest {
  std::string csv;
  /// Engine configuration the shard ran under (SweepOptions::engine /
  /// cd_engine, serialized by name). Engines agree only up to
  /// Monte-Carlo noise, so a merge across mismatched engines would
  /// silently mix distributions — the merge validates these too.
  std::string engine = "batch";
  std::string cd_engine = "simulate";
  std::uint64_t grid_hash = 0;
  std::uint64_t master_seed = 0;
  std::size_t trials = 0;  ///< SweepOptions::trials (cell overrides hash
                           ///< into grid_hash instead)
  std::size_t total_cells = 0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;
  std::size_t cell_begin = 0;
  std::size_t cell_end = 0;
  /// The derived seed of every owned cell, in grid order — the
  /// cross-check that catches a merge of shards whose partition
  /// changed cell seeds.
  std::vector<std::uint64_t> cell_seeds;
};

/// Canonical serialized names of the engine enums, as recorded in
/// shard manifests and checkpoint journal headers (harness/
/// checkpoint.h) — the merge and resume validators compare these.
std::string engine_name(NoCdEngine engine);
std::string engine_name(CdEngine engine);

/// One executed shard: manifest + results whose cell_index is the
/// *global* grid index.
struct ShardRun {
  ShardManifest manifest;
  std::vector<SweepResult> results;
};

/// Plans shard `shard_options.shard_index` and executes its cells with
/// run_sweep() under `options`. Every result is bit-identical to the
/// corresponding entry of a monolithic run_sweep() over the full grid
/// with the same options.
ShardRun run_sweep_shard(std::span<const SweepCell> cells,
                         const ShardOptions& shard_options,
                         const SweepOptions& options = {});
ShardRun run_sweep_shard(const SweepGrid& grid,
                         const ShardOptions& shard_options,
                         const SweepOptions& options = {});

/// Validates the shards' manifests against each other — identical
/// grid_hash/master_seed/trials/total_cells, cell ranges tiling
/// [0, total_cells) with no gaps or overlaps, per-shard results
/// matching the manifest's range and cell seeds — and returns the
/// results reassembled in cell order, exactly run_sweep()'s output.
/// Throws std::invalid_argument naming the offending shard(s) and
/// field on any mismatch.
std::vector<SweepResult> merge_shards(std::span<const ShardRun> shards);

/// Writes/reads the manifest JSON. The reader is strict: unknown or
/// missing fields, non-integer numerics (anything beyond plain
/// digits — "nan", "inf", signs, exponents), and malformed hex seeds
/// are all rejected with the field name in the error.
void write_shard_manifest(std::ostream& out, const ShardManifest& manifest);
ShardManifest read_shard_manifest(std::istream& in);

/// JSON string escaping as the manifest writer emits it ('"', '\\',
/// and control characters escaped; everything else verbatim) — shared
/// with crp_shard's `plan --json` output so every JSON artifact the
/// toolchain produces quotes strings identically.
std::string json_escape(const std::string& s);

/// A shard CSV re-read for merging: the raw header and row lines
/// (passed through verbatim so the merged file is byte-identical to
/// the monolithic write) plus the parsed cell_seed column. Parsing is
/// quote-tolerant (split_csv_row), and numeric columns are validated:
/// budget/trials/cell_seed must be plain unsigned integers and the
/// measurement summary columns finite doubles — the same non-finite
/// guard the distribution reader applies.
struct ShardCsv {
  std::string header;
  std::vector<std::string> rows;
  std::vector<std::uint64_t> row_seeds;
};
ShardCsv read_shard_csv(std::istream& in);

/// One shard's on-disk artifact pair, ready to merge.
struct ShardArtifact {
  ShardManifest manifest;
  ShardCsv csv;
};

/// Reads one shard's artifact pair from disk: the manifest at
/// `manifest_path` plus the CSV it names, resolved relative to the
/// manifest's directory. Validation errors (std::invalid_argument)
/// are re-thrown with the offending path prepended; unreadable files
/// throw IoError (harness/checkpoint.h). Shared by `crp_shard merge`
/// and the supervisor's merge/backfill loop.
ShardArtifact read_shard_artifact_file(const std::string& manifest_path);

/// CSV-level merge: validates the manifest set (as merge_shards does)
/// plus header equality, per-shard row counts, and row-seed /
/// manifest-seed agreement, then writes one header and every row in
/// cell order. Rows pass through byte-for-byte, so the output is
/// byte-identical to write_sweep_csv over the monolithic run.
void merge_shard_csvs(std::ostream& out,
                      std::span<const ShardArtifact> shards);

/// A contiguous run of grid cells no shard covered: [begin, end).
struct MissingCellRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// What a gap-tolerant merge produced: the grid identity, how much of
/// it is present, and exactly which cell ranges are missing — the
/// work-list a scheduler feeds back as `crp_shard run --cells B:E`
/// (or `resume`) invocations.
struct PartialMergeReport {
  std::uint64_t grid_hash = 0;
  std::size_t total_cells = 0;
  std::size_t present_cells = 0;
  std::vector<MissingCellRange> missing;  ///< in cell order; empty = complete
};

/// merge_shard_csvs, but *gaps degrade gracefully*: cells covered by
/// no shard are reported in the returned PartialMergeReport instead
/// of failing the merge, and the present rows are still written in
/// cell order. Every other validation is unchanged — mismatched grid
/// identity, overlapping ranges, row/seed disagreements all still
/// throw. The output CSV equals the monolithic CSV with the missing
/// rows deleted (byte-wise, for the rows that are present).
PartialMergeReport merge_shard_csvs_partial(
    std::ostream& out, std::span<const ShardArtifact> shards);

/// Serializes the report as the machine-readable
/// crp-partial-merge-v1 JSON: grid hash (hex string), total/present
/// cell counts, and the missing ranges as [begin, end) pairs.
void write_partial_merge_report(std::ostream& out,
                                const PartialMergeReport& report);

}  // namespace crp::harness
