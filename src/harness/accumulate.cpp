#include "harness/accumulate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crp::harness {

void RoundHistogram::add_solved(std::uint64_t round) {
  if (round >= counts_.size()) {
    std::size_t size = std::max<std::size_t>(64, counts_.size());
    while (size <= round) size *= 2;
    counts_.resize(size);
  }
  ++counts_[round];
  ++trials_;
  ++solved_;
}

void RoundHistogram::add_columns(std::span<const std::uint8_t> solved,
                                 std::span<const std::uint64_t> rounds) {
  if (solved.size() != rounds.size()) {
    throw std::invalid_argument("result columns disagree on length");
  }
  for (std::size_t t = 0; t < solved.size(); ++t) {
    if (solved[t]) {
      add_solved(rounds[t]);
    } else {
      add_unsolved();
    }
  }
}

void RoundHistogram::merge(const RoundHistogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size());
  }
  for (std::size_t v = 0; v < other.counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  trials_ += other.trials_;
  solved_ += other.solved_;
}

bool operator==(const RoundHistogram& a, const RoundHistogram& b) {
  if (a.trials_ != b.trials_ || a.solved_ != b.solved_) return false;
  const std::size_t shared = std::min(a.counts_.size(), b.counts_.size());
  if (!std::equal(a.counts_.begin(), a.counts_.begin() + shared,
                  b.counts_.begin())) {
    return false;
  }
  const auto& longer = a.counts_.size() > shared ? a.counts_ : b.counts_;
  return std::all_of(longer.begin() + shared, longer.end(),
                     [](std::uint64_t c) { return c == 0; });
}

double RoundHistogram::success_rate() const {
  return trials_ == 0 ? 0.0
                      : static_cast<double>(solved_) /
                            static_cast<double>(trials_);
}

std::uint64_t RoundHistogram::solved_by(double budget) const {
  std::uint64_t within = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (static_cast<double>(v) <= budget) within += counts_[v];
  }
  return within;
}

void MomentAccumulator::add(std::uint64_t value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += static_cast<unsigned __int128>(value) * value;
}

void MomentAccumulator::add_column(std::span<const std::uint64_t> values) {
  for (const std::uint64_t value : values) add(value);
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double MomentAccumulator::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) /
                           static_cast<double>(count_);
}

double MomentAccumulator::stddev() const {
  if (count_ < 2) return 0.0;
  // Exact integer moments; the (small) cancellation in sum_sq - n*mean^2
  // happens once, in long double, on read.
  const long double n = static_cast<long double>(count_);
  const long double m = static_cast<long double>(sum_) / n;
  const long double ss =
      static_cast<long double>(sum_sq_) - n * m * m;
  return ss <= 0.0L
             ? 0.0
             : static_cast<double>(std::sqrt(ss / (n - 1.0L)));
}

}  // namespace crp::harness
