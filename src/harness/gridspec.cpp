#include "harness/gridspec.h"

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/checkpoint.h"
#include "harness/csv.h"
#include "predict/families.h"

namespace crp::harness {

namespace {

// ---- strict JSON tree with positions ----
//
// A minimal JSON reader for exactly the spec grammar: objects, arrays,
// strings, and numbers. Everything else — true/false/null, bare words
// such as nan or inf, duplicate keys, unescaped control characters,
// trailing content — is rejected at the position it occurs, with the
// enclosing field path named, so a corrupted or hand-mangled spec
// fails loudly instead of parsing into a silently different grid.
// Numbers are kept as raw tokens; the schema layer below validates
// them through the same parse_csv_unsigned / parse_csv_finite the
// shard manifest and CSV readers use.

struct Member;

struct Json {
  enum class Kind { kObject, kArray, kString, kNumber };
  Kind kind = Kind::kString;
  std::size_t line = 1;
  std::size_t column = 1;
  std::string text;  // string contents, or the raw number token
  std::vector<Member> members;  // kObject
  std::vector<Json> items;      // kArray
};

struct Member {
  std::string key;
  std::size_t line = 1;
  std::size_t column = 1;
  Json value;
};

std::string position(std::size_t line, std::size_t column) {
  return "line " + std::to_string(line) + ", column " +
         std::to_string(column);
}

[[noreturn]] void fail_at(const Json& at, const std::string& message) {
  throw std::invalid_argument("grid spec: " + position(at.line, at.column) +
                              ": " + message);
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    const Json root = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after the spec object");
    }
    if (root.kind != Json::Kind::kObject) {
      fail_at(root, "the spec must be a JSON object");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::string where;
    if (!path_.empty()) {
      where = " (in field \"";
      for (std::size_t i = 0; i < path_.size(); ++i) {
        if (i > 0 && path_[i][0] != '[') where += '.';
        where += path_[i];
      }
      where += "\")";
    }
    throw std::invalid_argument("grid spec: " + position(line_, col_) + ": " +
                                message + where);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\r' ||
                      peek() == '\n')) {
      advance();
    }
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) {
      std::string message = "expected '";
      message.push_back(c);
      message += eof() ? "', got end of input"
                       : std::string("', got '") + peek() + "'";
      fail(message);
    }
    advance();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (!eof() && peek() != '"') {
      char c = peek();
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      advance();
      if (c == '\\') {
        if (eof()) break;
        const char esc = peek();
        advance();
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // Mirrors the shard-manifest reader: accept \u00xx (one
            // byte), reject anything wider — the writers never emit it.
            unsigned code = 0;
            for (int d = 0; d < 4; ++d) {
              const char hc = peek();
              if (!std::isxdigit(static_cast<unsigned char>(hc))) {
                fail("malformed \\u escape in string");
              }
              code = code * 16 +
                     static_cast<unsigned>(hc <= '9'   ? hc - '0'
                                           : hc <= 'F' ? hc - 'A' + 10
                                                       : hc - 'a' + 10);
              advance();
            }
            if (code > 0xFF) fail("\\u escape beyond one byte in string");
            c = static_cast<char>(code);
            break;
          }
          default:
            fail("unsupported escape \\" + std::string(1, esc) +
                 " in string");
        }
      }
      out.push_back(c);
    }
    if (eof()) fail("unterminated string");
    advance();  // closing quote
    return out;
  }

  Json parse_value() {
    skip_ws();
    if (eof()) fail("unexpected end of input; expected a value");
    Json value;
    value.line = line_;
    value.column = col_;
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      value.kind = Json::Kind::kString;
      value.text = parse_string();
      return value;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      value.kind = Json::Kind::kNumber;
      while (!eof() && (peek() == '-' || peek() == '+' || peek() == '.' ||
                        peek() == 'e' || peek() == 'E' ||
                        (peek() >= '0' && peek() <= '9'))) {
        value.text.push_back(peek());
        advance();
      }
      return value;
    }
    fail(std::string("unexpected character '") + c +
         "' — expected an object, array, string, or number "
         "(true/false/null and bare words such as nan or inf are not "
         "part of the grid-spec grammar)");
  }

  Json parse_object() {
    Json object;
    object.kind = Json::Kind::kObject;
    object.line = line_;
    object.column = col_;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      advance();
      return object;
    }
    while (true) {
      skip_ws();
      Member member;
      member.line = line_;
      member.column = col_;
      member.key = parse_string();
      for (const Member& existing : object.members) {
        if (existing.key == member.key) {
          throw std::invalid_argument(
              "grid spec: " + position(member.line, member.column) +
              ": duplicate field \"" + member.key + "\"");
        }
      }
      expect(':');
      path_.push_back(member.key);
      member.value = parse_value();
      path_.pop_back();
      object.members.push_back(std::move(member));
      skip_ws();
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}');
      return object;
    }
  }

  Json parse_array() {
    Json array;
    array.kind = Json::Kind::kArray;
    array.line = line_;
    array.column = col_;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      advance();
      return array;
    }
    while (true) {
      path_.push_back("[" + std::to_string(array.items.size()) + "]");
      array.items.push_back(parse_value());
      path_.pop_back();
      skip_ws();
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
  std::vector<std::string> path_;
};

// ---- schema layer ----

constexpr const char* kSpecFormat = "crp-grid-spec-v1";

const Json* find(const Json& object, const std::string& key) {
  for (const Member& member : object.members) {
    if (member.key == key) return &member.value;
  }
  return nullptr;
}

const Json& require(const Json& object, const std::string& key,
                    const std::string& what) {
  const Json* value = find(object, key);
  if (value == nullptr) {
    fail_at(object, "missing field \"" + key + "\" of " + what);
  }
  return *value;
}

/// Rejects members outside `allowed` — a misspelled knob must fail by
/// name, never silently fall back to a default.
void reject_unknown(const Json& object,
                    std::initializer_list<const char*> allowed,
                    const std::string& what) {
  for (const Member& member : object.members) {
    bool known = false;
    for (const char* key : allowed) {
      if (member.key == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument(
          "grid spec: " + position(member.line, member.column) +
          ": unknown field \"" + member.key + "\" of " + what);
    }
  }
}

const Json& expect_kind(const Json& value, Json::Kind kind,
                        const std::string& desc) {
  if (value.kind != kind) {
    const char* name = kind == Json::Kind::kObject   ? "an object"
                       : kind == Json::Kind::kArray  ? "an array"
                       : kind == Json::Kind::kString ? "a string"
                                                     : "a number";
    fail_at(value, desc + " must be " + name);
  }
  return value;
}

std::string get_string(const Json& value, const std::string& desc) {
  return expect_kind(value, Json::Kind::kString, desc).text;
}

std::uint64_t get_uint(const Json& value, const std::string& desc) {
  expect_kind(value, Json::Kind::kNumber, desc);
  const auto parsed = parse_csv_unsigned(value.text);
  if (!parsed) {
    fail_at(value, desc + " must be a plain non-negative integer, got \"" +
                       value.text + "\"");
  }
  return *parsed;
}

double get_finite(const Json& value, const std::string& desc) {
  expect_kind(value, Json::Kind::kNumber, desc);
  const auto parsed = parse_csv_finite(value.text);
  if (!parsed) {
    fail_at(value, desc + " must be a finite number, got \"" + value.text +
                       "\"");
  }
  return *parsed;
}

/// An "0x..." hex string carrying a full 64-bit value (JSON numbers
/// are doubles and cannot), exactly as shard manifests serialize
/// seeds.
std::uint64_t get_hex_u64(const Json& value, const std::string& desc) {
  const std::string raw = get_string(value, desc);
  if (raw.size() < 3 || raw.size() > 18 || raw[0] != '0' || raw[1] != 'x') {
    fail_at(value,
            desc + " must be an \"0x...\" hex string, got \"" + raw + "\"");
  }
  std::uint64_t result = 0;
  for (std::size_t i = 2; i < raw.size(); ++i) {
    const char c = raw[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      fail_at(value, desc + " has a non-hex digit in \"" + raw + "\"");
    }
    result = result * 16 + static_cast<std::uint64_t>(digit);
  }
  return result;
}

/// The parse-time state: n, the named condensed sources, and the named
/// algorithm/size-source bindings the cells reference.
struct SpecContext {
  std::size_t n = 0;
  std::size_t ranges = 0;
  std::map<std::string, info::CondensedDistribution> sources;
  std::map<std::string, SweepAlgorithm> algorithms;
  std::map<std::string, SweepSizes> sizes;
};

info::CondensedDistribution parse_source(const Json& body,
                                         const std::string& key,
                                         const SpecContext& ctx) {
  const std::string what = "source \"" + key + "\"";
  expect_kind(body, Json::Kind::kObject, what);
  const std::string family =
      get_string(require(body, "family", what), "field \"family\" of " + what);
  const auto uint_field = [&](const char* name) {
    return get_uint(require(body, name, what),
                    "field \"" + std::string(name) + "\" of " + what);
  };
  const auto finite_field = [&](const char* name) {
    return get_finite(require(body, name, what),
                      "field \"" + std::string(name) + "\" of " + what);
  };
  if (family == "uniform_ranges") {
    reject_unknown(body, {"family", "m"}, what);
    const std::uint64_t m = uint_field("m");
    if (m < 1 || m > ctx.ranges) {
      fail_at(require(body, "m", what),
              "field \"m\" of " + what + " must lie in [1, " +
                  std::to_string(ctx.ranges) + "] (|L(n)| ranges for n = " +
                  std::to_string(ctx.n) + ")");
    }
    return predict::uniform_over_ranges(ctx.ranges, m);
  }
  if (family == "geometric_ranges") {
    reject_unknown(body, {"family", "decay"}, what);
    const double decay = finite_field("decay");
    if (decay <= 0.0 || decay > 1.0) {
      fail_at(require(body, "decay", what),
              "field \"decay\" of " + what + " must lie in (0, 1]");
    }
    return predict::geometric_ranges(ctx.ranges, decay);
  }
  if (family == "zipf_ranges") {
    reject_unknown(body, {"family", "s"}, what);
    const double s = finite_field("s");
    if (s < 0.0) {
      fail_at(require(body, "s", what),
              "field \"s\" of " + what + " must be >= 0");
    }
    return predict::zipf_ranges(ctx.ranges, s);
  }
  if (family == "bimodal_ranges") {
    reject_unknown(body, {"family", "range_a", "range_b", "eps"}, what);
    const std::uint64_t a = uint_field("range_a");
    const std::uint64_t b = uint_field("range_b");
    if (a < 1 || a > ctx.ranges || b < 1 || b > ctx.ranges) {
      fail_at(body, "fields \"range_a\"/\"range_b\" of " + what +
                        " must lie in [1, " + std::to_string(ctx.ranges) +
                        "]");
    }
    const double eps = finite_field("eps");
    if (eps < 0.0 || eps > 1.0) {
      fail_at(require(body, "eps", what),
              "field \"eps\" of " + what + " must lie in [0, 1]");
    }
    return predict::bimodal_ranges(ctx.ranges, a, b, eps);
  }
  if (family == "spiked_uniform") {
    reject_unknown(body, {"family", "spike_mass"}, what);
    if (ctx.ranges < 2) {
      fail_at(body, what + ": family \"spiked_uniform\" needs >= 2 ranges "
                          "(n >= 5)");
    }
    const double mass = finite_field("spike_mass");
    if (mass <= 0.0 || mass >= 1.0) {
      fail_at(require(body, "spike_mass", what),
              "field \"spike_mass\" of " + what + " must lie in (0, 1)");
    }
    return predict::spiked_uniform(ctx.ranges, mass);
  }
  fail_at(require(body, "family", what),
          "field \"family\" of " + what + " names no known family \"" +
              family +
              "\" (known: uniform_ranges, geometric_ranges, zipf_ranges, "
              "bimodal_ranges, spiked_uniform)");
}

const info::CondensedDistribution& resolve_source(const Json& ref,
                                                  const std::string& desc,
                                                  const SpecContext& ctx) {
  const std::string name = get_string(ref, desc);
  const auto it = ctx.sources.find(name);
  if (it == ctx.sources.end()) {
    fail_at(ref, desc + " references undefined source \"" + name + "\"");
  }
  return it->second;
}

void parse_algorithm(const Json& body, const std::string& key,
                     SpecContext& ctx, GridSpec& spec) {
  const std::string what = "algorithm \"" + key + "\"";
  expect_kind(body, Json::Kind::kObject, what);
  const std::string type =
      get_string(require(body, "type", what), "field \"type\" of " + what);
  std::string display = key;
  if (const Json* name = find(body, "name")) {
    display = get_string(*name, "field \"name\" of " + what);
  }
  SweepAlgorithm algorithm{.name = display};
  if (type == "likelihood") {
    reject_unknown(body, {"type", "name", "source", "cycle"}, what);
    const auto& source = resolve_source(require(body, "source", what),
                                        "field \"source\" of " + what, ctx);
    core::CycleMode cycle = core::CycleMode::kRepeatPass;
    if (const Json* mode = find(body, "cycle")) {
      const std::string text =
          get_string(*mode, "field \"cycle\" of " + what);
      if (text == "repeat") {
        cycle = core::CycleMode::kRepeatPass;
      } else if (text == "proportional") {
        cycle = core::CycleMode::kProportional;
      } else {
        fail_at(*mode, "field \"cycle\" of " + what +
                           " must be \"repeat\" or \"proportional\", got \"" +
                           text + "\"");
      }
    }
    spec.schedules.push_back(
        std::make_unique<core::LikelihoodOrderedSchedule>(source, cycle));
    algorithm.schedule = spec.schedules.back().get();
  } else if (type == "coded") {
    reject_unknown(body, {"type", "name", "source", "backend"}, what);
    const auto& source = resolve_source(require(body, "source", what),
                                        "field \"source\" of " + what, ctx);
    core::CodeBackend backend = core::CodeBackend::kHuffman;
    if (const Json* mode = find(body, "backend")) {
      const std::string text =
          get_string(*mode, "field \"backend\" of " + what);
      if (text == "huffman") {
        backend = core::CodeBackend::kHuffman;
      } else if (text == "shannon-fano") {
        backend = core::CodeBackend::kShannonFano;
      } else {
        fail_at(*mode, "field \"backend\" of " + what +
                           " must be \"huffman\" or \"shannon-fano\", "
                           "got \"" + text + "\"");
      }
    }
    spec.policies.push_back(
        std::make_unique<core::CodedSearchPolicy>(source, backend));
    algorithm.policy = spec.policies.back().get();
  } else {
    fail_at(require(body, "type", what),
            "field \"type\" of " + what + " names no known type \"" + type +
                "\" (known: likelihood, coded)");
  }
  ctx.algorithms.emplace(key, std::move(algorithm));
}

void parse_sizes(const Json& body, const std::string& key,
                 const GridSpecOptions& options, SpecContext& ctx,
                 GridSpec& spec) {
  const std::string what = "sizes \"" + key + "\"";
  expect_kind(body, Json::Kind::kObject, what);
  const std::string type =
      get_string(require(body, "type", what), "field \"type\" of " + what);
  std::string display = key;
  if (const Json* name = find(body, "name")) {
    display = get_string(*name, "field \"name\" of " + what);
  }
  SweepSizes sizes{.name = display};
  if (type == "lift") {
    reject_unknown(body, {"type", "name", "source", "placement"}, what);
    const auto& source = resolve_source(require(body, "source", what),
                                        "field \"source\" of " + what, ctx);
    const Json& placement_field = require(body, "placement", what);
    const std::string placement_text =
        get_string(placement_field, "field \"placement\" of " + what);
    predict::RangePlacement placement;
    if (placement_text == "low") {
      placement = predict::RangePlacement::kLowEndpoint;
    } else if (placement_text == "high") {
      placement = predict::RangePlacement::kHighEndpoint;
    } else if (placement_text == "uniform") {
      placement = predict::RangePlacement::kUniform;
    } else {
      fail_at(placement_field,
              "field \"placement\" of " + what +
                  " must be \"low\", \"high\", or \"uniform\", got \"" +
                  placement_text + "\"");
    }
    spec.distributions.push_back(std::make_unique<info::SizeDistribution>(
        predict::lift(source, ctx.n, placement)));
    sizes.distribution = spec.distributions.back().get();
  } else if (type == "support") {
    reject_unknown(body, {"type", "name", "entries"}, what);
    const Json& entries = require(body, "entries", what);
    expect_kind(entries, Json::Kind::kArray,
                "field \"entries\" of " + what);
    if (entries.items.empty()) {
      fail_at(entries, "field \"entries\" of " + what + " must be a "
                       "non-empty array of [size, probability] pairs");
    }
    SupportTableBuilder builder(ctx.n);
    for (std::size_t i = 0; i < entries.items.size(); ++i) {
      const Json& entry = entries.items[i];
      const std::string entry_desc =
          "field \"entries\"[" + std::to_string(i) + "] of " + what;
      expect_kind(entry, Json::Kind::kArray, entry_desc);
      if (entry.items.size() != 2) {
        fail_at(entry, entry_desc + " must be a [size, probability] pair");
      }
      const double size = get_finite(entry.items[0], entry_desc + " size");
      const double prob =
          get_finite(entry.items[1], entry_desc + " probability");
      // The shared validator (harness/csv.h): the same rules the
      // distribution-CSV reader applies, so inline tables and CSV
      // references cannot drift.
      builder.add(size, prob,
                  "grid spec: " + position(entry.line, entry.column) + ": " +
                      entry_desc);
    }
    spec.distributions.push_back(std::make_unique<info::SizeDistribution>(
        builder.build("grid spec: " + position(entries.line, entries.column) +
                      ": field \"entries\" of " + what)));
    sizes.distribution = spec.distributions.back().get();
  } else if (type == "csv") {
    reject_unknown(body, {"type", "name", "path"}, what);
    const Json& path_field = require(body, "path", what);
    const std::string raw_path =
        get_string(path_field, "field \"path\" of " + what);
    if (raw_path.empty()) {
      fail_at(path_field, "field \"path\" of " + what + " must be "
                          "non-empty");
    }
    std::filesystem::path resolved(raw_path);
    if (resolved.is_relative() && !options.base_dir.empty()) {
      resolved = std::filesystem::path(options.base_dir) / resolved;
    }
    std::ifstream in(resolved);
    if (!in) {
      throw IoError("cannot open size-distribution CSV \"" +
                    resolved.string() + "\" (field \"path\" of " + what +
                    ", " + position(path_field.line, path_field.column) +
                    ")");
    }
    try {
      spec.distributions.push_back(std::make_unique<info::SizeDistribution>(
          read_size_distribution_csv(in, ctx.n)));
    } catch (const std::invalid_argument& error) {
      throw std::invalid_argument("grid spec: " + what + " CSV \"" +
                                  resolved.string() + "\": " + error.what());
    }
    sizes.distribution = spec.distributions.back().get();
  } else if (type == "fixed_k") {
    reject_unknown(body, {"type", "name", "k"}, what);
    const Json& k_field = require(body, "k", what);
    const std::uint64_t k = get_uint(k_field, "field \"k\" of " + what);
    if (k < 2) {
      fail_at(k_field, "field \"k\" of " + what +
                           " must be >= 2 (the paper assumes k >= 2 WLOG)");
    }
    sizes.fixed_k = static_cast<std::size_t>(k);
  } else {
    fail_at(require(body, "type", what),
            "field \"type\" of " + what + " names no known type \"" + type +
                "\" (known: lift, support, csv, fixed_k)");
  }
  ctx.sizes.emplace(key, std::move(sizes));
}

const SweepAlgorithm& resolve_algorithm(const Json& ref,
                                        const std::string& desc,
                                        const SpecContext& ctx) {
  const std::string name = get_string(ref, desc);
  const auto it = ctx.algorithms.find(name);
  if (it == ctx.algorithms.end()) {
    fail_at(ref, desc + " references undefined algorithm \"" + name + "\"");
  }
  return it->second;
}

const SweepSizes& resolve_sizes(const Json& ref, const std::string& desc,
                                const SpecContext& ctx) {
  const std::string name = get_string(ref, desc);
  const auto it = ctx.sizes.find(name);
  if (it == ctx.sizes.end()) {
    fail_at(ref, desc + " references undefined sizes \"" + name + "\"");
  }
  return it->second;
}

std::size_t parse_budget(const Json& value, const std::string& desc) {
  const std::uint64_t budget = get_uint(value, desc);
  if (budget == 0) fail_at(value, desc + " must be >= 1");
  return static_cast<std::size_t>(budget);
}

SweepCell parse_cell(const Json& body, std::size_t index,
                     const SpecContext& ctx) {
  const std::string what = "cell [" + std::to_string(index) + "]";
  expect_kind(body, Json::Kind::kObject, what);
  reject_unknown(body, {"algorithm", "sizes", "budget", "trials",
                        "seed_stream"},
                 what);
  SweepCell cell;
  cell.algorithm = resolve_algorithm(require(body, "algorithm", what),
                                     "field \"algorithm\" of " + what, ctx);
  cell.sizes = resolve_sizes(require(body, "sizes", what),
                             "field \"sizes\" of " + what, ctx);
  cell.max_rounds = parse_budget(require(body, "budget", what),
                                 "field \"budget\" of " + what);
  if (const Json* trials = find(body, "trials")) {
    const std::uint64_t value =
        get_uint(*trials, "field \"trials\" of " + what);
    if (value == 0) {
      fail_at(*trials, "field \"trials\" of " + what +
                           " must be >= 1 (0 would silently mean \"use the "
                           "sweep default\" — omit the field instead)");
    }
    cell.trials = static_cast<std::size_t>(value);
  }
  if (const Json* stream = find(body, "seed_stream")) {
    const std::string desc = "field \"seed_stream\" of " + what;
    const std::uint64_t value = get_hex_u64(*stream, desc);
    try {
      cell.seed_stream = pinned_seed_stream(value);
    } catch (const std::invalid_argument&) {
      fail_at(*stream,
              desc + ": 0xffffffffffffffff is reserved as the "
                     "derive-from-grid-index sentinel (kSeedStreamFromIndex) "
                     "— omit the field for index-derived seeds");
    }
  }
  return cell;
}

}  // namespace

GridSpec parse_grid_spec(std::string_view text,
                         const GridSpecOptions& options) {
  const Json root = JsonParser(text).parse();
  reject_unknown(root,
                 {"format", "name", "n", "sources", "algorithms", "sizes",
                  "cells", "product"},
                 "the spec");

  const Json& format = require(root, "format", "the spec");
  const std::string format_text = get_string(format, "field \"format\"");
  if (format_text != kSpecFormat) {
    fail_at(format, "unsupported spec format \"" + format_text +
                        "\" (expected \"" + kSpecFormat + "\")");
  }

  GridSpec spec;
  if (const Json* name = find(root, "name")) {
    spec.name = get_string(*name, "field \"name\"");
  }

  SpecContext ctx;
  const Json& n_field = require(root, "n", "the spec");
  const std::uint64_t n = get_uint(n_field, "field \"n\"");
  if (n < 4) {
    fail_at(n_field, "field \"n\" must be >= 4 (a network of at least two "
                     "geometric ranges)");
  }
  ctx.n = static_cast<std::size_t>(n);
  ctx.ranges = info::num_ranges(ctx.n);
  spec.n = ctx.n;

  if (const Json* sources = find(root, "sources")) {
    expect_kind(*sources, Json::Kind::kObject, "field \"sources\"");
    for (const Member& member : sources->members) {
      ctx.sources.emplace(member.key,
                          parse_source(member.value, member.key, ctx));
    }
  }
  if (const Json* algorithms = find(root, "algorithms")) {
    expect_kind(*algorithms, Json::Kind::kObject, "field \"algorithms\"");
    for (const Member& member : algorithms->members) {
      parse_algorithm(member.value, member.key, ctx, spec);
    }
  }
  if (const Json* sizes = find(root, "sizes")) {
    expect_kind(*sizes, Json::Kind::kObject, "field \"sizes\"");
    for (const Member& member : sizes->members) {
      parse_sizes(member.value, member.key, options, ctx, spec);
    }
  }

  if (const Json* cells = find(root, "cells")) {
    expect_kind(*cells, Json::Kind::kArray, "field \"cells\"");
    for (std::size_t i = 0; i < cells->items.size(); ++i) {
      spec.cells.push_back(parse_cell(cells->items[i], i, ctx));
    }
  }

  if (const Json* product = find(root, "product")) {
    const std::string what = "the \"product\" block";
    expect_kind(*product, Json::Kind::kObject, what);
    reject_unknown(*product, {"algorithms", "sizes", "budgets"}, what);
    const auto ref_list = [&](const char* key) -> const Json& {
      const Json& list = require(*product, key, what);
      expect_kind(list, Json::Kind::kArray,
                  "field \"" + std::string(key) + "\" of " + what);
      if (list.items.empty()) {
        fail_at(list, "field \"" + std::string(key) + "\" of " + what +
                          " must be non-empty");
      }
      return list;
    };
    const Json& algorithms = ref_list("algorithms");
    const Json& sizes = ref_list("sizes");
    const Json& budgets = ref_list("budgets");
    // The same cross order SweepGrid::cells() appends: algorithm-major,
    // then sizes, then budget.
    for (const Json& a : algorithms.items) {
      const SweepAlgorithm& algorithm = resolve_algorithm(
          a, "field \"algorithms\" of " + what, ctx);
      for (const Json& s : sizes.items) {
        const SweepSizes& size_source =
            resolve_sizes(s, "field \"sizes\" of " + what, ctx);
        for (const Json& b : budgets.items) {
          SweepCell cell;
          cell.algorithm = algorithm;
          cell.sizes = size_source;
          cell.max_rounds =
              parse_budget(b, "field \"budgets\" of " + what);
          spec.cells.push_back(std::move(cell));
        }
      }
    }
  }

  if (spec.cells.empty()) {
    fail_at(root, "the spec defines no cells — declare a \"cells\" array "
                  "and/or a \"product\" block");
  }
  return spec;
}

GridSpec read_grid_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open grid spec " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw IoError("cannot read grid spec " + path);
  }
  GridSpecOptions options;
  options.base_dir = std::filesystem::path(path).parent_path().string();
  try {
    return parse_grid_spec(buffer.str(), options);
  } catch (const std::invalid_argument& error) {
    // Validation errors name the file as well as the field — a fleet
    // scheduler's logs point straight at the offending artifact.
    throw std::invalid_argument(path + ": " + error.what());
  }
}

}  // namespace crp::harness
