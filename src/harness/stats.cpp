#include "harness/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace crp::harness {

namespace {

/// percentile() on already-sorted samples; summarize() sorts once and
/// reads every quantile from the same copy.
double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile q must lie in [0, 1]");
  }
  const double position = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(position));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(position));
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// The value of the index-th order statistic of the multiset the
/// counts describe (index < total count).
double value_at_rank(std::span<const std::uint64_t> counts,
                     std::uint64_t index) {
  std::uint64_t cum = 0;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    cum += counts[v];
    if (cum > index) return static_cast<double>(v);
  }
  return 0.0;  // unreachable for index < total
}

/// percentile() against bin counts: interpolates between the same two
/// order statistics, with the same arithmetic, as percentile_sorted —
/// so the result is bit-identical to the sorted-vector path.
double percentile_counts_total(std::span<const std::uint64_t> counts,
                               std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile q must lie in [0, 1]");
  }
  const double position = q * static_cast<double>(total - 1);
  const auto lo = static_cast<std::uint64_t>(std::floor(position));
  const auto hi = static_cast<std::uint64_t>(std::ceil(position));
  const double frac = position - static_cast<double>(lo);
  return value_at_rank(counts, lo) * (1.0 - frac) +
         value_at_rank(counts, hi) * frac;
}

}  // namespace

double percentile(std::span<const double> samples, double q) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

SummaryStats summarize(std::span<const double> samples) {
  SummaryStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;

  double sum = 0.0;
  stats.min = samples[0];
  stats.max = samples[0];
  for (double x : samples) {
    sum += x;
    stats.min = std::min(stats.min, x);
    stats.max = std::max(stats.max, x);
  }
  stats.mean = sum / static_cast<double>(stats.count);

  double ss = 0.0;
  for (double x : samples) {
    const double d = x - stats.mean;
    ss += d * d;
  }
  if (stats.count > 1) {
    stats.stddev = std::sqrt(ss / static_cast<double>(stats.count - 1));
    stats.ci95 =
        1.96 * stats.stddev / std::sqrt(static_cast<double>(stats.count));
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  stats.p50 = percentile_sorted(sorted, 0.50);
  stats.p90 = percentile_sorted(sorted, 0.90);
  stats.p99 = percentile_sorted(sorted, 0.99);
  return stats;
}

double percentile_counts(std::span<const std::uint64_t> counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  return percentile_counts_total(counts, total, q);
}

SummaryStats summarize_counts(std::span<const std::uint64_t> counts) {
  SummaryStats stats;
  std::uint64_t total = 0;
  // One ascending pass for count, extrema, and the mean. Bin values
  // and counts are exact integers, so the grouped sum equals the
  // trial-order sum of summarize() bit for bit (both are the exact
  // integer total as long as it stays below 2^53).
  double sum = 0.0;
  bool seen = false;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    if (counts[v] == 0) continue;
    total += counts[v];
    sum += static_cast<double>(counts[v]) * static_cast<double>(v);
    if (!seen) {
      stats.min = static_cast<double>(v);
      seen = true;
    }
    stats.max = static_cast<double>(v);
  }
  stats.count = total;
  if (total == 0) return stats;
  stats.mean = sum / static_cast<double>(total);

  // Squared deviations per bin (mathematically exact; may differ from
  // the vector fold's trial-order sum in the last floating-point bits).
  double ss = 0.0;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    if (counts[v] == 0) continue;
    const double d = static_cast<double>(v) - stats.mean;
    ss += static_cast<double>(counts[v]) * d * d;
  }
  if (total > 1) {
    stats.stddev = std::sqrt(ss / static_cast<double>(total - 1));
    stats.ci95 =
        1.96 * stats.stddev / std::sqrt(static_cast<double>(total));
  }
  stats.p50 = percentile_counts_total(counts, total, 0.50);
  stats.p90 = percentile_counts_total(counts, total, 0.90);
  stats.p99 = percentile_counts_total(counts, total, 0.99);
  return stats;
}

std::string SummaryStats::describe() const {
  std::ostringstream out;
  out << "mean=" << mean << " +/- " << ci95 << " (p50=" << p50
      << ", p90=" << p90 << ", max=" << max << ", n=" << count << ")";
  return out.str();
}

}  // namespace crp::harness
