#include "harness/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace crp::harness {

namespace {

/// percentile() on already-sorted samples; summarize() sorts once and
/// reads every quantile from the same copy.
double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile q must lie in [0, 1]");
  }
  const double position = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(position));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(position));
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double percentile(std::span<const double> samples, double q) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

SummaryStats summarize(std::span<const double> samples) {
  SummaryStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;

  double sum = 0.0;
  stats.min = samples[0];
  stats.max = samples[0];
  for (double x : samples) {
    sum += x;
    stats.min = std::min(stats.min, x);
    stats.max = std::max(stats.max, x);
  }
  stats.mean = sum / static_cast<double>(stats.count);

  double ss = 0.0;
  for (double x : samples) {
    const double d = x - stats.mean;
    ss += d * d;
  }
  if (stats.count > 1) {
    stats.stddev = std::sqrt(ss / static_cast<double>(stats.count - 1));
    stats.ci95 =
        1.96 * stats.stddev / std::sqrt(static_cast<double>(stats.count));
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  stats.p50 = percentile_sorted(sorted, 0.50);
  stats.p90 = percentile_sorted(sorted, 0.90);
  stats.p99 = percentile_sorted(sorted, 0.99);
  return stats;
}

std::string SummaryStats::describe() const {
  std::ostringstream out;
  out << "mean=" << mean << " +/- " << ci95 << " (p50=" << p50
      << ", p90=" << p90 << ", max=" << max << ", n=" << count << ")";
  return out.str();
}

}  // namespace crp::harness
