// A tiny ASCII table renderer used by the reproduction benches to print
// the paper-style rows (Table 1, Table 2, divergence sweeps).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace crp::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a separator line under the header; columns are padded
  /// to their widest cell and separated by two spaces.
  void print(std::ostream& out) const;

  std::size_t columns() const { return header_.size(); }
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant decimals.
std::string fmt(double value, int precision = 2);

/// Formats a size_t.
std::string fmt(std::size_t value);

}  // namespace crp::harness
