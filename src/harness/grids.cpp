#include "harness/grids.h"

#include "harness/table.h"
#include "predict/families.h"

namespace crp::harness {

Table1EntropyPoint::Table1EntropyPoint(std::size_t ranges, std::size_t m,
                                       std::size_t n)
    : condensed(predict::uniform_over_ranges(ranges, m)),
      actual(predict::lift(condensed, n,
                           predict::RangePlacement::kHighEndpoint)),
      schedule(condensed),
      policy(condensed),
      h(condensed.entropy()) {}

std::vector<Table1EntropyPoint> table1_entropy_points(std::size_t n) {
  const std::size_t ranges = info::num_ranges(n);
  std::vector<Table1EntropyPoint> points;
  for (std::size_t m = 1; m <= ranges; m *= 2) {
    points.emplace_back(ranges, m, n);
  }
  return points;
}

SweepGrid table1_upper_bound_grid(
    std::span<const Table1EntropyPoint> points) {
  SweepGrid grid;
  for (const auto& point : points) {
    SweepCell no_cd;
    no_cd.algorithm = {.name = "likelihood", .schedule = &point.schedule};
    no_cd.sizes = {.name = "H=" + fmt(point.h, 2),
                   .distribution = &point.actual};
    no_cd.max_rounds = 1 << 18;
    SweepCell cd;
    cd.algorithm = {.name = "coded", .policy = &point.policy};
    cd.sizes = no_cd.sizes;
    cd.max_rounds = 1 << 14;
    grid.add_cell(std::move(no_cd));
    grid.add_cell(std::move(cd));
  }
  return grid;
}

}  // namespace crp::harness
