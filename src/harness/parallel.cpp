#include "harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "channel/rng.h"

namespace crp::harness {

namespace {

/// Overflow-safe ceiling division: totals near SIZE_MAX must not wrap
/// the block count to zero.
std::size_t block_count(std::size_t total, std::size_t block_size) {
  if (block_size == 0) {
    throw std::invalid_argument("block size must be positive");
  }
  return total / block_size + (total % block_size != 0 ? 1 : 0);
}

}  // namespace

std::size_t parallel_worker_count(std::size_t total, std::size_t threads,
                                  std::size_t block_size) {
  const std::size_t blocks = block_count(total, block_size);
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min(threads, std::max<std::size_t>(blocks, 1));
}

void parallel_blocks_indexed(
    std::size_t total, std::size_t threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t block_size) {
  const std::size_t blocks = block_count(total, block_size);
  const std::size_t workers =
      parallel_worker_count(total, threads, block_size);
  if (workers <= 1) {
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * block_size;
      fn(0, begin, std::min(total, begin + block_size));
    }
    return;
  }

  // Workers claim one block per pass over the atomic counter; the
  // block is the load-balancing granule, so the counter stays off the
  // per-trial hot path.
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto worker = [&](std::size_t id) {
    while (true) {
      const std::size_t b = next.fetch_add(1);
      if (b >= blocks) return;
      const std::size_t begin = b * block_size;
      try {
        fn(id, begin, std::min(total, begin + block_size));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker, i);
  for (auto& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
}

void parallel_blocks(std::size_t total, std::size_t threads,
                     const std::function<void(std::size_t, std::size_t)>& fn,
                     std::size_t block_size) {
  parallel_blocks_indexed(
      total, threads,
      [&fn](std::size_t, std::size_t begin, std::size_t end) {
        fn(begin, end);
      },
      block_size);
}

void parallel_trials(std::size_t trials, std::size_t threads,
                     const std::function<void(std::size_t)>& fn) {
  // Small blocks keep per-trial workloads of wildly different lengths
  // load-balanced while amortizing the block claim.
  constexpr std::size_t kChunk = 32;
  parallel_blocks(
      trials, threads,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) fn(t);
      },
      kChunk);
}

Measurement measure_parallel(const Trial& trial, std::size_t trials,
                             std::uint64_t seed, std::size_t threads) {
  std::vector<channel::RunResult> results(trials);
  parallel_trials(trials, threads, [&](std::size_t t) {
    auto rng = channel::derive_rng(seed, t);
    results[t] = trial(t, rng);
  });
  return measurement_from_runs(results);
}

}  // namespace crp::harness
