#include "harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "channel/rng.h"

namespace crp::harness {

void parallel_trials(std::size_t trials, std::size_t threads,
                     const std::function<void(std::size_t)>& fn) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(trials, 1));
  if (threads <= 1) {
    for (std::size_t t = 0; t < trials; ++t) fn(t);
    return;
  }

  // Workers claim fixed-size chunks of trial indices; chunking keeps
  // the atomic counter off the per-trial hot path while still load
  // balancing trials of wildly different lengths.
  constexpr std::size_t kChunk = 32;
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    while (true) {
      const std::size_t begin = next.fetch_add(kChunk);
      if (begin >= trials) return;
      const std::size_t end = std::min(trials, begin + kChunk);
      try {
        for (std::size_t t = begin; t < end; ++t) fn(t);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
}

Measurement measure_parallel(const Trial& trial, std::size_t trials,
                             std::uint64_t seed, std::size_t threads) {
  std::vector<channel::RunResult> results(trials);
  parallel_trials(trials, threads, [&](std::size_t t) {
    auto rng = channel::derive_rng(seed, t);
    results[t] = trial(t, rng);
  });
  return measurement_from_runs(results);
}

}  // namespace crp::harness
