// Reference sweep grids of the paper's reproductions, shared by the
// bench binaries (bench/bench_table1.cpp) and the crp_shard CLI
// (tools/crp_shard.cpp) so both always execute the *same* cells — a
// sharded run of "table1" reproduces exactly the grid the bench
// measures, and a change to the grid cannot silently diverge between
// the two.
//
/// Ownership: Table1EntropyPoint owns the distributions and algorithm
/// objects its sweep cells borrow; keep the point vector alive (and
/// at stable addresses — don't grow it after building cells) until
/// the sweep is done.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/sweep.h"
#include "info/distribution.h"

namespace crp::harness {

/// One Table 1 entropy point: the condensed source uniform over m of
/// |L(n)| geometric ranges, its lifted actual distribution, and the
/// paper's two algorithms configured for it (the Section 2.5
/// likelihood-ordered no-CD schedule, the Section 2.6 coded-search CD
/// policy).
struct Table1EntropyPoint {
  Table1EntropyPoint(std::size_t ranges, std::size_t m, std::size_t n);

  info::CondensedDistribution condensed;
  info::SizeDistribution actual;
  core::LikelihoodOrderedSchedule schedule;
  core::CodedSearchPolicy policy;
  double h;  ///< H(c(X)) in bits
};

/// The entropy sweep for a network of size n: one point per
/// m = 1, 2, 4, ..., |L(n)| ranges of uniform condensed mass.
std::vector<Table1EntropyPoint> table1_entropy_points(std::size_t n);

/// The Table 1 upper-bound grid over `points`: per entropy point, the
/// no-CD likelihood schedule (budget 2^18) and the CD coded-search
/// policy (budget 2^14), each paired with that point's lifted
/// distribution (a diagonal sweep — explicit cells, not a cross
/// product). Cells borrow the points.
SweepGrid table1_upper_bound_grid(std::span<const Table1EntropyPoint> points);

}  // namespace crp::harness
