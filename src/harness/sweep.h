// Sweep-level scheduler: declare a whole grid of measurement
// configurations — algorithm (schedule or policy) × size source ×
// round budget — and execute the cells across the thread pool in one
// call, collecting one Measurement per cell.
//
// This is the execution layer the paper's Table 1/2 and divergence
// sweeps run on: each bench declares its grid, run_sweep() schedules
// the cells, and the results feed harness/table.h rows or
// harness/csv.h exports directly. Cells fold through the streaming
// accumulator layer (harness/accumulate.h): per-cell memory is flat
// in the trial count, and CD cells running the history-tree engine
// share one expansion cache across the whole sweep.
//
/// Ownership: SweepAlgorithm/SweepSizes borrow their schedules,
/// policies, and distributions — the referenced objects must outlive
/// run_sweep(); SweepResults own their Measurements outright.
///
/// Thread-safety: run_sweep() is the synchronization boundary — wide
/// grids hand whole cells to the pool, narrow grids parallelize
/// inside each measurement, and the algorithms under test are only
/// required to be const-callable concurrently (every schedule/policy
/// in the library is).
///
/// Determinism: every cell measures under its own seed, derived from
/// (options.seed, the cell's seed stream) with the same splitmix
/// mixing the per-trial streams use. A cell's result therefore
/// depends only on its own configuration — not on execution order,
/// thread count, or which other cells share the grid — and an entire
/// sweep is replayable from one master seed (tests/sweep_test.cpp
/// pins this down). Cells default their seed stream to their grid
/// index; pin seed_stream explicitly when a grid is built dynamically
/// (e.g. filtered by a CLI flag) and cells must keep stable seeds
/// regardless of which others are present.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "harness/measure.h"
#include "harness/table.h"
#include "info/distribution.h"

namespace crp::harness {

/// Sentinel: derive the cell's seed from its index in the grid.
///
/// The value 0xFFFF'FFFF'FFFF'FFFF is *reserved*: it is the default of
/// SweepCell::seed_stream, and run_sweep cannot distinguish a caller
/// who explicitly pinned it from one who never set the field — an
/// explicit pin would silently fall back to index-derived (and thus
/// grid-position-dependent) seeds, the exact instability pinning is
/// meant to prevent. Route any stream identity that comes from
/// external or computed input (CLI flags, config files, shard plans)
/// through pinned_seed_stream(), which rejects the reserved value.
inline constexpr std::uint64_t kSeedStreamFromIndex = ~std::uint64_t{0};

/// Validates an *explicit* seed-stream identity: returns `stream`
/// unchanged unless it equals the reserved kSeedStreamFromIndex
/// sentinel, in which case it throws std::invalid_argument instead of
/// letting the pin silently decay to index-derived seeds. The shard
/// planner and the crp_shard CLI route every pinned stream through
/// this.
std::uint64_t pinned_seed_stream(std::uint64_t stream);

/// One algorithm under test: exactly one of schedule/policy is
/// non-null (uniform no-CD vs uniform CD). Referenced objects must
/// outlive the sweep.
struct SweepAlgorithm {
  std::string name;
  const channel::ProbabilitySchedule* schedule = nullptr;
  const channel::CollisionPolicy* policy = nullptr;
};

/// One workload: sizes drawn from a distribution (non-null) or fixed
/// at fixed_k. Referenced objects must outlive the sweep.
struct SweepSizes {
  std::string name;
  const info::SizeDistribution* distribution = nullptr;
  std::size_t fixed_k = 0;
};

/// One grid cell: an algorithm evaluated against a workload at a round
/// budget.
struct SweepCell {
  SweepAlgorithm algorithm;
  SweepSizes sizes;
  std::size_t max_rounds = 1 << 20;
  /// Trials for this cell; 0 = SweepOptions::trials.
  std::size_t trials = 0;
  /// Seed stream identity (see header comment).
  std::uint64_t seed_stream = kSeedStreamFromIndex;
};

/// Declarative grid builder: axes cross-multiply, explicit cells (for
/// paired sweeps such as Table 1's per-entropy-point schedule ×
/// matching lifted distribution) append as declared.
class SweepGrid {
 public:
  SweepGrid& add_algorithm(SweepAlgorithm algorithm);
  SweepGrid& add_sizes(SweepSizes sizes);
  SweepGrid& add_budget(std::size_t max_rounds);
  SweepGrid& add_cell(SweepCell cell);

  /// The explicit cells, followed by the cross product algorithm ×
  /// sizes × budget (budgets default to {1 << 20} when none declared).
  std::vector<SweepCell> cells() const;

 private:
  std::vector<SweepAlgorithm> algorithms_;
  std::vector<SweepSizes> sizes_;
  std::vector<std::size_t> budgets_;
  std::vector<SweepCell> cells_;
};

/// Execution knobs for a whole sweep.
struct SweepOptions {
  /// Default trials per cell (cells may override).
  std::size_t trials = 6000;
  /// Master seed; per-cell seeds derive from it.
  std::uint64_t seed = 1;
  /// Worker threads for the whole sweep (0 = all hardware threads).
  std::size_t threads = 0;
  /// Engine for the uniform no-CD cells (CD cells ignore it).
  NoCdEngine engine = NoCdEngine::kBatch;
  /// Engine for the uniform CD cells (no-CD cells ignore it).
  CdEngine cd_engine = CdEngine::kSimulate;
  /// Optional caller-owned history-tree cache for the CD cells; null =
  /// run_sweep builds its own per call. The checkpoint runner
  /// (harness/checkpoint.h) executes cells one run_sweep call at a
  /// time and threads one cache through them, so cells sharing a CD
  /// policy still expand each (policy, k, horizon) tree once. Purely
  /// an amortization: the expansion is deterministic, results are
  /// bit-identical with or without sharing.
  const channel::HistoryTreeCache* tree_cache = nullptr;
};

/// One executed cell.
struct SweepResult {
  SweepCell cell;
  std::size_t cell_index = 0;
  std::uint64_t cell_seed = 0;  ///< the derived seed the cell ran under
  Measurement measurement;
};

/// Executes every cell and returns results in cell order. Grids with
/// at least as many cells as workers hand whole cells to the pool;
/// smaller grids run cells in order and parallelize inside each
/// measurement — the results are identical either way.
std::vector<SweepResult> run_sweep(std::span<const SweepCell> cells,
                                   const SweepOptions& options = {});
std::vector<SweepResult> run_sweep(const SweepGrid& grid,
                                   const SweepOptions& options = {});

/// Renders one row per cell: algorithm, sizes, budget, trials, then
/// the measurement summary columns.
Table sweep_table(std::span<const SweepResult> results);

/// CSV export: algorithm, sizes, budget, trials, cell_seed, then the
/// measurement summary columns (harness/csv.h). cell_seed is the
/// derived seed the cell ran under, so every row is independently
/// replayable — the serialization hook for multi-process sharding
/// (harness/shard.h). Algorithm/size-source names are RFC-4180 quoted
/// on the way out (csv_quote), so names containing commas or quotes
/// survive the round trip through split_csv_row.
void write_sweep_csv(std::ostream& out,
                     std::span<const SweepResult> results);

/// The pieces write_sweep_csv is made of, exposed for cell-granular
/// serialization (harness/checkpoint.h journals one row per completed
/// cell): the header line and one result's row, both without the
/// trailing newline. write_sweep_csv output is exactly
/// `sweep_csv_header() + '\n'` followed by `sweep_csv_row(r) + '\n'`
/// per result — a journaled row replayed verbatim is byte-identical
/// to the row a monolithic dump would have written.
std::string sweep_csv_header();
std::string sweep_csv_row(const SweepResult& result);

}  // namespace crp::harness
