// Tiny ASCII rendering of success profiles (CDF curves) so the benches
// can show curve *shapes* — the thing this reproduction is about —
// directly in terminal output.
#pragma once

#include <span>
#include <string>

namespace crp::harness {

/// Renders values in [0, 1] as an ASCII bar strip, e.g. " .:-=+*#%@".
/// Values are clamped; width characters are consumed evenly across the
/// input (striding when the input is longer than `width`).
std::string sparkline(std::span<const double> values,
                      std::size_t width = 60);

}  // namespace crp::harness
