// Streaming measurement accumulators: fold whole result columns into
// fixed-size state instead of growing per-trial sample vectors.
//
// Round counts of contention-resolution executions are small bounded
// integers (a solve round never exceeds the cell's max_rounds), so the
// full distribution of a 10^8-trial cell fits an *exact counting
// histogram* of O(max observed round) machine words — no quantile
// sketch, no approximation. Quantiles, means, and the one-shot success
// curve read off the histogram exactly; memory per sweep cell is flat
// in the trial count. This is the fold layer measure_blocks() and
// run_sweep() use by default (MeasureOptions::keep_samples restores
// the raw sample vector for consumers that need per-trial values).
//
/// Ownership: accumulators own their bins outright; merging copies
/// counts, never aliases.
///
/// Thread-safety: an accumulator is single-writer — the harness gives
/// each worker its own and merges after the pool drains. merge() and
/// the read accessors are safe on a quiescent accumulator.
///
/// Determinism: every piece of accumulator state is *integral*
/// (uint64 bin counts, 128-bit moment sums), so add and merge are
/// exact and commutative — the folded result is bit-identical at any
/// thread count and any merge order. The harness still merges worker
/// accumulators in a fixed (worker-index) order, so the contract does
/// not even rely on commutativity. Derived floating-point statistics
/// (RoundHistogram::summary()) are computed once, from the merged
/// integer state, in ascending-bin order: counts, min/max, quantiles,
/// and means are bit-identical to the vector fold's summarize() (both
/// sides compute the same exact integers); stddev/ci95 agree to
/// floating-point rounding (the vector fold sums squared deviations in
/// trial order, the histogram per bin — tests/accumulator_test.cpp
/// pins both claims down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "harness/stats.h"

namespace crp::harness {

/// Exact counting histogram over integer round counts, plus the
/// solved/unsolved tally of the trials it has seen. Bins grow lazily
/// (amortized doubling) to the largest solved round observed, which
/// the round budget bounds.
class RoundHistogram {
 public:
  /// Records a solved trial that finished in `round` rounds.
  void add_solved(std::uint64_t round);

  /// Records a trial that did not solve within the budget.
  void add_unsolved() { ++trials_; }

  /// Folds whole SoA result columns (`rounds[t]` consulted only where
  /// `solved[t]`, exactly like the vector fold). Column lengths must
  /// agree; throws std::invalid_argument otherwise.
  void add_columns(std::span<const std::uint8_t> solved,
                   std::span<const std::uint64_t> rounds);

  /// Adds another histogram's counts into this one. Exact integer
  /// addition, so any merge order yields identical state.
  void merge(const RoundHistogram& other);

  std::uint64_t trials() const { return trials_; }
  std::uint64_t solved() const { return solved_; }
  bool empty() const { return trials_ == 0; }
  double success_rate() const;

  /// Number of *solved* trials whose round count is <= budget (the
  /// numerator of Measurement::solved_within).
  std::uint64_t solved_by(double budget) const;

  /// Summary statistics over the solved rounds, read exactly from the
  /// bins — count, min, max, mean, and quantiles bit-identical to
  /// summarize() over the equivalent sample vector (see header note on
  /// stddev).
  SummaryStats summary() const { return summarize_counts(counts_); }

  /// counts()[r] = number of solved trials that finished in round r.
  std::span<const std::uint64_t> counts() const { return counts_; }

  /// Same trials, solved count, and per-round counts (trailing zero
  /// bins ignored — bin capacity is a growth artifact, not state).
  /// This is full-distribution equality, the streaming counterpart of
  /// comparing sample vectors element-wise.
  friend bool operator==(const RoundHistogram& a, const RoundHistogram& b);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t trials_ = 0;
  std::uint64_t solved_ = 0;
};

/// Exact moment accumulator for integer-valued per-trial measures —
/// the transmission/energy column. Sums are 128-bit integers, so the
/// state stays exact (and merge order-free) far past any realistic
/// sweep; mean and sample stddev are derived on read.
class MomentAccumulator {
 public:
  void add(std::uint64_t value);
  void add_column(std::span<const std::uint64_t> values);
  void merge(const MomentAccumulator& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;
  /// Sample standard deviation (0 for fewer than two values).
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  unsigned __int128 sum_ = 0;
  unsigned __int128 sum_sq_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace crp::harness
