#include "harness/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "harness/table.h"

namespace crp::harness {

namespace {

/// Splits "a,b" into trimmed fields.
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) {
    const auto first = field.find_first_not_of(" \t\r");
    const auto last = field.find_last_not_of(" \t\r");
    fields.push_back(first == std::string::npos
                         ? std::string{}
                         : field.substr(first, last - first + 1));
  }
  return fields;
}

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// Contextual wrapper over parse_csv_finite for distribution rows:
/// "nan" slips through every ordering comparison (NaN < 0 is false)
/// and poisons the normalization total, "inf" overflows it — both are
/// malformed input, not probabilities.
double parse_finite(const std::string& field, std::size_t line_number,
                    const char* what) {
  const auto value = parse_csv_finite(field);
  if (!value) {
    throw std::invalid_argument("line " + std::to_string(line_number) +
                                ": non-finite " + std::string(what) + " \"" +
                                field + "\"");
  }
  return *value;
}

}  // namespace

std::optional<std::uint64_t> parse_csv_unsigned(const std::string& field) {
  if (field.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : field) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // overflow
    }
    value = value * 10 + digit;
  }
  return value;
}

std::optional<double> parse_csv_finite(const std::string& field) {
  if (field.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size() || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

SupportTableBuilder::SupportTableBuilder(std::size_t n) {
  if (n < 2) throw std::invalid_argument("network size must be >= 2");
  probs_.assign(n + 1, 0.0);
}

void SupportTableBuilder::add(double size, double probability,
                              const std::string& where) {
  const auto reject = [&](const char* message) {
    throw std::invalid_argument(where + ": " + message);
  };
  // Finiteness first: NaN compares false against every bound below,
  // so an ordering-only check would wave it through.
  if (!std::isfinite(size)) reject("non-finite size");
  if (!std::isfinite(probability)) reject("non-finite probability");
  const std::size_t n = probs_.size() - 1;
  if (size < 2.0 || size > static_cast<double>(n) ||
      size != std::floor(size)) {
    reject("size must be an integer in [2, n]");
  }
  if (probability < 0.0) reject("negative probability");
  probs_[static_cast<std::size_t>(size)] += probability;
  total_ += probability;
  saw_data_ = true;
}

info::SizeDistribution SupportTableBuilder::build(
    const std::string& where) const {
  if (!saw_data_ || total_ <= 0.0) {
    throw std::invalid_argument(
        (where.empty() ? std::string{} : where + ": ") +
        "no positive-probability rows found");
  }
  std::vector<double> probs = probs_;
  for (double& p : probs) p /= total_;
  return info::SizeDistribution(std::move(probs));
}

info::SizeDistribution read_size_distribution_csv(std::istream& in,
                                                  std::size_t n) {
  SupportTableBuilder builder(n);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != 2) {
      throw std::invalid_argument("line " + std::to_string(line_number) +
                                  ": expected \"size,probability\"");
    }
    if (!looks_numeric(fields[0]) || !looks_numeric(fields[1])) {
      if (builder.empty()) continue;  // tolerate a single header row
      throw std::invalid_argument("line " + std::to_string(line_number) +
                                  ": non-numeric row after data");
    }
    const double size_value = parse_finite(fields[0], line_number, "size");
    const double prob = parse_finite(fields[1], line_number, "probability");
    builder.add(size_value, prob, "line " + std::to_string(line_number));
  }
  return builder.build();
}

info::SizeDistribution read_size_distribution_csv_file(
    const std::string& path, std::size_t n) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open distribution file: " + path);
  }
  return read_size_distribution_csv(in, n);
}

void write_size_distribution_csv(std::ostream& out,
                                 const info::SizeDistribution& dist) {
  out << "size,probability\n";
  for (std::size_t k = 2; k <= dist.n(); ++k) {
    if (dist.prob(k) > 0.0) {
      out << k << ',' << dist.prob(k) << '\n';
    }
  }
}

std::string csv_quote(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (const char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::size_t i = 0;
  while (true) {
    field.clear();
    if (i < line.size() && line[i] == '"') {
      ++i;  // opening quote
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field.push_back('"');
            i += 2;
          } else {
            ++i;  // closing quote
            closed = true;
            break;
          }
        } else {
          field.push_back(line[i++]);
        }
      }
      if (!closed) {
        throw std::invalid_argument("unterminated quoted CSV field: " + line);
      }
      if (i < line.size() && line[i] != ',') {
        throw std::invalid_argument(
            "garbage after closing quote in CSV field: " + line);
      }
    } else {
      while (i < line.size() && line[i] != ',') field.push_back(line[i++]);
    }
    fields.push_back(field);
    if (i >= line.size()) break;
    ++i;  // the comma
    if (i == line.size()) {  // trailing comma: final empty field
      fields.emplace_back();
      break;
    }
  }
  return fields;
}

std::string csv_row_string(const std::vector<std::string>& cells) {
  std::string row;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c > 0) row.push_back(',');
    row += csv_quote(cells[c]);
  }
  return row;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  if (header.empty()) {
    throw std::invalid_argument("CSV needs at least one column");
  }
  out_ << csv_row_string(header) << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("row width does not match header");
  }
  out_ << csv_row_string(cells) << '\n';
}

std::vector<std::string> CsvWriter::measurement_header() {
  return {"mean", "ci95", "p50", "p90", "p99", "success_rate"};
}

std::vector<std::string> CsvWriter::measurement_cells(
    const Measurement& m) {
  return {fmt(m.rounds.mean, 4), fmt(m.rounds.ci95, 4),
          fmt(m.rounds.p50, 1),  fmt(m.rounds.p90, 1),
          fmt(m.rounds.p99, 1),  fmt(m.success_rate, 4)};
}

}  // namespace crp::harness
