// Exact (non-Monte-Carlo) analysis of uniform algorithms.
//
// For a fixed participant count k, a no-CD schedule induces independent
// per-round success probabilities s_r = k p_r (1 - p_r)^{k-1}; the
// distribution of the solving round is then computable in closed form.
// For CD policies the execution is a Markov chain over collision
// histories, which we enumerate exactly down to a depth with pruning.
//
// These provide ground truth for the simulator (tests cross-validate
// the two paths) and let the benches evaluate success profiles without
// sampling noise.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/protocol.h"

namespace crp::harness {

/// Per-round probability that exactly one of k players transmits when
/// each transmits independently with probability p.
double success_probability(std::size_t k, double p);

/// Probability that 0 / exactly 1 / >= 2 of k players transmit.
struct RoundOutcomeProbabilities {
  double silence = 0.0;
  double success = 0.0;
  double collision = 0.0;
};
RoundOutcomeProbabilities round_outcome_probabilities(std::size_t k,
                                                      double p);

/// Exact no-CD profile over the first `horizon` rounds.
struct ExactProfile {
  /// solve_by[r] = Pr(solved within the first r rounds), r in
  /// [0, horizon] (solve_by[0] = 0).
  std::vector<double> solve_by;
  /// Expected solving round conditioned on solving within the horizon,
  /// plus the unresolved tail mass charged at horizon + 1 — an upper
  /// bound proxy; exact when tail_mass is ~0.
  double truncated_expectation = 0.0;
  /// Pr(not solved within the horizon).
  double tail_mass = 0.0;
};

ExactProfile exact_profile_no_cd(const channel::ProbabilitySchedule& schedule,
                                 std::size_t k, std::size_t horizon);

/// Exact expected solving round of a no-CD schedule, computed by
/// extending the horizon until the tail mass falls below `tail_bound`
/// (throws std::runtime_error if `max_horizon` rounds cannot get the
/// tail that small — e.g. a schedule that cannot solve this k).
double exact_expected_rounds_no_cd(
    const channel::ProbabilitySchedule& schedule, std::size_t k,
    double tail_bound = 1e-9, std::size_t max_horizon = 1 << 22);

/// Exact CD profile: enumerates the history tree to depth `horizon`,
/// pruning branches whose reach probability drops below `prune_below`
/// (their mass is accounted in tail_mass, so solve_by stays a valid
/// lower bound and solve_by + tail an upper bound). The enumeration
/// runs on the shared expansion of harness/history_tree.h, fanned out
/// over subtrees across `threads` workers (0 = all hardware threads);
/// the profile — including the pruned-mass accounting — is
/// bit-identical at every thread count.
ExactProfile exact_profile_cd(const channel::CollisionPolicy& policy,
                              std::size_t k, std::size_t horizon,
                              double prune_below = 1e-12,
                              std::size_t threads = 0);

}  // namespace crp::harness
