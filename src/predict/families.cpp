#include "predict/families.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace crp::predict {

namespace {

info::CondensedDistribution normalized(std::vector<double> weights) {
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("weights must have positive total mass");
  }
  for (double& w : weights) w /= total;
  return info::CondensedDistribution(std::move(weights));
}

}  // namespace

info::SizeDistribution lift(const info::CondensedDistribution& condensed,
                            std::size_t n, RangePlacement placement) {
  if (condensed.size() != info::num_ranges(n)) {
    throw std::invalid_argument("condensed alphabet does not match n");
  }
  std::vector<double> probs(n + 1, 0.0);
  for (std::size_t i = 1; i <= condensed.size(); ++i) {
    const double q = condensed.prob(i);
    if (q == 0.0) continue;
    const std::size_t lo = info::range_min_size(i);
    const std::size_t hi = std::min(info::range_max_size(i), n);
    if (lo > hi) {
      throw std::invalid_argument("range extends beyond the size space");
    }
    switch (placement) {
      case RangePlacement::kLowEndpoint:
        probs[lo] += q;
        break;
      case RangePlacement::kHighEndpoint:
        probs[hi] += q;
        break;
      case RangePlacement::kUniform: {
        const double share = q / static_cast<double>(hi - lo + 1);
        for (std::size_t k = lo; k <= hi; ++k) probs[k] += share;
        break;
      }
    }
  }
  return info::SizeDistribution(std::move(probs));
}

info::CondensedDistribution uniform_over_ranges(std::size_t num_ranges,
                                                std::size_t m) {
  if (m == 0 || m > num_ranges) {
    throw std::invalid_argument("m must lie in [1, num_ranges]");
  }
  std::vector<double> weights(num_ranges, 0.0);
  for (std::size_t i = 0; i < m; ++i) weights[i] = 1.0;
  return normalized(std::move(weights));
}

info::CondensedDistribution geometric_ranges(std::size_t num_ranges,
                                             double decay) {
  if (decay <= 0.0 || decay > 1.0) {
    throw std::invalid_argument("decay must lie in (0, 1]");
  }
  std::vector<double> weights(num_ranges);
  double w = 1.0;
  for (std::size_t i = 0; i < num_ranges; ++i) {
    weights[i] = w;
    w *= decay;
  }
  return normalized(std::move(weights));
}

info::CondensedDistribution zipf_ranges(std::size_t num_ranges, double s) {
  if (s < 0.0) throw std::invalid_argument("zipf exponent must be >= 0");
  std::vector<double> weights(num_ranges);
  for (std::size_t i = 0; i < num_ranges; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return normalized(std::move(weights));
}

info::CondensedDistribution bimodal_ranges(std::size_t num_ranges,
                                           std::size_t range_a,
                                           std::size_t range_b,
                                           double eps) {
  if (range_a == 0 || range_a > num_ranges || range_b == 0 ||
      range_b > num_ranges) {
    throw std::invalid_argument("ranges outside L(n)");
  }
  if (eps < 0.0 || eps > 1.0) {
    throw std::invalid_argument("eps must lie in [0, 1]");
  }
  std::vector<double> weights(num_ranges, 0.0);
  weights[range_a - 1] += 1.0 - eps;
  weights[range_b - 1] += eps;
  return info::CondensedDistribution(std::move(weights));
}

info::CondensedDistribution mix(const info::CondensedDistribution& a,
                                const info::CondensedDistribution& b,
                                double lambda) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("mixture components must share an alphabet");
  }
  if (lambda < 0.0 || lambda > 1.0) {
    throw std::invalid_argument("lambda must lie in [0, 1]");
  }
  std::vector<double> weights(a.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    weights[j] = lambda * a.probabilities()[j] +
                 (1.0 - lambda) * b.probabilities()[j];
  }
  return info::CondensedDistribution(std::move(weights));
}

info::CondensedDistribution spiked_uniform(std::size_t num_ranges,
                                           double spike_mass) {
  if (num_ranges < 2) {
    throw std::invalid_argument("spiked source needs >= 2 symbols");
  }
  if (spike_mass <= 0.0 || spike_mass >= 1.0) {
    throw std::invalid_argument("spike mass must lie in (0, 1)");
  }
  std::vector<double> weights(num_ranges,
                              (1.0 - spike_mass) /
                                  static_cast<double>(num_ranges - 1));
  weights[0] = spike_mass;
  return info::CondensedDistribution(std::move(weights));
}

double expected_guesswork(const info::CondensedDistribution& source) {
  const auto order = source.ranges_by_likelihood();
  double guesswork = 0.0;
  for (std::size_t position = 0; position < order.size(); ++position) {
    guesswork += source.prob(order[position]) *
                 static_cast<double>(position + 1);
  }
  return guesswork;
}

info::SizeDistribution zipf_sizes(std::size_t n, double s) {
  if (n < 2) throw std::invalid_argument("network size must be >= 2");
  std::vector<double> probs(n + 1, 0.0);
  double total = 0.0;
  for (std::size_t k = 2; k <= n; ++k) {
    probs[k] = 1.0 / std::pow(static_cast<double>(k), s);
    total += probs[k];
  }
  for (std::size_t k = 2; k <= n; ++k) probs[k] /= total;
  return info::SizeDistribution(std::move(probs));
}

info::SizeDistribution log_normal_sizes(std::size_t n, double mu,
                                        double sigma) {
  if (n < 2) throw std::invalid_argument("network size must be >= 2");
  if (sigma <= 0.0) throw std::invalid_argument("sigma must be > 0");
  std::vector<double> probs(n + 1, 0.0);
  double total = 0.0;
  for (std::size_t k = 2; k <= n; ++k) {
    const double x = (std::log(static_cast<double>(k)) - mu) / sigma;
    probs[k] = std::exp(-0.5 * x * x) / static_cast<double>(k);
    total += probs[k];
  }
  for (std::size_t k = 2; k <= n; ++k) probs[k] /= total;
  return info::SizeDistribution(std::move(probs));
}

}  // namespace crp::predict
