#include "predict/noise.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace crp::predict {

namespace {

info::CondensedDistribution normalized(std::vector<double> weights) {
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("weights must have positive total mass");
  }
  for (double& w : weights) w /= total;
  return info::CondensedDistribution(std::move(weights));
}

}  // namespace

info::CondensedDistribution multiplicative_jitter(
    const info::CondensedDistribution& truth, double factor,
    std::mt19937_64& rng) {
  if (factor < 1.0) {
    throw std::invalid_argument("jitter factor must be >= 1");
  }
  std::uniform_real_distribution<double> unit(1.0 / factor, factor);
  std::vector<double> weights(truth.size());
  for (std::size_t j = 0; j < truth.size(); ++j) {
    weights[j] = truth.probabilities()[j] * unit(rng);
  }
  return normalized(std::move(weights));
}

info::CondensedDistribution smooth_with_uniform(
    const info::CondensedDistribution& truth, double eps) {
  if (eps < 0.0 || eps > 1.0) {
    throw std::invalid_argument("eps must lie in [0, 1]");
  }
  const double u = 1.0 / static_cast<double>(truth.size());
  std::vector<double> weights(truth.size());
  for (std::size_t j = 0; j < truth.size(); ++j) {
    weights[j] = (1.0 - eps) * truth.probabilities()[j] + eps * u;
  }
  return info::CondensedDistribution(std::move(weights));
}

info::CondensedDistribution temperature_scale(
    const info::CondensedDistribution& truth, double gamma) {
  if (gamma <= 0.0) throw std::invalid_argument("gamma must be > 0");
  std::vector<double> weights(truth.size());
  for (std::size_t j = 0; j < truth.size(); ++j) {
    const double q = truth.probabilities()[j];
    weights[j] = q > 0.0 ? std::pow(q, gamma) : 0.0;
  }
  return normalized(std::move(weights));
}

info::CondensedDistribution reverse_ranges(
    const info::CondensedDistribution& truth) {
  std::vector<double> weights(truth.probabilities());
  std::reverse(weights.begin(), weights.end());
  return info::CondensedDistribution(std::move(weights));
}

info::CondensedDistribution shift_ranges(
    const info::CondensedDistribution& truth, std::size_t offset) {
  std::vector<double> weights(truth.size());
  for (std::size_t j = 0; j < truth.size(); ++j) {
    weights[(j + offset) % truth.size()] = truth.probabilities()[j];
  }
  return info::CondensedDistribution(std::move(weights));
}

info::CondensedDistribution empirical_predictor(
    const info::SizeDistribution& truth, std::size_t samples,
    double laplace_alpha, std::mt19937_64& rng) {
  if (laplace_alpha <= 0.0) {
    throw std::invalid_argument(
        "laplace_alpha must be > 0 so the prediction has full support");
  }
  const std::size_t ranges = info::num_ranges(truth.n());
  std::vector<double> counts(ranges, laplace_alpha);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t k = truth.sample(rng);
    counts[info::range_of_size(k) - 1] += 1.0;
  }
  return normalized(std::move(counts));
}

}  // namespace crp::predict
