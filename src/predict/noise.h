// Prediction corruption models: ways of producing a predicted
// distribution Y from the true X with a controllable, measurable
// KL divergence D_KL(c(X) || c(Y)). Theorems 2.12 and 2.16 charge the
// algorithms 2 D_KL extra entropy / D_KL extra code length; the
// bench_divergence sweep uses these models to trace that degradation,
// including the paper's "bounded constant factor error => D_KL = O(1)"
// robustness remark.
#pragma once

#include <cstddef>
#include <random>

#include "info/distribution.h"

namespace crp::predict {

/// q'_i proportional to q_i * u_i with u_i ~ Uniform[1/factor, factor]:
/// every predicted probability is within a bounded constant factor of
/// the truth, so D_KL stays O(1) regardless of the alphabet (the
/// robustness case highlighted after Theorem 2.12).
info::CondensedDistribution multiplicative_jitter(
    const info::CondensedDistribution& truth, double factor,
    std::mt19937_64& rng);

/// Mixture with uniform: q' = (1 - eps) q + eps * uniform. Guarantees
/// finite divergence (no predicted zero where truth has mass) and a
/// smooth knob: eps -> 0 recovers the truth.
info::CondensedDistribution smooth_with_uniform(
    const info::CondensedDistribution& truth, double eps);

/// Temperature scaling: q'_i proportional to q_i^gamma. gamma < 1
/// flattens (under-confident predictor), gamma > 1 sharpens
/// (over-confident predictor).
info::CondensedDistribution temperature_scale(
    const info::CondensedDistribution& truth, double gamma);

/// Adversarial reversal: the prediction ranks ranges in exactly the
/// opposite likelihood order (probability vector reversed across the
/// alphabet). Maximally misleads order-based algorithms while keeping
/// the same entropy.
info::CondensedDistribution reverse_ranges(
    const info::CondensedDistribution& truth);

/// Cyclic shift of the probability vector by `offset` ranges: a
/// systematically biased predictor ("expects crowds 2^offset times
/// larger than reality").
info::CondensedDistribution shift_ranges(
    const info::CondensedDistribution& truth, std::size_t offset);

/// A simulated learned predictor: draws `samples` sizes from `truth`,
/// builds the Laplace-smoothed empirical histogram over ranges. As
/// samples grows, D_KL(c(X) || c(Y)) -> 0 — the "predictions improve
/// over time for free" story from the paper's introduction.
info::CondensedDistribution empirical_predictor(
    const info::SizeDistribution& truth, std::size_t samples,
    double laplace_alpha, std::mt19937_64& rng);

}  // namespace crp::predict
