// Parametric families of network-size distributions. The paper's
// bounds depend on the size distribution only through H(c(X)) and
// D_KL(c(X)||c(Y)), so the benches sweep those quantities with the
// families below (each with a knob that moves the condensed entropy
// smoothly between 0 and its maximum log2 log2 n).
#pragma once

#include <cstddef>

#include "info/distribution.h"

namespace crp::predict {

/// How a condensed (per-range) distribution is lifted back to a full
/// distribution over sizes.
enum class RangePlacement {
  kLowEndpoint,   ///< all of range i's mass on size 2^{i-1}+1 (2 for i=1)
  kHighEndpoint,  ///< all of range i's mass on size 2^i
  kUniform,       ///< spread uniformly over the sizes of the range
};

/// Lifts a condensed distribution over L(n) to a SizeDistribution on
/// {2..n}; condense() of the result recovers `condensed` exactly.
info::SizeDistribution lift(const info::CondensedDistribution& condensed,
                            std::size_t n, RangePlacement placement);

/// Uniform over the first m of the |L(n)| ranges: H(c) = log2 m, the
/// straight-line entropy sweep used by bench_table1.
info::CondensedDistribution uniform_over_ranges(std::size_t num_ranges,
                                                std::size_t m);

/// Geometric over ranges: q_i proportional to decay^i. decay -> 0
/// approaches a point mass (H -> 0); decay -> 1 approaches uniform
/// (H -> log2 |L|).
info::CondensedDistribution geometric_ranges(std::size_t num_ranges,
                                             double decay);

/// Zipf over ranges: q_i proportional to 1 / i^s.
info::CondensedDistribution zipf_ranges(std::size_t num_ranges, double s);

/// Two spikes of mass 1-eps and eps on ranges a and b — the classic
/// "almost perfect prediction with a rare regime change".
info::CondensedDistribution bimodal_ranges(std::size_t num_ranges,
                                           std::size_t range_a,
                                           std::size_t range_b,
                                           double eps);

/// Convex mixture lambda * a + (1 - lambda) * b.
info::CondensedDistribution mix(const info::CondensedDistribution& a,
                                const info::CondensedDistribution& b,
                                double lambda);

/// The Pliam-style adversarial source the paper invokes to support its
/// conjecture that 2^{H} rounds are insufficient for the Section 2.5
/// strategy (footnote 3): one spike of mass `spike_mass` on the first
/// symbol plus a flat tail. Entropy grows like (1 - s) log2 m while the
/// expected likelihood-order position ("guesswork") grows like m/2, so
/// the guesswork / 2^H ratio is unbounded in the alphabet size.
info::CondensedDistribution spiked_uniform(std::size_t num_ranges,
                                           double spike_mass);

/// Expected 1-based position of the target in the likelihood order —
/// the "guesswork" E[G] of the source, which is exactly the expected
/// index at which the Section 2.5 strategy first probes the true range.
double expected_guesswork(const info::CondensedDistribution& source);

/// Zipf over the sizes themselves (not the ranges): Pr(k) ~ 1/k^s for
/// k in {2..n}. A "realistic" heavy-tailed workload for the examples.
info::SizeDistribution zipf_sizes(std::size_t n, double s);

/// Truncated discretized log-normal over sizes: sizes cluster around
/// exp(mu) with multiplicative spread sigma; models a venue whose
/// attendance is noisy around a typical value.
info::SizeDistribution log_normal_sizes(std::size_t n, double mu,
                                        double sigma);

}  // namespace crp::predict
