// Discrete probability distributions over network sizes and their
// condensed (geometric-range) forms, as defined in Section 2.2 of
// "Contention Resolution with Predictions" (PODC 2021).
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace crp::info {

/// Number of geometric ranges for a network of size `n`, i.e.
/// |L(n)| = ceil(log2 n). Requires n >= 2.
std::size_t num_ranges(std::size_t n);

/// The range index i in L(n) = {1, ..., ceil(log2 n)} associated with a
/// participant count k, where range i covers sizes (2^{i-1}, 2^i].
/// Requires 2 <= k. (k = 2 -> 1, k in {3,4} -> 2, k in {5..8} -> 3, ...)
std::size_t range_of_size(std::size_t k);

/// Smallest size covered by range i: 2^{i-1} + 1 (except range 1 -> 2).
std::size_t range_min_size(std::size_t i);

/// Largest size covered by range i: 2^i.
std::size_t range_max_size(std::size_t i);

class CondensedDistribution;

/// A probability distribution over the possible participant-set sizes
/// {2, ..., n} of a contention-resolution instance. This is the random
/// variable X (or the prediction Y) from the paper: the algorithm is
/// handed the full vector of size probabilities.
///
/// Invariant: probabilities are non-negative and sum to 1 (within
/// `kSumTolerance`); sizes 0 and 1 carry no mass (the paper assumes
/// k >= 2 WLOG, eliminating k = 1 with one extra all-transmit round).
class SizeDistribution {
 public:
  static constexpr double kSumTolerance = 1e-9;

  /// Constructs from `probs` where probs[k] = Pr(X = k). The vector is
  /// indexed by size, so probs.size() = n + 1 and probs[0] = probs[1] = 0.
  /// Throws std::invalid_argument on malformed input.
  explicit SizeDistribution(std::vector<double> probs);

  /// Convenience: builds from (size, probability) pairs over a network
  /// of `n` possible participants; unspecified sizes get probability 0.
  static SizeDistribution from_pairs(
      std::size_t n, std::span<const std::pair<std::size_t, double>> pairs);

  /// All probability mass on a single size k ("perfect prediction").
  static SizeDistribution point_mass(std::size_t n, std::size_t k);

  /// Uniform over {2, ..., n} ("no predictive power").
  static SizeDistribution uniform(std::size_t n);

  /// Maximum network size n.
  std::size_t n() const { return probs_.size() - 1; }

  /// Pr(X = k); zero for k outside [2, n].
  double prob(std::size_t k) const;

  /// Raw probability vector indexed by size (element k = Pr(X = k)).
  const std::vector<double>& probabilities() const { return probs_; }

  /// Shannon entropy H(X) in bits.
  double entropy() const;

  /// Condensed form c(X) over geometric ranges L(n) (Section 2.2).
  CondensedDistribution condense() const;

  /// Draws a size according to the distribution.
  std::size_t sample(std::mt19937_64& rng) const;

  /// Inverse-CDF sampling from an externally supplied uniform draw
  /// u in [0, 1) — lets callers bring their own engine (the batch
  /// measurement fast path uses channel::SplitMix64 streams).
  std::size_t sample_at(double u) const;

  /// Compact inverse-CDF view over the support only: parallel arrays of
  /// the positive-mass sizes (ascending) and their inclusive cumulative
  /// probabilities (last entry forced to 1.0 against float drift).
  /// sample_at(u) == support_sizes()[j] for the smallest j with
  /// support_cumulative()[j] >= u; columnar engines (channel/engine.h)
  /// search this table inline and cache per-support-slot state by j.
  std::span<const double> support_cumulative() const {
    return support_cum_;
  }
  std::span<const std::uint32_t> support_sizes() const {
    return support_sizes_;
  }

  /// Expected size E[X].
  double mean() const;

  /// Support size: number of sizes with positive probability.
  std::size_t support_size() const;

  /// Human-readable summary, e.g. "SizeDistribution(n=1024, H=3.21)".
  std::string describe() const;

 private:
  std::vector<double> probs_;  // probs_[k] = Pr(X = k)
  // Compact inverse-CDF table (see support_cumulative()): sampling
  // searches support_size() entries instead of n + 1, which keeps the
  // whole table cache-resident for the condensed/lifted distributions
  // the paper's sweeps use (~log n support points).
  std::vector<double> support_cum_;
  std::vector<std::uint32_t> support_sizes_;
};

/// The condensed random variable c(X) over the range alphabet
/// L(n) = {1, ..., ceil(log2 n)}: q_i = sum of Pr(X = j) over
/// j in (2^{i-1}, 2^i]. Knowing i such that k = Theta(2^i) is enough to
/// solve contention resolution in O(1) rounds, so all the paper's bounds
/// are stated against c(X) rather than X.
class CondensedDistribution {
 public:
  /// Constructs from range probabilities `q` (q[0] = Pr(range 1), ...).
  /// Throws std::invalid_argument unless q sums to 1 and is non-negative.
  explicit CondensedDistribution(std::vector<double> q);

  /// A condensed distribution putting all mass on range `i` (1-based).
  static CondensedDistribution point_mass(std::size_t num_ranges,
                                          std::size_t i);

  /// Uniform over all ranges — the maximum-entropy condensed source,
  /// for which the paper's bounds degrade to the classical worst case.
  static CondensedDistribution uniform(std::size_t num_ranges);

  /// Number of ranges |L(n)| = ceil(log2 n).
  std::size_t size() const { return q_.size(); }

  /// Pr(c(X) = i) for 1-based range index i in [1, size()].
  double prob(std::size_t i) const;

  /// Raw probabilities, 0-based (element j = Pr(c(X) = j + 1)).
  const std::vector<double>& probabilities() const { return q_; }

  /// Shannon entropy H(c(X)) in bits; this is the quantity all of the
  /// paper's prediction bounds are expressed in.
  double entropy() const;

  /// Kullback-Leibler divergence D_KL(*this || other) in bits. Returns
  /// +infinity if `other` lacks mass somewhere this distribution has it.
  /// Throws std::invalid_argument on alphabet-size mismatch.
  double kl_divergence(const CondensedDistribution& other) const;

  /// Ranges ordered by non-increasing probability (ties: smaller range
  /// first). This is the schedule ordering of the Section 2.5 algorithm.
  std::vector<std::size_t> ranges_by_likelihood() const;

  /// Draws a 1-based range index.
  std::size_t sample(std::mt19937_64& rng) const;

  std::string describe() const;

 private:
  std::vector<double> q_;          // q_[j] = Pr(c(X) = j + 1)
  std::vector<double> cumulative_;
};

}  // namespace crp::info
