// Binary prefix codes over a finite alphabet, plus the validators and
// functionals (expected length, Kraft sum) used by the paper's coding
// arguments (Theorems 2.2 and 2.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace crp::info {

/// A binary codeword, most-significant bit first.
using Codeword = std::vector<bool>;

/// A (prefix) code mapping each symbol of a finite alphabet to a binary
/// codeword. Symbols are 0-based indices into `words`.
class PrefixCode {
 public:
  /// Wraps codewords; does not validate prefix-freeness (call
  /// `is_prefix_free` explicitly — some constructions, like the raw
  /// target-distance codes from the lower-bound proofs, are only
  /// uniquely decodable rather than prefix-free).
  explicit PrefixCode(std::vector<Codeword> words);

  std::size_t alphabet_size() const { return words_.size(); }
  const Codeword& word(std::size_t symbol) const;
  const std::vector<Codeword>& words() const { return words_; }
  std::size_t length(std::size_t symbol) const;

  /// True if no codeword is a prefix of another (distinct symbols).
  bool is_prefix_free() const;

  /// Kraft sum: sum over symbols of 2^-len. <= 1 for every uniquely
  /// decodable code (Kraft-McMillan); == 1 for complete codes.
  double kraft_sum() const;

  /// Expected codeword length E[S] when symbols are drawn with
  /// probabilities `probs` (same alphabet, 0-based).
  double expected_length(std::span<const double> probs) const;

  /// Decodes a prefix of `bits` back to a symbol; returns the symbol
  /// and number of bits consumed, or nullopt if no codeword matches.
  /// Only meaningful for prefix-free codes.
  std::optional<std::pair<std::size_t, std::size_t>> decode_prefix(
      const std::vector<bool>& bits) const;

  /// Renders e.g. "{0: 0, 1: 10, 2: 11}".
  std::string describe() const;

 private:
  std::vector<Codeword> words_;
};

/// Builds the canonical prefix code for the given codeword lengths
/// (Kraft-satisfying). Throws if the lengths violate the Kraft
/// inequality. Symbols with shorter lengths get lexicographically
/// smaller codewords; ties broken by symbol order.
PrefixCode canonical_code_from_lengths(std::span<const std::size_t> lengths);

/// Fixed-length code: every symbol gets ceil(log2 |alphabet|) bits
/// (at least 1). The trivial baseline the paper's advice bounds quote.
PrefixCode fixed_length_code(std::size_t alphabet_size);

}  // namespace crp::info
