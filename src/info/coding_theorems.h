// Executable forms of the coding-theory facts the paper builds on:
// Shannon's Source Coding Theorem (Theorem 2.2) and the mismatched-
// source bound H(X) + D_KL(X||Y) <= E[S] <= H(X) + D_KL(X||Y) + 1
// (Theorem 2.3). The benches and property tests use these to validate
// the machinery behind the lower bounds.
#pragma once

#include <span>

#include "info/code.h"

namespace crp::info {

/// Result of checking a code against a source.
struct CodingCheck {
  double entropy = 0.0;          ///< H of the evaluation source
  double divergence = 0.0;       ///< D_KL(source || design source), 0 if same
  double expected_length = 0.0;  ///< E[S] of the code under the source
  bool lower_bound_holds = false;  ///< H + D <= E[S] (Thm 2.2 / 2.3 lower)
  bool upper_bound_holds = false;  ///< E[S] <= H + D + 1 (Thm 2.3 upper; only
                                   ///< guaranteed for optimal codes)
};

/// Checks Theorem 2.2 for `code` against `source` (design == evaluation
/// source, divergence = 0).
CodingCheck check_source_coding(const PrefixCode& code,
                                std::span<const double> source);

/// Checks Theorem 2.3: `code` was built as an (optimal) code for
/// `design_source`, but symbols are drawn from `eval_source`.
CodingCheck check_mismatched_coding(const PrefixCode& code,
                                    std::span<const double> eval_source,
                                    std::span<const double> design_source);

}  // namespace crp::info
