// Optimal and near-optimal prefix code construction. The paper's
// Section 2.5 / 2.6 algorithms build an optimal uniquely decodable code
// f for the predicted source c(Y); Huffman coding realizes exactly that
// optimum, so it is the code the library uses by default. Shannon-Fano
// is provided as the ablation comparator (within 1 bit of optimal).
#pragma once

#include <span>

#include "info/code.h"

namespace crp::info {

/// Builds a Huffman code for the given symbol probabilities. Symbols
/// with zero probability still receive valid codewords (they end up
/// deepest in the tree), so downstream search algorithms can always
/// enumerate the full alphabet. Deterministic: ties in the priority
/// queue are broken by construction order, so identical inputs yield
/// identical codes across runs and platforms.
///
/// Single-symbol alphabets get the 1-bit codeword "0".
PrefixCode huffman_code(std::span<const double> probs);

/// Codeword lengths only (useful when the caller needs the code-length
/// classes of Section 2.6 but not the words themselves).
std::vector<std::size_t> huffman_lengths(std::span<const double> probs);

/// Shannon-Fano code: symbol s gets length ceil(-log2 p_s) (capped for
/// zero-probability symbols), realized canonically. Satisfies
/// H(p) <= E[len] < H(p) + 1, the bound Theorem 2.3 quotes.
PrefixCode shannon_fano_code(std::span<const double> probs);

}  // namespace crp::info
