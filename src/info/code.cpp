#include "info/code.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace crp::info {

PrefixCode::PrefixCode(std::vector<Codeword> words)
    : words_(std::move(words)) {
  if (words_.empty()) {
    throw std::invalid_argument("code needs a non-empty alphabet");
  }
}

const Codeword& PrefixCode::word(std::size_t symbol) const {
  if (symbol >= words_.size()) {
    throw std::out_of_range("symbol outside code alphabet");
  }
  return words_[symbol];
}

std::size_t PrefixCode::length(std::size_t symbol) const {
  return word(symbol).size();
}

bool PrefixCode::is_prefix_free() const {
  // Sort codewords; a prefix relation must appear between lexicographic
  // neighbours, so one adjacent pass suffices.
  std::vector<const Codeword*> sorted;
  sorted.reserve(words_.size());
  for (const auto& w : words_) sorted.push_back(&w);
  std::sort(sorted.begin(), sorted.end(),
            [](const Codeword* a, const Codeword* b) { return *a < *b; });
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    const Codeword& a = *sorted[i];
    const Codeword& b = *sorted[i + 1];
    if (a.size() <= b.size() &&
        std::equal(a.begin(), a.end(), b.begin())) {
      return false;  // includes duplicate codewords (a == prefix of b)
    }
  }
  return true;
}

double PrefixCode::kraft_sum() const {
  double sum = 0.0;
  for (const auto& w : words_) {
    sum += std::exp2(-static_cast<double>(w.size()));
  }
  return sum;
}

double PrefixCode::expected_length(std::span<const double> probs) const {
  if (probs.size() != words_.size()) {
    throw std::invalid_argument("probability vector / alphabet mismatch");
  }
  double expected = 0.0;
  for (std::size_t s = 0; s < words_.size(); ++s) {
    expected += probs[s] * static_cast<double>(words_[s].size());
  }
  return expected;
}

std::optional<std::pair<std::size_t, std::size_t>> PrefixCode::decode_prefix(
    const std::vector<bool>& bits) const {
  for (std::size_t s = 0; s < words_.size(); ++s) {
    const Codeword& w = words_[s];
    if (w.size() <= bits.size() &&
        std::equal(w.begin(), w.end(), bits.begin())) {
      return std::make_pair(s, w.size());
    }
  }
  return std::nullopt;
}

std::string PrefixCode::describe() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t s = 0; s < words_.size(); ++s) {
    if (s > 0) out << ", ";
    out << s << ": ";
    if (words_[s].empty()) out << "<empty>";
    for (bool bit : words_[s]) out << (bit ? '1' : '0');
  }
  out << "}";
  return out.str();
}

PrefixCode canonical_code_from_lengths(
    std::span<const std::size_t> lengths) {
  if (lengths.empty()) {
    throw std::invalid_argument("code needs a non-empty alphabet");
  }
  double kraft = 0.0;
  for (std::size_t len : lengths) {
    kraft += std::exp2(-static_cast<double>(len));
  }
  if (kraft > 1.0 + 1e-9) {
    throw std::invalid_argument("lengths violate the Kraft inequality");
  }

  // Assign codewords in order of (length, symbol), incrementing a
  // binary counter and left-shifting when the length grows.
  std::vector<std::size_t> order(lengths.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return lengths[a] < lengths[b];
                   });

  std::vector<Codeword> words(lengths.size());
  std::uint64_t next = 0;
  std::size_t current_len = lengths[order.front()];
  for (std::size_t idx : order) {
    const std::size_t len = lengths[idx];
    if (len > 63) throw std::invalid_argument("codeword length > 63");
    next <<= (len - current_len);
    current_len = len;
    Codeword w(len);
    for (std::size_t b = 0; b < len; ++b) {
      w[b] = ((next >> (len - 1 - b)) & 1u) != 0;
    }
    words[idx] = std::move(w);
    ++next;
  }
  return PrefixCode(std::move(words));
}

PrefixCode fixed_length_code(std::size_t alphabet_size) {
  if (alphabet_size == 0) {
    throw std::invalid_argument("code needs a non-empty alphabet");
  }
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < alphabet_size) ++bits;
  std::vector<std::size_t> lengths(alphabet_size, bits);
  return canonical_code_from_lengths(lengths);
}

}  // namespace crp::info
