#include "info/huffman.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace crp::info {

namespace {

struct Node {
  double weight = 0.0;
  std::size_t tiebreak = 0;  // creation order: makes merges deterministic
  int symbol = -1;           // >= 0 for leaves
  int left = -1;
  int right = -1;
};

void assign_depths(const std::vector<Node>& nodes, int root,
                   std::size_t depth, std::vector<std::size_t>& lengths) {
  const Node& node = nodes[static_cast<std::size_t>(root)];
  if (node.symbol >= 0) {
    lengths[static_cast<std::size_t>(node.symbol)] =
        std::max<std::size_t>(depth, 1);  // single-symbol alphabet -> "0"
    return;
  }
  assign_depths(nodes, node.left, depth + 1, lengths);
  assign_depths(nodes, node.right, depth + 1, lengths);
}

}  // namespace

std::vector<std::size_t> huffman_lengths(std::span<const double> probs) {
  if (probs.empty()) {
    throw std::invalid_argument("huffman: empty alphabet");
  }
  for (double p : probs) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      throw std::invalid_argument("huffman: probabilities must be >= 0");
    }
  }

  std::vector<Node> nodes;
  nodes.reserve(2 * probs.size());
  using Entry = std::pair<double, std::size_t>;  // (weight, node index)
  const auto greater = [&nodes](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return nodes[a.second].tiebreak > nodes[b.second].tiebreak;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(greater)> queue(
      greater);

  for (std::size_t s = 0; s < probs.size(); ++s) {
    nodes.push_back(Node{probs[s], nodes.size(), static_cast<int>(s)});
    queue.push({probs[s], nodes.size() - 1});
  }
  while (queue.size() > 1) {
    const auto [wa, a] = queue.top();
    queue.pop();
    const auto [wb, b] = queue.top();
    queue.pop();
    nodes.push_back(Node{wa + wb, nodes.size(), -1, static_cast<int>(a),
                         static_cast<int>(b)});
    queue.push({wa + wb, nodes.size() - 1});
  }

  std::vector<std::size_t> lengths(probs.size(), 0);
  assign_depths(nodes, static_cast<int>(queue.top().second), 0, lengths);
  return lengths;
}

PrefixCode huffman_code(std::span<const double> probs) {
  return canonical_code_from_lengths(huffman_lengths(probs));
}

PrefixCode shannon_fano_code(std::span<const double> probs) {
  if (probs.empty()) {
    throw std::invalid_argument("shannon-fano: empty alphabet");
  }
  std::vector<std::size_t> lengths(probs.size(), 0);
  std::size_t longest = 1;
  std::size_t zeros = 0;
  for (std::size_t s = 0; s < probs.size(); ++s) {
    if (probs[s] > 0.0) {
      lengths[s] = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(-std::log2(probs[s]))));
      longest = std::max(longest, lengths[s]);
    } else {
      ++zeros;
    }
  }
  if (zeros > 0) {
    // The plain Shannon-Fano lengths already may fill the Kraft budget
    // (equality for dyadic sources), so stretch every positive-mass
    // codeword by one bit (halving their Kraft sum to <= 1/2) and park
    // the zero-probability symbols in the freed half of the tree.
    std::size_t pad_bits = 1;
    while ((std::size_t{1} << pad_bits) < zeros) ++pad_bits;
    for (std::size_t s = 0; s < probs.size(); ++s) {
      if (probs[s] > 0.0) ++lengths[s];
    }
    const std::size_t zero_len = std::max(longest + 2, pad_bits + 1);
    for (std::size_t s = 0; s < probs.size(); ++s) {
      if (probs[s] <= 0.0) lengths[s] = zero_len;
    }
  }
  return canonical_code_from_lengths(lengths);
}

}  // namespace crp::info
