#include "info/entropy.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace crp::info {

double shannon_entropy(std::span<const double> p) {
  double h = 0.0;
  for (double pi : p) {
    if (pi > 0.0) h -= pi * std::log2(pi);
  }
  return h;
}

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("KL divergence needs equal alphabet sizes");
  }
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0.0) {
      if (q[i] <= 0.0) return std::numeric_limits<double>::infinity();
      d += p[i] * std::log2(p[i] / q[i]);
    }
  }
  // Floating-point cancellation can push a true-zero divergence slightly
  // negative; clamp so D_KL(p||p) == 0 holds exactly for callers.
  return d < 0.0 ? 0.0 : d;
}

double cross_entropy(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("cross entropy needs equal alphabet sizes");
  }
  double h = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0.0) {
      if (q[i] <= 0.0) return std::numeric_limits<double>::infinity();
      h -= p[i] * std::log2(q[i]);
    }
  }
  return h;
}

double binary_entropy(double x) {
  if (x < 0.0 || x > 1.0) {
    throw std::invalid_argument("binary entropy domain is [0, 1]");
  }
  double h = 0.0;
  if (x > 0.0) h -= x * std::log2(x);
  if (x < 1.0) h -= (1.0 - x) * std::log2(1.0 - x);
  return h;
}

}  // namespace crp::info
