#include "info/distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "info/entropy.h"

namespace crp::info {

namespace {

void validate_probability_vector(std::span<const double> probs) {
  double sum = 0.0;
  for (double p : probs) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      throw std::invalid_argument("probabilities must be finite and >= 0");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > SizeDistribution::kSumTolerance) {
    throw std::invalid_argument("probabilities must sum to 1, got " +
                                std::to_string(sum));
  }
}

std::vector<double> inclusive_prefix_sums(std::span<const double> probs) {
  std::vector<double> cumulative(probs.size());
  std::partial_sum(probs.begin(), probs.end(), cumulative.begin());
  if (!cumulative.empty()) cumulative.back() = 1.0;  // guard fp drift
  return cumulative;
}

std::size_t index_at(const std::vector<double>& cumulative, double u) {
  const auto it =
      std::lower_bound(cumulative.begin(), cumulative.end(), u);
  return static_cast<std::size_t>(std::distance(cumulative.begin(), it));
}

std::size_t sample_from_cumulative(const std::vector<double>& cumulative,
                                   std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  return index_at(cumulative, unit(rng));
}

}  // namespace

std::size_t num_ranges(std::size_t n) {
  if (n < 2) throw std::invalid_argument("network size must be >= 2");
  std::size_t ranges = 0;
  std::size_t top = 1;
  while (top < n) {
    top *= 2;
    ++ranges;
  }
  return std::max<std::size_t>(ranges, 1);
}

std::size_t range_of_size(std::size_t k) {
  if (k < 2) throw std::invalid_argument("participant count must be >= 2");
  std::size_t i = 1;
  std::size_t top = 2;  // range i covers (2^{i-1}, 2^i]
  while (top < k) {
    top *= 2;
    ++i;
  }
  return i;
}

std::size_t range_min_size(std::size_t i) {
  if (i == 0) throw std::invalid_argument("ranges are 1-based");
  return i == 1 ? 2 : (std::size_t{1} << (i - 1)) + 1;
}

std::size_t range_max_size(std::size_t i) {
  if (i == 0) throw std::invalid_argument("ranges are 1-based");
  return std::size_t{1} << i;
}

SizeDistribution::SizeDistribution(std::vector<double> probs)
    : probs_(std::move(probs)) {
  if (probs_.size() < 3) {
    throw std::invalid_argument("need probabilities for sizes up to n >= 2");
  }
  if (probs_[0] != 0.0 || probs_[1] != 0.0) {
    throw std::invalid_argument("sizes 0 and 1 must carry no mass (k >= 2)");
  }
  validate_probability_vector(probs_);
  // Compact inverse-CDF table: one (cumulative, size) entry per
  // positive-mass size. The running sum includes the zero entries, so
  // each stored cumulative equals the full-table prefix sum at that
  // size; the last entry is forced to 1.0 to absorb float drift.
  double sum = 0.0;
  for (std::size_t k = 2; k < probs_.size(); ++k) {
    if (probs_[k] > 0.0) {
      sum += probs_[k];
      support_cum_.push_back(sum);
      support_sizes_.push_back(static_cast<std::uint32_t>(k));
    }
  }
  support_cum_.back() = 1.0;
}

SizeDistribution SizeDistribution::from_pairs(
    std::size_t n, std::span<const std::pair<std::size_t, double>> pairs) {
  std::vector<double> probs(n + 1, 0.0);
  for (const auto& [size, p] : pairs) {
    if (size < 2 || size > n) {
      throw std::invalid_argument("size out of range [2, n]");
    }
    probs[size] += p;
  }
  return SizeDistribution(std::move(probs));
}

SizeDistribution SizeDistribution::point_mass(std::size_t n, std::size_t k) {
  if (k < 2 || k > n) throw std::invalid_argument("k must lie in [2, n]");
  std::vector<double> probs(n + 1, 0.0);
  probs[k] = 1.0;
  return SizeDistribution(std::move(probs));
}

SizeDistribution SizeDistribution::uniform(std::size_t n) {
  if (n < 2) throw std::invalid_argument("network size must be >= 2");
  std::vector<double> probs(n + 1, 0.0);
  const double p = 1.0 / static_cast<double>(n - 1);
  for (std::size_t k = 2; k <= n; ++k) probs[k] = p;
  return SizeDistribution(std::move(probs));
}

double SizeDistribution::prob(std::size_t k) const {
  return k < probs_.size() ? probs_[k] : 0.0;
}

double SizeDistribution::entropy() const { return shannon_entropy(probs_); }

CondensedDistribution SizeDistribution::condense() const {
  const std::size_t ranges = num_ranges(n());
  std::vector<double> q(ranges, 0.0);
  for (std::size_t k = 2; k < probs_.size(); ++k) {
    if (probs_[k] > 0.0) q[range_of_size(k) - 1] += probs_[k];
  }
  // Guard against floating-point drift: renormalize the tiny residue.
  const double sum = std::accumulate(q.begin(), q.end(), 0.0);
  for (double& v : q) v /= sum;
  return CondensedDistribution(std::move(q));
}

std::size_t SizeDistribution::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  return sample_at(unit(rng));
}

std::size_t SizeDistribution::sample_at(double u) const {
  if (!(u >= 0.0 && u < 1.0)) {
    throw std::invalid_argument("uniform draw outside [0, 1)");
  }
  const std::size_t j = index_at(support_cum_, u);
  return support_sizes_[j];
}

double SizeDistribution::mean() const {
  double m = 0.0;
  for (std::size_t k = 2; k < probs_.size(); ++k) {
    m += static_cast<double>(k) * probs_[k];
  }
  return m;
}

std::size_t SizeDistribution::support_size() const {
  return static_cast<std::size_t>(
      std::count_if(probs_.begin(), probs_.end(),
                    [](double p) { return p > 0.0; }));
}

std::string SizeDistribution::describe() const {
  std::ostringstream out;
  out << "SizeDistribution(n=" << n() << ", support=" << support_size()
      << ", H=" << entropy() << ", H(c)=" << condense().entropy() << ")";
  return out.str();
}

CondensedDistribution::CondensedDistribution(std::vector<double> q)
    : q_(std::move(q)) {
  if (q_.empty()) {
    throw std::invalid_argument("condensed distribution needs >= 1 range");
  }
  validate_probability_vector(q_);
  cumulative_ = inclusive_prefix_sums(q_);
}

CondensedDistribution CondensedDistribution::point_mass(
    std::size_t num_ranges, std::size_t i) {
  if (i == 0 || i > num_ranges) {
    throw std::invalid_argument("range index out of bounds");
  }
  std::vector<double> q(num_ranges, 0.0);
  q[i - 1] = 1.0;
  return CondensedDistribution(std::move(q));
}

CondensedDistribution CondensedDistribution::uniform(std::size_t num_ranges) {
  if (num_ranges == 0) {
    throw std::invalid_argument("condensed distribution needs >= 1 range");
  }
  std::vector<double> q(num_ranges, 1.0 / static_cast<double>(num_ranges));
  return CondensedDistribution(std::move(q));
}

double CondensedDistribution::prob(std::size_t i) const {
  if (i == 0 || i > q_.size()) return 0.0;
  return q_[i - 1];
}

double CondensedDistribution::entropy() const { return shannon_entropy(q_); }

double CondensedDistribution::kl_divergence(
    const CondensedDistribution& other) const {
  return crp::info::kl_divergence(q_, other.q_);
}

std::vector<std::size_t> CondensedDistribution::ranges_by_likelihood() const {
  std::vector<std::size_t> order(q_.size());
  std::iota(order.begin(), order.end(), std::size_t{1});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (q_[a - 1] != q_[b - 1]) return q_[a - 1] > q_[b - 1];
                     return a < b;
                   });
  return order;
}

std::size_t CondensedDistribution::sample(std::mt19937_64& rng) const {
  return sample_from_cumulative(cumulative_, rng) + 1;
}

std::string CondensedDistribution::describe() const {
  std::ostringstream out;
  out << "CondensedDistribution(ranges=" << size() << ", H=" << entropy()
      << ")";
  return out.str();
}

}  // namespace crp::info
