// Entropy and divergence functionals on raw probability vectors.
// All quantities are in bits (log base 2), matching the paper.
#pragma once

#include <span>

namespace crp::info {

/// Shannon entropy H(p) = -sum p_i log2 p_i. Zero-probability entries
/// contribute nothing (0 log 0 := 0). Does not require p to sum to 1 —
/// callers that pass unnormalized vectors get the corresponding sum.
double shannon_entropy(std::span<const double> p);

/// Kullback-Leibler divergence D_KL(p || q) = sum p_i log2(p_i / q_i).
/// Returns +infinity when some p_i > 0 has q_i = 0. Requires equal sizes.
double kl_divergence(std::span<const double> p, std::span<const double> q);

/// Cross entropy H(p, q) = H(p) + D_KL(p || q) = -sum p_i log2 q_i.
double cross_entropy(std::span<const double> p, std::span<const double> q);

/// Binary entropy h(x) = -x log2 x - (1-x) log2 (1-x) for x in [0, 1].
double binary_entropy(double x);

}  // namespace crp::info
