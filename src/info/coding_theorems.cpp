#include "info/coding_theorems.h"

#include <cmath>

#include "info/entropy.h"

namespace crp::info {

namespace {
constexpr double kSlack = 1e-9;
}

CodingCheck check_source_coding(const PrefixCode& code,
                                std::span<const double> source) {
  CodingCheck result;
  result.entropy = shannon_entropy(source);
  result.divergence = 0.0;
  result.expected_length = code.expected_length(source);
  result.lower_bound_holds =
      result.expected_length + kSlack >= result.entropy;
  result.upper_bound_holds =
      result.expected_length <= result.entropy + 1.0 + kSlack;
  return result;
}

CodingCheck check_mismatched_coding(const PrefixCode& code,
                                    std::span<const double> eval_source,
                                    std::span<const double> design_source) {
  CodingCheck result;
  result.entropy = shannon_entropy(eval_source);
  result.divergence = kl_divergence(eval_source, design_source);
  result.expected_length = code.expected_length(eval_source);
  const double bound = result.entropy + result.divergence;
  result.lower_bound_holds =
      std::isinf(bound) || result.expected_length + kSlack >= bound;
  result.upper_bound_holds = result.expected_length <= bound + 1.0 + kSlack;
  return result;
}

}  // namespace crp::info
