// Discrete-round simulation engines for the shared channel.
//
// Two engines are provided:
//  * the *binomial* engine, exact for uniform algorithms: when k
//    participants each transmit i.i.d. with probability p, the number
//    of transmitters is Binomial(k, p), so one binomial draw simulates
//    the whole round in O(1);
//  * the *per-player* engine, which tracks individual identities and is
//    required for the deterministic advice protocols of Section 3.
// tests/channel_test.cc cross-validates the two engines statistically.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "channel/protocol.h"

namespace crp::channel {

/// Outcome of simulating one contention-resolution execution.
struct RunResult {
  /// True iff some round had exactly one transmitter within the budget.
  bool solved = false;
  /// 1-based round of success; equals the round budget when unsolved.
  std::size_t rounds = 0;
  /// Winning player's id (per-player engine only; nullopt otherwise).
  std::optional<std::size_t> winner;
  /// Total transmissions across all rounds — the energy proxy used by
  /// the duty-cycled examples (each transmission costs one radio-on).
  std::size_t transmissions = 0;
};

/// Per-round record for diagnostics and the example programs.
struct RoundRecord {
  double probability = 0.0;        ///< uniform engines; 0 for deterministic
  std::size_t transmitters = 0;
  Feedback feedback = Feedback::kSilence;
};

using ExecutionTrace = std::vector<RoundRecord>;

/// Simulation knobs shared by all engines.
struct SimOptions {
  /// Hard stop: executions longer than this are reported unsolved.
  std::size_t max_rounds = 1 << 20;
  /// When non-null, each simulated round is appended here.
  ExecutionTrace* trace = nullptr;
};

/// Runs a uniform no-collision-detection algorithm with k participants.
/// Requires k >= 1 (with k == 1 every positive-probability round can
/// succeed immediately, matching the "extra all-transmit round" the
/// paper uses to dispose of k = 1).
RunResult run_uniform_no_cd(const ProbabilitySchedule& schedule,
                            std::size_t k, std::mt19937_64& rng,
                            const SimOptions& options = {});

/// Runs a uniform collision-detection algorithm with k participants.
/// The policy sees the growing collision history (bit = collision?).
RunResult run_uniform_cd(const CollisionPolicy& policy, std::size_t k,
                         std::mt19937_64& rng,
                         const SimOptions& options = {});

/// Runs a deterministic protocol over an explicit participant set.
/// `collision_detection` selects what the players observe: with it off,
/// players are fed kSilence for every past round (the information-less
/// setting the Theorem 3.4 simulation argument relies on); with it on,
/// they see silence vs collision truthfully.
RunResult run_deterministic(const DeterministicProtocol& protocol,
                            const BitString& advice,
                            std::span<const std::size_t> participants,
                            bool collision_detection,
                            const SimOptions& options = {});

/// Per-player engine for *uniform* algorithms: every participant flips
/// its own coin. Statistically identical to the binomial engine; used
/// to cross-validate it and by examples that want per-player traces.
RunResult run_uniform_no_cd_per_player(const ProbabilitySchedule& schedule,
                                       std::size_t k, std::mt19937_64& rng,
                                       const SimOptions& options = {});

/// Throws std::invalid_argument unless p lies in [0, 1]. The one
/// validation path shared by every engine (binomial, per-player, and
/// the analytic fast path in channel/batch.h).
void validate_probability(double p);

/// Samples the number of transmitters among k players transmitting
/// independently with probability p (exposed for tests). Validates p
/// and constructs a fresh distribution on every call; the simulation
/// loops use TransmitterSampler instead.
std::size_t sample_transmitters(std::size_t k, double p,
                                std::mt19937_64& rng);

/// Binomial(k, p) transmitter counts for a fixed k, reusing the
/// configured std::binomial_distribution across calls with the same p.
/// Cycling schedules revisit a small set of probabilities, so the
/// per-round distribution construction (and re-validation of p) is paid
/// once per distinct probability instead of once per round.
class TransmitterSampler {
 public:
  explicit TransmitterSampler(std::size_t k) : k_(k) {}

  /// Number of transmitters among the k players when each transmits
  /// independently with probability p.
  std::size_t operator()(double p, std::mt19937_64& rng);

 private:
  /// Adversarial CD policies may emit unboundedly many distinct
  /// probabilities; past this many the sampler stops caching.
  static constexpr std::size_t kMaxCachedProbabilities = 64;

  std::size_t k_;
  std::vector<std::pair<double, std::binomial_distribution<std::size_t>>>
      cache_;
};

/// Maps a transmitter count to channel feedback.
Feedback feedback_for(std::size_t transmitters);

}  // namespace crp::channel
