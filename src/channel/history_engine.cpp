#include "channel/history_engine.h"

#include <algorithm>
#include <mutex>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "channel/rng.h"
#include "harness/exact.h"
#include "info/distribution.h"

namespace crp::channel {

namespace {

/// Continues one execution by exact per-round simulation from
/// `history`: the same Markov chain the per-round CD simulator runs,
/// sampled through the outcome trichotomy (a uniform CD policy only
/// ever observes the feedback, so the trichotomy is the whole round).
/// Returns the 1-based solve round, or 0 when the budget runs out.
std::size_t simulate_from(const CollisionPolicy& policy, std::size_t k,
                          BitString& history, std::size_t budget,
                          SplitMix64& rng,
                          std::uniform_real_distribution<double>& unit) {
  for (std::size_t round = history.size(); round < budget; ++round) {
    const auto outcome =
        harness::round_outcome_probabilities(k, policy.probability(history));
    const double u = unit(rng);
    if (u < outcome.success) return round + 1;
    history.push_back(u >= outcome.success + outcome.silence);
  }
  return 0;
}

}  // namespace

std::pair<std::shared_ptr<const harness::HistoryTree>,
          HistoryTreeEngine::Mode>
HistoryTreeEngine::tree_for(std::size_t k, std::size_t max_rounds) const {
  const std::size_t horizon = std::min(options_.depth_cap, max_rounds);
  const auto key = std::make_pair(k, horizon);
  std::shared_ptr<const harness::HistoryTree> tree;
  {
    std::shared_lock lock(mutex_);
    const auto it = trees_.find(key);
    if (it != trees_.end()) tree = it->second;
  }
  if (tree == nullptr) {
    // Expand outside the lock so a large expansion never serializes
    // cached reads or other keys' builds. Racing builders may expand
    // the same key concurrently — the expansion is deterministic, so
    // they produce identical trees and the first insert wins.
    harness::HistoryTreeOptions expand;
    expand.horizon = horizon;
    expand.prune_below = options_.prune_below;
    expand.threads = options_.expand_threads;
    expand.max_nodes = options_.max_nodes;
    auto built = std::make_shared<const harness::HistoryTree>(
        harness::expand_history_tree(policy_, k, expand));
    std::unique_lock lock(mutex_);
    auto& slot = trees_[key];
    if (slot == nullptr) slot = std::move(built);
    tree = slot;
  }

  if (tree->truncated) return {tree, Mode::kSimulate};
  // Frontier mass is exactly "unsolved at the budget" when the budget
  // equals the expansion horizon; it only becomes unresolved when the
  // execution would continue past the cap.
  const double unresolved =
      tree->pruned_mass + (max_rounds > horizon ? tree->frontier_mass : 0.0);
  return {tree,
          unresolved <= options_.resolve_epsilon ? Mode::kInverseCdf
                                                 : Mode::kWalk};
}

void HistoryTreeEngine::run_many(TrialBlock& block) const {
  validate_trial_block(block);
  const std::size_t count = block.size();
  const info::SizeDistribution* dist = block.sizes.distribution;

  // One (tree, mode) fetch per distinct participant count per block —
  // the same snapshot discipline as the no-CD batch engine.
  using Entry = std::pair<std::shared_ptr<const harness::HistoryTree>, Mode>;
  std::vector<Entry> slots;
  std::vector<std::size_t> slot_k;
  if (dist != nullptr) {
    const auto sizes = dist->support_sizes();
    slots.assign(sizes.size(), {nullptr, Mode::kSimulate});
    slot_k.assign(sizes.begin(), sizes.end());
  } else {
    slots.assign(1, {nullptr, Mode::kSimulate});
    slot_k.assign(1, block.sizes.fixed_k);
  }

  std::span<const double> cum;
  if (dist != nullptr) cum = dist->support_cumulative();

  BitString path;  // scratch history for the walk / simulation modes
  path.reserve(64);
  for (std::size_t t = 0; t < count; ++t) {
    SplitMix64 rng = derive_fast_rng(block.seed, block.first_trial + t);
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    // Draw order matches BatchColumnarEngine: the participant count
    // (when drawn) comes first, from the same per-trial stream.
    std::size_t slot = 0;
    if (dist != nullptr) {
      const double uk = unit(rng);
      slot = static_cast<std::size_t>(
          std::lower_bound(cum.begin(), cum.end(), uk) - cum.begin());
    }
    Entry& entry = slots[slot];
    if (entry.first == nullptr) {
      entry = tree_for(slot_k[slot], block.max_rounds);
    }
    const harness::HistoryTree& tree = *entry.first;
    const std::size_t k = slot_k[slot];

    std::size_t round = 0;  // 1-based solve round; 0 = unsolved
    switch (entry.second) {
      case Mode::kInverseCdf: {
        const double u = unit(rng);
        if (u < tree.solved_mass()) {
          round = static_cast<std::size_t>(
                      std::upper_bound(tree.solve_cdf.begin(),
                                       tree.solve_cdf.end(), u) -
                      tree.solve_cdf.begin()) +
                  1;
        }
        break;
      }
      case Mode::kWalk: {
        path.clear();
        std::int64_t node = tree.nodes.empty()
                                ? harness::HistoryTreeNode::kNoChild
                                : 0;
        while (node != harness::HistoryTreeNode::kNoChild &&
               path.size() < block.max_rounds) {
          const auto& n = tree.nodes[static_cast<std::size_t>(node)];
          const double u = unit(rng);
          if (u < n.cum_success) {
            round = path.size() + 1;
            break;
          }
          const bool collided = u >= n.cum_no_collision;
          path.push_back(collided);
          node = collided ? n.collision : n.silence;
        }
        if (round == 0 && path.size() < block.max_rounds) {
          // Left the expansion (pruned branch or depth cap): continue
          // on the exact per-round simulation from the walked history.
          round = simulate_from(policy_, k, path, block.max_rounds, rng,
                                unit);
        }
        break;
      }
      case Mode::kSimulate: {
        path.clear();
        round = simulate_from(policy_, k, path, block.max_rounds, rng, unit);
        break;
      }
    }
    block.solved[t] = round != 0 ? 1 : 0;
    block.rounds[t] = round != 0 ? round : block.max_rounds;
  }

  // Like the no-CD analytic engine, the sampler does not reconstruct
  // the per-round transmission counts.
  if (!block.transmissions.empty()) {
    std::fill(block.transmissions.begin(), block.transmissions.end(), 0);
  }
}

std::shared_ptr<const HistoryTreeEngine> HistoryTreeCache::engine_for(
    const CollisionPolicy& policy) const {
  {
    std::shared_lock lock(mutex_);
    const auto it = engines_.find(&policy);
    if (it != engines_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = engines_[&policy];
  if (slot == nullptr) {
    slot = std::make_shared<const HistoryTreeEngine>(policy, options_);
  }
  return slot;
}

std::size_t HistoryTreeCache::size() const {
  std::shared_lock lock(mutex_);
  return engines_.size();
}

}  // namespace crp::channel
