#include "channel/history_engine.h"

#include <algorithm>
#include <mutex>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "channel/kernels/kernels.h"
#include "channel/rng.h"
#include "harness/exact.h"
#include "info/distribution.h"

namespace crp::channel {

namespace {

/// Continues one execution by exact per-round simulation from
/// `history`: the same Markov chain the per-round CD simulator runs,
/// sampled through the outcome trichotomy (a uniform CD policy only
/// ever observes the feedback, so the trichotomy is the whole round).
/// Returns the 1-based solve round, or 0 when the budget runs out.
std::size_t simulate_from(const CollisionPolicy& policy, std::size_t k,
                          BitString& history, std::size_t budget,
                          SplitMix64& rng,
                          std::uniform_real_distribution<double>& unit) {
  for (std::size_t round = history.size(); round < budget; ++round) {
    const auto outcome =
        harness::round_outcome_probabilities(k, policy.probability(history));
    const double u = unit(rng);
    if (u < outcome.success) return round + 1;
    history.push_back(u >= outcome.success + outcome.silence);
  }
  return 0;
}

}  // namespace

std::pair<std::shared_ptr<const harness::HistoryTree>,
          HistoryTreeEngine::Mode>
HistoryTreeEngine::tree_for(std::size_t k, std::size_t max_rounds) const {
  const std::size_t horizon = std::min(options_.depth_cap, max_rounds);
  const auto key = std::make_pair(k, horizon);
  std::shared_ptr<const harness::HistoryTree> tree;
  {
    std::shared_lock lock(mutex_);
    const auto it = trees_.find(key);
    if (it != trees_.end()) tree = it->second;
  }
  if (tree == nullptr) {
    // Expand outside the lock so a large expansion never serializes
    // cached reads or other keys' builds. Racing builders may expand
    // the same key concurrently — the expansion is deterministic, so
    // they produce identical trees and the first insert wins.
    harness::HistoryTreeOptions expand;
    expand.horizon = horizon;
    expand.prune_below = options_.prune_below;
    expand.threads = options_.expand_threads;
    expand.max_nodes = options_.max_nodes;
    auto built = std::make_shared<const harness::HistoryTree>(
        harness::expand_history_tree(policy_, k, expand));
    std::unique_lock lock(mutex_);
    auto& slot = trees_[key];
    if (slot == nullptr) slot = std::move(built);
    tree = slot;
  }

  if (tree->truncated) return {tree, Mode::kSimulate};
  // Frontier mass is exactly "unsolved at the budget" when the budget
  // equals the expansion horizon; it only becomes unresolved when the
  // execution would continue past the cap.
  const double unresolved =
      tree->pruned_mass + (max_rounds > horizon ? tree->frontier_mass : 0.0);
  return {tree,
          unresolved <= options_.resolve_epsilon ? Mode::kInverseCdf
                                                 : Mode::kWalk};
}

void HistoryTreeEngine::run_many(TrialBlock& block) const {
  validate_trial_block(block);
  const std::size_t count = block.size();
  const info::SizeDistribution* dist = block.sizes.distribution;
  const kernels::Ops& kops = kernels::ops();

  // One (tree, mode) fetch per distinct participant count per block —
  // the same snapshot discipline as the no-CD batch engine.
  using Entry = std::pair<std::shared_ptr<const harness::HistoryTree>, Mode>;
  std::vector<Entry> slots;
  std::vector<std::size_t> slot_k;
  if (dist != nullptr) {
    const auto sizes = dist->support_sizes();
    slots.assign(sizes.size(), {nullptr, Mode::kSimulate});
    slot_k.assign(sizes.begin(), sizes.end());
  } else {
    slots.assign(1, {nullptr, Mode::kSimulate});
    slot_k.assign(1, block.sizes.fixed_k);
  }

  std::span<const double> cum;
  if (dist != nullptr) cum = dist->support_cumulative();

  // Pass 1: the lane kernel derives every trial's first draw at once —
  // the participant-count draw when sizes are drawn — and the slots it
  // selects decide which (tree, mode) entries the block needs. The
  // solve-draw column is only materialized when some slot actually
  // answers by inverse CDF; walk/simulate trials have a variable draw
  // count and re-derive their stream scalar below, so for them the
  // columns would be pure overhead.
  std::vector<std::uint32_t> slot_of;
  std::vector<double> uk;
  if (dist != nullptr) {
    uk.resize(count);
    kops.pass1_uniform(block.seed, block.first_trial, count, uk.data());
    slot_of.resize(count);
    for (std::size_t t = 0; t < count; ++t) {
      slot_of[t] = static_cast<std::uint32_t>(
          std::lower_bound(cum.begin(), cum.end(), uk[t]) - cum.begin());
      Entry& entry = slots[slot_of[t]];
      if (entry.first == nullptr) {
        entry = tree_for(slot_k[slot_of[t]], block.max_rounds);
      }
    }
  } else if (count > 0) {
    slots[0] = tree_for(slot_k[0], block.max_rounds);
  }
  bool any_cdf = false;
  for (const Entry& entry : slots) {
    any_cdf |= entry.first != nullptr && entry.second == Mode::kInverseCdf;
  }

  // The solve-draw column (the second draw of each stream; the first
  // for fixed-k blocks) — bit for bit the unit(rng) value the scalar
  // loop would have drawn. uk is recomputed by the pair kernel, to the
  // identical values.
  std::vector<double> u;
  if (any_cdf) {
    u.resize(count);
    if (dist != nullptr) {
      kops.pass1_uniform_pair(block.seed, block.first_trial, count, uk.data(),
                              u.data());
    } else {
      kops.pass1_uniform(block.seed, block.first_trial, count, u.data());
    }
  }

  // Inverse-CDF trials, grouped per slot for the lane probe.
  std::vector<std::vector<std::uint32_t>> cdf_groups(slots.size());

  BitString path;  // scratch history for the walk / simulation modes
  path.reserve(64);
  for (std::size_t t = 0; t < count; ++t) {
    const std::size_t slot = dist != nullptr ? slot_of[t] : 0;
    const Entry& entry = slots[slot];
    const harness::HistoryTree& tree = *entry.first;
    const std::size_t k = slot_k[slot];

    if (entry.second == Mode::kInverseCdf) {
      cdf_groups[slot].push_back(static_cast<std::uint32_t>(t));
      continue;
    }

    // Walk / simulate: variable draw count — re-derive the per-trial
    // stream and discard the size draw the uk column already holds.
    SplitMix64 rng = derive_fast_rng(block.seed, block.first_trial + t);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    if (dist != nullptr) (void)unit(rng);

    std::size_t round = 0;  // 1-based solve round; 0 = unsolved
    switch (entry.second) {
      case Mode::kInverseCdf:
        break;  // handled above
      case Mode::kWalk: {
        path.clear();
        std::int64_t node = tree.nodes.empty()
                                ? harness::HistoryTreeNode::kNoChild
                                : 0;
        while (node != harness::HistoryTreeNode::kNoChild &&
               path.size() < block.max_rounds) {
          const auto& n = tree.nodes[static_cast<std::size_t>(node)];
          // Not the solve-draw column `u` above: the walk re-derives
          // its own per-trial stream draw by draw.
          const double draw = unit(rng);
          if (draw < n.cum_success) {
            round = path.size() + 1;
            break;
          }
          const bool collided = draw >= n.cum_no_collision;
          path.push_back(collided);
          node = collided ? n.collision : n.silence;
        }
        if (round == 0 && path.size() < block.max_rounds) {
          // Left the expansion (pruned branch or depth cap): continue
          // on the exact per-round simulation from the walked history.
          round = simulate_from(policy_, k, path, block.max_rounds, rng,
                                unit);
        }
        break;
      }
      case Mode::kSimulate: {
        path.clear();
        round = simulate_from(policy_, k, path, block.max_rounds, rng, unit);
        break;
      }
    }
    block.solved[t] = round != 0 ? 1 : 0;
    block.rounds[t] = round != 0 ? round : block.max_rounds;
  }

  // Pass 2: answer each slot's inverse-CDF trials with the lane
  // upper-bound probe over the tree's padded CDF — bit-identical to
  // the scalar std::upper_bound it replaces (ties included; pinned by
  // tests/kernel_test.cpp). The solved-mass gate stays outside the
  // kernel: u >= solved_mass means the budget ran out unsolved.
  std::vector<double> group_u;
  std::vector<std::uint64_t> group_idx;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const auto& group = cdf_groups[s];
    if (group.empty()) continue;
    const harness::HistoryTree& tree = *slots[s].first;
    const double solved_mass = tree.solved_mass();
    if (tree.padded_solve_cdf.empty()) {
      // Hand-assembled tree without the padded table: scalar fallback.
      for (const std::uint32_t t : group) {
        std::size_t round = 0;
        if (u[t] < solved_mass) {
          round = static_cast<std::size_t>(
                      std::upper_bound(tree.solve_cdf.begin(),
                                       tree.solve_cdf.end(), u[t]) -
                      tree.solve_cdf.begin()) +
                  1;
        }
        block.solved[t] = round != 0 ? 1 : 0;
        block.rounds[t] = round != 0 ? round : block.max_rounds;
      }
      continue;
    }
    const kernels::CdfTable table{tree.padded_solve_cdf.data(),
                                  tree.padded_solve_cdf.size(),
                                  tree.solve_cdf.size()};
    group_u.resize(group.size());
    group_idx.resize(group.size());
    for (std::size_t j = 0; j < group.size(); ++j) group_u[j] = u[group[j]];
    kops.probe_cdf(table, group_u.data(), group.size(), group_idx.data());
    for (std::size_t j = 0; j < group.size(); ++j) {
      const std::uint32_t t = group[j];
      const std::size_t round =
          group_u[j] < solved_mass
              ? static_cast<std::size_t>(group_idx[j]) + 1
              : 0;
      block.solved[t] = round != 0 ? 1 : 0;
      block.rounds[t] = round != 0 ? round : block.max_rounds;
    }
  }

  // Like the no-CD analytic engine, the sampler does not reconstruct
  // the per-round transmission counts.
  if (!block.transmissions.empty()) {
    std::fill(block.transmissions.begin(), block.transmissions.end(), 0);
  }
}

std::shared_ptr<const HistoryTreeEngine> HistoryTreeCache::engine_for(
    const CollisionPolicy& policy) const {
  {
    std::shared_lock lock(mutex_);
    const auto it = engines_.find(&policy);
    if (it != engines_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = engines_[&policy];
  if (slot == nullptr) {
    slot = std::make_shared<const HistoryTreeEngine>(policy, options_);
  }
  return slot;
}

std::size_t HistoryTreeCache::size() const {
  std::shared_lock lock(mutex_);
  return engines_.size();
}

}  // namespace crp::channel
