#include "channel/engine.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "channel/rng.h"
#include "channel/simulator.h"

namespace crp::channel {

void validate_trial_block(const TrialBlock& block) {
  if (block.rounds.size() != block.size() ||
      (!block.transmissions.empty() &&
       block.transmissions.size() != block.size())) {
    throw std::invalid_argument("trial block columns disagree on length");
  }
  if (block.sizes.distribution == nullptr && block.sizes.fixed_k == 0) {
    throw std::invalid_argument("need at least one participant");
  }
}

namespace {

/// Shared body of the exact-simulator adapters: per trial, one derived
/// mt19937_64 stream feeding the k draw (when drawn) and the scalar
/// run — exactly the draw order of the scalar Trial path, so results
/// are bit-identical to it.
template <typename Run>
void run_scalar_adapter(TrialBlock& block, const Run& run) {
  validate_trial_block(block);
  const info::SizeDistribution* dist = block.sizes.distribution;
  const SimOptions options{.max_rounds = block.max_rounds};
  for (std::size_t t = 0; t < block.size(); ++t) {
    auto rng = derive_rng(block.seed, block.first_trial + t);
    const std::size_t k = dist ? dist->sample(rng) : block.sizes.fixed_k;
    const RunResult result = run(k, rng, options);
    block.solved[t] = result.solved ? 1 : 0;
    block.rounds[t] = result.rounds;
    if (!block.transmissions.empty()) {
      block.transmissions[t] = result.transmissions;
    }
  }
}

/// Branchless lower_bound over a power-of-two +inf-padded copy of a
/// sorted array: returns the count of entries < u, bit-identical to
/// std::lower_bound on the unpadded array (ties included; the padding
/// never compares true). The fixed trip count and conditional-move
/// body make the per-trial slot search ~3x cheaper than the branchy
/// binary search it replaces — it was the single largest term in the
/// dist-path run_many profile.
std::size_t lower_bound_padded(const double* padded, std::size_t padded_size,
                               double u) {
  const double* base = padded;
  std::size_t len = padded_size;
  while (len > 1) {
    const std::size_t half = len / 2;
    base += (base[half - 1] < u) ? half : 0;
    len -= half;
  }
  return static_cast<std::size_t>(base - padded) + (base[0] < u);
}

}  // namespace

void run_adapter_block(
    TrialBlock& block,
    const std::function<RunResult(std::size_t k, std::mt19937_64& rng,
                                  const SimOptions& options)>& run) {
  run_scalar_adapter(block, run);
}

void BatchColumnarEngine::run_many(TrialBlock& block) const {
  validate_trial_block(block);
  const std::size_t count = block.size();
  if (count == 0) return;
  const info::SizeDistribution* dist = block.sizes.distribution;
  const kernels::Ops& kops = kernels::ops();

  // Pass 1: the dispatched lane kernel burns through the per-trial
  // SplitMix64 streams — one draw for the participant count (drawn
  // sizes only) and one for the solve round — producing the exact draw
  // sequence of the old per-trial derive_fast_rng +
  // uniform_real_distribution loop, distribution construction and all
  // hoisted into the kernel (tests/kernel_test.cpp pins the sequence).
  std::vector<double> u(count);
  std::vector<std::uint32_t> slot;  // support index per trial
  if (dist != nullptr) {
    const auto cum = dist->support_cumulative();
    std::vector<double> uk(count);
    kops.pass1_uniform_pair(block.seed, block.first_trial, count, uk.data(),
                            u.data());
    const std::size_t padded_size = std::bit_ceil(cum.size());
    std::vector<double> cum_padded(padded_size,
                                   std::numeric_limits<double>::infinity());
    std::copy(cum.begin(), cum.end(), cum_padded.begin());
    slot.resize(count);
    for (std::size_t t = 0; t < count; ++t) {
      slot[t] = static_cast<std::uint32_t>(
          lower_bound_padded(cum_padded.data(), padded_size, uk[t]));
    }
  } else {
    kops.pass1_uniform(block.seed, block.first_trial, count, u.data());
  }

  // Pass 2a: the whole uniform column becomes log-survival targets in
  // one vectorized log1p map; u[t] holds the target from here on.
  kops.map_targets(u.data(), count);

  // Pass 2b: answer every target with the lane inverse-CDF probe over
  // a snapshot's padded period table — 8 (AVX2) / 16 (AVX-512) masked-
  // gather descents in flight instead of one conditional-move descent
  // per trial. One snapshot per support slot serves the whole block:
  // snapshotting at the block's *minimum* target (the deepest draw)
  // guarantees the table serves every trial in the group, and yields
  // the same rounds as per-trial extension would — the first crossing
  // index of a non-increasing prefix does not depend on how far past
  // the crossing the table extends, and a table that cannot cross
  // within max_rounds answers 0 either way.
  std::vector<std::uint64_t> rounds(count);
  if (dist != nullptr) {
    // Group trials by support slot (counting sort) so each slot's
    // targets probe as one contiguous lane-parallel run.
    const auto sizes = dist->support_sizes();
    const std::size_t nslots = sizes.size();
    std::vector<std::size_t> start(nslots + 1, 0);
    for (std::size_t t = 0; t < count; ++t) ++start[slot[t] + 1];
    for (std::size_t s = 0; s < nslots; ++s) start[s + 1] += start[s];
    std::vector<std::uint32_t> order(count);
    {
      std::vector<std::size_t> fill(start.begin(), start.end() - 1);
      for (std::size_t t = 0; t < count; ++t) {
        order[fill[slot[t]]++] = static_cast<std::uint32_t>(t);
      }
    }
    std::vector<double> grouped(count);
    for (std::size_t j = 0; j < count; ++j) grouped[j] = u[order[j]];
    std::vector<std::uint64_t> grouped_rounds(count);
    for (std::size_t s = 0; s < nslots; ++s) {
      const std::size_t begin = start[s], end = start[s + 1];
      if (begin == end) continue;
      const double min_target =
          *std::min_element(grouped.begin() + begin, grouped.begin() + end);
      const auto table =
          sampler_.snapshot(sizes[s], min_target, block.max_rounds);
      kops.probe_rounds(sampler_.probe_view(*table, block.max_rounds),
                        grouped.data() + begin, end - begin,
                        grouped_rounds.data() + begin);
    }
    for (std::size_t j = 0; j < count; ++j) {
      rounds[order[j]] = grouped_rounds[j];
    }
  } else {
    const double min_target = *std::min_element(u.begin(), u.end());
    const auto table =
        sampler_.snapshot(block.sizes.fixed_k, min_target, block.max_rounds);
    kops.probe_rounds(sampler_.probe_view(*table, block.max_rounds), u.data(),
                      count, rounds.data());
  }

  for (std::size_t t = 0; t < count; ++t) {
    const std::uint64_t round = rounds[t];
    block.solved[t] = round != 0 ? 1 : 0;
    block.rounds[t] = round != 0 ? round : block.max_rounds;
  }

  // The analytic path does not reconstruct the energy proxy (matching
  // BatchOptions::sample_transmissions' default).
  if (!block.transmissions.empty()) {
    std::fill(block.transmissions.begin(), block.transmissions.end(), 0);
  }
}

void BinomialColumnarEngine::run_many(TrialBlock& block) const {
  run_scalar_adapter(block, [this](std::size_t k, std::mt19937_64& rng,
                                   const SimOptions& options) {
    return run_uniform_no_cd(schedule_, k, rng, options);
  });
}

void PerPlayerColumnarEngine::run_many(TrialBlock& block) const {
  run_scalar_adapter(block, [this](std::size_t k, std::mt19937_64& rng,
                                   const SimOptions& options) {
    return run_uniform_no_cd_per_player(schedule_, k, rng, options);
  });
}

void CollisionPolicyColumnarEngine::run_many(TrialBlock& block) const {
  run_scalar_adapter(block, [this](std::size_t k, std::mt19937_64& rng,
                                   const SimOptions& options) {
    return run_uniform_cd(policy_, k, rng, options);
  });
}

}  // namespace crp::channel
