#include "channel/engine.h"

#include <algorithm>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "channel/rng.h"
#include "channel/simulator.h"

namespace crp::channel {

void validate_trial_block(const TrialBlock& block) {
  if (block.rounds.size() != block.size() ||
      (!block.transmissions.empty() &&
       block.transmissions.size() != block.size())) {
    throw std::invalid_argument("trial block columns disagree on length");
  }
  if (block.sizes.distribution == nullptr && block.sizes.fixed_k == 0) {
    throw std::invalid_argument("need at least one participant");
  }
}

namespace {

/// Shared body of the exact-simulator adapters: per trial, one derived
/// mt19937_64 stream feeding the k draw (when drawn) and the scalar
/// run — exactly the draw order of the scalar Trial path, so results
/// are bit-identical to it.
template <typename Run>
void run_scalar_adapter(TrialBlock& block, const Run& run) {
  validate_trial_block(block);
  const info::SizeDistribution* dist = block.sizes.distribution;
  const SimOptions options{.max_rounds = block.max_rounds};
  for (std::size_t t = 0; t < block.size(); ++t) {
    auto rng = derive_rng(block.seed, block.first_trial + t);
    const std::size_t k = dist ? dist->sample(rng) : block.sizes.fixed_k;
    const RunResult result = run(k, rng, options);
    block.solved[t] = result.solved ? 1 : 0;
    block.rounds[t] = result.rounds;
    if (!block.transmissions.empty()) {
      block.transmissions[t] = result.transmissions;
    }
  }
}

}  // namespace

void run_adapter_block(
    TrialBlock& block,
    const std::function<RunResult(std::size_t k, std::mt19937_64& rng,
                                  const SimOptions& options)>& run) {
  run_scalar_adapter(block, run);
}

void BatchColumnarEngine::run_many(TrialBlock& block) const {
  validate_trial_block(block);
  const std::size_t count = block.size();
  const info::SizeDistribution* dist = block.sizes.distribution;

  // Pass 1: burn through the per-trial SplitMix64 streams, spending one
  // draw on the participant count (drawn sizes only; the compact
  // support table makes this a search over support_size() entries) and
  // one on the solve round. The draw order matches the scalar batch
  // path bit for bit.
  std::vector<double> u(count);
  std::vector<std::uint32_t> slot;  // support index per trial
  if (dist != nullptr) {
    const auto cum = dist->support_cumulative();
    slot.resize(count);
    for (std::size_t t = 0; t < count; ++t) {
      SplitMix64 rng = derive_fast_rng(block.seed, block.first_trial + t);
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      const double uk = unit(rng);
      slot[t] = static_cast<std::uint32_t>(
          std::lower_bound(cum.begin(), cum.end(), uk) - cum.begin());
      u[t] = unit(rng);
    }
  } else {
    for (std::size_t t = 0; t < count; ++t) {
      SplitMix64 rng = derive_fast_rng(block.seed, block.first_trial + t);
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      u[t] = unit(rng);
    }
  }

  // Pass 2a: turn the whole uniform column into log-survival targets
  // in one pass. Hoisting the log1p out of the search loop makes this
  // a pure element-wise map the compiler can unroll and vectorize
  // (build with CRP_ENABLE_NATIVE_ARCH=ON for the widest vectors the
  // host supports); u[t] holds the target from here on.
  for (std::size_t t = 0; t < count; ++t) {
    u[t] = BatchNoCdSampler::target_for(u[t]);
  }

  // Pass 2b: answer every target with the branchless inverse-CDF probe
  // over the snapshot's padded period table — a fixed-trip-count
  // conditional-move descent instead of a mispredicting binary search
  // per draw. One table snapshot per support slot serves the whole
  // block; only a draw an aperiodic snapshot cannot answer re-enters
  // the sampler's shared cache.
  const auto solve = [&](const std::size_t t,
                         std::shared_ptr<const BatchNoCdSampler::SolveTable>&
                             table,
                         const std::size_t k) {
    const double target = u[t];
    if (table == nullptr || !sampler_.serves(*table, target, block.max_rounds)) {
      table = sampler_.snapshot(k, target, block.max_rounds);
    }
    const std::size_t round = sampler_.search(*table, target, block.max_rounds);
    block.solved[t] = round != 0 ? 1 : 0;
    block.rounds[t] = round != 0 ? round : block.max_rounds;
  };
  if (dist != nullptr) {
    const auto sizes = dist->support_sizes();
    std::vector<std::shared_ptr<const BatchNoCdSampler::SolveTable>> tables(
        sizes.size());
    for (std::size_t t = 0; t < count; ++t) {
      solve(t, tables[slot[t]], sizes[slot[t]]);
    }
  } else {
    std::shared_ptr<const BatchNoCdSampler::SolveTable> table;
    for (std::size_t t = 0; t < count; ++t) {
      solve(t, table, block.sizes.fixed_k);
    }
  }

  // The analytic path does not reconstruct the energy proxy (matching
  // BatchOptions::sample_transmissions' default).
  if (!block.transmissions.empty()) {
    std::fill(block.transmissions.begin(), block.transmissions.end(), 0);
  }
}

void BinomialColumnarEngine::run_many(TrialBlock& block) const {
  run_scalar_adapter(block, [this](std::size_t k, std::mt19937_64& rng,
                                   const SimOptions& options) {
    return run_uniform_no_cd(schedule_, k, rng, options);
  });
}

void PerPlayerColumnarEngine::run_many(TrialBlock& block) const {
  run_scalar_adapter(block, [this](std::size_t k, std::mt19937_64& rng,
                                   const SimOptions& options) {
    return run_uniform_no_cd_per_player(schedule_, k, rng, options);
  });
}

void CollisionPolicyColumnarEngine::run_many(TrialBlock& block) const {
  run_scalar_adapter(block, [this](std::size_t k, std::mt19937_64& rng,
                                   const SimOptions& options) {
    return run_uniform_cd(policy_, k, rng, options);
  });
}

}  // namespace crp::channel
