// Cached history-tree sampler for collision-detection policies: the
// analytic fast path CD runs were missing.
//
// CD executions are history-dependent Markov chains, so — unlike the
// no-CD batch engine — a single inverse-CDF over per-round success
// probabilities does not exist in closed form. But the chain over
// collision histories can be *expanded once* per (policy, k, budget)
// (harness/history_tree.h, the same enumeration exact_profile_cd runs)
// and trials then *sampled from the expansion* instead of simulated:
//
//  * when the expansion resolves essentially all probability mass
//    within the depth cap, one uniform draw per trial inverse-CDF
//    searches the solve-round CDF — O(log horizon) per trial, the same
//    shape as the no-CD batch engine;
//  * otherwise each trial walks the tree, spending one SplitMix64
//    uniform per branch point against the per-node cumulative outcome
//    tables (no virtual policy call, no binomial sampling, no
//    mt19937_64 seeding), and a trial that leaves the expansion — a
//    pruned branch, or the depth cap — falls back to the exact
//    per-round simulation the CollisionPolicyColumnarEngine adapter
//    runs, continued from the walked history;
//  * a policy whose tree exceeds the node cap before pruning can cut
//    it (expansion truncated) is delegated entirely to the per-round
//    simulation path, so the engine never costs more than a bounded
//    expansion attempt over the adapter it replaces.
//
// Both sampling modes produce the exact distribution of (solved,
// rounds) — the walk applies the exact outcome trichotomy at every
// step, the inverse-CDF mode up to the resolve_epsilon mass bound —
// and tests/history_tree_engine_test.cpp cross-validates them against
// the simulated path and pins the marginals to exact_profile_cd.
//
// Ownership: the engine borrows the policy (it must outlive the
// engine) and owns its tree cache.
//
// Thread-safety: run_many is safe to call concurrently on disjoint
// blocks; the per-(k, budget) tree cache is guarded by a shared mutex.
// Expansion runs outside the lock (so it never serializes cached reads
// or other keys' builds); racing builders of one key produce identical
// trees — the expansion is deterministic — and the first insert wins.
//
// Determinism: trial t draws only from the SplitMix64 stream derived
// from (block.seed, block.first_trial + t); the sampling mode is a
// pure function of (policy, k, budget, options), never of scheduling.
// Results are therefore independent of block partition and thread
// count — but, like the no-CD batch engine, the engine consumes
// randomness differently from the simulated path, so individual trials
// at a fixed seed differ from CollisionPolicyColumnarEngine while the
// distributions agree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <utility>

#include "channel/engine.h"
#include "channel/protocol.h"
#include "harness/history_tree.h"

namespace crp::channel {

/// Analytic/sampling engine for uniform CD policies. Bind one per
/// policy and reuse it across blocks (and threads) so the per-(k,
/// budget) expansions amortize.
class HistoryTreeEngine final : public Engine {
 public:
  struct Options {
    /// Expansion depth cap: trees are expanded to
    /// min(depth_cap, block.max_rounds) rounds.
    std::size_t depth_cap = 48;
    /// Reach-probability prune threshold for the expansion. A freely
    /// branching tree stores on the order of (surviving mass) /
    /// prune_below nodes, so this trades tree size (and expansion
    /// time) against the fraction of trials that leave the expansion
    /// through a pruned branch and pay for per-round simulation (the
    /// default keeps that fraction around 10^-3 for the paper's CD
    /// policies while the expansion stays ~10^4 nodes).
    double prune_below = 1e-6;
    /// The inverse-CDF mode is used when the mass the tree cannot
    /// resolve exactly (pruned branches, plus the frontier when the
    /// budget exceeds the cap) is at most this; the sampled
    /// distribution then deviates from exact by at most this total
    /// variation. Larger unresolved mass selects the exact walk mode.
    double resolve_epsilon = 1e-6;
    /// Node cap per expansion; a truncated expansion delegates the
    /// (k, budget) key to per-round simulation.
    std::size_t max_nodes = 1 << 20;
    /// Worker threads for the subtree expansion fan-out (1 = inline;
    /// the tree is identical either way).
    std::size_t expand_threads = 1;
  };

  /// The policy must outlive the engine. (Two overloads rather than a
  /// defaulted argument: a nested aggregate's member initializers are
  /// not usable as a default argument inside the enclosing class.)
  HistoryTreeEngine(const CollisionPolicy& policy, Options options)
      : policy_(policy), options_(options) {}
  explicit HistoryTreeEngine(const CollisionPolicy& policy)
      : HistoryTreeEngine(policy, Options()) {}

  void run_many(TrialBlock& block) const override;

  /// How a (k, budget) key is sampled (exposed for tests).
  enum class Mode {
    kInverseCdf,  ///< one uniform, binary search over the solve CDF
    kWalk,        ///< tree walk + per-round simulation past the tree
    kSimulate,    ///< expansion truncated: pure per-round simulation
  };

  /// The cached expansion (building it if needed) and the sampling
  /// mode for `k` under `max_rounds` (exposed for tests; run_many uses
  /// the same lookup).
  std::pair<std::shared_ptr<const harness::HistoryTree>, Mode> tree_for(
      std::size_t k, std::size_t max_rounds) const;

 private:
  const CollisionPolicy& policy_;
  Options options_;

  mutable std::shared_mutex mutex_;
  /// Keyed by (k, expansion horizon); trees for budgets above the
  /// depth cap share one expansion.
  mutable std::map<std::pair<std::size_t, std::size_t>,
                   std::shared_ptr<const harness::HistoryTree>>
      trees_;
};

/// Sweep-scoped engine cache: one shared HistoryTreeEngine per
/// *policy identity* (the CollisionPolicy address), each engine in
/// turn caching its expansions per (k, horizon) — so a grid whose
/// cells share a CD policy expands every (policy, k, horizon) tree
/// exactly once for the whole sweep instead of once per cell.
/// run_sweep() holds one cache per sweep and threads it to the CD
/// helpers via MeasureOptions::tree_cache; per-call engine
/// construction stays the non-sweep default (a null tree_cache).
///
/// Ownership: the cache borrows its policies (a keyed policy must
/// outlive the cache, which sweep cells guarantee — SweepAlgorithm
/// already borrows) and owns its engines; engine_for hands out
/// shared_ptrs that outlive the cache.
///
/// Thread-safety: engine_for is safe from any number of concurrent
/// sweep cells (shared mutex; double-checked insert), and the engines
/// it returns are themselves concurrency-safe per their contract.
///
/// Determinism: an engine's measurements are a pure function of
/// (policy, options, seeds) — never of cache hits — so cached and
/// per-call engines produce bit-identical results
/// (tests/history_tree_engine_test.cpp pins this).
class HistoryTreeCache {
 public:
  explicit HistoryTreeCache(HistoryTreeEngine::Options options)
      : options_(options) {}
  HistoryTreeCache() : HistoryTreeCache(HistoryTreeEngine::Options()) {}

  /// The shared engine for `policy`, constructing it on first use.
  std::shared_ptr<const HistoryTreeEngine> engine_for(
      const CollisionPolicy& policy) const;

  /// Number of distinct policies cached so far.
  std::size_t size() const;

 private:
  HistoryTreeEngine::Options options_;
  mutable std::shared_mutex mutex_;
  mutable std::map<const CollisionPolicy*,
                   std::shared_ptr<const HistoryTreeEngine>>
      engines_;
};

}  // namespace crp::channel
