#include "channel/simulator.h"

#include <stdexcept>

namespace crp::channel {

std::string to_string(Feedback feedback) {
  switch (feedback) {
    case Feedback::kSilence:
      return "silence";
    case Feedback::kSuccess:
      return "success";
    case Feedback::kCollision:
      return "collision";
  }
  return "unknown";
}

Feedback feedback_for(std::size_t transmitters) {
  if (transmitters == 0) return Feedback::kSilence;
  if (transmitters == 1) return Feedback::kSuccess;
  return Feedback::kCollision;
}

void validate_probability(double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("transmission probability outside [0, 1]");
  }
}

std::size_t sample_transmitters(std::size_t k, double p,
                                std::mt19937_64& rng) {
  validate_probability(p);
  if (k == 0 || p == 0.0) return 0;
  if (p == 1.0) return k;
  std::binomial_distribution<std::size_t> binomial(k, p);
  return binomial(rng);
}

std::size_t TransmitterSampler::operator()(double p, std::mt19937_64& rng) {
  for (auto& [probability, binomial] : cache_) {
    if (probability == p) return binomial(rng);
  }
  validate_probability(p);
  if (k_ == 0 || p == 0.0) return 0;
  if (p == 1.0) return k_;
  if (cache_.size() == kMaxCachedProbabilities) {
    std::binomial_distribution<std::size_t> binomial(k_, p);
    return binomial(rng);
  }
  cache_.emplace_back(p, std::binomial_distribution<std::size_t>(k_, p));
  return cache_.back().second(rng);
}

namespace {

void record(const SimOptions& options, double p, std::size_t transmitters) {
  if (options.trace != nullptr) {
    options.trace->push_back(
        RoundRecord{p, transmitters, feedback_for(transmitters)});
  }
}

}  // namespace

RunResult run_uniform_no_cd(const ProbabilitySchedule& schedule,
                            std::size_t k, std::mt19937_64& rng,
                            const SimOptions& options) {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  TransmitterSampler sample(k);
  std::size_t energy = 0;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    const double p = schedule.probability(round);
    const std::size_t transmitters = sample(p, rng);
    energy += transmitters;
    record(options, p, transmitters);
    if (transmitters == 1) {
      return RunResult{true, round + 1, std::nullopt, energy};
    }
  }
  return RunResult{false, options.max_rounds, std::nullopt, energy};
}

RunResult run_uniform_cd(const CollisionPolicy& policy, std::size_t k,
                         std::mt19937_64& rng, const SimOptions& options) {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  TransmitterSampler sample(k);
  BitString history;
  history.reserve(64);
  std::size_t energy = 0;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    const double p = policy.probability(history);
    const std::size_t transmitters = sample(p, rng);
    energy += transmitters;
    record(options, p, transmitters);
    if (transmitters == 1) {
      return RunResult{true, round + 1, std::nullopt, energy};
    }
    history.push_back(transmitters >= 2);
  }
  return RunResult{false, options.max_rounds, std::nullopt, energy};
}

RunResult run_deterministic(const DeterministicProtocol& protocol,
                            const BitString& advice,
                            std::span<const std::size_t> participants,
                            bool collision_detection,
                            const SimOptions& options) {
  if (participants.empty()) {
    throw std::invalid_argument("need at least one participant");
  }
  std::vector<Feedback> history;
  history.reserve(64);
  std::size_t energy = 0;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    std::size_t transmitters = 0;
    std::optional<std::size_t> sole;
    for (std::size_t id : participants) {
      if (protocol.transmits(id, advice, round, history)) {
        ++transmitters;
        sole = id;
      }
    }
    energy += transmitters;
    record(options, 0.0, transmitters);
    if (transmitters == 1) {
      return RunResult{true, round + 1, sole, energy};
    }
    // Without collision detection the players observe nothing that
    // distinguishes rounds, which we model as unconditional silence.
    history.push_back(collision_detection ? feedback_for(transmitters)
                                          : Feedback::kSilence);
  }
  return RunResult{false, options.max_rounds, std::nullopt, energy};
}

RunResult run_uniform_no_cd_per_player(const ProbabilitySchedule& schedule,
                                       std::size_t k, std::mt19937_64& rng,
                                       const SimOptions& options) {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::size_t energy = 0;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    const double p = schedule.probability(round);
    validate_probability(p);
    std::size_t transmitters = 0;
    std::optional<std::size_t> sole;
    for (std::size_t id = 0; id < k; ++id) {
      if (unit(rng) < p) {
        ++transmitters;
        sole = id;
      }
    }
    energy += transmitters;
    record(options, p, transmitters);
    if (transmitters == 1) {
      return RunResult{true, round + 1, sole, energy};
    }
  }
  return RunResult{false, options.max_rounds, std::nullopt, energy};
}

}  // namespace crp::channel
