// Deterministic random number generation for reproducible experiments.
// Every simulation entry point takes an explicit engine; these helpers
// derive independent streams from a master seed so that parameter
// sweeps and Monte-Carlo repetitions are replayable bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace crp::channel {

/// A seeded 64-bit Mersenne Twister.
inline std::mt19937_64 make_rng(std::uint64_t seed) {
  return std::mt19937_64{seed};
}

/// Derives an independent engine for stream `stream` of experiment
/// `seed` via splitmix64 mixing (avoids correlated low-entropy seeds
/// such as consecutive integers).
inline std::mt19937_64 derive_rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return std::mt19937_64{z};
}

}  // namespace crp::channel
