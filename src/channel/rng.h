// Deterministic random number generation for reproducible experiments.
// Every simulation entry point takes an explicit engine; these helpers
// derive independent streams from a master seed so that parameter
// sweeps and Monte-Carlo repetitions are replayable bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace crp::channel {

/// A seeded 64-bit Mersenne Twister.
inline std::mt19937_64 make_rng(std::uint64_t seed) {
  return std::mt19937_64{seed};
}

/// Splitmix64-finalizer mix of (seed, stream): the one seed-derivation
/// rule shared by derive_rng, derive_fast_rng, and the sweep
/// scheduler's per-cell seeds (harness/sweep.h). Mixing avoids
/// correlated low-entropy seeds such as consecutive integers.
inline std::uint64_t derive_stream_seed(std::uint64_t seed,
                                        std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives an independent engine for stream `stream` of experiment
/// `seed`.
inline std::mt19937_64 derive_rng(std::uint64_t seed, std::uint64_t stream) {
  return std::mt19937_64{derive_stream_seed(seed, stream)};
}

/// A splitmix64 engine: one add and a three-stage mix per draw, and —
/// unlike mt19937_64, whose construction runs a 312-word key expansion
/// plus a full twist on the first draw (~microseconds) — free to seed.
/// That fixed cost is irrelevant when a trial simulates hundreds of
/// rounds but dominates once the batch engine (channel/batch.h) prices
/// a whole trial at two or three draws, so the batch measurement paths
/// derive one of these per trial instead. Satisfies
/// std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// The canonical [0, 1) uniform the batch paths build from one 64-bit
/// draw: bit-identical to std::uniform_real_distribution<double>(0, 1)
/// over a full-range 64-bit engine under libstdc++ (whose
/// generate_canonical computes double(bits) * 2^-64 and clamps the
/// rounded-up 1.0 back into range). Spelled out here so the lane
/// kernels (channel/kernels/) and the scalar engines provably share
/// one conversion — the per-trial draw sequence is part of the
/// bit-determinism contract and must not drift with the standard
/// library's implementation.
inline double canonical_unit(std::uint64_t bits) {
  const double u = static_cast<double>(bits) * 0x1p-64;
  return u >= 1.0 ? 0x1.fffffffffffffp-1 : u;
}

/// Counterpart of derive_rng for the lightweight engine: independent,
/// replayable stream per (seed, stream) pair. The stream index is
/// mixed through the splitmix64 finalizer before seeding — seeding
/// with `seed + gamma * stream` directly would make stream t a
/// one-draw-shifted copy of stream t + 1 (gamma is exactly the
/// engine's per-draw increment), serially correlating consecutive
/// trials.
inline SplitMix64 derive_fast_rng(std::uint64_t seed, std::uint64_t stream) {
  return SplitMix64(derive_stream_seed(seed, stream));
}

}  // namespace crp::channel
