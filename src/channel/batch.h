// Analytic fast-path engine for uniform no-collision-detection runs.
//
// For a fixed participant count k the rounds of a no-CD schedule are
// independent: round r succeeds with probability
//     s_r = k p_r (1 - p_r)^{k-1},
// so the solving round has an explicit distribution with log-survival
//     LS(r) = sum_{j<r} log(1 - s_j),
// and one execution can be *sampled* — not simulated — by drawing
// u ~ Uniform(0, 1] and inverting the CDF: the solve round is the
// smallest r with LS(r) < log u. This replaces the per-round loop of
// channel/simulator.h (one virtual probability() call plus one binomial
// draw per round) with a single O(log) binary search per trial.
//
// The sampler tabulates each schedule once per configuration:
//  * probabilities p_r are fetched through the virtual interface once
//    and cached (for cycling schedules — see ProbabilitySchedule::
//    period() — only one period is stored and indexed modulo);
//  * per participant count k, the log-survival prefix sums are built
//    once and shared by every subsequent trial with that k.
// Caches are guarded by a shared mutex, so one sampler can serve the
// thread-pool harness (harness/parallel.h) concurrently.
//
// The engine is *statistically* identical to run_uniform_no_cd — same
// distribution of (solved, rounds) — but consumes randomness
// differently, so individual executions at a fixed seed differ.
// tests/batch_engine_test.cpp cross-validates the distributions against
// the binomial and per-player engines and the exact profiles of
// harness/exact.h.
//
/// Ownership: the sampler borrows its schedule (which must outlive
/// it) and owns every table it tabulates; snapshot() hands out
/// shared_ptrs that keep a table alive after the cache replaces it.
///
/// Thread-safety: one sampler serves any number of threads — the
/// schedule/table caches grow under a shared mutex, snapshots are
/// immutable, and search() is pure.
///
/// Determinism: sample() consumes a fixed draw order (one uniform per
/// outcome, optional conditional-binomial energy draws) from the
/// caller's engine and derives nothing else, so results are a pure
/// function of (schedule, k, rng state, options) — cache state and
/// tabulation order never affect a result, only its cost.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <random>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "channel/kernels/kernels.h"
#include "channel/protocol.h"
#include "channel/rng.h"
#include "channel/simulator.h"

namespace crp::channel {

/// Knobs for the analytic engine.
struct BatchOptions {
  /// Hard stop: executions longer than this are reported unsolved.
  std::size_t max_rounds = 1 << 20;
  /// When true, RunResult::transmissions is sampled exactly via
  /// conditional binomial draws (Binomial(k, p_j) conditioned on not
  /// being the single success) for every pre-success round — O(solve
  /// round) per trial. When false (the default) transmissions is
  /// reported as 0 and sampling stays O(log max_rounds).
  bool sample_transmissions = false;
  /// When non-null the engine falls back to the exact per-round
  /// simulator so every round can be recorded; results are then
  /// bit-identical to run_uniform_no_cd at the same rng state.
  ExecutionTrace* trace = nullptr;
};

/// Samples uniform no-CD executions analytically. Bind one sampler per
/// schedule and reuse it across trials (and threads): the schedule and
/// per-k tables are tabulated once, on first use.
class BatchNoCdSampler {
 public:
  /// The schedule must outlive the sampler. Schedules advertising a
  /// positive period() get O(period) tables regardless of max_rounds;
  /// aperiodic schedules are tabulated lazily up to the largest round
  /// any trial has needed so far.
  explicit BatchNoCdSampler(const ProbabilitySchedule& schedule);

  BatchNoCdSampler(const BatchNoCdSampler&) = delete;
  BatchNoCdSampler& operator=(const BatchNoCdSampler&) = delete;

  /// Samples one execution outcome for k >= 1 participants. Thread-safe.
  RunResult sample(std::size_t k, std::mt19937_64& rng,
                   const BatchOptions& options = {}) const;

  /// Analytic-only fast variant for the lightweight per-trial engine:
  /// no trace, no energy reconstruction — one uniform draw, one
  /// inverse-CDF lookup. The measurement helpers use this; it prices a
  /// whole trial at nanoseconds instead of the microseconds a
  /// mt19937_64 stream costs to seed. Thread-safe.
  RunResult sample(std::size_t k, SplitMix64& rng,
                   std::size_t max_rounds = 1 << 20) const;

  /// Inverse-CDF core shared by both sample() overloads: the 1-based
  /// solve round for the uniform draw u in [0, 1), or 0 when the
  /// execution outlives `max_rounds`. Exposed for tests.
  std::size_t solve_round(std::size_t k, double u,
                          std::size_t max_rounds) const;

  /// The tabulated per-round probability (exposed for tests).
  double probability(std::size_t round) const;

  // ---- columnar interface (channel/engine.h) ----
  //
  // A columnar caller fetches one table snapshot per distinct k and
  // then answers every draw with that k through search() — no lock,
  // hash lookup, or refcount traffic on the per-trial path. The
  // snapshot stays valid however the shared cache grows concurrently.

  /// Immutable once built: log_survival[r] = LS(r) over rounds [0, r),
  /// non-increasing, log_survival[0] = 0. For periodic schedules the
  /// table spans exactly one period; aperiodic tables span the rounds
  /// tabulated so far and are replaced by extended copies on growth.
  /// `padded` is log_survival padded with -inf to the next power of
  /// two — the flat probe array the branchless inverse-CDF search
  /// walks (built once per snapshot by finalize_probe_table).
  struct SolveTable {
    std::vector<double> log_survival;
    std::vector<double> padded;
  };

  /// Builds (or rebuilds) a table's padded probe array from its
  /// log_survival prefix. Every snapshot the sampler publishes is
  /// already finalized; exposed so tests can assemble tables directly.
  static void finalize_probe_table(SolveTable& table);

  /// Branchless inverse-CDF probe: the smallest 1-based index i with
  /// log_survival[i] < target, or log_survival.size() when no
  /// tabulated round reaches the target. Identical, comparison for
  /// comparison, to std::partition_point over log_survival[1..) with
  /// the predicate v >= target — but the fixed-trip-count descent over
  /// the padded power-of-two array compiles to conditional moves
  /// instead of an unpredictable branch per level
  /// (tests/accumulator_test.cpp pins the equivalence on randomized
  /// snapshots). This is the per-draw hot path of the columnar
  /// engine's pass 2.
  static std::size_t probe_first_below(const SolveTable& table,
                                       double target) {
    // A hand-assembled table that skipped finalize_probe_table would
    // otherwise return round 1 for every target, silently.
    assert(table.padded.size() >= table.log_survival.size());
    return kernels::probe_first_below_padded(table.padded.data(),
                                             table.padded.size(),
                                             table.log_survival.size(), target);
  }

  /// The log-survival target log(1 - u) a uniform draw has to reach.
  /// Evaluated by the kernel layer's own log1p (kernels::log1p_neg) —
  /// within 1 ulp of libm but vectorizable and bit-stable across libc
  /// versions — so the scalar sample() paths and the lane kernels
  /// provably agree draw for draw.
  static double target_for(double u);

  /// The kernel-layer view of a snapshot: the borrowed ProbeTable the
  /// lane probe (kernels::Ops::probe_rounds) descends. Valid while the
  /// snapshot lives.
  kernels::ProbeTable probe_view(const SolveTable& table,
                                 std::size_t max_rounds) const {
    return {table.padded.data(), table.padded.size(),
            table.log_survival.size(), period_ > 0,
            table.log_survival.back(), max_rounds};
  }

  /// The schedule's cycle length (0 = aperiodic) — mirrors
  /// ProbabilitySchedule::period(), cached at construction.
  std::size_t period() const { return period_; }

  /// Fetches (building or extending under the shared lock if needed)
  /// the table snapshot serving (k, target) within `max_rounds`.
  std::shared_ptr<const SolveTable> snapshot(std::size_t k, double target,
                                             std::size_t max_rounds) const;

  /// True when `table` can answer `target` without extension — always
  /// for periodic schedules, for aperiodic ones when the tabulated
  /// prefix already crosses the target or exhausts the round budget.
  bool serves(const SolveTable& table, double target,
              std::size_t max_rounds) const {
    return period_ > 0 || table.log_survival.back() < target ||
           table.log_survival.size() > max_rounds;
  }

  /// Inverse-CDF search in a snapshot: the 1-based solve round for
  /// `target`, or 0 when the execution outlives `max_rounds`. Pure —
  /// the per-trial columnar hot path.
  std::size_t search(const SolveTable& table, double target,
                     std::size_t max_rounds) const;

 private:
  const ProbabilitySchedule& schedule_;
  const std::size_t period_;  // 0 = aperiodic

  mutable std::shared_mutex mutex_;
  // p_r for rounds [0, period_) (immutable after construction) or for
  // the tabulated prefix of an aperiodic schedule (grows under mutex_).
  mutable std::vector<double> probabilities_;
  mutable std::unordered_map<std::size_t, std::shared_ptr<const SolveTable>>
      tables_;  // keyed by participant count k
};

/// One-shot convenience wrapper; prefer holding a BatchNoCdSampler when
/// running many trials so the tables amortize.
RunResult run_uniform_no_cd_batch(const ProbabilitySchedule& schedule,
                                  std::size_t k, std::mt19937_64& rng,
                                  const BatchOptions& options = {});

}  // namespace crp::channel
