#include "channel/batch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

namespace crp::channel {

namespace {

/// log(1 - s) for s = k p (1-p)^{k-1}, the per-round log-survival term
/// (-inf when the round succeeds surely, 0 when it cannot succeed).
double log_survival_term(std::size_t k, double p) {
  if (k == 0 || p == 0.0) return 0.0;
  double s;
  if (p == 1.0) {
    s = k == 1 ? 1.0 : 0.0;
  } else {
    // k p (1-p)^{k-1} in log space, stable for large k.
    s = std::exp(std::log(static_cast<double>(k)) + std::log(p) +
                 static_cast<double>(k - 1) * std::log1p(-p));
  }
  if (s >= 1.0) return -std::numeric_limits<double>::infinity();
  return std::log1p(-s);
}

}  // namespace

void BatchNoCdSampler::finalize_probe_table(SolveTable& table) {
  // Pad to the next power of two with -inf (predicate-false under any
  // finite target) so the branchless descent has a fixed trip count
  // and never indexes past the array.
  const std::size_t size = std::bit_ceil(table.log_survival.size());
  table.padded.assign(size, -std::numeric_limits<double>::infinity());
  std::copy(table.log_survival.begin(), table.log_survival.end(),
            table.padded.begin());
}

BatchNoCdSampler::BatchNoCdSampler(const ProbabilitySchedule& schedule)
    : schedule_(schedule), period_(schedule.period()) {
  if (period_ > 0) {
    probabilities_.reserve(period_);
    for (std::size_t r = 0; r < period_; ++r) {
      const double p = schedule_.probability(r);
      validate_probability(p);
      probabilities_.push_back(p);
    }
  }
}

double BatchNoCdSampler::probability(std::size_t round) const {
  if (period_ > 0) return probabilities_[round % period_];
  {
    std::shared_lock lock(mutex_);
    if (round < probabilities_.size()) return probabilities_[round];
  }
  const double p = schedule_.probability(round);
  validate_probability(p);
  return p;
}

std::shared_ptr<const BatchNoCdSampler::SolveTable>
BatchNoCdSampler::snapshot(std::size_t k, double target,
                           std::size_t max_rounds) const {
  {
    std::shared_lock lock(mutex_);
    const auto it = tables_.find(k);
    if (it != tables_.end() && serves(*it->second, target, max_rounds)) {
      return it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = tables_[k];
  if (period_ > 0) {
    if (slot == nullptr) {
      auto table = std::make_shared<SolveTable>();
      table->log_survival.reserve(period_ + 1);
      table->log_survival.push_back(0.0);
      double ls = 0.0;
      for (std::size_t r = 0; r < period_; ++r) {
        ls += log_survival_term(k, probabilities_[r]);
        table->log_survival.push_back(ls);
      }
      finalize_probe_table(*table);
      slot = std::move(table);
    }
    return slot;
  }
  // Aperiodic: replace the table with an extended immutable copy
  // (readers hold shared_ptr snapshots, so in-flight searches stay
  // valid). Doubling growth amortizes the copies.
  std::size_t horizon = slot ? slot->log_survival.size() - 1 : 0;
  double ls = slot ? slot->log_survival.back() : 0.0;
  if (slot != nullptr && (ls < target || horizon >= max_rounds)) {
    return slot;  // another thread extended it meanwhile
  }
  auto table = std::make_shared<SolveTable>();
  table->log_survival =
      slot ? slot->log_survival : std::vector<double>{0.0};
  while (ls >= target && horizon < max_rounds) {
    const std::size_t grow =
        std::min(max_rounds - horizon, std::max<std::size_t>(64, horizon));
    for (std::size_t i = 0; i < grow; ++i) {
      const std::size_t r = horizon + i;
      if (r >= probabilities_.size()) {
        const double p = schedule_.probability(r);
        validate_probability(p);
        probabilities_.push_back(p);
      }
      ls += log_survival_term(k, probabilities_[r]);
      table->log_survival.push_back(ls);
    }
    horizon += grow;
  }
  finalize_probe_table(*table);
  slot = std::move(table);
  return slot;
}

std::size_t BatchNoCdSampler::solve_round(std::size_t k, double u,
                                          std::size_t max_rounds) const {
  // With u ~ Uniform[0, 1), u' = 1 - u ~ Uniform(0, 1] and the solve
  // round is the smallest r with LS(r) < log u'. The inequality is
  // strict so rounds with zero success probability are never chosen,
  // even at u' = 1.
  const double target = target_for(u);
  return search(*snapshot(k, target, max_rounds), target, max_rounds);
}

double BatchNoCdSampler::target_for(double u) {
  return kernels::log1p_neg(-u);
}

std::size_t BatchNoCdSampler::search(const SolveTable& table, double target,
                                     std::size_t max_rounds) const {
  // The full search (periodic skip + residual probe + budget clamp)
  // lives in the kernel layer as search_one — the scalar reference the
  // lane kernels are pinned against — so the per-trial sample() paths
  // and the columnar probe_rounds pass share one implementation.
  return kernels::search_one(probe_view(table, max_rounds), target);
}

RunResult BatchNoCdSampler::sample(std::size_t k, std::mt19937_64& rng,
                                   const BatchOptions& options) const {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  if (options.trace != nullptr) {
    // Traced runs need every round; use the exact per-round engine.
    return run_uniform_no_cd(
        schedule_, k, rng,
        {.max_rounds = options.max_rounds, .trace = options.trace});
  }
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::size_t round = solve_round(k, unit(rng), options.max_rounds);

  RunResult result;
  result.solved = round != 0;
  result.rounds = result.solved ? round : options.max_rounds;
  if (options.sample_transmissions) {
    // Conditional reconstruction of the energy proxy: every pre-success
    // round saw Binomial(k, p_j) transmitters conditioned on the round
    // not succeeding; the success round contributes exactly one.
    TransmitterSampler sampler(k);
    std::size_t energy = result.solved ? 1 : 0;
    const std::size_t pre_rounds =
        result.solved ? round - 1 : options.max_rounds;
    for (std::size_t r = 0; r < pre_rounds; ++r) {
      const double p = probability(r);
      std::size_t transmitters;
      do {
        transmitters = sampler(p, rng);
      } while (transmitters == 1);
      energy += transmitters;
    }
    result.transmissions = energy;
  }
  return result;
}

RunResult BatchNoCdSampler::sample(std::size_t k, SplitMix64& rng,
                                   std::size_t max_rounds) const {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::size_t round = solve_round(k, unit(rng), max_rounds);
  RunResult result;
  result.solved = round != 0;
  result.rounds = result.solved ? round : max_rounds;
  return result;
}

RunResult run_uniform_no_cd_batch(const ProbabilitySchedule& schedule,
                                  std::size_t k, std::mt19937_64& rng,
                                  const BatchOptions& options) {
  return BatchNoCdSampler(schedule).sample(k, rng, options);
}

}  // namespace crp::channel
