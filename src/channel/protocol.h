// Protocol interfaces for the synchronous multiple-access channel model
// of the paper (Section 1.1 / 2.1).
//
// Uniform algorithms -- the class all of Section 2 studies -- are either
// a fixed probability schedule (no collision detection) or a map from
// collision histories to probabilities (collision detection). Section 3
// additionally studies deterministic algorithms whose behaviour depends
// on player identity and on b bits of advice.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace crp::channel {

/// What the channel reports for one round.
enum class Feedback {
  kSilence,    ///< zero transmitters
  kSuccess,    ///< exactly one transmitter: contention resolved
  kCollision,  ///< two or more transmitters; message lost
};

/// Renders "silence" / "success" / "collision".
std::string to_string(Feedback feedback);

/// Advice strings and collision histories are raw bit vectors.
using BitString = std::vector<bool>;

/// A uniform algorithm for the no-collision-detection channel: a
/// predetermined sequence p_1, p_2, ... where in round r every
/// participant independently transmits with probability p_{r+1}
/// (rounds are 0-based in code, 1-based in the paper).
class ProbabilitySchedule {
 public:
  virtual ~ProbabilitySchedule() = default;

  /// Transmission probability for 0-based round index; must be in [0, 1].
  virtual double probability(std::size_t round) const = 0;

  /// Optional cycling hint: when positive, the schedule promises
  /// probability(r) == probability(r % period()) for every round r, so
  /// analysis engines (harness/exact.h, channel/batch.h) may tabulate a
  /// single period and index modulo instead of calling the virtual
  /// probability() once per round per execution. Zero (the default)
  /// promises no structure.
  virtual std::size_t period() const { return 0; }

  /// Diagnostic name, e.g. "decay" or "likelihood-ordered".
  virtual std::string name() const = 0;
};

/// A uniform algorithm for the collision-detection channel: a function
/// from the binary collision history (bit r = true iff round r had a
/// collision; successes terminate the execution so never appear) to the
/// probability every participant uses next round. This is exactly the
/// binary-tree-of-probabilities view used by the Section 2.4 lower
/// bound.
class CollisionPolicy {
 public:
  virtual ~CollisionPolicy() = default;

  /// Probability for the round following `history`; must be in [0, 1].
  virtual double probability(const BitString& history) const = 0;

  virtual std::string name() const = 0;
};

/// A deterministic algorithm (Section 3): each player decides from its
/// identity, the shared advice string, the round number, and the
/// feedback it has observed so far whether to transmit. On a channel
/// without collision detection the observable history is all-silence
/// until the execution ends, so implementations must not rely on it
/// there (the simulator enforces this by passing kSilence entries).
class DeterministicProtocol {
 public:
  virtual ~DeterministicProtocol() = default;

  /// True iff player `player_id` transmits in 0-based `round`.
  /// `history` holds per-round feedback for rounds [0, round).
  virtual bool transmits(std::size_t player_id, const BitString& advice,
                         std::size_t round,
                         std::span<const Feedback> history) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace crp::channel
