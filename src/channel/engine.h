// Columnar execution layer: engines that simulate (or analytically
// sample) a whole block of trials at once into structure-of-arrays
// result columns.
//
// The scalar simulators (channel/simulator.h, channel/batch.h) price a
// trial well below a microsecond, so per-trial dispatch — a
// std::function call, an RNG construction, a lock acquisition, a
// 40-byte RunResult — dominates Monte-Carlo sweeps. An Engine removes
// all of it: the harness hands run_many() a TrialBlock (seed, global
// trial range, size source, output columns) and the engine fills the
// columns in one pass. The batch engine draws its N uniforms first and
// then inverse-CDF searches them over the shared prefix-sum tables of
// BatchNoCdSampler, fetching one table snapshot per distinct
// participant count instead of taking the sampler's shared lock per
// trial; the exact simulators get adapter engines so every engine is
// driven through the same block interface.
//
/// Ownership: engines borrow their schedule/policy (which must outlive
/// them; BatchColumnarEngine owns its sampler) and never own a block's
/// columns — TrialBlock spans are caller-owned views into sweep-wide
/// arrays.
///
/// Thread-safety: every Engine must be safe to call concurrently on
/// disjoint blocks; the engines here are (the analytic engine's table
/// cache is internally synchronized, the adapters are stateless per
/// call).
///
/// Determinism: an engine derives trial t's randomness only from
/// (block.seed, block.first_trial + t) — the same streams the scalar
/// measurement paths use — so results are independent of block
/// partition, execution order, and thread count, and each engine is
/// bit-compatible with its scalar counterpart at a fixed seed
/// (tests/columnar_engine_test.cpp pins this down). This is the
/// contract docs/ARCHITECTURE.md requires of every future engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <random>
#include <span>

#include "channel/batch.h"
#include "channel/protocol.h"
#include "channel/simulator.h"
#include "info/distribution.h"

namespace crp::channel {

/// Where a block's participant counts come from: per-trial draws from a
/// size distribution (when non-null) or a fixed k.
struct SizeSource {
  const info::SizeDistribution* distribution = nullptr;
  std::size_t fixed_k = 0;
};

/// One block of trials: the inputs an engine needs plus the output
/// columns it fills. Columns are caller-owned views (the harness hands
/// out disjoint subspans of sweep-wide columns, so workers write
/// results in place with no per-trial copies); every engine overwrites
/// all `size()` elements. `transmissions` may be empty when the caller
/// does not need the energy proxy — engines then skip it (the analytic
/// engine reports 0 either way, matching BatchOptions' default).
struct TrialBlock {
  std::uint64_t seed = 0;         ///< master experiment seed
  std::size_t first_trial = 0;    ///< global index of the first trial
  std::size_t max_rounds = 1 << 20;
  SizeSource sizes;
  std::span<std::uint8_t> solved;        ///< 1 iff solved within budget
  std::span<std::uint64_t> rounds;       ///< solve round; budget if not
  std::span<std::uint64_t> transmissions;  ///< optional energy column

  std::size_t size() const { return solved.size(); }
};

/// A columnar trial executor. Implementations must be safe to call
/// concurrently on disjoint blocks (the thread-pool harness does).
class Engine {
 public:
  virtual ~Engine() = default;

  /// Fills every result column of `block`.
  virtual void run_many(TrialBlock& block) const = 0;
};

/// Validates a block's column lengths and size source; throws
/// std::invalid_argument on inconsistency. Every run_many()
/// implementation in the library calls this first.
void validate_trial_block(const TrialBlock& block);

/// Shared run_many() body for adapter engines built on the exact
/// simulators: validates the block, then per trial derives one
/// mt19937_64 stream feeding the k draw (when sizes are drawn) and
/// `run(k, rng, options)`, and writes the result columns. Custom
/// adapters outside this header (e.g. the advice-protocol engine in
/// harness/measure.cpp) call this instead of re-implementing the
/// loop; the std::function indirection is per block call, and the
/// exact simulators dwarf the one virtual dispatch per trial.
void run_adapter_block(
    TrialBlock& block,
    const std::function<RunResult(std::size_t k, std::mt19937_64& rng,
                                  const SimOptions& options)>& run);

/// Analytic no-CD engine (the default fast path): one SplitMix64
/// stream per trial — one draw for the participant count when drawn,
/// one for the solve round — then one vectorizable pass mapping the
/// uniform column to log-survival targets, and one pass of branchless
/// inverse-CDF probes over the sampler's padded prefix-sum tables
/// (BatchNoCdSampler::probe_first_below). Table snapshots are cached
/// per support slot for the span of a block, so the per-trial path
/// performs no locking, hashing, or shared_ptr traffic.
class BatchColumnarEngine final : public Engine {
 public:
  explicit BatchColumnarEngine(const ProbabilitySchedule& schedule)
      : sampler_(schedule) {}

  void run_many(TrialBlock& block) const override;

  /// The underlying sampler (exposed for scalar interop and tests).
  const BatchNoCdSampler& sampler() const { return sampler_; }

 private:
  BatchNoCdSampler sampler_;
};

/// Adapter: drives the exact binomial simulator trial by trial with
/// one derived mt19937_64 stream per trial — bit-compatible with the
/// scalar Trial path it replaces.
class BinomialColumnarEngine final : public Engine {
 public:
  /// The schedule must outlive the engine.
  explicit BinomialColumnarEngine(const ProbabilitySchedule& schedule)
      : schedule_(schedule) {}

  void run_many(TrialBlock& block) const override;

 private:
  const ProbabilitySchedule& schedule_;
};

/// Adapter for the exact per-player simulator (one coin per player per
/// round); same stream contract as BinomialColumnarEngine.
class PerPlayerColumnarEngine final : public Engine {
 public:
  /// The schedule must outlive the engine.
  explicit PerPlayerColumnarEngine(const ProbabilitySchedule& schedule)
      : schedule_(schedule) {}

  void run_many(TrialBlock& block) const override;

 private:
  const ProbabilitySchedule& schedule_;
};

/// Adapter for uniform collision-detection policies: the exact
/// per-round Markov simulation, driven through the block interface.
/// The analytic counterpart is channel/history_engine.h's
/// HistoryTreeEngine, which samples from a cached expansion of the
/// same chain (and falls back to this adapter's per-round semantics
/// wherever the expansion cannot answer exactly).
class CollisionPolicyColumnarEngine final : public Engine {
 public:
  /// The policy must outlive the engine.
  explicit CollisionPolicyColumnarEngine(const CollisionPolicy& policy)
      : policy_(policy) {}

  void run_many(TrialBlock& block) const override;

 private:
  const CollisionPolicy& policy_;
};

}  // namespace crp::channel
