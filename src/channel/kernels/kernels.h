// Lane-parallel batch kernels with runtime ISA dispatch.
//
// The columnar engines (channel/engine.cpp, channel/history_engine.cpp)
// spend their time in three dense element-wise passes: deriving one
// SplitMix64 stream per trial and drawing its uniforms (pass 1),
// mapping the uniform column to log-survival targets via log1p
// (pass 2a), and descending the padded power-of-two probe tables once
// per trial (pass 2b). This header is the seam between those engines
// and the per-ISA implementations of the passes: a table of function
// pointers (`Ops`) resolved once at startup from cpuid, with scalar,
// AVX2 (4-wide ymm, 8 trials in flight), and AVX-512 (8-wide zmm, 16
// trials in flight) backends.
//
// Determinism contract: the scalar backend is the *reference*. Every
// vector backend must produce bit-identical output on the same inputs
// — same draw values, same round indices — so a result column never
// depends on the host's ISA, only on (seed, first_trial). The engines'
// fixed-seed goldens and the shard merge byte-diff gate therefore hold
// on every tier; tests/kernel_test.cpp pins the equivalence on
// randomized and adversarial inputs for every tier the host offers.
// Two ingredients make bit-equality attainable:
//  * the whole project compiles with -ffp-contract=off (see
//    CMakeLists.txt), so no backend's a*b+c fuses into an FMA the
//    scalar reference would round differently;
//  * the log1p map uses this layer's own polynomial (`log1p_neg`, an
//    fdlibm-derived evaluation restricted to (-1, 0], within 1 ulp of
//    the libm function) rather than libm's, because libm's is neither
//    vectorizable nor stable across libc versions.
//
// Each backend lives in its own translation unit compiled for its
// target ISA via function-target pragmas (kernels/avx2.cpp,
// kernels/avx512.cpp), so the portable binary carries all tiers and
// picks at runtime — CRP_ENABLE_NATIVE_ARCH remains an opt-in ceiling
// for the surrounding scalar code, not a requirement for SIMD speed.
// The environment variable CRP_KERNEL_TIER=scalar|avx2|avx512 caps or
// confirms the dispatched tier (requests above the host's capability
// fall back to the widest available); kernel_tier() reports the
// decision, and crp_shard/the benches print it so heterogeneous fleets
// can audit which (bit-compatible) kernels produced an artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

// The x86 backends need 64-bit x86 and a compiler that understands
// function-target pragmas and __builtin_cpu_supports (GCC and Clang
// both do). Define CRP_DISABLE_SIMD_KERNELS (CMake option
// CRP_ENABLE_SIMD_KERNELS=OFF) to build the scalar tier alone.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(CRP_DISABLE_SIMD_KERNELS)
#define CRP_X86_KERNELS 1
#endif

namespace crp::channel::kernels {

/// The ISA tiers, ordered so that a larger value strictly widens the
/// lanes. Every tier computes bit-identical results; they differ only
/// in speed.
enum class Tier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// "scalar", "avx2", "avx512".
const char* tier_name(Tier tier);

/// The inverse of tier_name: parses a CRP_KERNEL_TIER value. Strict —
/// an unrecognized name throws std::invalid_argument naming the value
/// and the accepted set, like the CRP_FAULT_* env surface: a typo'd
/// tier cap must be a hard error, not a silently ignored no-op
/// (crp_shard maps the throw to its usage exit code 2).
Tier parse_tier(std::string_view name);

/// A borrowed view of one BatchNoCdSampler::SolveTable snapshot plus
/// the search parameters that are uniform across a block: everything
/// probe_rounds needs, with no shared_ptr or vector indirection on the
/// lane path. `padded` is the -inf-padded power-of-two probe array,
/// `rounds` the unpadded log_survival size (1 + rounds covered),
/// `periodic` whether the schedule cycles (table spans one period) and
/// `back` the last log_survival entry (the per-period mass when
/// periodic).
struct ProbeTable {
  const double* padded;
  std::size_t padded_size;
  std::size_t rounds;
  bool periodic;
  double back;
  std::size_t max_rounds;
};

/// A borrowed view of a non-decreasing CDF prepared for the lane
/// upper-bound probe: padded[0] is a sentinel <= every query (0.0 for
/// a CDF queried with u >= 0), padded[1..entries] the CDF values, and
/// the remainder +inf up to the power-of-two padded_size.
struct CdfTable {
  const double* padded;
  std::size_t padded_size;
  std::size_t entries;
};

/// One ISA tier's kernel table. All functions are pure and
/// thread-safe; columns may be processed in independent chunks.
struct Ops {
  /// u[t] = the first canonical uniform of per-trial stream
  /// (seed, first_trial + t), t in [0, count) — the draw sequence of
  /// derive_fast_rng + std::uniform_real_distribution<double>(0, 1),
  /// bit for bit (see canonical_unit in channel/rng.h).
  void (*pass1_uniform)(std::uint64_t seed, std::size_t first_trial,
                        std::size_t count, double* u);
  /// uk[t], u[t] = the first two canonical uniforms of stream
  /// (seed, first_trial + t) — the drawn-size path's (size draw,
  /// solve draw) pair.
  void (*pass1_uniform_pair)(std::uint64_t seed, std::size_t first_trial,
                             std::size_t count, double* uk, double* u);
  /// In place: u[t] <- log1p_neg(-u[t]), the log-survival target of a
  /// uniform draw u[t] in [0, 1).
  void (*map_targets)(double* u, std::size_t count);
  /// rounds[t] = the 1-based solve round for targets[t] in `table`, or
  /// 0 past the round budget — exactly search_one per element.
  void (*probe_rounds)(const ProbeTable& table, const double* targets,
                       std::size_t count, std::uint64_t* rounds);
  /// index[t] = count of CDF entries <= u[t] (== the index
  /// std::upper_bound(cdf, cdf + entries, u[t]) - cdf) — exactly
  /// probe_cdf_one per element.
  void (*probe_cdf)(const CdfTable& table, const double* u,
                    std::size_t count, std::uint64_t* index);
};

/// The dispatched kernel table: resolved once from cpuid (and the
/// CRP_KERNEL_TIER cap) on first use, constant afterwards.
const Ops& ops();

/// The tier ops() dispatched to.
Tier tier();

/// The kernel table for an explicit tier, or nullptr when the host (or
/// the build) lacks it. Lets tests iterate every available tier and
/// skip absent ones explicitly.
const Ops* ops_for(Tier tier);

/// Test hook: repoint ops()/tier() at an explicit tier. Returns false
/// (and changes nothing) when the tier is valid but unavailable on
/// this host/build; throws std::invalid_argument when the value is not
/// a Tier enumerator at all (a bad cast, not a capability gap). Not
/// synchronized — call only from single-threaded test setup.
bool force_tier(Tier tier);

// ---- scalar reference primitives (kernels/scalar.cpp) ----
//
// Non-inline on purpose: they are compiled exactly once, in the
// portable-ISA scalar TU, so "bit-identical to scalar" has a single
// well-defined meaning no matter which TU calls them.

/// log(1 + x) for x in (-1, 0]: an fdlibm-derived evaluation, within
/// 1 ulp of libm log1p and bit-stable across hosts. The reference the
/// vector log1p lanes must match bitwise.
double log1p_neg(double x);

/// The branchless descent of BatchNoCdSampler::probe_first_below on a
/// raw padded array: the smallest 1-based index i with
/// padded[i] < target, clamped to `rounds`.
std::size_t probe_first_below_padded(const double* padded,
                                     std::size_t padded_size,
                                     std::size_t rounds, double target);

/// One full inverse-CDF search (periodic skip + residual probe +
/// budget clamp) — the scalar reference for probe_rounds, and the
/// implementation behind BatchNoCdSampler::search.
std::size_t search_one(const ProbeTable& table, double target);

/// One upper-bound descent — the scalar reference for probe_cdf.
std::size_t probe_cdf_one(const CdfTable& table, double u);

}  // namespace crp::channel::kernels

namespace crp::channel {

/// The ISA tier the process dispatches its batch kernels to (satellite
/// of the determinism story: tiers are bit-identical, so this is an
/// audit fact, not a correctness parameter).
kernels::Tier kernel_tier();

/// tier_name(kernel_tier()).
const char* kernel_tier_name();

}  // namespace crp::channel
