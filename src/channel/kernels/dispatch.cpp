// Runtime ISA dispatch for the batch kernels: probe cpuid once, honor
// the CRP_KERNEL_TIER cap, and hand the engines a function-pointer
// table. Selection is an audit fact, not a correctness parameter —
// every tier is bit-identical (kernels.h) — so the only policy here is
// "widest available unless capped".

#include "channel/kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace crp::channel::kernels {

namespace detail {

// Per-backend TU entry points. The avx* symbols exist whenever the
// x86 backends are compiled in; whether they are *callable* on this
// host is what ops_for() answers.
const Ops& scalar_ops();
#ifdef CRP_X86_KERNELS
const Ops& avx2_ops();
const Ops& avx512_ops();
#endif

}  // namespace detail

namespace {

bool host_supports(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
#ifdef CRP_X86_KERNELS
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Tier::kAvx512:
      // F covers the gathers and mask registers; DQ the 64-bit
      // multiply and uint64<->double conversions the pass-1 and probe
      // kernels lean on. __builtin_cpu_supports also verifies the OS
      // saves the zmm state (XCR0), so this is safe under hypervisors
      // that mask AVX-512.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
#endif
    default:
      return false;
  }
}

struct Selection {
  const Ops* ops;
  Tier tier;
};

Selection resolve() {
  Tier best = Tier::kScalar;
  if (host_supports(Tier::kAvx2)) best = Tier::kAvx2;
  if (host_supports(Tier::kAvx512)) best = Tier::kAvx512;

  if (const char* env = std::getenv("CRP_KERNEL_TIER")) {
    // Strict like the CRP_FAULT_* surface: an unrecognized value
    // throws (parse_tier) instead of silently changing nothing —
    // a typo'd cap would otherwise run the wrong tier and say so
    // nowhere. crp_shard validates the variable up front and maps
    // this to exit 2.
    const Tier requested = parse_tier(env);
    if (requested <= best) {
      best = requested;  // a cap is always honored
    } else {
      // Requests above the host's capability fall back (the fleet
      // driver can export one value for heterogeneous hosts), but
      // say so: tier expectations are an auditing tool.
      std::fprintf(stderr,
                   "crp: CRP_KERNEL_TIER=%s unavailable on this host; "
                   "using %s\n",
                   env, tier_name(best));
    }
  }
  return {ops_for(best), best};
}

Selection& selection() {
  static Selection chosen = resolve();
  return chosen;
}

}  // namespace

Tier parse_tier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  throw std::invalid_argument("unknown kernel tier \"" + std::string(name) +
                              "\" (expected scalar|avx2|avx512)");
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const Ops* ops_for(Tier tier) {
  if (!host_supports(tier)) return nullptr;
  switch (tier) {
    case Tier::kScalar:
      return &detail::scalar_ops();
#ifdef CRP_X86_KERNELS
    case Tier::kAvx2:
      return &detail::avx2_ops();
    case Tier::kAvx512:
      return &detail::avx512_ops();
#endif
    default:
      return nullptr;
  }
}

const Ops& ops() { return *selection().ops; }

Tier tier() { return selection().tier; }

bool force_tier(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
    case Tier::kAvx2:
    case Tier::kAvx512:
      break;
    default:
      // A value that is not a Tier at all is a bug in the caller, not
      // a capability gap — same strictness as parse_tier.
      throw std::invalid_argument(
          "force_tier: " + std::to_string(static_cast<int>(tier)) +
          " is not a kernel tier");
  }
  const Ops* forced = ops_for(tier);
  if (forced == nullptr) return false;
  selection() = {forced, tier};
  return true;
}

}  // namespace crp::channel::kernels

namespace crp::channel {

kernels::Tier kernel_tier() { return kernels::tier(); }

const char* kernel_tier_name() {
  return kernels::tier_name(kernels::tier());
}

}  // namespace crp::channel
