// Runtime ISA dispatch for the batch kernels: probe cpuid once, honor
// the CRP_KERNEL_TIER cap, and hand the engines a function-pointer
// table. Selection is an audit fact, not a correctness parameter —
// every tier is bit-identical (kernels.h) — so the only policy here is
// "widest available unless capped".

#include "channel/kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace crp::channel::kernels {

namespace detail {

// Per-backend TU entry points. The avx* symbols exist whenever the
// x86 backends are compiled in; whether they are *callable* on this
// host is what ops_for() answers.
const Ops& scalar_ops();
#ifdef CRP_X86_KERNELS
const Ops& avx2_ops();
const Ops& avx512_ops();
#endif

}  // namespace detail

namespace {

bool host_supports(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
#ifdef CRP_X86_KERNELS
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Tier::kAvx512:
      // F covers the gathers and mask registers; DQ the 64-bit
      // multiply and uint64<->double conversions the pass-1 and probe
      // kernels lean on. __builtin_cpu_supports also verifies the OS
      // saves the zmm state (XCR0), so this is safe under hypervisors
      // that mask AVX-512.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
#endif
    default:
      return false;
  }
}

struct Selection {
  const Ops* ops;
  Tier tier;
};

Selection resolve() {
  Tier best = Tier::kScalar;
  if (host_supports(Tier::kAvx2)) best = Tier::kAvx2;
  if (host_supports(Tier::kAvx512)) best = Tier::kAvx512;

  if (const char* env = std::getenv("CRP_KERNEL_TIER")) {
    Tier requested = best;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      requested = Tier::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = Tier::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      requested = Tier::kAvx512;
    } else {
      known = false;
      std::fprintf(stderr,
                   "crp: ignoring unknown CRP_KERNEL_TIER=%s "
                   "(expected scalar|avx2|avx512)\n",
                   env);
    }
    if (known) {
      if (requested <= best) {
        best = requested;  // a cap is always honored
      } else {
        // Requests above the host's capability fall back (the fleet
        // driver can export one value for heterogeneous hosts), but
        // say so: tier expectations are an auditing tool.
        std::fprintf(stderr,
                     "crp: CRP_KERNEL_TIER=%s unavailable on this host; "
                     "using %s\n",
                     env, tier_name(best));
      }
    }
  }
  return {ops_for(best), best};
}

Selection& selection() {
  static Selection chosen = resolve();
  return chosen;
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const Ops* ops_for(Tier tier) {
  if (!host_supports(tier)) return nullptr;
  switch (tier) {
    case Tier::kScalar:
      return &detail::scalar_ops();
#ifdef CRP_X86_KERNELS
    case Tier::kAvx2:
      return &detail::avx2_ops();
    case Tier::kAvx512:
      return &detail::avx512_ops();
#endif
    default:
      return nullptr;
  }
}

const Ops& ops() { return *selection().ops; }

Tier tier() { return selection().tier; }

bool force_tier(Tier tier) {
  const Ops* forced = ops_for(tier);
  if (forced == nullptr) return false;
  selection() = {forced, tier};
  return true;
}

}  // namespace crp::channel::kernels

namespace crp::channel {

kernels::Tier kernel_tier() { return kernels::tier(); }

const char* kernel_tier_name() {
  return kernels::tier_name(kernels::tier());
}

}  // namespace crp::channel
