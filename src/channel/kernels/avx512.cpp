// AVX-512 kernel backend: 8-wide zmm lanes, two vectors in flight per
// loop (16 trials), compiled for avx512f+avx512dq in this TU only.
// Bit-identical to kernels/scalar.cpp by the kernels.h contract; the
// structure mirrors kernels/avx2.cpp lane for lane, but none of that
// backend's emulations are needed — DQ provides the 64-bit multiply
// (vpmullq) and the uint64<->double conversions (vcvtuqq2pd /
// vcvttpd2qq, both exactly the scalar casts), and F's mask registers
// replace the blend/movemask dance — so there is no 2^30 budget
// delegation here either.

#include "channel/kernels/kernels.h"

#ifdef CRP_X86_KERNELS

#include <immintrin.h>

#include <limits>

#if !defined(__clang__)
// GCC's avx512 headers route several intrinsics through
// _mm512_undefined_epi32, which -Wmaybe-uninitialized flags through
// inlining (GCC PR105593). Nothing here reads uninitialized state.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace crp::channel::kernels::detail {
const Ops& scalar_ops();
}  // namespace crp::channel::kernels::detail

#if defined(__clang__)
#pragma clang attribute push(__attribute__((target("avx512f,avx512dq"))), \
                             apply_to = function)
#else
#pragma GCC push_options
#pragma GCC target("avx512f,avx512dq")
#endif

namespace crp::channel::kernels {

namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

inline __m512i set1_u64(std::uint64_t v) {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

/// SplitMix64 finalizer, lane-wise.
inline __m512i mix64(__m512i z) {
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)),
                         set1_u64(0xbf58476d1ce4e5b9ULL));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)),
                         set1_u64(0x94d049bb133111ebULL));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

/// canonical_unit (channel/rng.h), lane-wise; vcvtuqq2pd rounds to
/// nearest exactly like the scalar cast.
inline __m512d canonical8(__m512i bits) {
  const __m512d u =
      _mm512_mul_pd(_mm512_cvtepu64_pd(bits), _mm512_set1_pd(0x1p-64));
  return _mm512_min_pd(u, _mm512_set1_pd(0x1.fffffffffffffp-1));
}

inline __m512i stream_state0(std::uint64_t seed, std::uint64_t first,
                             std::size_t t) {
  const __m512i stream1 =
      _mm512_add_epi64(set1_u64(first + static_cast<std::uint64_t>(t)),
                       _mm512_set_epi64(8, 7, 6, 5, 4, 3, 2, 1));
  return mix64(_mm512_add_epi64(
      set1_u64(seed), _mm512_mullo_epi64(stream1, set1_u64(kGamma))));
}

// ---- pass 1 ----

void pass1_uniform_avx512(std::uint64_t seed, std::size_t first_trial,
                          std::size_t count, double* u) {
  std::size_t t = 0;
  const __m512i g = set1_u64(kGamma);
  for (; t + 16 <= count; t += 16) {
    const __m512i a0 = stream_state0(seed, first_trial, t);
    const __m512i b0 = stream_state0(seed, first_trial, t + 8);
    _mm512_storeu_pd(u + t, canonical8(mix64(_mm512_add_epi64(a0, g))));
    _mm512_storeu_pd(u + t + 8, canonical8(mix64(_mm512_add_epi64(b0, g))));
  }
  if (t < count) {
    detail::scalar_ops().pass1_uniform(seed, first_trial + t, count - t,
                                       u + t);
  }
}

void pass1_uniform_pair_avx512(std::uint64_t seed, std::size_t first_trial,
                               std::size_t count, double* uk, double* u) {
  std::size_t t = 0;
  const __m512i g = set1_u64(kGamma);
  const __m512i g2 = set1_u64(2 * kGamma);
  for (; t + 16 <= count; t += 16) {
    const __m512i a0 = stream_state0(seed, first_trial, t);
    const __m512i b0 = stream_state0(seed, first_trial, t + 8);
    _mm512_storeu_pd(uk + t, canonical8(mix64(_mm512_add_epi64(a0, g))));
    _mm512_storeu_pd(uk + t + 8, canonical8(mix64(_mm512_add_epi64(b0, g))));
    _mm512_storeu_pd(u + t, canonical8(mix64(_mm512_add_epi64(a0, g2))));
    _mm512_storeu_pd(u + t + 8, canonical8(mix64(_mm512_add_epi64(b0, g2))));
  }
  if (t < count) {
    detail::scalar_ops().pass1_uniform_pair(seed, first_trial + t, count - t,
                                            uk + t, u + t);
  }
}

// ---- pass 2a: log1p ----

/// kernels::log1p_neg, 8 lanes — the same branch-to-mask translation
/// as the AVX2 backend (see there for the lane-by-lane argument), with
/// mask registers instead of blend vectors.
inline __m512d log1p_neg8(__m512d x) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d zero = _mm512_setzero_pd();
  const __m512i xb = _mm512_castpd_si512(x);
  const __m512i ax = _mm512_and_si512(xb, set1_u64(0x7fffffffffffffffULL));

  const __mmask8 m_ret =
      _mm512_cmplt_epi64_mask(ax, set1_u64(0x3c90000000000000ULL));
  const __mmask8 m_small = _mm512_mask_cmplt_epi64_mask(
      ~m_ret, ax, set1_u64(0x3e20000000000000ULL));
  const __mmask8 m_k0raw =
      _mm512_cmplt_epi64_mask(ax, set1_u64(0x3fd2bec400000000ULL));
  const __mmask8 m_k0 =
      m_k0raw & static_cast<__mmask8>(~(m_ret | m_small));
  const __mmask8 m_reduce = static_cast<__mmask8>(~m_k0raw);

  const __m512d u1 = _mm512_add_pd(one, x);
  const __m512i ub = _mm512_castpd_si512(u1);
  __m512i k64 = _mm512_sub_epi64(_mm512_srli_epi64(ub, 52), set1_u64(1023));
  const __m512d cE =
      _mm512_div_pd(_mm512_sub_pd(x, _mm512_sub_pd(u1, one)), u1);
  const __m512i mant = _mm512_and_si512(ub, set1_u64(0x000fffffffffffffULL));
  const __mmask8 m_lo =
      _mm512_cmplt_epi64_mask(mant, set1_u64(0x0006a09e00000000ULL));
  const __m512i unorm_lo =
      _mm512_or_si512(mant, set1_u64(0x3ff0000000000000ULL));
  const __m512i unorm_hi =
      _mm512_or_si512(mant, set1_u64(0x3fe0000000000000ULL));
  k64 = _mm512_mask_blend_epi64(m_lo, _mm512_add_epi64(k64, set1_u64(1)),
                                k64);
  const __m512d u2 =
      _mm512_castsi512_pd(_mm512_mask_blend_epi64(m_lo, unorm_hi, unorm_lo));
  const __m512i hu_lo = _mm512_srli_epi64(mant, 32);
  const __m512i hu_hi = _mm512_srli_epi64(
      _mm512_sub_epi64(set1_u64(0x00100000ULL), hu_lo), 2);
  const __m512i hu = _mm512_mask_blend_epi64(m_lo, hu_hi, hu_lo);
  const __m512d fE = _mm512_sub_pd(u2, one);

  const __m512d f = _mm512_mask_blend_pd(m_k0, fE, x);
  const __m512d c = _mm512_mask_blend_pd(m_k0, cE, zero);
  k64 = _mm512_mask_blend_epi64(m_k0, k64, _mm512_setzero_si512());
  const __mmask8 m_hu0 =
      _mm512_cmpeq_epi64_mask(hu, _mm512_setzero_si512()) & m_reduce;

  const __m512d dk = _mm512_cvtepi64_pd(k64);
  const __m512d hfsq =
      _mm512_mul_pd(_mm512_mul_pd(_mm512_set1_pd(0.5), f), f);
  const __m512d s = _mm512_div_pd(f, _mm512_add_pd(_mm512_set1_pd(2.0), f));
  const __m512d z = _mm512_mul_pd(s, s);
  __m512d R = _mm512_set1_pd(1.479819860511658591e-01);  // Lp7
  R = _mm512_add_pd(_mm512_set1_pd(1.531383769920937332e-01),
                    _mm512_mul_pd(z, R));
  R = _mm512_add_pd(_mm512_set1_pd(1.818357216161805012e-01),
                    _mm512_mul_pd(z, R));
  R = _mm512_add_pd(_mm512_set1_pd(2.222219843214978396e-01),
                    _mm512_mul_pd(z, R));
  R = _mm512_add_pd(_mm512_set1_pd(2.857142874366239149e-01),
                    _mm512_mul_pd(z, R));
  R = _mm512_add_pd(_mm512_set1_pd(3.999999999940941908e-01),
                    _mm512_mul_pd(z, R));
  R = _mm512_add_pd(_mm512_set1_pd(6.666666666666735130e-01),
                    _mm512_mul_pd(z, R));
  R = _mm512_mul_pd(z, R);

  const __m512d khi =
      _mm512_mul_pd(dk, _mm512_set1_pd(6.93147180369123816490e-01));
  const __m512d clo = _mm512_add_pd(
      c, _mm512_mul_pd(dk, _mm512_set1_pd(1.90821492927058770002e-10)));
  const __m512d t1 = _mm512_mul_pd(s, _mm512_add_pd(hfsq, R));

  const __m512d res_reduce = _mm512_sub_pd(
      khi, _mm512_sub_pd(_mm512_sub_pd(hfsq, _mm512_add_pd(t1, clo)), f));
  const __m512d res_k0 = _mm512_sub_pd(f, _mm512_sub_pd(hfsq, t1));
  const __m512d Rs = _mm512_mul_pd(
      hfsq, _mm512_sub_pd(one, _mm512_mul_pd(
                                   _mm512_set1_pd(0.66666666666666666), f)));
  const __m512d res_hu0 =
      _mm512_sub_pd(khi, _mm512_sub_pd(_mm512_sub_pd(Rs, clo), f));
  const __m512d res_hu0_f0 = _mm512_add_pd(khi, clo);
  const __mmask8 m_f0 = _mm512_cmp_pd_mask(f, zero, _CMP_EQ_OQ);

  __m512d res = res_reduce;
  res = _mm512_mask_blend_pd(m_k0, res, res_k0);
  res = _mm512_mask_blend_pd(m_hu0 & static_cast<__mmask8>(~m_f0), res,
                             res_hu0);
  res = _mm512_mask_blend_pd(m_hu0 & m_f0, res, res_hu0_f0);
  const __m512d small = _mm512_sub_pd(
      x, _mm512_mul_pd(_mm512_mul_pd(x, x), _mm512_set1_pd(0.5)));
  res = _mm512_mask_blend_pd(m_small, res, small);
  res = _mm512_mask_blend_pd(m_ret, res, x);
  return res;
}

void map_targets_avx512(double* u, std::size_t count) {
  const __m512i sign = set1_u64(0x8000000000000000ULL);
  std::size_t t = 0;
  for (; t + 16 <= count; t += 16) {
    const __m512d a = _mm512_castsi512_pd(
        _mm512_xor_si512(_mm512_castpd_si512(_mm512_loadu_pd(u + t)), sign));
    const __m512d b = _mm512_castsi512_pd(_mm512_xor_si512(
        _mm512_castpd_si512(_mm512_loadu_pd(u + t + 8)), sign));
    _mm512_storeu_pd(u + t, log1p_neg8(a));
    _mm512_storeu_pd(u + t + 8, log1p_neg8(b));
  }
  if (t < count) detail::scalar_ops().map_targets(u + t, count - t);
}

// ---- pass 2b: probes ----

/// 8-lane probe_first_below_padded descent (see the AVX2 backend for
/// the invariant notes; vpminuq replaces the compare/blend clamp).
inline __m512i probe8(const double* padded, std::size_t padded_size,
                      std::size_t rounds, __m512d target) {
  __m512i pos = _mm512_setzero_si512();
  for (std::size_t step = padded_size >> 1; step > 0; step >>= 1) {
    const __m512i stepv = set1_u64(step);
    const __m512i idx = _mm512_add_epi64(pos, stepv);
    const __m512d v = _mm512_i64gather_pd(idx, padded, 8);
    const __mmask8 ge = _mm512_cmp_pd_mask(v, target, _CMP_GE_OQ);
    pos = _mm512_mask_add_epi64(pos, ge, pos, stepv);
  }
  const __m512i first = _mm512_add_epi64(pos, set1_u64(1));
  return _mm512_min_epu64(first, set1_u64(rounds));
}

inline __m512i aperiodic8(const ProbeTable& table, __m512d target) {
  const __mmask8 serve =
      _mm512_cmp_pd_mask(_mm512_set1_pd(table.back), target, _CMP_LT_OQ);
  const __m512i first =
      probe8(table.padded, table.padded_size, table.rounds, target);
  __m512i round = _mm512_maskz_mov_epi64(serve, first);
  const __mmask8 over =
      _mm512_cmpgt_epu64_mask(round, set1_u64(table.max_rounds));
  return _mm512_maskz_mov_epi64(~over, round);
}

inline __m512i periodic8(const ProbeTable& table, __m512d target,
                         unsigned* retry) {
  const std::size_t span = table.rounds - 1;
  const __m512d per_period = _mm512_set1_pd(table.back);
  const __m512d skipped = _mm512_roundscale_pd(
      _mm512_div_pd(target, per_period),
      _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  const __m512d skip_rounds =
      _mm512_mul_pd(skipped, _mm512_set1_pd(static_cast<double>(span)));
  const __mmask8 pre = _mm512_cmp_pd_mask(
      skip_rounds, _mm512_set1_pd(static_cast<double>(table.max_rounds)),
      _CMP_GE_OQ);
  const __m512d residual =
      _mm512_sub_pd(target, _mm512_mul_pd(skipped, per_period));
  const __m512i first =
      probe8(table.padded, table.padded_size, table.rounds, residual);
  // vcvttpd2qq matches the scalar size_t truncation on every lane that
  // survives the pre-check; excluded lanes (including inf quotients)
  // produce the indefinite value and are zeroed by the pre mask.
  const __m512i ski = _mm512_cvttpd_epi64(skipped);
  const __m512i base = _mm512_mullo_epi64(ski, set1_u64(span));
  __m512i round = _mm512_add_epi64(base, first);
  round = _mm512_maskz_mov_epi64(~pre, round);
  const __mmask8 over =
      _mm512_cmpgt_epu64_mask(round, set1_u64(table.max_rounds));
  round = _mm512_maskz_mov_epi64(~over, round);
  const __mmask8 at_edge =
      _mm512_cmpeq_epi64_mask(first, set1_u64(table.rounds));
  *retry = static_cast<unsigned>(at_edge & static_cast<__mmask8>(~pre));
  return round;
}

inline __m512i certain8(const ProbeTable& table, __m512d target) {
  const __m512i first =
      probe8(table.padded, table.padded_size, table.rounds, target);
  const __mmask8 over =
      _mm512_cmpgt_epu64_mask(first, set1_u64(table.max_rounds));
  return _mm512_maskz_mov_epi64(~over, first);
}

void probe_rounds_avx512(const ProbeTable& table, const double* targets,
                         std::size_t count, std::uint64_t* rounds) {
  void* out = static_cast<void*>(rounds);
  auto* out64 = static_cast<long long*>(out);
  std::size_t t = 0;
  if (!table.periodic) {
    for (; t + 16 <= count; t += 16) {
      _mm512_storeu_si512(out64 + t,
                          aperiodic8(table, _mm512_loadu_pd(targets + t)));
      _mm512_storeu_si512(
          out64 + t + 8, aperiodic8(table, _mm512_loadu_pd(targets + t + 8)));
    }
  } else if (!(table.back < 0.0)) {
    for (; t < count; ++t) rounds[t] = 0;
    return;
  } else if (table.back == -std::numeric_limits<double>::infinity()) {
    for (; t + 16 <= count; t += 16) {
      _mm512_storeu_si512(out64 + t,
                          certain8(table, _mm512_loadu_pd(targets + t)));
      _mm512_storeu_si512(out64 + t + 8,
                          certain8(table, _mm512_loadu_pd(targets + t + 8)));
    }
  } else {
    for (; t + 16 <= count; t += 16) {
      unsigned retry_a = 0, retry_b = 0;
      _mm512_storeu_si512(
          out64 + t, periodic8(table, _mm512_loadu_pd(targets + t), &retry_a));
      _mm512_storeu_si512(
          out64 + t + 8,
          periodic8(table, _mm512_loadu_pd(targets + t + 8), &retry_b));
      for (unsigned bits = retry_a | (retry_b << 8); bits != 0;
           bits &= bits - 1) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctz(bits));
        rounds[t + lane] = search_one(table, targets[t + lane]);
      }
    }
  }
  for (; t < count; ++t) rounds[t] = search_one(table, targets[t]);
}

inline __m512i cdf8(const CdfTable& table, __m512d u) {
  __m512i pos = _mm512_setzero_si512();
  for (std::size_t step = table.padded_size >> 1; step > 0; step >>= 1) {
    const __m512i stepv = set1_u64(step);
    const __m512i idx = _mm512_add_epi64(pos, stepv);
    const __m512d v = _mm512_i64gather_pd(idx, table.padded, 8);
    const __mmask8 le = _mm512_cmp_pd_mask(v, u, _CMP_LE_OQ);
    pos = _mm512_mask_add_epi64(pos, le, pos, stepv);
  }
  return pos;
}

void probe_cdf_avx512(const CdfTable& table, const double* u,
                      std::size_t count, std::uint64_t* index) {
  void* out = static_cast<void*>(index);
  auto* out64 = static_cast<long long*>(out);
  std::size_t t = 0;
  for (; t + 16 <= count; t += 16) {
    _mm512_storeu_si512(out64 + t, cdf8(table, _mm512_loadu_pd(u + t)));
    _mm512_storeu_si512(out64 + t + 8,
                        cdf8(table, _mm512_loadu_pd(u + t + 8)));
  }
  for (; t < count; ++t) index[t] = probe_cdf_one(table, u[t]);
}

}  // namespace

namespace detail {

const Ops& avx512_ops() {
  static const Ops ops = {
      &pass1_uniform_avx512, &pass1_uniform_pair_avx512, &map_targets_avx512,
      &probe_rounds_avx512, &probe_cdf_avx512,
  };
  return ops;
}

}  // namespace detail

}  // namespace crp::channel::kernels

#if defined(__clang__)
#pragma clang attribute pop
#else
#pragma GCC pop_options
#endif

#endif  // CRP_X86_KERNELS
