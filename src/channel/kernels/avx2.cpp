// AVX2 kernel backend: 4-wide ymm lanes, two vectors in flight per
// loop (8 trials), function-target pragmas so only this TU is compiled
// for AVX2 while the binary stays portable. Must be bit-identical to
// kernels/scalar.cpp on every input — see kernels.h for the contract
// and tests/kernel_test.cpp for the pins. The comments here mostly
// explain *why* a sequence matches the scalar reference; the reference
// itself documents the algorithms.
//
// AVX2 has no 64-bit integer multiply, no uint64<->double conversion,
// and no unsigned 64-bit compare, so this backend emulates:
//  * u64 * constant via three 32x32 vpmuludq partial products;
//  * uint64 -> double via the exponent-splicing trick (hi|2^84,
//    lo|2^52, subtract the biases) — exactly round-to-nearest, i.e.
//    exactly the scalar (double)x cast;
//  * small signed int64 -> double via the 2^52+2^51 bias trick;
//  * double -> int64 for the periodic skip count via cvttpd_epi32,
//    valid while the value fits 32 bits — guaranteed for every lane
//    that passes the budget pre-check when max_rounds <= 2^30, so
//    larger budgets (far past the default 2^20) delegate to scalar.

#include "channel/kernels/kernels.h"

#ifdef CRP_X86_KERNELS

#include <immintrin.h>

#include <limits>

namespace crp::channel::kernels::detail {
const Ops& scalar_ops();
}  // namespace crp::channel::kernels::detail

#if defined(__clang__)
#pragma clang attribute push(__attribute__((target("avx2"))), \
                             apply_to = function)
#else
#pragma GCC push_options
#pragma GCC target("avx2")
#endif

namespace crp::channel::kernels {

namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

inline __m256i set1_u64(std::uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// Low 64 bits of lane-wise x * c for a compile-time constant c.
inline __m256i mul64_const(__m256i x, std::uint64_t c) {
  const __m256i clo = set1_u64(c & 0xffffffffULL);
  const __m256i chi = set1_u64(c >> 32);
  const __m256i lolo = _mm256_mul_epu32(x, clo);
  const __m256i hilo = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), clo);
  const __m256i lohi = _mm256_mul_epu32(x, chi);
  const __m256i cross = _mm256_add_epi64(hilo, lohi);
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

/// SplitMix64 finalizer, lane-wise (constants shared with
/// channel/rng.h).
inline __m256i mix64(__m256i z) {
  z = mul64_const(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                  0xbf58476d1ce4e5b9ULL);
  z = mul64_const(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                  0x94d049bb133111ebULL);
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// uint64 -> double, exactly RN (== the scalar cast).
inline __m256d u64_to_pd(__m256i v) {
  const __m256d two84 = _mm256_set1_pd(19342813113834066795298816.0);
  const __m256d two52 = _mm256_set1_pd(4503599627370496.0);
  const __m256d two84_52 = _mm256_set1_pd(19342813118337666422669312.0);
  const __m256i hi =
      _mm256_or_si256(_mm256_srli_epi64(v, 32), _mm256_castpd_si256(two84));
  const __m256i lo = _mm256_blend_epi32(v, _mm256_castpd_si256(two52), 0xAA);
  return _mm256_add_pd(_mm256_sub_pd(_mm256_castsi256_pd(hi), two84_52),
                       _mm256_castsi256_pd(lo));
}

/// canonical_unit (channel/rng.h), lane-wise: bits * 2^-64 (the scale
/// is exact), with the rounded-up 1.0 clamped to 1 - 2^-53 — min_pd is
/// exactly the scalar's conditional because no lane is NaN.
inline __m256d canonical4(__m256i bits) {
  const __m256d u = _mm256_mul_pd(u64_to_pd(bits), _mm256_set1_pd(0x1p-64));
  return _mm256_min_pd(u, _mm256_set1_pd(0x1.fffffffffffffp-1));
}

/// Signed int64 in [-2^51, 2^51) -> double via the 2^52+2^51 bias.
inline __m256d i64small_to_pd(__m256i v) {
  const __m256i bias = set1_u64(0x4338000000000000ULL);  // (2^52+2^51) bits
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_add_epi64(v, bias)),
                       _mm256_set1_pd(6755399441055744.0));  // 2^52+2^51
}

/// The first two finalized draws of per-trial streams
/// (seed, first + t + lane), lane = 0..3.
inline __m256i stream_state0(std::uint64_t seed, std::uint64_t first,
                             std::size_t t) {
  const __m256i stream1 = _mm256_add_epi64(
      set1_u64(first + static_cast<std::uint64_t>(t)),
      _mm256_set_epi64x(4, 3, 2, 1));  // stream + 1 per lane
  return mix64(_mm256_add_epi64(set1_u64(seed), mul64_const(stream1, kGamma)));
}

// ---- pass 1 ----

void pass1_uniform_avx2(std::uint64_t seed, std::size_t first_trial,
                        std::size_t count, double* u) {
  std::size_t t = 0;
  for (; t + 8 <= count; t += 8) {
    const __m256i a0 = stream_state0(seed, first_trial, t);
    const __m256i b0 = stream_state0(seed, first_trial, t + 4);
    const __m256i g = set1_u64(kGamma);
    _mm256_storeu_pd(u + t, canonical4(mix64(_mm256_add_epi64(a0, g))));
    _mm256_storeu_pd(u + t + 4, canonical4(mix64(_mm256_add_epi64(b0, g))));
  }
  if (t < count) {
    detail::scalar_ops().pass1_uniform(seed, first_trial + t, count - t,
                                       u + t);
  }
}

void pass1_uniform_pair_avx2(std::uint64_t seed, std::size_t first_trial,
                             std::size_t count, double* uk, double* u) {
  std::size_t t = 0;
  const __m256i g = set1_u64(kGamma);
  const __m256i g2 = set1_u64(2 * kGamma);
  for (; t + 8 <= count; t += 8) {
    const __m256i a0 = stream_state0(seed, first_trial, t);
    const __m256i b0 = stream_state0(seed, first_trial, t + 4);
    _mm256_storeu_pd(uk + t, canonical4(mix64(_mm256_add_epi64(a0, g))));
    _mm256_storeu_pd(uk + t + 4, canonical4(mix64(_mm256_add_epi64(b0, g))));
    _mm256_storeu_pd(u + t, canonical4(mix64(_mm256_add_epi64(a0, g2))));
    _mm256_storeu_pd(u + t + 4, canonical4(mix64(_mm256_add_epi64(b0, g2))));
  }
  if (t < count) {
    detail::scalar_ops().pass1_uniform_pair(seed, first_trial + t, count - t,
                                            uk + t, u + t);
  }
}

// ---- pass 2a: log1p ----

/// kernels::log1p_neg, lane-wise. Every branch of the scalar reference
/// becomes a lane mask; all arithmetic keeps the reference's exact
/// association (note 0.5*f*f is (0.5*f)*f), so each lane rounds
/// identically to the scalar call. Domain: x in (-1, 0].
inline __m256d log1p_neg4(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256i xb = _mm256_castpd_si256(x);
  const __m256i ax = _mm256_and_si256(xb, set1_u64(0x7fffffffffffffffULL));

  // Priority cascade of the reference's branches, as disjoint masks
  // (|x| bounds compare identically on the full 64 bits as on the
  // fdlibm high word; ax has no sign bit, so signed compares are safe).
  const __m256i m_ret = _mm256_cmpgt_epi64(set1_u64(0x3c90000000000000ULL), ax);
  const __m256i m_small = _mm256_andnot_si256(
      m_ret, _mm256_cmpgt_epi64(set1_u64(0x3e20000000000000ULL), ax));
  const __m256i m_k0raw =
      _mm256_cmpgt_epi64(set1_u64(0x3fd2bec400000000ULL), ax);
  const __m256i m_k0 =
      _mm256_andnot_si256(_mm256_or_si256(m_ret, m_small), m_k0raw);
  // The reduction branch (|x| > sqrt(2)-1) is everything else: the
  // tiny-|x| masks are strict subsets of m_k0raw.
  const __m256i m_reduce = _mm256_cmpgt_epi64(ax, set1_u64(0x3fd2bec3ffffffffULL));

  // Reduction branch, computed on every lane (all its intermediates
  // are finite for x in (-1, 0]) and blended in afterwards. In this
  // domain u = 1+x < 1, so k <= -1 and the reference's k>0 correction
  // arm never applies.
  const __m256d u1 = _mm256_add_pd(one, x);
  const __m256i ub = _mm256_castpd_si256(u1);
  __m256i k64 = _mm256_sub_epi64(_mm256_srli_epi64(ub, 52), set1_u64(1023));
  const __m256d cE =
      _mm256_div_pd(_mm256_sub_pd(x, _mm256_sub_pd(u1, one)), u1);
  const __m256i mant = _mm256_and_si256(ub, set1_u64(0x000fffffffffffffULL));
  const __m256i m_lo =
      _mm256_cmpgt_epi64(set1_u64(0x0006a09e00000000ULL), mant);
  const __m256i unorm_lo = _mm256_or_si256(mant, set1_u64(0x3ff0000000000000ULL));
  const __m256i unorm_hi = _mm256_or_si256(mant, set1_u64(0x3fe0000000000000ULL));
  k64 = _mm256_blendv_epi8(_mm256_add_epi64(k64, set1_u64(1)), k64, m_lo);
  const __m256d u2 =
      _mm256_castsi256_pd(_mm256_blendv_epi8(unorm_hi, unorm_lo, m_lo));
  const __m256i hu_lo = _mm256_srli_epi64(mant, 32);
  const __m256i hu_hi = _mm256_srli_epi64(
      _mm256_sub_epi64(set1_u64(0x00100000ULL), hu_lo), 2);
  const __m256i hu = _mm256_blendv_epi8(hu_hi, hu_lo, m_lo);
  const __m256d fE = _mm256_sub_pd(u2, one);

  // Merge the no-reduction lanes (f = x, c = 0, k = 0; hu is a nonzero
  // sentinel there, so the hu==0 shortcut stays reduction-only).
  const __m256d m_k0_pd = _mm256_castsi256_pd(m_k0);
  const __m256d f = _mm256_blendv_pd(fE, x, m_k0_pd);
  const __m256d c = _mm256_blendv_pd(cE, zero, m_k0_pd);
  k64 = _mm256_blendv_epi8(k64, _mm256_setzero_si256(), m_k0);
  const __m256i m_hu0 = _mm256_and_si256(
      _mm256_cmpeq_epi64(hu, _mm256_setzero_si256()), m_reduce);

  const __m256d dk = i64small_to_pd(k64);
  const __m256d hfsq =
      _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), f), f);
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d z = _mm256_mul_pd(s, s);
  __m256d R = _mm256_set1_pd(1.479819860511658591e-01);  // Lp7
  R = _mm256_add_pd(_mm256_set1_pd(1.531383769920937332e-01),
                    _mm256_mul_pd(z, R));
  R = _mm256_add_pd(_mm256_set1_pd(1.818357216161805012e-01),
                    _mm256_mul_pd(z, R));
  R = _mm256_add_pd(_mm256_set1_pd(2.222219843214978396e-01),
                    _mm256_mul_pd(z, R));
  R = _mm256_add_pd(_mm256_set1_pd(2.857142874366239149e-01),
                    _mm256_mul_pd(z, R));
  R = _mm256_add_pd(_mm256_set1_pd(3.999999999940941908e-01),
                    _mm256_mul_pd(z, R));
  R = _mm256_add_pd(_mm256_set1_pd(6.666666666666735130e-01),
                    _mm256_mul_pd(z, R));
  R = _mm256_mul_pd(z, R);

  const __m256d khi = _mm256_mul_pd(dk, _mm256_set1_pd(6.93147180369123816490e-01));
  const __m256d clo = _mm256_add_pd(
      c, _mm256_mul_pd(dk, _mm256_set1_pd(1.90821492927058770002e-10)));
  const __m256d t1 = _mm256_mul_pd(s, _mm256_add_pd(hfsq, R));

  const __m256d res_reduce = _mm256_sub_pd(
      khi,
      _mm256_sub_pd(_mm256_sub_pd(hfsq, _mm256_add_pd(t1, clo)), f));
  const __m256d res_k0 = _mm256_sub_pd(f, _mm256_sub_pd(hfsq, t1));
  const __m256d Rs = _mm256_mul_pd(
      hfsq, _mm256_sub_pd(one, _mm256_mul_pd(
                                   _mm256_set1_pd(0.66666666666666666), f)));
  const __m256d res_hu0 = _mm256_sub_pd(
      khi, _mm256_sub_pd(_mm256_sub_pd(Rs, clo), f));
  const __m256d res_hu0_f0 = _mm256_add_pd(khi, clo);
  const __m256d m_f0 = _mm256_cmp_pd(f, zero, _CMP_EQ_OQ);
  const __m256d m_hu0_pd = _mm256_castsi256_pd(m_hu0);

  __m256d res = res_reduce;
  res = _mm256_blendv_pd(res, res_k0, m_k0_pd);
  res = _mm256_blendv_pd(res, res_hu0, _mm256_andnot_pd(m_f0, m_hu0_pd));
  res = _mm256_blendv_pd(res, res_hu0_f0, _mm256_and_pd(m_f0, m_hu0_pd));
  const __m256d small = _mm256_sub_pd(
      x, _mm256_mul_pd(_mm256_mul_pd(x, x), _mm256_set1_pd(0.5)));
  res = _mm256_blendv_pd(res, small, _mm256_castsi256_pd(m_small));
  res = _mm256_blendv_pd(res, x, _mm256_castsi256_pd(m_ret));
  return res;
}

void map_targets_avx2(double* u, std::size_t count) {
  const __m256i sign = set1_u64(0x8000000000000000ULL);
  std::size_t t = 0;
  for (; t + 8 <= count; t += 8) {
    // -u flips u = +0 to -0 exactly as the scalar negation does.
    const __m256d a = _mm256_castsi256_pd(
        _mm256_xor_si256(_mm256_castpd_si256(_mm256_loadu_pd(u + t)), sign));
    const __m256d b = _mm256_castsi256_pd(_mm256_xor_si256(
        _mm256_castpd_si256(_mm256_loadu_pd(u + t + 4)), sign));
    _mm256_storeu_pd(u + t, log1p_neg4(a));
    _mm256_storeu_pd(u + t + 4, log1p_neg4(b));
  }
  if (t < count) detail::scalar_ops().map_targets(u + t, count - t);
}

// ---- pass 2b: probes ----

/// The branchless descent of probe_first_below_padded, 4 lanes per
/// gather: pos advances by step exactly where padded[pos+step] >=
/// target (ordered compare, so a NaN residual in a doomed lane keeps
/// pos at 0), and the final first = pos+1 is clamped to `rounds`.
/// Gather indices stay in [0, padded_size) by the descent invariant.
inline __m256i probe4(const double* padded, std::size_t padded_size,
                      std::size_t rounds, __m256d target) {
  __m256i pos = _mm256_setzero_si256();
  for (std::size_t step = padded_size >> 1; step > 0; step >>= 1) {
    const __m256i stepv = set1_u64(step);
    const __m256i idx = _mm256_add_epi64(pos, stepv);
    const __m256d v = _mm256_i64gather_pd(padded, idx, 8);
    const __m256d ge = _mm256_cmp_pd(v, target, _CMP_GE_OQ);
    pos = _mm256_add_epi64(pos,
                           _mm256_and_si256(_mm256_castpd_si256(ge), stepv));
  }
  const __m256i first = _mm256_add_epi64(pos, set1_u64(1));
  const __m256i roundsv = set1_u64(rounds);
  const __m256i gt = _mm256_cmpgt_epi64(first, roundsv);
  return _mm256_blendv_epi8(first, roundsv, gt);
}

/// One 4-lane slice of the aperiodic search: round = probe where
/// back < target, else 0; then the budget clamp.
inline __m256i aperiodic4(const ProbeTable& table, __m256d target) {
  const __m256d serve =
      _mm256_cmp_pd(_mm256_set1_pd(table.back), target, _CMP_LT_OQ);
  const __m256i first =
      probe4(table.padded, table.padded_size, table.rounds, target);
  __m256i round = _mm256_and_si256(_mm256_castpd_si256(serve), first);
  const __m256i over =
      _mm256_cmpgt_epi64(round, set1_u64(table.max_rounds));
  return _mm256_andnot_si256(over, round);
}

/// One 4-lane slice of the periodic search (finite per-period mass):
/// analytic whole-period skip, residual probe, budget clamps. Returns
/// the rounds vector and reports lanes needing the scalar period-edge
/// retry (first == rounds without a budget excuse) in *retry — the
/// caller patches those through search_one, reproducing the
/// reference's skipped += 1.0 loop exactly.
inline __m256i periodic4(const ProbeTable& table, __m256d target,
                         int* retry) {
  const std::size_t span = table.rounds - 1;
  const __m256d per_period = _mm256_set1_pd(table.back);
  const __m256d skipped =
      _mm256_floor_pd(_mm256_div_pd(target, per_period));
  const __m256d skip_rounds =
      _mm256_mul_pd(skipped, _mm256_set1_pd(static_cast<double>(span)));
  const __m256d pre = _mm256_cmp_pd(
      skip_rounds, _mm256_set1_pd(static_cast<double>(table.max_rounds)),
      _CMP_GE_OQ);  // provably past the budget -> 0
  const __m256d residual =
      _mm256_sub_pd(target, _mm256_mul_pd(skipped, per_period));
  const __m256i first =
      probe4(table.padded, table.padded_size, table.rounds, residual);
  // skipped fits 32 bits on every lane that survives the pre-check
  // (skipped * span < max_rounds <= 2^30, span >= 1), so the epi32
  // truncation and the 32x32 vpmuludq below are exact there; excluded
  // lanes produce garbage that the pre blend discards.
  const __m256i ski =
      _mm256_cvtepi32_epi64(_mm256_cvttpd_epi32(skipped));
  const __m256i base = _mm256_mul_epu32(ski, set1_u64(span));
  __m256i round = _mm256_add_epi64(base, first);
  round = _mm256_andnot_si256(_mm256_castpd_si256(pre), round);
  const __m256i over =
      _mm256_cmpgt_epi64(round, set1_u64(table.max_rounds));
  round = _mm256_andnot_si256(over, round);
  const __m256i at_edge = _mm256_cmpeq_epi64(first, set1_u64(table.rounds));
  *retry = _mm256_movemask_pd(_mm256_andnot_pd(
      pre, _mm256_castsi256_pd(at_edge)));
  return round;
}

/// One 4-lane slice of the certain-periodic search (per-period mass
/// -inf: every draw solves within the first period, no skip
/// arithmetic — 0 * -inf would be NaN). The probe cannot hit the table
/// edge (the -inf entry fails the >= compare), so no retry lanes.
inline __m256i certain4(const ProbeTable& table, __m256d target) {
  const __m256i first =
      probe4(table.padded, table.padded_size, table.rounds, target);
  const __m256i over =
      _mm256_cmpgt_epi64(first, set1_u64(table.max_rounds));
  return _mm256_andnot_si256(over, first);
}

void probe_rounds_avx2(const ProbeTable& table, const double* targets,
                       std::size_t count, std::uint64_t* rounds) {
  // Budgets (or periods) past 2^30 would overflow the 32-bit skip
  // emulation; the default budget is 2^20, so this delegation is a
  // safety valve, not a hot path.
  if (table.max_rounds > (std::size_t{1} << 30) ||
      table.rounds > (std::size_t{1} << 30)) {
    detail::scalar_ops().probe_rounds(table, targets, count, rounds);
    return;
  }
  auto* out = reinterpret_cast<long long*>(rounds);
  std::size_t t = 0;
  if (!table.periodic) {
    for (; t + 8 <= count; t += 8) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + t),
          aperiodic4(table, _mm256_loadu_pd(targets + t)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + t + 4),
          aperiodic4(table, _mm256_loadu_pd(targets + t + 4)));
    }
  } else if (!(table.back < 0.0)) {
    // A non-negative per-period mass means no round in the period can
    // succeed: every lane reports 0, like the reference.
    for (; t < count; ++t) rounds[t] = 0;
    return;
  } else if (table.back == -std::numeric_limits<double>::infinity()) {
    for (; t + 8 <= count; t += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t),
                          certain4(table, _mm256_loadu_pd(targets + t)));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + t + 4),
          certain4(table, _mm256_loadu_pd(targets + t + 4)));
    }
  } else {
    for (; t + 8 <= count; t += 8) {
      int retry_a = 0, retry_b = 0;
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + t),
          periodic4(table, _mm256_loadu_pd(targets + t), &retry_a));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + t + 4),
          periodic4(table, _mm256_loadu_pd(targets + t + 4), &retry_b));
      const unsigned retry = static_cast<unsigned>(retry_a) |
                             (static_cast<unsigned>(retry_b) << 4);
      for (unsigned bits = retry; bits != 0; bits &= bits - 1) {
        const unsigned lane =
            static_cast<unsigned>(__builtin_ctz(bits));
        rounds[t + lane] = search_one(table, targets[t + lane]);
      }
    }
  }
  for (; t < count; ++t) rounds[t] = search_one(table, targets[t]);
}

/// Upper-bound descent over a padded CDF, 4 lanes per gather: pos
/// advances where padded[pos+step] <= u, landing on the count of CDF
/// entries <= u (the sentinel at [0] roots the walk, the +inf padding
/// caps it at `entries`).
inline __m256i cdf4(const CdfTable& table, __m256d u) {
  __m256i pos = _mm256_setzero_si256();
  for (std::size_t step = table.padded_size >> 1; step > 0; step >>= 1) {
    const __m256i stepv = set1_u64(step);
    const __m256i idx = _mm256_add_epi64(pos, stepv);
    const __m256d v = _mm256_i64gather_pd(table.padded, idx, 8);
    const __m256d le = _mm256_cmp_pd(v, u, _CMP_LE_OQ);
    pos = _mm256_add_epi64(pos,
                           _mm256_and_si256(_mm256_castpd_si256(le), stepv));
  }
  return pos;
}

void probe_cdf_avx2(const CdfTable& table, const double* u, std::size_t count,
                    std::uint64_t* index) {
  auto* out = reinterpret_cast<long long*>(index);
  std::size_t t = 0;
  for (; t + 8 <= count; t += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t),
                        cdf4(table, _mm256_loadu_pd(u + t)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t + 4),
                        cdf4(table, _mm256_loadu_pd(u + t + 4)));
  }
  for (; t < count; ++t) index[t] = probe_cdf_one(table, u[t]);
}

}  // namespace

namespace detail {

const Ops& avx2_ops() {
  static const Ops ops = {
      &pass1_uniform_avx2, &pass1_uniform_pair_avx2, &map_targets_avx2,
      &probe_rounds_avx2, &probe_cdf_avx2,
  };
  return ops;
}

}  // namespace detail

}  // namespace crp::channel::kernels

#if defined(__clang__)
#pragma clang attribute pop
#else
#pragma GCC pop_options
#endif

#endif  // CRP_X86_KERNELS
