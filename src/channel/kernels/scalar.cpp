// Scalar kernel backend — the reference implementation every vector
// tier must match bit for bit (see kernels.h for the contract). This
// TU is compiled for the portable ISA only; keep it free of anything
// target-specific so "what the scalar tier computes" never depends on
// the build host.

#include "channel/kernels/kernels.h"

#include <bit>
#include <cmath>

#include "channel/rng.h"

namespace crp::channel::kernels {

namespace {

// SplitMix64 per-draw increment and finalizer — the same constants as
// channel/rng.h's SplitMix64/derive_stream_seed. The kernels re-derive
// the streams arithmetically (stream t's n-th draw is
// mix(mix(seed + gamma*(t+1)) + n*gamma)) so a lane can sit at any
// (trial, draw) coordinate without per-trial object state.
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void pass1_uniform_scalar(std::uint64_t seed, std::size_t first_trial,
                          std::size_t count, double* u) {
  for (std::size_t t = 0; t < count; ++t) {
    const std::uint64_t s0 =
        mix64(seed + kGamma * (static_cast<std::uint64_t>(first_trial + t) + 1));
    u[t] = canonical_unit(mix64(s0 + kGamma));
  }
}

void pass1_uniform_pair_scalar(std::uint64_t seed, std::size_t first_trial,
                               std::size_t count, double* uk, double* u) {
  for (std::size_t t = 0; t < count; ++t) {
    const std::uint64_t s0 =
        mix64(seed + kGamma * (static_cast<std::uint64_t>(first_trial + t) + 1));
    uk[t] = canonical_unit(mix64(s0 + kGamma));
    u[t] = canonical_unit(mix64(s0 + 2 * kGamma));
  }
}

void map_targets_scalar(double* u, std::size_t count) {
  for (std::size_t t = 0; t < count; ++t) {
    u[t] = log1p_neg(-u[t]);
  }
}

void probe_rounds_scalar(const ProbeTable& table, const double* targets,
                         std::size_t count, std::uint64_t* rounds) {
  for (std::size_t t = 0; t < count; ++t) {
    rounds[t] = search_one(table, targets[t]);
  }
}

void probe_cdf_scalar(const CdfTable& table, const double* u,
                      std::size_t count, std::uint64_t* index) {
  for (std::size_t t = 0; t < count; ++t) {
    index[t] = probe_cdf_one(table, u[t]);
  }
}

std::uint32_t hi32(double x) {
  return static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(x) >> 32);
}

double set_hi(double x, std::uint32_t hi) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  bits = (static_cast<std::uint64_t>(hi) << 32) | (bits & 0xffffffffULL);
  return std::bit_cast<double>(bits);
}

}  // namespace

// fdlibm-style log1p (Sun Microsystems' freely-distributable libm
// algorithm: argument reduction 1+x = 2^k (1+f) with |f| < sqrt(2)-1,
// a 7-term odd polynomial in f/(2+f), and an exactly-representable
// ln2_hi/ln2_lo split), specialized to the x in (-1, 0] domain the
// target map uses: the x >= 1 reduction branch and the NaN/-1 guards
// are dropped, everything else is kept verbatim so the result stays
// within 1 ulp of a correctly-rounded log1p across the domain.
double log1p_neg(double x) {
  static const double ln2_hi = 6.93147180369123816490e-01;
  static const double ln2_lo = 1.90821492927058770002e-10;
  static const double Lp1 = 6.666666666666735130e-01,
                      Lp2 = 3.999999999940941908e-01,
                      Lp3 = 2.857142874366239149e-01,
                      Lp4 = 2.222219843214978396e-01,
                      Lp5 = 1.818357216161805012e-01,
                      Lp6 = 1.531383769920937332e-01,
                      Lp7 = 1.479819860511658591e-01;
  const std::int32_t hx = static_cast<std::int32_t>(hi32(x));
  const std::int32_t ax = hx & 0x7fffffff;
  double f = x, c = 0.0, u;
  std::int32_t k = 0, hu = 1;
  if (ax < 0x3e200000) {            /* |x| < 2^-29 */
    if (ax < 0x3c900000) return x;  /* |x| < 2^-54: log(1+x) = x to 1 ulp */
    return x - x * x * 0.5;
  }
  if (hx > 0 || hx <= static_cast<std::int32_t>(0xbfd2bec3)) {
    // |x| <= sqrt(2)-1: no exponent reduction (k = 0), f = x directly.
    k = 0;
    f = x;
    hu = 1;
  } else {
    u = 1.0 + x;
    std::int32_t ihu = static_cast<std::int32_t>(hi32(u));
    k = (ihu >> 20) - 1023;
    c = (k > 0) ? 1.0 - (u - x) : x - (u - 1.0);  // exact correction term
    c /= u;
    ihu &= 0x000fffff;
    if (ihu < 0x6a09e) {  // mantissa of sqrt(2)
      u = set_hi(u, static_cast<std::uint32_t>(ihu | 0x3ff00000));
    } else {
      k += 1;
      u = set_hi(u, static_cast<std::uint32_t>(ihu | 0x3fe00000));
      ihu = (0x00100000 - ihu) >> 2;
    }
    f = u - 1.0;
    hu = ihu;
  }
  const double hfsq = 0.5 * f * f;
  if (hu == 0) {  // |f| < 2^-20: shortcut polynomial
    if (f == 0.0) {
      if (k == 0) return 0.0;
      c += k * ln2_lo;
      return k * ln2_hi + c;
    }
    const double R = hfsq * (1.0 - 0.66666666666666666 * f);
    if (k == 0) return f - R;
    return k * ln2_hi - ((R - (c + k * ln2_lo)) - f);
  }
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double R =
      z * (Lp1 +
           z * (Lp2 + z * (Lp3 + z * (Lp4 + z * (Lp5 + z * (Lp6 + z * Lp7))))));
  if (k == 0) return f - (hfsq - s * (hfsq + R));
  return k * ln2_hi - ((hfsq - (s * (hfsq + R) + (c + k * ln2_lo))) - f);
}

std::size_t probe_first_below_padded(const double* padded,
                                     std::size_t padded_size,
                                     std::size_t rounds, double target) {
  std::size_t pos = 0;
  for (std::size_t step = padded_size >> 1; step > 0; step >>= 1) {
    pos += step * static_cast<std::size_t>(padded[pos + step] >= target);
  }
  const std::size_t first_below = pos + 1;
  return first_below < rounds ? first_below : rounds;
}

std::size_t search_one(const ProbeTable& table, double target) {
  const std::size_t span = table.rounds - 1;  // rounds covered
  std::size_t round = 0;                      // 1-based; 0 = past budget
  if (table.periodic) {
    const double per_period = table.back;
    if (per_period < 0.0) {
      // Whole periods are skipped analytically; a sure-success round
      // inside the period (per_period = -inf) means every draw solves
      // within the first one — and must not enter the arithmetic,
      // because 0 * -inf is NaN. The skipped += 1.0 retry absorbs
      // floating-point rounding at a period edge.
      const bool certain = std::isinf(per_period);
      double skipped = certain ? 0.0 : std::floor(target / per_period);
      while (round == 0) {
        if (skipped * static_cast<double>(span) >=
            static_cast<double>(table.max_rounds)) {
          break;  // provably past the budget; avoid overflowing below
        }
        const double residual =
            certain ? target : target - skipped * per_period;
        const std::size_t first = probe_first_below_padded(
            table.padded, table.padded_size, table.rounds, residual);
        if (first < table.rounds) {
          round = static_cast<std::size_t>(skipped) * span + first;
        } else {
          skipped += 1.0;
        }
      }
    }
  } else if (table.back < target) {
    round = probe_first_below_padded(table.padded, table.padded_size,
                                     table.rounds, target);
  }
  return round > table.max_rounds ? 0 : round;
}

std::size_t probe_cdf_one(const CdfTable& table, double u) {
  // Largest padded index with padded[pos] <= u; the sentinel at [0]
  // keeps the invariant rooted, the +inf padding keeps pos <= entries.
  // Minus the sentinel offset this is exactly upper_bound's index.
  std::size_t pos = 0;
  for (std::size_t step = table.padded_size >> 1; step > 0; step >>= 1) {
    pos += step * static_cast<std::size_t>(table.padded[pos + step] <= u);
  }
  return pos;
}

namespace detail {

const Ops& scalar_ops() {
  static const Ops ops = {
      &pass1_uniform_scalar, &pass1_uniform_pair_scalar, &map_targets_scalar,
      &probe_rounds_scalar, &probe_cdf_scalar,
  };
  return ops;
}

}  // namespace detail

}  // namespace crp::channel::kernels
