#include "estimate/estimator.h"

#include <cmath>
#include <stdexcept>

#include "info/distribution.h"

namespace crp::estimate {

namespace {

struct ProbeResult {
  channel::Feedback feedback = channel::Feedback::kSilence;
  std::size_t transmitters = 0;
};

ProbeResult probe(std::size_t k, double p, std::mt19937_64& rng,
                  const channel::SimOptions& options) {
  const std::size_t transmitters = channel::sample_transmitters(k, p, rng);
  if (options.trace != nullptr) {
    options.trace->push_back(channel::RoundRecord{
        p, transmitters, channel::feedback_for(transmitters)});
  }
  return {channel::feedback_for(transmitters), transmitters};
}

}  // namespace

bool estimate_within(std::size_t estimate, std::size_t k,
                     std::size_t slack_ranges) {
  if (estimate < 2 || k < 2) return false;
  const auto a = static_cast<long long>(info::range_of_size(estimate));
  const auto b = static_cast<long long>(info::range_of_size(k));
  return std::llabs(a - b) <= static_cast<long long>(slack_ranges);
}

EstimateResult estimate_size_no_cd(std::size_t k, std::size_t n,
                                   std::mt19937_64& rng,
                                   std::size_t repeats,
                                   const channel::SimOptions& options) {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  if (repeats == 0) throw std::invalid_argument("repeats must be >= 1");
  const std::size_t ranges = info::num_ranges(n);
  EstimateResult result;
  while (result.rounds < options.max_rounds) {
    for (std::size_t i = 1; i <= ranges; ++i) {
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        if (result.rounds >= options.max_rounds) return result;
        const auto outcome =
            probe(k, std::exp2(-static_cast<double>(i)), rng, options);
        ++result.rounds;
        result.transmissions += outcome.transmitters;
        if (outcome.feedback == channel::Feedback::kSuccess) {
          result.estimate = std::size_t{1} << i;
          return result;
        }
      }
    }
  }
  return result;
}

EstimateResult estimate_size_cd(std::size_t k, std::size_t n,
                                std::mt19937_64& rng, std::size_t repeats,
                                const channel::SimOptions& options) {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  if (repeats == 0) throw std::invalid_argument("repeats must be >= 1");
  const std::size_t ranges = info::num_ranges(n);
  EstimateResult result;
  while (result.rounds < options.max_rounds) {
    std::size_t lo = 1;
    std::size_t hi = ranges;
    while (lo <= hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      // Majority feedback over `repeats` probes of p = 2^-mid; a lone
      // transmission anywhere ends estimation immediately.
      std::size_t collisions = 0;
      bool lone = false;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        if (result.rounds >= options.max_rounds) return result;
        const auto outcome =
            probe(k, std::exp2(-static_cast<double>(mid)), rng, options);
        ++result.rounds;
        result.transmissions += outcome.transmitters;
        if (outcome.feedback == channel::Feedback::kSuccess) {
          lone = true;
          break;
        }
        if (outcome.feedback == channel::Feedback::kCollision) {
          ++collisions;
        }
      }
      if (lone) {
        result.estimate = std::size_t{1} << mid;
        return result;
      }
      if (2 * collisions >= repeats) {
        lo = mid + 1;  // guess too small
      } else {
        if (mid == 1) {
          // The window closed at the smallest guess: call it range 1.
          result.estimate = std::size_t{1} << 1;
          return result;
        }
        hi = mid - 1;  // guess too large
      }
      if (lo > hi) {
        // Window closed between guesses: the crossover point is the
        // estimate.
        result.estimate = std::size_t{1}
                          << std::min<std::size_t>(lo, ranges);
        return result;
      }
    }
  }
  return result;
}

}  // namespace crp::estimate
