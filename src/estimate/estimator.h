// Network-size estimation over the shared channel.
//
// Section 1.1: "many of the standard optimal worst-case algorithms
// operate by efficiently trying to find a good estimate of this size"
// — decay cycles geometric guesses, Willard binary-searches them. This
// module makes that substrate explicit: protocols that *return an
// estimate* k-hat with k-hat = Theta(k), which can then seed the O(1)
// fixed-probability transmitter or be folded into a prediction
// distribution for the Section 2 algorithms.
#pragma once

#include <cstddef>
#include <optional>
#include <random>

#include "channel/protocol.h"
#include "channel/simulator.h"

namespace crp::estimate {

struct EstimateResult {
  /// The produced size estimate (a power of two); nullopt if the round
  /// budget expired first.
  std::optional<std::size_t> estimate;
  /// Channel rounds consumed.
  std::size_t rounds = 0;
  /// Total transmissions (energy proxy).
  std::size_t transmissions = 0;
};

/// No-collision-detection estimator: sweep probes p = 2^-i, repeating
/// each probe `repeats` times, and report the first guess that draws a
/// lone transmission. A lone success at p ~ 1/k is the most likely
/// outcome, giving k-hat = Theta(k) with constant probability per
/// sweep; sweeps repeat until success. O(log n) expected rounds.
EstimateResult estimate_size_no_cd(std::size_t k, std::size_t n,
                                   std::mt19937_64& rng,
                                   std::size_t repeats = 1,
                                   const channel::SimOptions& options = {});

/// Collision-detection estimator: Willard-style binary search over the
/// geometric guesses; a collision means the guess is too small, silence
/// too large, and the search returns the bracketing guess when the
/// window closes (or immediately on a lone transmission). Each probe is
/// repeated `repeats` times with majority feedback. O(log log n)
/// expected rounds.
EstimateResult estimate_size_cd(std::size_t k, std::size_t n,
                                std::mt19937_64& rng,
                                std::size_t repeats = 1,
                                const channel::SimOptions& options = {});

/// Quality check helper: true iff the estimate is within a factor
/// 2^slack_ranges of the true size (estimates are range-aligned, so
/// slack is measured in geometric ranges).
bool estimate_within(std::size_t estimate, std::size_t k,
                     std::size_t slack_ranges);

}  // namespace crp::estimate
