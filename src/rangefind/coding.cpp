#include "rangefind/coding.h"

#include <cmath>
#include <stdexcept>

namespace crp::rangefind {

namespace {

/// Bits needed to store values in [0, max_value]; 0 when max_value == 0.
std::size_t width_for(std::size_t max_value) {
  std::size_t width = 0;
  while ((std::size_t{1} << width) <= max_value) ++width;
  return width;
}

void append_fixed(std::vector<bool>& bits, std::size_t value,
                  std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    bits.push_back(((value >> (width - 1 - i)) & 1u) != 0);
  }
}

std::optional<std::size_t> read_fixed(const std::vector<bool>& bits,
                                      std::size_t offset,
                                      std::size_t width) {
  if (offset + width > bits.size()) return std::nullopt;
  std::size_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value = (value << 1) | (bits[offset + i] ? 1u : 0u);
  }
  return value;
}

}  // namespace

std::vector<bool> elias_gamma_encode(std::size_t value) {
  if (value == 0) throw std::invalid_argument("Elias gamma needs v >= 1");
  std::size_t bits = 0;
  while ((std::size_t{1} << (bits + 1)) <= value) ++bits;
  std::vector<bool> out(bits, false);  // bits leading zeros
  for (std::size_t i = 0; i <= bits; ++i) {
    out.push_back(((value >> (bits - i)) & 1u) != 0);
  }
  return out;
}

std::optional<std::pair<std::size_t, std::size_t>> elias_gamma_decode(
    const std::vector<bool>& bits) {
  std::size_t zeros = 0;
  while (zeros < bits.size() && !bits[zeros]) ++zeros;
  const std::size_t total = 2 * zeros + 1;
  if (zeros >= bits.size() || total > bits.size()) return std::nullopt;
  std::size_t value = 0;
  for (std::size_t i = zeros; i < total; ++i) {
    value = (value << 1) | (bits[i] ? 1u : 0u);
  }
  return std::make_pair(value, total);
}

SequenceTargetDistanceCode::SequenceTargetDistanceCode(
    const RangeFindingSequence& sequence, double radius)
    : sequence_(sequence),
      radius_(radius),
      distance_bits_(width_for(static_cast<std::size_t>(
          std::max(0.0, std::floor(radius))))) {
  if (radius < 0.0) throw std::invalid_argument("radius must be >= 0");
}

std::optional<std::vector<bool>> SequenceTargetDistanceCode::encode(
    std::size_t target) const {
  const auto step = sequence_.solve(target, radius_);
  if (!step) return std::nullopt;
  const auto guess = static_cast<long long>(sequence_.guesses()[*step - 1]);
  const long long d = static_cast<long long>(target) - guess;
  std::vector<bool> bits = elias_gamma_encode(*step);
  bits.push_back(d < 0);  // sign
  append_fixed(bits, static_cast<std::size_t>(std::llabs(d)),
               distance_bits_);
  return bits;
}

std::optional<std::size_t> SequenceTargetDistanceCode::decode(
    const std::vector<bool>& bits) const {
  const auto step = elias_gamma_decode(bits);
  if (!step) return std::nullopt;
  const auto [r, consumed] = *step;
  if (r == 0 || r > sequence_.size()) return std::nullopt;
  if (consumed >= bits.size()) return std::nullopt;
  const bool negative = bits[consumed];
  const auto magnitude = read_fixed(bits, consumed + 1, distance_bits_);
  if (!magnitude) return std::nullopt;
  const long long guess = static_cast<long long>(sequence_.guesses()[r - 1]);
  const long long d = negative ? -static_cast<long long>(*magnitude)
                               : static_cast<long long>(*magnitude);
  const long long target = guess + d;
  if (target < 1) return std::nullopt;
  return static_cast<std::size_t>(target);
}

SequenceTargetDistanceCode::ExpectedLength
SequenceTargetDistanceCode::expected_length(
    const info::CondensedDistribution& targets) const {
  ExpectedLength result;
  for (std::size_t i = 1; i <= targets.size(); ++i) {
    const double q = targets.prob(i);
    if (q == 0.0) continue;
    const auto bits = encode(i);
    if (!bits) continue;
    result.bits += q * static_cast<double>(bits->size());
    result.covered_mass += q;
  }
  return result;
}

TreeTargetDistanceCode::TreeTargetDistanceCode(const RangeFindingTree& tree,
                                               double radius)
    : tree_(tree),
      radius_(radius),
      distance_bits_(width_for(static_cast<std::size_t>(
          std::max(0.0, std::floor(radius))))) {
  if (radius < 0.0) throw std::invalid_argument("radius must be >= 0");
}

std::optional<std::vector<bool>> TreeTargetDistanceCode::encode(
    std::size_t target) const {
  const auto path = tree_.solve_path(target, radius_);
  if (!path) return std::nullopt;
  // The raw tree paths of Lemma 2.9 are not self-delimiting, so the
  // executable code prefixes the path with its gamma-coded length; the
  // O(log depth) overhead is absorbed by the lemma's additive
  // O(log log log log n) slack and only loosens our measured expected
  // length upward (harmless to the E[len] >= H direction).
  std::vector<bool> bits = elias_gamma_encode(path->size() + 1);
  bits.insert(bits.end(), path->begin(), path->end());
  // Recompute the residual distance at the reached node.
  int index = 0;
  for (bool bit : *path) {
    const auto& node = tree_.nodes()[static_cast<std::size_t>(index)];
    index = bit ? node.right : node.left;
  }
  const auto label = static_cast<long long>(
      tree_.nodes()[static_cast<std::size_t>(index)].label);
  const long long d = static_cast<long long>(target) - label;
  bits.push_back(d < 0);
  append_fixed(bits, static_cast<std::size_t>(std::llabs(d)),
               distance_bits_);
  return bits;
}

std::optional<std::size_t> TreeTargetDistanceCode::decode(
    const std::vector<bool>& bits) const {
  const auto header = elias_gamma_decode(bits);
  if (!header) return std::nullopt;
  const auto [len_plus_one, consumed] = *header;
  if (len_plus_one == 0) return std::nullopt;
  const std::size_t path_len = len_plus_one - 1;
  if (consumed + path_len + 1 + distance_bits_ > bits.size()) {
    return std::nullopt;
  }
  int index = 0;
  for (std::size_t i = 0; i < path_len; ++i) {
    const auto& node = tree_.nodes()[static_cast<std::size_t>(index)];
    index = bits[consumed + i] ? node.right : node.left;
    if (index == -1) return std::nullopt;
  }
  const bool negative = bits[consumed + path_len];
  const auto magnitude =
      read_fixed(bits, consumed + path_len + 1, distance_bits_);
  if (!magnitude) return std::nullopt;
  const auto label = static_cast<long long>(
      tree_.nodes()[static_cast<std::size_t>(index)].label);
  const long long d = negative ? -static_cast<long long>(*magnitude)
                               : static_cast<long long>(*magnitude);
  const long long target = label + d;
  if (target < 1) return std::nullopt;
  return static_cast<std::size_t>(target);
}

SequenceTargetDistanceCode::ExpectedLength
TreeTargetDistanceCode::expected_length(
    const info::CondensedDistribution& targets) const {
  SequenceTargetDistanceCode::ExpectedLength result;
  for (std::size_t i = 1; i <= targets.size(); ++i) {
    const double q = targets.prob(i);
    if (q == 0.0) continue;
    const auto bits = encode(i);
    if (!bits) continue;
    result.bits += q * static_cast<double>(bits->size());
    result.covered_mass += q;
  }
  return result;
}

}  // namespace crp::rangefind
