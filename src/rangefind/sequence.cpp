#include "rangefind/sequence.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crp::rangefind {

RangeFindingSequence::RangeFindingSequence(std::vector<std::size_t> guesses)
    : guesses_(std::move(guesses)) {
  if (guesses_.empty()) {
    throw std::invalid_argument("range finding sequence must be non-empty");
  }
  for (std::size_t g : guesses_) {
    if (g == 0) throw std::invalid_argument("range values are 1-based");
  }
}

std::optional<std::size_t> RangeFindingSequence::solve(
    std::size_t target, double radius) const {
  for (std::size_t t = 0; t < guesses_.size(); ++t) {
    const double distance =
        std::abs(static_cast<double>(guesses_[t]) -
                 static_cast<double>(target));
    if (distance <= radius) return t + 1;
  }
  return std::nullopt;
}

double RangeFindingSequence::expected_time(
    const info::CondensedDistribution& targets, double radius,
    std::optional<double> penalty) const {
  const double unsolved_cost =
      penalty.value_or(static_cast<double>(guesses_.size() + 1));
  double expected = 0.0;
  for (std::size_t i = 1; i <= targets.size(); ++i) {
    const double q = targets.prob(i);
    if (q == 0.0) continue;
    const auto step = solve(i, radius);
    expected += q * (step ? static_cast<double>(*step) : unsolved_cost);
  }
  return expected;
}

bool RangeFindingSequence::covers(std::size_t num_ranges,
                                  double radius) const {
  for (std::size_t i = 1; i <= num_ranges; ++i) {
    if (!solve(i, radius)) return false;
  }
  return true;
}

RangeFindingSequence rf_construction(
    const channel::ProbabilitySchedule& schedule, std::size_t rounds,
    std::size_t n) {
  if (rounds == 0) throw std::invalid_argument("need at least one round");
  const std::size_t num_ranges = info::num_ranges(n);
  std::vector<std::size_t> guesses;
  guesses.reserve(2 * rounds);
  std::size_t rotor = 1;  // rotating sweep over L(n)
  for (std::size_t i = 0; i < rounds; ++i) {
    const double p = schedule.probability(i);
    std::size_t guess = 1;
    if (p <= 0.0) {
      guess = num_ranges;  // p = 0 guesses "as large as possible"
    } else {
      const double raw = std::ceil(std::log2(1.0 / p));
      guess = static_cast<std::size_t>(
          std::clamp(raw, 1.0, static_cast<double>(num_ranges)));
    }
    guesses.push_back(guess);
    guesses.push_back(rotor);
    rotor = rotor == num_ranges ? 1 : rotor + 1;
  }
  return RangeFindingSequence(std::move(guesses));
}

}  // namespace crp::rangefind
