// Strongly selective families (Definition 3.1) and non-interactive
// contention resolution (Section 3.2) — the combinatorial foundation of
// the deterministic advice lower bounds. Sets over [n] are bitmasks, so
// the exhaustive verifiers are limited to n <= 63 (they are meant for
// tests and the small-n bench sweeps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "channel/protocol.h"
#include "core/advice.h"

namespace crp::rangefind {

using SetMask = std::uint64_t;

/// A family of subsets of [n] represented as bitmasks.
struct SetFamily {
  std::size_t n = 0;
  std::vector<SetMask> sets;
};

/// Checks Definition 3.1: for every Z subset of [n] with |Z| <= k and
/// every z in Z there is F in the family with Z intersect F = {z}.
/// Exhaustive over all C(n, <= k) subsets; keep n small.
bool is_strongly_selective(const SetFamily& family, std::size_t k);

/// The singleton family {{0}, {1}, ..., {n-1}}: (n, n)-strongly
/// selective of size n (the construction that meets Theorem 3.2's
/// |F| >= n bound with equality).
SetFamily singleton_family(std::size_t n);

/// The bit-position family {ids with bit b set / clear}: 2 ceil(log2 n)
/// sets, (n, 2)-strongly selective — shows small families exist for
/// small k, so Theorem 3.2's size bound genuinely needs k >= sqrt(2n).
SetFamily bit_position_family(std::size_t n);

/// A non-interactive contention resolution scheme: an advice function
/// plus the transmit set V(s) for each advice string s (who would
/// transmit in round 1 given advice s).
class NonInteractiveScheme {
 public:
  /// `transmit_sets[s]` = mask of ids transmitting on advice value s;
  /// indexed by the integer value of the advice string (b bits).
  NonInteractiveScheme(std::size_t n, std::size_t advice_bits,
                       std::function<std::size_t(SetMask)> advise,
                       std::vector<SetMask> transmit_sets);

  /// The canonical optimal scheme: advice = min id (ceil(log2 n) bits),
  /// V(s) = {s}. Solves non-interactive CR with exactly log n bits,
  /// matching Theorem 3.3's lower bound.
  static NonInteractiveScheme min_id_scheme(std::size_t n);

  std::size_t n() const { return n_; }
  std::size_t advice_bits() const { return advice_bits_; }

  /// Exhaustively verifies that every non-empty participant set leads
  /// to exactly one transmitter. Returns a violating set if any.
  std::optional<SetMask> find_violation() const;

  /// The induced family {V(s)} — by the Theorem 3.3 argument this is an
  /// (n, n)-strongly selective family whenever the scheme is correct.
  SetFamily induced_family() const;

 private:
  std::size_t n_;
  std::size_t advice_bits_;
  std::function<std::size_t(SetMask)> advise_;
  std::vector<SetMask> transmit_sets_;
};

}  // namespace crp::rangefind
