// The binary-tree form of range finding used by the collision-detection
// lower bound (Section 2.4): a uniform CD algorithm is a map from
// collision histories to probabilities, i.e. a binary tree whose node
// for history h is labeled ceil(log2(1 / f(h))); the canonical
// all-ranges tree T* is grafted onto the leftmost path at depth
// ceil(log log n) so every range occurs at bounded depth (Lemma 2.11's
// Case 2). Solving range finding = the shallowest node within the
// allowed distance of the target.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "channel/protocol.h"
#include "info/distribution.h"

namespace crp::rangefind {

class RangeFindingTree {
 public:
  struct Node {
    std::size_t label = 0;  ///< 1-based range value
    int left = -1;          ///< index into nodes(), -1 if absent
    int right = -1;
  };

  /// Builds from an explicit node array; node 0 is the root.
  explicit RangeFindingTree(std::vector<Node> nodes);

  /// The balanced "canonical" tree T* containing every range in
  /// [1, num_ranges] (BFS labeling; surplus slots in the last level
  /// repeat the last range).
  static RangeFindingTree canonical(std::size_t num_ranges);

  /// Lemma 2.11's transform: interpret `policy` as a probability tree
  /// down to `depth` levels, relabel each node with
  /// clamp(ceil(log2(1/p)), 1, |L(n)|), and graft canonical(|L(n)|)
  /// below the leftmost node at depth ceil(log2 |L(n)|).
  static RangeFindingTree from_policy(const channel::CollisionPolicy& policy,
                                      std::size_t n, std::size_t depth);

  const std::vector<Node>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  std::size_t depth() const;

  /// Depth (root = 1, matching the paper's "complexity of solving range
  /// finding" = number of steps) of the shallowest node whose label is
  /// within `radius` of `target`; nullopt if none exists.
  std::optional<std::size_t> solve(std::size_t target, double radius) const;

  /// Root-to-node path (false = left) of the shallowest in-radius node,
  /// for building the Lemma 2.9 code. nullopt if unsolvable.
  std::optional<std::vector<bool>> solve_path(std::size_t target,
                                              double radius) const;

  /// Expected solving depth under `targets`; unsolvable targets cost
  /// `penalty` (defaults to depth() + 1).
  double expected_time(const info::CondensedDistribution& targets,
                       double radius,
                       std::optional<double> penalty = std::nullopt) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace crp::rangefind
