// The sequence form of the range finding game (Section 2.3) and the
// RF-Construction transform (Algorithm 1) that turns a uniform
// no-collision-detection contention-resolution algorithm into a range
// finding sequence. This is the machinery behind the Theorem 2.4 lower
// bound; the library implements it so the bound's moving parts can be
// validated empirically (tests) and measured (bench_coding).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "channel/protocol.h"
#include "info/distribution.h"

namespace crp::rangefind {

/// A range finding strategy: a sequence of guesses from L(n). The
/// (n, f(n))-range finding problem for target v is solved at the first
/// 1-based position t with |S[t] - v| <= f(n).
class RangeFindingSequence {
 public:
  /// `guesses` are 1-based range values.
  explicit RangeFindingSequence(std::vector<std::size_t> guesses);

  std::size_t size() const { return guesses_.size(); }
  const std::vector<std::size_t>& guesses() const { return guesses_; }

  /// First 1-based step solving the game for `target` within `radius`,
  /// or nullopt if the sequence never gets close enough.
  std::optional<std::size_t> solve(std::size_t target,
                                   double radius) const;

  /// Expected solving step when targets are drawn from `targets`
  /// (a condensed distribution over L(n)). Targets the sequence never
  /// solves contribute `penalty` steps (defaults to |S| + 1).
  double expected_time(const info::CondensedDistribution& targets,
                       double radius,
                       std::optional<double> penalty = std::nullopt) const;

  /// True iff every range in [1, num_ranges] is solvable within radius.
  bool covers(std::size_t num_ranges, double radius) const;

 private:
  std::vector<std::size_t> guesses_;
};

/// Algorithm 1 (RF-Construction): interleaves (a) the range guess
/// ceil(log2(1 / p_i)) implied by each probability of the uniform
/// algorithm `schedule` with (b) a rotating sweep of every range in
/// L(n), so each range also appears within any window of 2 |L(n)|
/// steps. Guesses are clamped to [1, |L(n)|]. `rounds` is the prefix of
/// the schedule to transform (the paper's z).
///
/// Note: the arXiv pseudocode's interleaved value prints as "2 j"; from
/// the surrounding proof (Case 2 of Lemma 2.7 requires every range to
/// appear among the first 2 log n entries) it is the rotating range
/// value j itself, which is what we implement.
RangeFindingSequence rf_construction(
    const channel::ProbabilitySchedule& schedule, std::size_t rounds,
    std::size_t n);

}  // namespace crp::rangefind
