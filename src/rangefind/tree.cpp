#include "rangefind/tree.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace crp::rangefind {

RangeFindingTree::RangeFindingTree(std::vector<Node> nodes)
    : nodes_(std::move(nodes)) {
  if (nodes_.empty()) {
    throw std::invalid_argument("range finding tree must be non-empty");
  }
  for (const Node& node : nodes_) {
    if (node.label == 0) {
      throw std::invalid_argument("range labels are 1-based");
    }
    for (int child : {node.left, node.right}) {
      if (child != -1 &&
          (child <= 0 || static_cast<std::size_t>(child) >= nodes_.size())) {
        throw std::invalid_argument("child index out of bounds");
      }
    }
  }
}

RangeFindingTree RangeFindingTree::canonical(std::size_t num_ranges) {
  if (num_ranges == 0) {
    throw std::invalid_argument("need at least one range");
  }
  // Complete binary tree with >= num_ranges nodes, labeled in BFS
  // order 1, 2, ..., num_ranges (extras repeat the last range so every
  // node carries a valid label).
  std::size_t count = 1;
  while (count < num_ranges) count = 2 * count + 1;
  std::vector<Node> nodes(count);
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].label = std::min(i + 1, num_ranges);
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < count) nodes[i].left = static_cast<int>(left);
    if (right < count) nodes[i].right = static_cast<int>(right);
  }
  return RangeFindingTree(std::move(nodes));
}

RangeFindingTree RangeFindingTree::from_policy(
    const channel::CollisionPolicy& policy, std::size_t n,
    std::size_t depth) {
  const std::size_t num_ranges = info::num_ranges(n);
  std::size_t graft_depth = 0;  // ceil(log2 num_ranges), >= 1
  while ((std::size_t{1} << graft_depth) < num_ranges) ++graft_depth;
  graft_depth = std::max<std::size_t>(graft_depth, 1);
  const std::size_t build_depth = std::max(depth, graft_depth);

  const auto label_for = [&](const channel::BitString& history) {
    const double p = policy.probability(history);
    if (p <= 0.0) return num_ranges;
    const double raw = std::ceil(std::log2(1.0 / p));
    return static_cast<std::size_t>(
        std::clamp(raw, 1.0, static_cast<double>(num_ranges)));
  };

  // BFS expansion of the history tree down to build_depth levels below
  // the root (histories of length <= build_depth).
  std::vector<Node> nodes;
  struct Pending {
    std::size_t node;
    channel::BitString history;
  };
  nodes.push_back(Node{label_for({}), -1, -1});
  std::deque<Pending> frontier;
  frontier.push_back({0, {}});
  int leftmost_at_graft = -1;
  while (!frontier.empty()) {
    auto [index, history] = std::move(frontier.front());
    frontier.pop_front();
    if (history.size() == graft_depth && leftmost_at_graft == -1) {
      // BFS visits each level left-to-right, so the first node seen at
      // the graft depth is the leftmost; record it and give it no
      // policy children (T* replaces them).
      leftmost_at_graft = static_cast<int>(index);
      continue;
    }
    if (history.size() >= build_depth) continue;
    for (bool bit : {false, true}) {
      channel::BitString child_history = history;
      child_history.push_back(bit);
      nodes.push_back(Node{label_for(child_history), -1, -1});
      const int child_index = static_cast<int>(nodes.size() - 1);
      if (bit) {
        nodes[index].right = child_index;
      } else {
        nodes[index].left = child_index;
      }
      frontier.push_back({static_cast<std::size_t>(child_index),
                          std::move(child_history)});
    }
  }

  // Graft T* as the only child of the leftmost depth-graft_depth node.
  const RangeFindingTree star = canonical(num_ranges);
  const int offset = static_cast<int>(nodes.size());
  for (const Node& node : star.nodes()) {
    Node copy = node;
    if (copy.left != -1) copy.left += offset;
    if (copy.right != -1) copy.right += offset;
    nodes.push_back(copy);
  }
  if (leftmost_at_graft == -1) leftmost_at_graft = 0;  // degenerate depth
  nodes[static_cast<std::size_t>(leftmost_at_graft)].left = offset;

  return RangeFindingTree(std::move(nodes));
}

std::size_t RangeFindingTree::depth() const {
  std::size_t max_depth = 0;
  std::deque<std::pair<int, std::size_t>> queue{{0, 1}};
  while (!queue.empty()) {
    auto [index, d] = queue.front();
    queue.pop_front();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    if (node.left != -1) queue.push_back({node.left, d + 1});
    if (node.right != -1) queue.push_back({node.right, d + 1});
  }
  return max_depth;
}

std::optional<std::size_t> RangeFindingTree::solve(std::size_t target,
                                                   double radius) const {
  const auto path = solve_path(target, radius);
  if (!path) return std::nullopt;
  return path->size() + 1;  // depth counts nodes on the path, root = 1
}

std::optional<std::vector<bool>> RangeFindingTree::solve_path(
    std::size_t target, double radius) const {
  struct Entry {
    int index;
    std::vector<bool> path;
  };
  std::deque<Entry> queue{{0, {}}};
  while (!queue.empty()) {
    auto [index, path] = std::move(queue.front());
    queue.pop_front();
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    const double distance = std::abs(static_cast<double>(node.label) -
                                     static_cast<double>(target));
    if (distance <= radius) return path;
    if (node.left != -1) {
      auto next = path;
      next.push_back(false);
      queue.push_back({node.left, std::move(next)});
    }
    if (node.right != -1) {
      auto next = path;
      next.push_back(true);
      queue.push_back({node.right, std::move(next)});
    }
  }
  return std::nullopt;
}

double RangeFindingTree::expected_time(
    const info::CondensedDistribution& targets, double radius,
    std::optional<double> penalty) const {
  const double unsolved_cost =
      penalty.value_or(static_cast<double>(depth() + 1));
  double expected = 0.0;
  for (std::size_t i = 1; i <= targets.size(); ++i) {
    const double q = targets.prob(i);
    if (q == 0.0) continue;
    const auto d = solve(i, radius);
    expected += q * (d ? static_cast<double>(*d) : unsolved_cost);
  }
  return expected;
}

}  // namespace crp::rangefind
