// The "target-distance" codes the lower-bound proofs build from range
// finding solutions (Lemmas 2.5 and 2.9): to send symbol x from L(n),
// transmit the step/path at which the range finding strategy first
// gets within the allowed radius of x, plus the signed residual
// distance. Decoding replays the shared strategy. Their expected code
// length upper-bounds work through the Source Coding Theorem into the
// paper's entropy lower bounds, and the tests verify exactly that
// chain: decode(encode(x)) == x and E[len] >= H(targets).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "info/distribution.h"
#include "rangefind/sequence.h"
#include "rangefind/tree.h"

namespace crp::rangefind {

/// Elias gamma code for positive integers: 2 floor(log2 v) + 1 bits.
/// The sequence code uses it for the step index r, realising the
/// "log r" term of Lemma 2.5's code-length bound.
std::vector<bool> elias_gamma_encode(std::size_t value);

/// Decodes an Elias gamma prefix; returns (value, bits consumed).
std::optional<std::pair<std::size_t, std::size_t>> elias_gamma_decode(
    const std::vector<bool>& bits);

/// Lemma 2.5's code built from a range finding sequence.
class SequenceTargetDistanceCode {
 public:
  /// `radius` is the range-finding radius (the alpha log log n of the
  /// lemma); residual distances lie in [-radius, radius].
  SequenceTargetDistanceCode(const RangeFindingSequence& sequence,
                             double radius);

  /// Encodes a 1-based range value; nullopt if the sequence never
  /// solves it.
  std::optional<std::vector<bool>> encode(std::size_t target) const;

  /// Decodes a full codeword back to the range value.
  std::optional<std::size_t> decode(const std::vector<bool>& bits) const;

  /// Expected code length under `targets` (unsolvable targets excluded,
  /// matching the lemma's assumption that the sequence solves the
  /// game); also reports the total mass of solvable targets.
  struct ExpectedLength {
    double bits = 0.0;
    double covered_mass = 0.0;
  };
  ExpectedLength expected_length(
      const info::CondensedDistribution& targets) const;

  std::size_t distance_bits() const { return distance_bits_; }

 private:
  const RangeFindingSequence& sequence_;
  double radius_;
  std::size_t distance_bits_;  // fixed width for |d|, plus 1 sign bit
};

/// Lemma 2.9's code built from a range finding tree: the path to the
/// shallowest in-radius node plus the signed residual distance.
class TreeTargetDistanceCode {
 public:
  TreeTargetDistanceCode(const RangeFindingTree& tree, double radius);

  std::optional<std::vector<bool>> encode(std::size_t target) const;
  std::optional<std::size_t> decode(const std::vector<bool>& bits) const;

  SequenceTargetDistanceCode::ExpectedLength expected_length(
      const info::CondensedDistribution& targets) const;

  std::size_t distance_bits() const { return distance_bits_; }

 private:
  const RangeFindingTree& tree_;
  double radius_;
  std::size_t distance_bits_;
};

}  // namespace crp::rangefind
