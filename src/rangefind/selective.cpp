#include "rangefind/selective.h"

#include <bit>
#include <stdexcept>

namespace crp::rangefind {

namespace {

void check_universe(std::size_t n) {
  if (n == 0 || n > 63) {
    throw std::invalid_argument("bitmask families support 1 <= n <= 63");
  }
}

}  // namespace

bool is_strongly_selective(const SetFamily& family, std::size_t k) {
  check_universe(family.n);
  const SetMask universe = (SetMask{1} << family.n) - 1;
  // Enumerate every subset Z of [n]; skip those larger than k. For each
  // element z of Z, some family set must hit Z exactly in {z}.
  for (SetMask z_set = 1; z_set <= universe; ++z_set) {
    if (static_cast<std::size_t>(std::popcount(z_set)) > k) continue;
    SetMask remaining = z_set;
    while (remaining != 0) {
      const SetMask z = remaining & (~remaining + 1);  // lowest bit
      remaining ^= z;
      bool selected = false;
      for (SetMask f : family.sets) {
        if ((z_set & f) == z) {
          selected = true;
          break;
        }
      }
      if (!selected) return false;
    }
  }
  return true;
}

SetFamily singleton_family(std::size_t n) {
  check_universe(n);
  SetFamily family{n, {}};
  family.sets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    family.sets.push_back(SetMask{1} << i);
  }
  return family;
}

SetFamily bit_position_family(std::size_t n) {
  check_universe(n);
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  SetFamily family{n, {}};
  for (std::size_t b = 0; b < bits; ++b) {
    SetMask with_bit = 0;
    SetMask without_bit = 0;
    for (std::size_t id = 0; id < n; ++id) {
      if ((id >> b) & 1u) {
        with_bit |= SetMask{1} << id;
      } else {
        without_bit |= SetMask{1} << id;
      }
    }
    family.sets.push_back(with_bit);
    family.sets.push_back(without_bit);
  }
  return family;
}

NonInteractiveScheme::NonInteractiveScheme(
    std::size_t n, std::size_t advice_bits,
    std::function<std::size_t(SetMask)> advise,
    std::vector<SetMask> transmit_sets)
    : n_(n),
      advice_bits_(advice_bits),
      advise_(std::move(advise)),
      transmit_sets_(std::move(transmit_sets)) {
  check_universe(n_);
  if (transmit_sets_.size() != (std::size_t{1} << advice_bits_)) {
    throw std::invalid_argument(
        "need one transmit set per possible advice string");
  }
}

NonInteractiveScheme NonInteractiveScheme::min_id_scheme(std::size_t n) {
  check_universe(n);
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  std::vector<SetMask> transmit_sets(std::size_t{1} << bits, 0);
  for (std::size_t id = 0; id < n; ++id) {
    transmit_sets[id] = SetMask{1} << id;
  }
  auto advise = [](SetMask participants) -> std::size_t {
    return static_cast<std::size_t>(std::countr_zero(participants));
  };
  return NonInteractiveScheme(n, bits, std::move(advise),
                              std::move(transmit_sets));
}

std::optional<SetMask> NonInteractiveScheme::find_violation() const {
  const SetMask universe = (SetMask{1} << n_) - 1;
  for (SetMask participants = 1; participants <= universe; ++participants) {
    const std::size_t advice = advise_(participants);
    if (advice >= transmit_sets_.size()) return participants;
    const SetMask transmitters = transmit_sets_[advice] & participants;
    if (std::popcount(transmitters) != 1) return participants;
  }
  return std::nullopt;
}

SetFamily NonInteractiveScheme::induced_family() const {
  SetFamily family{n_, {}};
  const SetMask universe = (SetMask{1} << n_) - 1;
  family.sets.reserve(transmit_sets_.size());
  for (SetMask v : transmit_sets_) {
    family.sets.push_back(v & universe);
  }
  return family;
}

}  // namespace crp::rangefind
