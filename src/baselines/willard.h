// Willard's log-logarithmic selection protocol [22] for channels with
// collision detection: binary-search the ceil(log2 n) geometric
// network-size guesses, transmitting with probability 2^-mid and using
// collision (guess too small) vs silence (guess too large) to steer.
// Solves contention resolution in O(log log n) expected rounds.
#pragma once

#include <cstddef>

#include "channel/protocol.h"

namespace crp::baselines {

class WillardPolicy final : public channel::CollisionPolicy {
 public:
  /// `n` is the maximum possible network size (>= 2). `repeats` > 1
  /// re-tries each probe that many rounds before acting on feedback
  /// (collision in any repeat steers toward larger guesses), trading
  /// rounds for a lower per-step error probability as in [22].
  explicit WillardPolicy(std::size_t n, std::size_t repeats = 1);

  double probability(const channel::BitString& history) const override;
  std::string name() const override { return "willard"; }

  std::size_t num_ranges() const { return num_ranges_; }

 private:
  std::size_t num_ranges_;
  std::size_t repeats_;
};

}  // namespace crp::baselines
