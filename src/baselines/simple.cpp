#include "baselines/simple.h"

#include <stdexcept>

namespace crp::baselines {

FixedProbabilitySchedule::FixedProbabilitySchedule(double probability)
    : p_(probability) {
  if (p_ < 0.0 || p_ > 1.0) {
    throw std::invalid_argument("probability outside [0, 1]");
  }
}

FixedProbabilitySchedule FixedProbabilitySchedule::for_size_estimate(
    std::size_t k_hat) {
  if (k_hat == 0) throw std::invalid_argument("size estimate must be >= 1");
  return FixedProbabilitySchedule(1.0 / static_cast<double>(k_hat));
}

double FixedProbabilitySchedule::probability(std::size_t /*round*/) const {
  return p_;
}

RoundRobinProtocol::RoundRobinProtocol(std::size_t n) : n_(n) {
  if (n_ == 0) throw std::invalid_argument("network size must be >= 1");
}

bool RoundRobinProtocol::transmits(
    std::size_t player_id, const channel::BitString& /*advice*/,
    std::size_t round,
    std::span<const channel::Feedback> /*history*/) const {
  return player_id == round % n_;
}

TreeDescentProtocol::TreeDescentProtocol(std::size_t n) : n_(n) {
  if (n_ == 0) throw std::invalid_argument("network size must be >= 1");
}

bool TreeDescentProtocol::transmits(
    std::size_t player_id, const channel::BitString& /*advice*/,
    std::size_t /*round*/,
    std::span<const channel::Feedback> history) const {
  // Replay the interval state from the collision/silence history. The
  // candidate interval [lo, hi) always contains at least one active
  // player: a collision proves >= 2 actives in the probed left half,
  // and silence proves all actives sit in the right half.
  std::size_t lo = 0;
  std::size_t hi = n_;
  for (channel::Feedback feedback : history) {
    if (hi - lo == 1) {
      // A size-1 probe can only miss if the invariant was broken by a
      // malformed history; restart defensively.
      lo = 0;
      hi = n_;
      continue;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feedback == channel::Feedback::kCollision) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (hi - lo == 1) return player_id == lo;
  const std::size_t mid = lo + (hi - lo) / 2;
  return player_id >= lo && player_id < mid;
}

}  // namespace crp::baselines
