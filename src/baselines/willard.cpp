#include "baselines/willard.h"

#include <cmath>
#include <stdexcept>

#include "info/distribution.h"

namespace crp::baselines {

WillardPolicy::WillardPolicy(std::size_t n, std::size_t repeats)
    : num_ranges_(info::num_ranges(n)), repeats_(repeats) {
  if (repeats_ == 0) throw std::invalid_argument("repeats must be >= 1");
}

double WillardPolicy::probability(
    const channel::BitString& history) const {
  // Replay the binary search deterministically from the history. The
  // search runs over range indices [lo, hi]; each probe occupies
  // `repeats_` rounds, after which a collision anywhere in the group
  // means the size guess was too small (move right), and an all-silent
  // group means too large (move left). An exhausted search restarts.
  std::size_t lo = 1;
  std::size_t hi = num_ranges_;
  std::size_t group_bits = 0;
  bool group_collision = false;
  for (bool collided : history) {
    group_collision = group_collision || collided;
    if (++group_bits < repeats_) continue;
    const std::size_t mid = lo + (hi - lo) / 2;
    if (group_collision) {
      lo = mid + 1;
    } else {
      if (mid == 1) {
        hi = 0;  // force restart; avoids size_t underflow
      } else {
        hi = mid - 1;
      }
    }
    if (lo > hi || hi == 0 || hi > num_ranges_) {
      lo = 1;
      hi = num_ranges_;
    }
    group_bits = 0;
    group_collision = false;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  return std::exp2(-static_cast<double>(mid));
}

}  // namespace crp::baselines
