#include "baselines/decay.h"

#include <cmath>
#include <stdexcept>

#include "info/distribution.h"

namespace crp::baselines {

DecaySchedule::DecaySchedule(std::size_t n)
    : sweep_length_(info::num_ranges(n) + 1) {}

double DecaySchedule::probability(std::size_t round) const {
  const std::size_t step = round % sweep_length_;
  return std::exp2(-static_cast<double>(step));
}

ReverseDecaySchedule::ReverseDecaySchedule(std::size_t n)
    : sweep_length_(info::num_ranges(n) + 1) {}

double ReverseDecaySchedule::probability(std::size_t round) const {
  const std::size_t step = round % sweep_length_;
  return std::exp2(-static_cast<double>(sweep_length_ - 1 - step));
}

}  // namespace crp::baselines
