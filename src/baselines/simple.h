// Elementary comparators: the fixed-probability transmitter (optimal
// O(1) given an accurate size estimate), round-robin linear probing
// (the Theta(n) deterministic no-CD baseline), and binary tree descent
// (the Theta(log n) deterministic CD baseline). The Section 3 advice
// protocols in src/core generalize the latter two; these b = 0 forms
// anchor the Table 2 sweeps.
#pragma once

#include <cstddef>

#include "channel/protocol.h"

namespace crp::baselines {

/// Every participant transmits with probability 1/k_hat every round.
/// If k_hat = Theta(k), succeeds in O(1) rounds in expectation — the
/// best case the paper's introduction cites for perfect predictions.
class FixedProbabilitySchedule final : public channel::ProbabilitySchedule {
 public:
  explicit FixedProbabilitySchedule(double probability);

  /// Convenience: p = 1/k_hat for a size estimate k_hat >= 1.
  static FixedProbabilitySchedule for_size_estimate(std::size_t k_hat);

  double probability(std::size_t round) const override;
  std::size_t period() const override { return 1; }
  std::string name() const override { return "fixed-probability"; }

 private:
  double p_;
};

/// Deterministic no-CD baseline: player with id r transmits in round r
/// (0-based), sweeping all n ids; the smallest active id transmits
/// alone in its slot. Theta(n) rounds worst case. Ignores advice.
class RoundRobinProtocol final : public channel::DeterministicProtocol {
 public:
  explicit RoundRobinProtocol(std::size_t n);

  bool transmits(std::size_t player_id, const channel::BitString& advice,
                 std::size_t round,
                 std::span<const channel::Feedback> history) const override;
  std::string name() const override { return "round-robin"; }

 private:
  std::size_t n_;
};

/// Deterministic CD baseline: binary search over the id space [0, n).
/// Each round the active players whose ids fall in the left half of the
/// current candidate interval transmit; collision recurses left,
/// silence recurses right. Theta(log n) rounds. Ignores advice.
/// (This is the b = 0 case of core::TreeDescentCdProtocol.)
class TreeDescentProtocol final : public channel::DeterministicProtocol {
 public:
  explicit TreeDescentProtocol(std::size_t n);

  bool transmits(std::size_t player_id, const channel::BitString& advice,
                 std::size_t round,
                 std::span<const channel::Feedback> history) const override;
  std::string name() const override { return "tree-descent"; }

 private:
  std::size_t n_;
};

}  // namespace crp::baselines
