#include "baselines/aloha.h"

#include <stdexcept>
#include <vector>

namespace crp::baselines {

namespace {

/// Simulates one window; returns the 0-based slot solving it (exactly
/// one transmitter), or window size if none. Appends trace records and
/// transmission counts for the slots actually elapsed.
std::size_t simulate_window(std::size_t k, std::size_t window,
                            std::mt19937_64& rng,
                            const channel::SimOptions& options,
                            std::size_t rounds_used, std::size_t& energy) {
  std::uniform_int_distribution<std::size_t> pick(0, window - 1);
  std::vector<std::size_t> occupancy(window, 0);
  for (std::size_t player = 0; player < k; ++player) {
    ++occupancy[pick(rng)];
  }
  for (std::size_t slot = 0; slot < window; ++slot) {
    if (rounds_used + slot >= options.max_rounds) return window;
    energy += occupancy[slot];
    if (options.trace != nullptr) {
      options.trace->push_back(channel::RoundRecord{
          1.0 / static_cast<double>(window), occupancy[slot],
          channel::feedback_for(occupancy[slot])});
    }
    if (occupancy[slot] == 1) return slot;
  }
  return window;
}

}  // namespace

channel::RunResult run_slotted_aloha(std::size_t k, std::size_t window,
                                     std::mt19937_64& rng,
                                     const channel::SimOptions& options) {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  if (window == 0) throw std::invalid_argument("window must be >= 1");
  std::size_t rounds = 0;
  std::size_t energy = 0;
  while (rounds < options.max_rounds) {
    const std::size_t slot =
        simulate_window(k, window, rng, options, rounds, energy);
    if (slot < window) {
      return channel::RunResult{true, rounds + slot + 1, std::nullopt,
                                energy};
    }
    rounds += window;
  }
  return channel::RunResult{false, options.max_rounds, std::nullopt,
                            energy};
}

channel::RunResult run_backoff_aloha(std::size_t k,
                                     std::size_t initial_window,
                                     std::size_t max_window,
                                     std::mt19937_64& rng,
                                     const channel::SimOptions& options) {
  if (k == 0) throw std::invalid_argument("need at least one participant");
  if (initial_window == 0 || max_window < initial_window) {
    throw std::invalid_argument("need 1 <= initial_window <= max_window");
  }
  std::size_t rounds = 0;
  std::size_t energy = 0;
  std::size_t window = initial_window;
  while (rounds < options.max_rounds) {
    const std::size_t slot =
        simulate_window(k, window, rng, options, rounds, energy);
    if (slot < window) {
      return channel::RunResult{true, rounds + slot + 1, std::nullopt,
                                energy};
    }
    rounds += window;
    window = std::min(2 * window, max_window);
  }
  return channel::RunResult{false, options.max_rounds, std::nullopt,
                            energy};
}

}  // namespace crp::baselines
