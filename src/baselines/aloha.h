// Slotted-ALOHA style contention: each participant independently picks
// one slot in a window of W rounds and transmits only there; windows
// repeat until some slot holds exactly one transmitter. This is the
// classic per-player randomized strategy that is NOT a uniform
// algorithm (players act on private coins tied to identity-free slot
// choices, not on a shared probability), so it exercises the simulator
// beyond the paper's uniform class and anchors the baseline comparison
// in bench_baselines.
//
// With window W and k participants the per-window success probability
// is maximized near W ~ k; like the fixed 1/k strategy it needs a good
// size estimate to be competitive.
#pragma once

#include <cstddef>
#include <random>

#include "channel/simulator.h"

namespace crp::baselines {

/// Simulates slotted ALOHA with a fixed window of `window` slots.
/// Returns rounds counted in individual slots (not windows), so results
/// are comparable with the round counts of the other protocols.
channel::RunResult run_slotted_aloha(std::size_t k, std::size_t window,
                                     std::mt19937_64& rng,
                                     const channel::SimOptions& options = {});

/// Binary-exponential-backoff ALOHA: the window starts at
/// `initial_window` and doubles after every unsuccessful window (capped
/// at `max_window`), the textbook strategy deployed when no size
/// estimate is available.
channel::RunResult run_backoff_aloha(std::size_t k,
                                     std::size_t initial_window,
                                     std::size_t max_window,
                                     std::mt19937_64& rng,
                                     const channel::SimOptions& options = {});

}  // namespace crp::baselines
