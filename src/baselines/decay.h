// The decay strategy of Bar-Yehuda, Goldreich, and Itai [2]: cycle
// through the ceil(log2 n) + 1 geometrically decreasing probabilities
// 1, 1/2, 1/4, ..., 1/2^ceil(log2 n). Some sweep hits p = Theta(1/k)
// and succeeds with constant probability, giving O(log n) expected
// rounds on a channel without collision detection -- the worst-case
// optimum the paper's predictions improve on.
#pragma once

#include <cstddef>

#include "channel/protocol.h"

namespace crp::baselines {

class DecaySchedule final : public channel::ProbabilitySchedule {
 public:
  /// `n` is the maximum possible network size (>= 2).
  explicit DecaySchedule(std::size_t n);

  double probability(std::size_t round) const override;
  std::size_t period() const override { return sweep_length_; }
  std::string name() const override { return "decay"; }

  /// Rounds per sweep: ceil(log2 n) + 1.
  std::size_t sweep_length() const { return sweep_length_; }

 private:
  std::size_t sweep_length_;
};

/// Ablation variant: sweeps probabilities from small to large
/// (1/2^L, ..., 1/2, 1). Same asymptotics, different constants for
/// skewed size distributions; used by bench_baselines.
class ReverseDecaySchedule final : public channel::ProbabilitySchedule {
 public:
  explicit ReverseDecaySchedule(std::size_t n);

  double probability(std::size_t round) const override;
  std::size_t period() const override { return sweep_length_; }
  std::string name() const override { return "reverse-decay"; }

 private:
  std::size_t sweep_length_;
};

}  // namespace crp::baselines
