#include "core/coded_search.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "info/huffman.h"

namespace crp::core {

CodedSearchPolicy::CodedSearchPolicy(
    const info::CondensedDistribution& prediction, CodeBackend backend) {
  const auto& q = prediction.probabilities();
  std::vector<std::size_t> lengths;
  switch (backend) {
    case CodeBackend::kHuffman:
      lengths = info::huffman_lengths(q);
      break;
    case CodeBackend::kShannonFano: {
      const info::PrefixCode code = info::shannon_fano_code(q);
      lengths.reserve(q.size());
      for (std::size_t s = 0; s < q.size(); ++s) {
        lengths.push_back(code.length(s));
      }
      break;
    }
  }
  // Group 1-based ranges by codeword length, shortest class first;
  // ranges inside a class are sorted ascending (std::map iteration and
  // insertion order give both properties).
  std::map<std::size_t, std::vector<std::size_t>> by_length;
  for (std::size_t j = 0; j < lengths.size(); ++j) {
    by_length[lengths[j]].push_back(j + 1);
  }
  for (auto& [len, ranges] : by_length) {
    lengths_.push_back(len);
    double mass = 0.0;
    for (std::size_t r : ranges) mass += prediction.prob(r);
    positive_mass_.push_back(mass > 0.0);
    classes_.push_back(std::move(ranges));
  }
}

std::size_t CodedSearchPolicy::pass_length() const {
  std::size_t total = 0;
  for (const auto& cls : classes_) {
    std::size_t probes = 1;
    std::size_t span = cls.size();
    while (span > 1) {
      span = (span + 1) / 2;
      ++probes;
    }
    total += probes;
  }
  return total;
}

std::size_t CodedSearchPolicy::current_range(
    const channel::BitString& history) const {
  // Replay: binary-search state inside the current class, advancing to
  // the next class when a search exhausts its window; wrap around after
  // the last class so repeated attempts are well-defined. Classes whose
  // ranges carry no predicted mass exist only to keep the algorithm
  // correct when the prediction is infinitely diverged from reality, so
  // they are visited on every fourth pass only (pass 0 included):
  // low-entropy predictions keep an O(1)-per-pass revisit rate on their
  // likely classes, while a true range the predictor gave zero mass is
  // still searched infinitely often.
  std::size_t cls = 0;
  std::size_t lo = 0;
  std::size_t hi = classes_[0].size();  // window is [lo, hi)
  std::size_t pass = 0;
  const auto advance_class = [&] {
    do {
      if (cls + 1 == classes_.size()) {
        cls = 0;
        ++pass;
      } else {
        ++cls;
      }
    } while (pass % 4 != 0 && !positive_mass_[cls]);
    lo = 0;
    hi = classes_[cls].size();
  };
  for (bool collided : history) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (collided) {
      lo = mid + 1;  // probe range too small for k: move to larger ranges
    } else {
      hi = mid;  // silence: size guess too large
    }
    if (lo >= hi) advance_class();
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  return classes_[cls][mid];
}

double CodedSearchPolicy::probability(
    const channel::BitString& history) const {
  return std::exp2(-static_cast<double>(current_range(history)));
}

}  // namespace crp::core
