// Faulty advice: the algorithms-with-predictions literature the paper
// builds on (Section 1.3) insists algorithms stay robust "when the
// advice is faulty". This wrapper corrupts any advice oracle by
// flipping each bit independently with a fixed probability, letting the
// Table 2 protocols be measured under degraded advisors. Corruption is
// a deterministic hash of (participant set, seed), so measurements are
// replayable and the oracle interface stays pure.
#pragma once

#include <cstdint>
#include <memory>

#include "core/advice.h"

namespace crp::core {

class FaultyAdvice final : public AdviceFunction {
 public:
  /// Flips each advice bit with probability `flip_probability` in
  /// [0, 1]; randomness is derived from `seed` and the participant set.
  FaultyAdvice(std::shared_ptr<const AdviceFunction> inner,
               double flip_probability, std::uint64_t seed);

  channel::BitString advise(
      std::span<const std::size_t> participants) const override;
  std::size_t bits() const override;
  std::string name() const override;

 private:
  std::shared_ptr<const AdviceFunction> inner_;
  double flip_probability_;
  std::uint64_t seed_;
};

}  // namespace crp::core
