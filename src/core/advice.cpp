#include "core/advice.h"

#include <algorithm>
#include <stdexcept>

#include "info/distribution.h"

namespace crp::core {

channel::BitString high_bits(std::size_t value, std::size_t height,
                             std::size_t bits) {
  if (bits > height) throw std::invalid_argument("bits exceed tree height");
  channel::BitString result(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    result[i] = ((value >> (height - 1 - i)) & 1u) != 0;
  }
  return result;
}

std::size_t bits_to_index(const channel::BitString& bits) {
  std::size_t value = 0;
  for (bool bit : bits) value = (value << 1) | (bit ? 1u : 0u);
  return value;
}

std::size_t id_tree_height(std::size_t n) {
  if (n < 2) return 1;
  std::size_t height = 0;
  std::size_t capacity = 1;
  while (capacity < n) {
    capacity *= 2;
    ++height;
  }
  return height;
}

namespace {

std::size_t min_participant(std::span<const std::size_t> participants) {
  if (participants.empty()) {
    throw std::invalid_argument("participant set must be non-empty");
  }
  return *std::min_element(participants.begin(), participants.end());
}

}  // namespace

MinIdPrefixAdvice::MinIdPrefixAdvice(std::size_t n, std::size_t bits)
    : height_(id_tree_height(n)), bits_(bits) {
  if (bits_ > height_) {
    throw std::invalid_argument("advice longer than the id tree height");
  }
}

channel::BitString MinIdPrefixAdvice::advise(
    std::span<const std::size_t> participants) const {
  return high_bits(min_participant(participants), height_, bits_);
}

RangeGroupAdvice::RangeGroupAdvice(std::size_t n, std::size_t bits)
    : num_ranges_(info::num_ranges(n)), bits_(bits) {
  if ((std::size_t{1} << bits_) > num_ranges_) {
    throw std::invalid_argument(
        "2^b groups exceed the number of geometric ranges");
  }
}

std::size_t RangeGroupAdvice::num_groups() const {
  return std::size_t{1} << bits_;
}

std::size_t RangeGroupAdvice::group_of_range(std::size_t range) const {
  if (range == 0 || range > num_ranges_) {
    throw std::invalid_argument("range outside L(n)");
  }
  // Contiguous groups as equal as possible: the first `rem` groups have
  // base + 1 ranges, the rest have `base`.
  const std::size_t groups = num_groups();
  const std::size_t base = num_ranges_ / groups;
  const std::size_t rem = num_ranges_ % groups;
  const std::size_t idx = range - 1;  // 0-based position
  const std::size_t boundary = rem * (base + 1);
  if (idx < boundary) return idx / (base + 1);
  return rem + (idx - boundary) / base;
}

std::vector<std::size_t> RangeGroupAdvice::ranges_in_group(
    std::size_t group) const {
  const std::size_t groups = num_groups();
  if (group >= groups) throw std::invalid_argument("group out of bounds");
  const std::size_t base = num_ranges_ / groups;
  const std::size_t rem = num_ranges_ % groups;
  std::size_t start = 0;
  if (group < rem) {
    start = group * (base + 1);
  } else {
    start = rem * (base + 1) + (group - rem) * base;
  }
  const std::size_t count = group < rem ? base + 1 : base;
  std::vector<std::size_t> ranges(count);
  for (std::size_t i = 0; i < count; ++i) ranges[i] = start + i + 1;
  return ranges;
}

channel::BitString RangeGroupAdvice::advise(
    std::span<const std::size_t> participants) const {
  const std::size_t k = participants.size();
  if (k < 2) {
    throw std::invalid_argument("range advice needs >= 2 participants");
  }
  const std::size_t group = group_of_range(info::range_of_size(k));
  channel::BitString result(bits_);
  for (std::size_t i = 0; i < bits_; ++i) {
    result[i] = ((group >> (bits_ - 1 - i)) & 1u) != 0;
  }
  return result;
}

FullIdAdvice::FullIdAdvice(std::size_t n) : height_(id_tree_height(n)) {}

channel::BitString FullIdAdvice::advise(
    std::span<const std::size_t> participants) const {
  return high_bits(min_participant(participants), height_, height_);
}

}  // namespace crp::core
