#include "core/likelihood_schedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crp::core {

namespace {

/// Builds a low-discrepancy repeating pass in which range i occupies a
/// share of slots proportional to max(1 slot, q_i * pass). Uses stride
/// scheduling: each slot goes to the range with the smallest virtual
/// finish time (c_i + 1) / w_i, so likely ranges recur evenly rather
/// than in bursts.
std::vector<std::size_t> proportional_pass(
    const info::CondensedDistribution& prediction) {
  const std::size_t num_ranges = prediction.size();
  const std::size_t pass = 4 * num_ranges;
  std::vector<double> weights(num_ranges);
  std::size_t total = 0;
  for (std::size_t j = 0; j < num_ranges; ++j) {
    const double share = prediction.probabilities()[j] *
                         static_cast<double>(pass);
    weights[j] = std::max(1.0, std::round(share));
    total += static_cast<std::size_t>(weights[j]);
  }
  std::vector<double> counts(num_ranges, 0.0);
  std::vector<std::size_t> schedule;
  schedule.reserve(total);
  for (std::size_t slot = 0; slot < total; ++slot) {
    std::size_t best = 0;
    double best_time = (counts[0] + 1.0) / weights[0];
    for (std::size_t j = 1; j < num_ranges; ++j) {
      const double time = (counts[j] + 1.0) / weights[j];
      if (time < best_time) {
        best = j;
        best_time = time;
      }
    }
    counts[best] += 1.0;
    schedule.push_back(best + 1);  // ranges are 1-based
  }
  return schedule;
}

}  // namespace

LikelihoodOrderedSchedule::LikelihoodOrderedSchedule(
    const info::CondensedDistribution& prediction, CycleMode mode)
    : ordering_(prediction.ranges_by_likelihood()) {
  switch (mode) {
    case CycleMode::kRepeatPass:
      schedule_ = ordering_;
      break;
    case CycleMode::kProportional:
      schedule_ = proportional_pass(prediction);
      break;
  }
  if (schedule_.empty()) {
    throw std::invalid_argument("empty prediction alphabet");
  }
}

double LikelihoodOrderedSchedule::probability(std::size_t round) const {
  return std::exp2(-static_cast<double>(range_for_round(round)));
}

std::size_t LikelihoodOrderedSchedule::range_for_round(
    std::size_t round) const {
  return schedule_[round % schedule_.size()];
}

}  // namespace crp::core
