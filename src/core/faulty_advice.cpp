#include "core/faulty_advice.h"

#include <random>
#include <stdexcept>

namespace crp::core {

FaultyAdvice::FaultyAdvice(std::shared_ptr<const AdviceFunction> inner,
                           double flip_probability, std::uint64_t seed)
    : inner_(std::move(inner)),
      flip_probability_(flip_probability),
      seed_(seed) {
  if (!inner_) throw std::invalid_argument("inner advice is null");
  if (flip_probability_ < 0.0 || flip_probability_ > 1.0) {
    throw std::invalid_argument("flip probability outside [0, 1]");
  }
}

channel::BitString FaultyAdvice::advise(
    std::span<const std::size_t> participants) const {
  channel::BitString bits = inner_->advise(participants);
  // Deterministic corruption: seed an engine from a hash of the
  // participant set so the same set is always corrupted the same way.
  std::uint64_t h = seed_ ^ 0x9e3779b97f4a7c15ULL;
  for (std::size_t id : participants) {
    h ^= (id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
  std::mt19937_64 rng(h);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (unit(rng) < flip_probability_) bits[i] = !bits[i];
  }
  return bits;
}

std::size_t FaultyAdvice::bits() const { return inner_->bits(); }

std::string FaultyAdvice::name() const {
  return inner_->name() + "+faulty";
}

}  // namespace crp::core
