#include "core/advice_randomized.h"

#include <cmath>
#include <stdexcept>

namespace crp::core {

TruncatedDecaySchedule::TruncatedDecaySchedule(
    std::vector<std::size_t> ranges, std::vector<std::size_t> fallback)
    : ranges_(std::move(ranges)), fallback_(std::move(fallback)) {
  if (ranges_.empty()) {
    throw std::invalid_argument("advised group must be non-empty");
  }
  period_ = 3 * ranges_.size() + fallback_.size();
}

std::size_t TruncatedDecaySchedule::range_for_round(
    std::size_t round) const {
  if (fallback_.empty()) return ranges_[round % ranges_.size()];
  const std::size_t pos = round % period_;
  const std::size_t group_part = 3 * ranges_.size();
  if (pos < group_part) return ranges_[pos % ranges_.size()];
  return fallback_[pos - group_part];
}

double TruncatedDecaySchedule::probability(std::size_t round) const {
  return std::exp2(-static_cast<double>(range_for_round(round)));
}

TruncatedWillardPolicy::TruncatedWillardPolicy(
    std::vector<std::size_t> ranges, std::vector<std::size_t> fallback)
    : ranges_(std::move(ranges)), fallback_(std::move(fallback)) {
  if (ranges_.empty()) {
    throw std::invalid_argument("advised group must be non-empty");
  }
}

double TruncatedWillardPolicy::probability(
    const channel::BitString& history) const {
  // Binary search over indices into the active range set, replayed from
  // the collision history (collision: size guess too small, move to
  // larger ranges; silence: too large). When a search exhausts its
  // window a new attempt begins; with a fallback configured, every
  // fourth attempt searches the fallback set instead of the group.
  const std::vector<std::size_t>* active = &ranges_;
  std::size_t attempt = 0;
  std::size_t lo = 0;
  std::size_t hi = active->size();  // window [lo, hi)
  for (bool collided : history) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (collided) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    if (lo >= hi) {
      ++attempt;
      const bool use_fallback = !fallback_.empty() && attempt % 4 == 3;
      active = use_fallback ? &fallback_ : &ranges_;
      lo = 0;
      hi = active->size();
    }
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  return std::exp2(-static_cast<double>((*active)[mid]));
}

}  // namespace crp::core
