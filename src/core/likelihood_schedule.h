// The Section 2.5 prediction-augmented algorithm for channels WITHOUT
// collision detection.
//
// Given a predicted network-size distribution Y, order the geometric
// ranges L(n) by non-increasing probability under the condensed
// prediction c(Y) and transmit with probability 2^-pi_i in the i-th
// round. Theorem 2.12: with probability >= 1/16 this succeeds within
// O(2^T) rounds, T = 2 H(c(X)) + 2 D_KL(c(X) || c(Y)); with an accurate
// prediction (Y = X) this is O(2^{2 H(c(X))}) (Corollary 2.15).
#pragma once

#include <cstddef>
#include <vector>

#include "channel/protocol.h"
#include "info/distribution.h"

namespace crp::core {

/// How the schedule continues after its first pass over all ranges.
/// The paper analyses the one-shot pass; for expected-time measurements
/// the pass must repeat, and the paper (footnote 6) notes a cleverer
/// cycling is possible — both are provided.
enum class CycleMode {
  /// Repeat the likelihood-ordered pass verbatim, forever.
  kRepeatPass,
  /// Proportional cycling: range i is scheduled with frequency
  /// proportional to its predicted probability (Kraft-style schedule
  /// built from the optimal code lengths for c(Y)), so likely ranges
  /// recur geometrically more often. This is the "cycle through these
  /// probabilities in a clever manner" extension the paper sketches.
  kProportional,
};

class LikelihoodOrderedSchedule final : public channel::ProbabilitySchedule {
 public:
  /// `prediction` is c(Y); ties in likelihood are broken toward smaller
  /// ranges, making the schedule a deterministic function of Y.
  explicit LikelihoodOrderedSchedule(
      const info::CondensedDistribution& prediction,
      CycleMode mode = CycleMode::kRepeatPass);

  double probability(std::size_t round) const override;
  std::size_t period() const override { return schedule_.size(); }
  std::string name() const override { return "likelihood-ordered"; }

  /// The likelihood ordering pi (1-based range indices).
  const std::vector<std::size_t>& ordering() const { return ordering_; }

  /// Rounds in one full pass (= |L(n)| for kRepeatPass).
  std::size_t pass_length() const { return schedule_.size(); }

  /// The range probed in 0-based round `round`.
  std::size_t range_for_round(std::size_t round) const;

 private:
  std::vector<std::size_t> ordering_;  // likelihood order (first pass)
  std::vector<std::size_t> schedule_;  // one repeating pass of ranges
};

}  // namespace crp::core
