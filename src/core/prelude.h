// The paper's footnote-4 prelude: every bound assumes k >= 2 "without
// loss of generality [as] all algorithms can eliminate the n = 1
// possibility in an additional early round in which all players
// transmit with probability 1". These adapters make that WLOG step
// executable: they prepend the all-transmit probe to any schedule or
// collision policy, so the composed algorithm is correct for every
// k >= 1.
#pragma once

#include <memory>

#include "channel/protocol.h"

namespace crp::core {

/// Wraps a no-CD schedule with a round-0 all-transmit probe. If k = 1
/// the probe solves the problem immediately; otherwise it collides
/// (invisibly, without collision detection) and the wrapped schedule
/// proceeds shifted by one round.
class WithAllTransmitPrelude final : public channel::ProbabilitySchedule {
 public:
  explicit WithAllTransmitPrelude(
      std::shared_ptr<const channel::ProbabilitySchedule> inner);

  double probability(std::size_t round) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const channel::ProbabilitySchedule> inner_;
};

/// CD version: the probe's feedback (success / collision) is consumed;
/// the wrapped policy sees the history with the probe's collision bit
/// stripped, so it behaves exactly as if it had started at round 1.
class WithAllTransmitPreludeCd final : public channel::CollisionPolicy {
 public:
  explicit WithAllTransmitPreludeCd(
      std::shared_ptr<const channel::CollisionPolicy> inner);

  double probability(const channel::BitString& history) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const channel::CollisionPolicy> inner_;
};

}  // namespace crp::core
