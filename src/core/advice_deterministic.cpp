#include "core/advice_deterministic.h"

#include <stdexcept>

#include "core/advice.h"

namespace crp::core {

namespace {

struct Interval {
  std::size_t lo = 0;
  std::size_t hi = 0;  // exclusive
};

/// The id interval covered by the advised subtree. The id space is the
/// padded [0, 2^height); ids >= n are simply never active.
Interval subtree_interval(const channel::BitString& advice,
                          std::size_t height) {
  const std::size_t prefix = bits_to_index(advice);
  const std::size_t width = std::size_t{1} << (height - advice.size());
  return Interval{prefix * width, (prefix + 1) * width};
}

}  // namespace

SubtreeScanProtocol::SubtreeScanProtocol(std::size_t n,
                                         std::size_t advice_bits)
    : n_(n), height_(id_tree_height(n)), advice_bits_(advice_bits) {
  if (n_ < 2) throw std::invalid_argument("network size must be >= 2");
  if (advice_bits_ > height_) {
    throw std::invalid_argument("advice longer than the id tree height");
  }
}

std::size_t SubtreeScanProtocol::subtree_size() const {
  return std::size_t{1} << (height_ - advice_bits_);
}

bool SubtreeScanProtocol::transmits(
    std::size_t player_id, const channel::BitString& advice,
    std::size_t round, std::span<const channel::Feedback> /*history*/) const {
  if (advice.size() != advice_bits_) {
    throw std::invalid_argument("advice has the wrong length");
  }
  const Interval subtree = subtree_interval(advice, height_);
  const std::size_t size = subtree.hi - subtree.lo;
  if (round < size) {
    return player_id == subtree.lo + round;
  }
  // Fallback sweep over all ids (only reachable with malformed advice).
  return player_id == (round - size) % n_;
}

TreeDescentCdProtocol::TreeDescentCdProtocol(std::size_t n,
                                             std::size_t advice_bits)
    : n_(n), height_(id_tree_height(n)), advice_bits_(advice_bits) {
  if (n_ < 2) throw std::invalid_argument("network size must be >= 2");
  if (advice_bits_ > height_) {
    throw std::invalid_argument("advice longer than the id tree height");
  }
}

std::size_t TreeDescentCdProtocol::max_rounds() const {
  return height_ - advice_bits_ + 1;
}

bool TreeDescentCdProtocol::transmits(
    std::size_t player_id, const channel::BitString& advice,
    std::size_t /*round*/,
    std::span<const channel::Feedback> history) const {
  if (advice.size() != advice_bits_) {
    throw std::invalid_argument("advice has the wrong length");
  }
  const Interval root = subtree_interval(advice, height_);
  std::size_t lo = root.lo;
  std::size_t hi = root.hi;
  for (channel::Feedback feedback : history) {
    if (hi - lo == 1) {
      // Unreachable with valid advice (a size-1 probe always succeeds).
      // With faulty advice the target may sit outside the advised
      // subtree, so escalate to a descent over the full id space
      // rather than looping inside the wrong subtree forever.
      lo = 0;
      hi = std::size_t{1} << height_;
      continue;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feedback == channel::Feedback::kCollision) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (hi - lo == 1) return player_id == lo;
  const std::size_t mid = lo + (hi - lo) / 2;
  return player_id >= lo && player_id < mid;
}

}  // namespace crp::core
