// Randomized advice-augmented protocols (Section 3.3).
//
// The advice (RangeGroupAdvice) names which of the 2^b contiguous
// groups of geometric ranges contains the true range ceil(log2 k):
//  * no collision detection: run decay truncated to the advised group's
//    ranges -> Theta(log n / 2^b) expected rounds (Theorem 3.6);
//  * collision detection: run Willard's binary search truncated to the
//    advised group -> Theta(log log n - b) expected rounds, O(1) once
//    b >= log log n (Theorem 3.7).
//
// Both protocols accept an optional *fallback* range set (normally all
// of L(n)). With a fallback, one sweep/search of the fallback is
// interleaved after every three passes over the advised group, so a
// faulty advisor (wrong group) degrades the expected time to the b = 0
// bound instead of destroying correctness. With correct advice the
// fallback changes the constants only.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/protocol.h"

namespace crp::core {

/// Decay restricted to an advised set of ranges.
class TruncatedDecaySchedule final : public channel::ProbabilitySchedule {
 public:
  /// `ranges` are the 1-based geometric ranges of the advised group
  /// (ascending; from RangeGroupAdvice::ranges_in_group). `fallback`,
  /// if non-empty, is swept once after every three group sweeps.
  explicit TruncatedDecaySchedule(std::vector<std::size_t> ranges,
                                  std::vector<std::size_t> fallback = {});

  double probability(std::size_t round) const override;
  std::size_t period() const override { return period_; }
  std::string name() const override { return "truncated-decay"; }

  std::size_t sweep_length() const { return ranges_.size(); }

  /// The range probed in 0-based round `round` (exposed for tests).
  std::size_t range_for_round(std::size_t round) const;

 private:
  std::vector<std::size_t> ranges_;
  std::vector<std::size_t> fallback_;
  std::size_t period_;
};

/// Willard's search restricted to an advised set of ranges; restarts
/// within the group when the search window empties, interleaving a
/// search of the fallback set (if provided) every fourth attempt.
class TruncatedWillardPolicy final : public channel::CollisionPolicy {
 public:
  explicit TruncatedWillardPolicy(std::vector<std::size_t> ranges,
                                  std::vector<std::size_t> fallback = {});

  double probability(const channel::BitString& history) const override;
  std::string name() const override { return "truncated-willard"; }

 private:
  std::vector<std::size_t> ranges_;
  std::vector<std::size_t> fallback_;
};

}  // namespace crp::core
