#include "core/prelude.h"

#include <stdexcept>

namespace crp::core {

WithAllTransmitPrelude::WithAllTransmitPrelude(
    std::shared_ptr<const channel::ProbabilitySchedule> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("inner schedule is null");
}

double WithAllTransmitPrelude::probability(std::size_t round) const {
  if (round == 0) return 1.0;
  return inner_->probability(round - 1);
}

std::string WithAllTransmitPrelude::name() const {
  return inner_->name() + "+prelude";
}

WithAllTransmitPreludeCd::WithAllTransmitPreludeCd(
    std::shared_ptr<const channel::CollisionPolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("inner policy is null");
}

double WithAllTransmitPreludeCd::probability(
    const channel::BitString& history) const {
  if (history.empty()) return 1.0;
  // Strip the probe's feedback bit; with k >= 2 it is always a
  // collision, carrying no information the inner policy needs.
  const channel::BitString inner_history(history.begin() + 1,
                                         history.end());
  return inner_->probability(inner_history);
}

std::string WithAllTransmitPreludeCd::name() const {
  return inner_->name() + "+prelude";
}

}  // namespace crp::core
