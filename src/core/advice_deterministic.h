// Deterministic advice-augmented protocols (Section 3.2).
//
// Both view the n player ids as leaves of a balanced binary tree and
// receive as advice the first b steps of the traversal toward an
// active participant (MinIdPrefixAdvice):
//  * no collision detection: sweep the n/2^b leaves of the advised
//    subtree one per round -> Theta(n^{1-alpha}) rounds for
//    b = alpha log n, matching Theorem 3.4's lower bound within
//    constant factors;
//  * collision detection: finish the remaining log(n) - b steps of the
//    traversal with collision votes -> log n - b + 1 rounds, matching
//    Theorem 3.5.
#pragma once

#include <cstddef>

#include "channel/protocol.h"

namespace crp::core {

/// No-collision-detection deterministic protocol: with advice prefix a
/// of length b, round r belongs to the (r+1)-th id of the subtree
/// rooted at a; a player transmits iff that id is its own. The smallest
/// active id in the subtree transmits alone in its slot. If the sweep
/// ends without success (malformed advice), it wraps to a full id
/// sweep for robustness.
class SubtreeScanProtocol final : public channel::DeterministicProtocol {
 public:
  SubtreeScanProtocol(std::size_t n, std::size_t advice_bits);

  bool transmits(std::size_t player_id, const channel::BitString& advice,
                 std::size_t round,
                 std::span<const channel::Feedback> history) const override;
  std::string name() const override { return "subtree-scan"; }

  /// Worst-case rounds before the advised subtree is exhausted.
  std::size_t subtree_size() const;

 private:
  std::size_t n_;
  std::size_t height_;
  std::size_t advice_bits_;
};

/// Collision-detection deterministic protocol: the advice narrows the
/// candidate id interval to the advised subtree; the players then
/// binary-search it with collision votes exactly like the classical
/// b = 0 strategy (baselines::TreeDescentProtocol).
class TreeDescentCdProtocol final : public channel::DeterministicProtocol {
 public:
  TreeDescentCdProtocol(std::size_t n, std::size_t advice_bits);

  bool transmits(std::size_t player_id, const channel::BitString& advice,
                 std::size_t round,
                 std::span<const channel::Feedback> history) const override;
  std::string name() const override { return "tree-descent+advice"; }

  /// Worst-case rounds: remaining tree height + 1.
  std::size_t max_rounds() const;

 private:
  std::size_t n_;
  std::size_t height_;
  std::size_t advice_bits_;
};

}  // namespace crp::core
