// The perfect-advice model of Section 3: an advice function f_A with
// perfect knowledge of the participant set P hands the same b bits to
// every participant before round 1.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "channel/protocol.h"

namespace crp::core {

/// An advice function f_A : P(V) -> {0,1}^b.
class AdviceFunction {
 public:
  virtual ~AdviceFunction() = default;

  /// Computes the advice for participant set `participants` (player
  /// ids, need not be sorted; must be non-empty).
  virtual channel::BitString advise(
      std::span<const std::size_t> participants) const = 0;

  /// Advice size b in bits (every advise() result has this length).
  virtual std::size_t bits() const = 0;

  virtual std::string name() const = 0;
};

/// Utility: the `bits` most significant bits of `value` within an
/// id space of `height` bits, as a BitString (MSB first).
channel::BitString high_bits(std::size_t value, std::size_t height,
                             std::size_t bits);

/// Utility: decodes a BitString (MSB first) back to an integer.
std::size_t bits_to_index(const channel::BitString& bits);

/// Height of the balanced id tree for a network of n ids: ceil(log2 n),
/// at least 1.
std::size_t id_tree_height(std::size_t n);

/// Advice = the first b steps of the root-to-leaf traversal toward the
/// smallest active participant in the balanced id tree (equivalently
/// the b high bits of its id). Drives both deterministic protocols of
/// Section 3.2.
class MinIdPrefixAdvice final : public AdviceFunction {
 public:
  MinIdPrefixAdvice(std::size_t n, std::size_t bits);

  channel::BitString advise(
      std::span<const std::size_t> participants) const override;
  std::size_t bits() const override { return bits_; }
  std::string name() const override { return "min-id-prefix"; }

 private:
  std::size_t height_;
  std::size_t bits_;
};

/// Advice = which of the 2^b contiguous groups of geometric ranges
/// contains the true range ceil(log2 |P|). Drives both randomized
/// protocols of Section 3.3 (truncated decay / truncated Willard).
class RangeGroupAdvice final : public AdviceFunction {
 public:
  RangeGroupAdvice(std::size_t n, std::size_t bits);

  channel::BitString advise(
      std::span<const std::size_t> participants) const override;
  std::size_t bits() const override { return bits_; }
  std::string name() const override { return "range-group"; }

  /// Number of groups 2^b and the group (0-based) containing range i.
  std::size_t num_groups() const;
  std::size_t group_of_range(std::size_t range) const;
  /// The 1-based ranges inside group g, ascending.
  std::vector<std::size_t> ranges_in_group(std::size_t group) const;

 private:
  std::size_t num_ranges_;
  std::size_t bits_;
};

/// Advice = the full id of the smallest active participant, b = tree
/// height; enables the trivial 1-round solution (upper extreme of the
/// Table 2 sweeps).
class FullIdAdvice final : public AdviceFunction {
 public:
  explicit FullIdAdvice(std::size_t n);

  channel::BitString advise(
      std::span<const std::size_t> participants) const override;
  std::size_t bits() const override { return height_; }
  std::string name() const override { return "full-id"; }

 private:
  std::size_t height_;
};

}  // namespace crp::core
