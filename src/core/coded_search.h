// The Section 2.6 prediction-augmented algorithm for channels WITH
// collision detection.
//
// Build an optimal prefix code f for the condensed prediction c(Y).
// Group ranges into classes by codeword length; visit classes from
// shortest code to longest, and within each class run Willard's
// collision-detector-driven binary search over the class's ranges
// (sorted ascending). Theorem 2.16: with constant probability this
// solves contention resolution in O((H(c(X)) + D_KL(c(X)||c(Y)))^2)
// rounds; Corollary 2.18 gives O(H(c(X))^2) when Y = X.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/protocol.h"
#include "info/distribution.h"

namespace crp::core {

/// Which optimal-code construction backs the class grouping; the
/// Huffman/Shannon-Fano choice is an ablation knob (bench_coding).
enum class CodeBackend { kHuffman, kShannonFano };

class CodedSearchPolicy final : public channel::CollisionPolicy {
 public:
  explicit CodedSearchPolicy(const info::CondensedDistribution& prediction,
                             CodeBackend backend = CodeBackend::kHuffman);

  double probability(const channel::BitString& history) const override;
  std::string name() const override { return "coded-search"; }

  /// The code-length classes in visiting order: classes_[c] holds the
  /// 1-based ranges whose codeword length is lengths_[c], ascending.
  const std::vector<std::vector<std::size_t>>& classes() const {
    return classes_;
  }
  const std::vector<std::size_t>& class_lengths() const { return lengths_; }

  /// Worst-case rounds in one full pass over every class (each class of
  /// size m costs at most ceil(log2 m) + 1 probes).
  std::size_t pass_length() const;

 private:
  /// (probability exponent) for the probe after `history`.
  std::size_t current_range(const channel::BitString& history) const;

  std::vector<std::vector<std::size_t>> classes_;
  std::vector<std::size_t> lengths_;
  std::vector<bool> positive_mass_;  // class has predicted mass > 0
};

}  // namespace crp::core
