// Cross-cutting property tests over the whole protocol zoo:
//  * every schedule emits probabilities in [0, 1] for a long horizon;
//  * every collision policy is a pure function of the history (replay
//    determinism) and respects prefix consistency under simulation;
//  * every uniform protocol solves every feasible size eventually.
#include <cmath>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/simple.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "channel/simulator.h"
#include "core/advice_randomized.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "core/prelude.h"
#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp {
namespace {

constexpr std::size_t kNetwork = 1 << 12;  // 12 ranges

struct ScheduleCase {
  std::string name;
  std::function<std::shared_ptr<channel::ProbabilitySchedule>()> make;
};

std::vector<ScheduleCase> schedule_zoo() {
  const std::size_t ranges = info::num_ranges(kNetwork);
  return {
      {"decay",
       [] { return std::make_shared<baselines::DecaySchedule>(kNetwork); }},
      {"reverse-decay",
       [] {
         return std::make_shared<baselines::ReverseDecaySchedule>(kNetwork);
       }},
      {"fixed",
       [] {
         return std::make_shared<baselines::FixedProbabilitySchedule>(
             baselines::FixedProbabilitySchedule::for_size_estimate(100));
       }},
      {"likelihood-repeat",
       [ranges] {
         return std::make_shared<core::LikelihoodOrderedSchedule>(
             predict::zipf_ranges(ranges, 1.0));
       }},
      {"likelihood-proportional",
       [ranges] {
         return std::make_shared<core::LikelihoodOrderedSchedule>(
             predict::zipf_ranges(ranges, 1.0),
             core::CycleMode::kProportional);
       }},
      {"truncated-decay",
       [] {
         return std::make_shared<core::TruncatedDecaySchedule>(
             std::vector<std::size_t>{3, 4, 5});
       }},
      {"truncated-decay-fallback",
       [ranges] {
         std::vector<std::size_t> all(ranges);
         for (std::size_t i = 0; i < ranges; ++i) all[i] = i + 1;
         return std::make_shared<core::TruncatedDecaySchedule>(
             std::vector<std::size_t>{3, 4, 5}, all);
       }},
      {"decay+prelude",
       [] {
         return std::make_shared<core::WithAllTransmitPrelude>(
             std::make_shared<baselines::DecaySchedule>(kNetwork));
       }},
  };
}

struct PolicyCase {
  std::string name;
  std::function<std::shared_ptr<channel::CollisionPolicy>()> make;
};

std::vector<PolicyCase> policy_zoo() {
  const std::size_t ranges = info::num_ranges(kNetwork);
  return {
      {"willard",
       [] { return std::make_shared<baselines::WillardPolicy>(kNetwork); }},
      {"willard-repeats",
       [] {
         return std::make_shared<baselines::WillardPolicy>(kNetwork, 3);
       }},
      {"coded-huffman",
       [ranges] {
         return std::make_shared<core::CodedSearchPolicy>(
             predict::geometric_ranges(ranges, 0.6));
       }},
      {"coded-shannon-fano",
       [ranges] {
         return std::make_shared<core::CodedSearchPolicy>(
             predict::geometric_ranges(ranges, 0.6),
             core::CodeBackend::kShannonFano);
       }},
      {"truncated-willard",
       [] {
         return std::make_shared<core::TruncatedWillardPolicy>(
             std::vector<std::size_t>{5, 6, 7, 8});
       }},
      {"truncated-willard-fallback",
       [ranges] {
         std::vector<std::size_t> all(ranges);
         for (std::size_t i = 0; i < ranges; ++i) all[i] = i + 1;
         return std::make_shared<core::TruncatedWillardPolicy>(
             std::vector<std::size_t>{5, 6}, all);
       }},
      {"willard+prelude",
       [] {
         return std::make_shared<core::WithAllTransmitPreludeCd>(
             std::make_shared<baselines::WillardPolicy>(kNetwork));
       }},
  };
}

class ScheduleProperties
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScheduleProperties, ProbabilitiesStayInUnitInterval) {
  const auto schedule = schedule_zoo()[GetParam()].make();
  for (std::size_t round = 0; round < 5000; ++round) {
    const double p = schedule->probability(round);
    EXPECT_GE(p, 0.0) << schedule->name() << " round " << round;
    EXPECT_LE(p, 1.0) << schedule->name() << " round " << round;
  }
}

TEST_P(ScheduleProperties, ScheduleIsDeterministic) {
  const auto a = schedule_zoo()[GetParam()].make();
  const auto b = schedule_zoo()[GetParam()].make();
  for (std::size_t round = 0; round < 500; ++round) {
    EXPECT_DOUBLE_EQ(a->probability(round), b->probability(round));
  }
}

TEST_P(ScheduleProperties, EventuallySolvesAFeasibleSize) {
  const auto cases = schedule_zoo();  // keep the zoo alive past [i]
  const auto& test_case = cases[GetParam()];
  const auto schedule = test_case.make();
  // Pick a size the schedule can plausibly serve: truncated variants
  // without fallback only cover their group, so probe a size in range
  // 4 (their groups include ranges 3..5); the rest get k = 100.
  const bool truncated = test_case.name == "truncated-decay";
  const std::size_t k = truncated ? 12 : 100;
  const auto m = harness::measure(
      [&](std::size_t, std::mt19937_64& rng) {
        return channel::run_uniform_no_cd(*schedule, k, rng, {1 << 16});
      },
      300, /*seed=*/17);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(Zoo, ScheduleProperties,
                         ::testing::Range<std::size_t>(0, 8));

class PolicyProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolicyProperties, ProbabilitiesValidOnRandomHistories) {
  const auto policy = policy_zoo()[GetParam()].make();
  auto rng = channel::make_rng(23);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int trial = 0; trial < 200; ++trial) {
    channel::BitString history;
    for (int len = 0; len < 40; ++len) {
      const double p = policy->probability(history);
      EXPECT_GE(p, 0.0) << policy->name();
      EXPECT_LE(p, 1.0) << policy->name();
      history.push_back(coin(rng) == 1);
    }
  }
}

TEST_P(PolicyProperties, ReplayIsAPureFunctionOfHistory) {
  const auto a = policy_zoo()[GetParam()].make();
  const auto b = policy_zoo()[GetParam()].make();
  auto rng = channel::make_rng(29);
  std::uniform_int_distribution<int> coin(0, 1);
  channel::BitString history;
  for (int len = 0; len < 200; ++len) {
    EXPECT_DOUBLE_EQ(a->probability(history), b->probability(history))
        << a->name() << " at length " << len;
    history.push_back(coin(rng) == 1);
  }
}

TEST_P(PolicyProperties, SolvesAFeasibleSizeUnderSimulation) {
  const auto cases = policy_zoo();  // keep the zoo alive past [i]
  const auto& test_case = cases[GetParam()];
  const auto policy = test_case.make();
  const bool truncated = test_case.name == "truncated-willard";
  // Truncated group covers ranges 5..8 -> pick k in range 6.
  const std::size_t k = truncated ? 50 : 100;
  const auto m = harness::measure(
      [&](std::size_t, std::mt19937_64& rng) {
        return channel::run_uniform_cd(*policy, k, rng, {1 << 14});
      },
      300, /*seed=*/31);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(Zoo, PolicyProperties,
                         ::testing::Range<std::size_t>(0, 7));

}  // namespace
}  // namespace crp
