// The sharding subsystem (harness/shard.h): the deterministic
// partition's invariants (disjoint, covering, stable), merged shards
// bit-identical to the monolithic run_sweep for no-CD and CD
// (history-tree engine) grids at every shard count, the byte-identical
// CSV-level merge, the manifest JSON round trip, and the merge
// validation that rejects mismatched, overlapping, or gappy shard
// sets with actionable errors.
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "harness/shard.h"
#include "harness/sweep.h"
#include "info/distribution.h"

namespace crp::harness {
namespace {

void expect_identical(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_TRUE(a.histogram == b.histogram);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.rounds.mean, b.rounds.mean);
  EXPECT_EQ(a.rounds.p90, b.rounds.p90);
}

/// The sweep_test fixture: two schedules and a CD policy crossed with
/// two workloads — 6 cells, enough for uneven partitions.
struct Fixture {
  Fixture()
      : decay(1 << 10),
        slow_decay(1 << 6),
        willard(1 << 10),
        uniform(info::SizeDistribution::uniform(1 << 10)) {}

  SweepGrid grid() const {
    SweepGrid grid;
    grid.add_algorithm({.name = "decay", .schedule = &decay})
        .add_algorithm({.name = "slow-decay", .schedule = &slow_decay})
        .add_algorithm({.name = "willard", .policy = &willard})
        .add_sizes({.name = "uniform", .distribution = &uniform})
        .add_sizes({.name = "k=100", .fixed_k = 100})
        .add_budget(1 << 12);
    return grid;
  }

  baselines::DecaySchedule decay;
  baselines::DecaySchedule slow_decay;
  baselines::WillardPolicy willard;
  info::SizeDistribution uniform;
};

TEST(ShardPlan, PartitionIsDisjointCoveringAndStable) {
  const Fixture f;
  const auto cells = f.grid().cells();
  for (const std::size_t count : {1ul, 2ul, 3ul, 4ul, 6ul, 9ul}) {
    std::size_t expected_begin = 0;
    for (std::size_t index = 0; index < count; ++index) {
      const auto plan = plan_shards(
          cells, {.shard_count = count, .shard_index = index});
      // Contiguous, in order, no gap and no overlap with the previous
      // shard; together the shards tile [0, cells.size()).
      EXPECT_EQ(plan.cell_begin, expected_begin);
      EXPECT_LE(plan.cell_begin, plan.cell_end);
      EXPECT_EQ(plan.cells.size(), plan.cell_end - plan.cell_begin);
      EXPECT_EQ(plan.total_cells, cells.size());
      expected_begin = plan.cell_end;
      // Stable: planning again yields the same slice and hash.
      const auto again = plan_shards(
          cells, {.shard_count = count, .shard_index = index});
      EXPECT_EQ(again.cell_begin, plan.cell_begin);
      EXPECT_EQ(again.cell_end, plan.cell_end);
      EXPECT_EQ(again.grid_hash, plan.grid_hash);
    }
    EXPECT_EQ(expected_begin, cells.size());
  }
}

TEST(ShardPlan, PinsSeedStreamsToGlobalGridIndex) {
  const Fixture f;
  auto cells = f.grid().cells();
  cells[4].seed_stream = 1234;  // an explicit pin must survive
  const auto plan = plan_shards(cells, {.shard_count = 3, .shard_index = 2});
  ASSERT_EQ(plan.cell_begin, 4u);
  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_EQ(plan.cells[0].seed_stream, 1234u);
  EXPECT_EQ(plan.cells[1].seed_stream, 5u);  // global index, not local 1
}

TEST(ShardPlan, ExplicitCellRanges) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto plan =
      plan_shards(cells, {.cell_begin = 2, .cell_end = 5});
  EXPECT_EQ(plan.cell_begin, 2u);
  EXPECT_EQ(plan.cell_end, 5u);
  EXPECT_EQ(plan.cells.size(), 3u);
  EXPECT_EQ(plan.cells[0].seed_stream, 2u);
}

TEST(ShardPlan, RejectsInvalidOptions) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const std::vector<SweepCell> empty;
  EXPECT_THROW(plan_shards(empty, {.shard_count = 1, .shard_index = 0}),
               std::invalid_argument);
  EXPECT_THROW(plan_shards(cells, {.shard_count = 0}),
               std::invalid_argument);
  EXPECT_THROW(plan_shards(cells, {.shard_count = 2, .shard_index = 2}),
               std::invalid_argument);
  EXPECT_THROW(plan_shards(cells, {.cell_begin = 2}),  // half-set range
               std::invalid_argument);
  EXPECT_THROW(plan_shards(cells, {.cell_begin = 2, .cell_end = 99}),
               std::invalid_argument);
  EXPECT_THROW(plan_shards(cells, {.cell_begin = 5, .cell_end = 2}),
               std::invalid_argument);
}

TEST(ShardPlan, GridFingerprintSeesContentChanges) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const std::uint64_t base = grid_fingerprint(cells);
  EXPECT_EQ(grid_fingerprint(cells), base);  // deterministic

  auto renamed = cells;
  renamed[0].algorithm.name = "decay-v2";
  EXPECT_NE(grid_fingerprint(renamed), base);

  auto rebudgeted = cells;
  rebudgeted[3].max_rounds *= 2;
  EXPECT_NE(grid_fingerprint(rebudgeted), base);

  // Distribution *contents* matter, not the pointer identity.
  const Fixture g;
  EXPECT_EQ(grid_fingerprint(g.grid().cells()), base);

  // Algorithm *parameters* matter too: the same name over a
  // differently-parameterized schedule must change the fingerprint
  // (the behavioral probe), or shards of materially different
  // experiments would merge silently.
  auto reparameterized = cells;
  ASSERT_EQ(reparameterized[0].algorithm.name, "decay");
  reparameterized[0].algorithm.schedule = &f.slow_decay;
  EXPECT_NE(grid_fingerprint(reparameterized), base);
}

/// Shard every way, merge, and compare against the monolithic sweep —
/// results must be bit-identical, cell for cell.
void expect_shards_match_monolithic(const std::vector<SweepCell>& cells,
                                    const SweepOptions& options) {
  const auto monolithic = run_sweep(cells, options);
  for (const std::size_t count : {1ul, 2ul, 3ul, 4ul, 6ul}) {
    std::vector<ShardRun> shards;
    for (std::size_t index = 0; index < count; ++index) {
      shards.push_back(run_sweep_shard(
          cells, {.shard_count = count, .shard_index = index}, options));
    }
    const auto merged = merge_shards(shards);
    ASSERT_EQ(merged.size(), monolithic.size()) << "shard count " << count;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].cell_index, monolithic[i].cell_index);
      EXPECT_EQ(merged[i].cell_seed, monolithic[i].cell_seed);
      expect_identical(merged[i].measurement, monolithic[i].measurement);
    }
  }
}

TEST(ShardMerge, BitIdenticalToMonolithicNoCdAndSimulatedCd) {
  const Fixture f;
  expect_shards_match_monolithic(
      f.grid().cells(), {.trials = 300, .seed = 17, .threads = 1});
}

TEST(ShardMerge, BitIdenticalToMonolithicHistoryTreeCd) {
  // The CD cells route through the history-tree engine; each shard
  // builds its own expansion cache, which must not change results.
  const Fixture f;
  expect_shards_match_monolithic(
      f.grid().cells(), {.trials = 300,
                         .seed = 17,
                         .threads = 1,
                         .cd_engine = CdEngine::kHistoryTree});
}

TEST(ShardMerge, AcceptsEmptyShardsInAnyArgumentOrder) {
  // shard_count > cell count is legal and produces empty ranges; a
  // merge handed the shards in reverse order must not misread an
  // empty [x, x) shard listed after the non-empty [x, y) one as an
  // overlap.
  const Fixture f;
  const auto cells = f.grid().cells();
  const SweepOptions options{.trials = 100, .seed = 8, .threads = 1};
  const auto monolithic = run_sweep(cells, options);
  std::vector<ShardRun> shards;
  for (std::size_t index = 9; index-- > 0;) {  // reversed, 3 empty shards
    shards.push_back(run_sweep_shard(
        cells, {.shard_count = 9, .shard_index = index}, options));
  }
  const auto merged = merge_shards(shards);
  ASSERT_EQ(merged.size(), monolithic.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].cell_seed, monolithic[i].cell_seed);
  }
}

TEST(ShardMerge, MergeOrderIsCellOrderNotArgumentOrder) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const SweepOptions options{.trials = 200, .seed = 3, .threads = 1};
  const auto monolithic = run_sweep(cells, options);
  std::vector<ShardRun> shards;
  for (const std::size_t index : {2ul, 0ul, 1ul}) {  // shuffled
    shards.push_back(run_sweep_shard(
        cells, {.shard_count = 3, .shard_index = index}, options));
  }
  const auto merged = merge_shards(shards);
  ASSERT_EQ(merged.size(), monolithic.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].cell_index, i);
    EXPECT_EQ(merged[i].cell_seed, monolithic[i].cell_seed);
  }
}

/// Builds the on-disk artifact pair for one shard, in memory.
ShardArtifact artifact_of(const ShardRun& run) {
  ShardArtifact artifact;
  artifact.manifest = run.manifest;
  std::ostringstream csv;
  write_sweep_csv(csv, run.results);
  std::istringstream csv_in(csv.str());
  artifact.csv = read_shard_csv(csv_in);
  return artifact;
}

TEST(ShardMerge, CsvMergeIsByteIdenticalToMonolithicWrite) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const SweepOptions options{.trials = 250, .seed = 99, .threads = 1};
  std::ostringstream monolithic;
  write_sweep_csv(monolithic, run_sweep(cells, options));

  for (const std::size_t count : {2ul, 3ul, 5ul}) {
    std::vector<ShardArtifact> artifacts;
    for (std::size_t index = 0; index < count; ++index) {
      artifacts.push_back(artifact_of(run_sweep_shard(
          cells, {.shard_count = count, .shard_index = index}, options)));
    }
    std::ostringstream merged;
    merge_shard_csvs(merged, artifacts);
    EXPECT_EQ(merged.str(), monolithic.str()) << "shard count " << count;
  }
}

TEST(ShardMerge, CsvMergeSurvivesNewlineBearingNames) {
  // csv_quote legally emits raw newlines inside quoted fields; the
  // shard CSV re-reader must reassemble such multi-line records and
  // the merge must still be byte-identical to the monolithic write.
  const Fixture f;
  SweepGrid grid;
  grid.add_cell({.algorithm = {.name = "decay\nnightly", .schedule = &f.decay},
                 .sizes = {.name = "uniform", .distribution = &f.uniform},
                 .max_rounds = 1 << 12});
  grid.add_cell({.algorithm = {.name = "plain", .schedule = &f.slow_decay},
                 .sizes = {.name = "k=100", .fixed_k = 100},
                 .max_rounds = 1 << 12});
  const auto cells = grid.cells();
  const SweepOptions options{.trials = 100, .seed = 6, .threads = 1};
  std::ostringstream monolithic;
  write_sweep_csv(monolithic, run_sweep(cells, options));

  std::vector<ShardArtifact> artifacts;
  for (std::size_t index = 0; index < 2; ++index) {
    artifacts.push_back(artifact_of(run_sweep_shard(
        cells, {.shard_count = 2, .shard_index = index}, options)));
  }
  std::ostringstream merged;
  merge_shard_csvs(merged, artifacts);
  EXPECT_EQ(merged.str(), monolithic.str());
}

TEST(ShardManifest, JsonRoundTrip) {
  ShardManifest manifest{.csv = "shard-1-of-3.csv",
                         .engine = "batch",
                         .cd_engine = "history-tree",
                         .grid_hash = 0xdeadbeefcafef00dULL,
                         .master_seed = ~std::uint64_t{0},
                         .trials = 6000,
                         .total_cells = 32,
                         .shard_index = 1,
                         .shard_count = 3,
                         .cell_begin = 10,
                         .cell_end = 21,
                         .cell_seeds = {}};
  for (std::size_t i = 0; i < 11; ++i) {
    manifest.cell_seeds.push_back(0x1000 + i * 0x0123456789abcdefULL);
  }
  std::stringstream json;
  write_shard_manifest(json, manifest);
  const ShardManifest parsed = read_shard_manifest(json);
  EXPECT_EQ(parsed.csv, manifest.csv);
  EXPECT_EQ(parsed.engine, manifest.engine);
  EXPECT_EQ(parsed.cd_engine, manifest.cd_engine);
  EXPECT_EQ(parsed.grid_hash, manifest.grid_hash);
  EXPECT_EQ(parsed.master_seed, manifest.master_seed);
  EXPECT_EQ(parsed.trials, manifest.trials);
  EXPECT_EQ(parsed.total_cells, manifest.total_cells);
  EXPECT_EQ(parsed.shard_index, manifest.shard_index);
  EXPECT_EQ(parsed.shard_count, manifest.shard_count);
  EXPECT_EQ(parsed.cell_begin, manifest.cell_begin);
  EXPECT_EQ(parsed.cell_end, manifest.cell_end);
  EXPECT_EQ(parsed.cell_seeds, manifest.cell_seeds);
}

TEST(ShardManifest, JsonRoundTripsEscapedCsvNames) {
  // json_escape emits \" \\ \n and \u00xx for control characters; the
  // strict parser must read back exactly what the writer produced.
  ShardManifest manifest{.cell_seeds = {1}};
  manifest.total_cells = 1;
  manifest.cell_end = 1;
  manifest.csv = "odd \"name\"\\with\nnewline\x01.csv";
  std::stringstream json;
  write_shard_manifest(json, manifest);
  EXPECT_EQ(read_shard_manifest(json).csv, manifest.csv);
}

/// Expects `action` to throw std::invalid_argument whose message
/// contains `needle` — the actionable part of the error.
template <typename Action>
void expect_throws_with(const Action& action, const std::string& needle) {
  try {
    action();
    FAIL() << "expected std::invalid_argument containing \"" << needle
           << "\"";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "actual error: " << error.what();
  }
}

TEST(ShardManifest, ParserRejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_shard_manifest(in);
  };
  ShardManifest manifest{.cell_seeds = {1, 2}};
  manifest.total_cells = 2;
  manifest.cell_end = 2;
  std::ostringstream json;
  write_shard_manifest(json, manifest);
  const std::string good = json.str();
  EXPECT_NO_THROW(parse(good));

  const auto reject_trials_value = [&](const std::string& value) {
    std::string text = good;
    const std::string from = "\"trials\": 0";
    const auto at = text.find(from);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, from.size(), "\"trials\": " + value);
    expect_throws_with([&] { (void)parse(text); }, "trials");
  };
  // Non-finite / non-integer numerics are rejected with the field
  // named — the CSV-layer guard applied to the manifest reader.
  reject_trials_value("nan");
  reject_trials_value("inf");
  reject_trials_value("-1");
  reject_trials_value("1.5");
  reject_trials_value("1e3");

  expect_throws_with(
      [&] {
        (void)parse(std::string(good).replace(good.find("0x1\""), 4,
                                              "0xg\""));
      },
      "non-hex");
  expect_throws_with([&] { (void)parse("{}"); }, "missing manifest field");
  expect_throws_with([&] { (void)parse("not json"); }, "expected");
  {
    std::string unknown = good;
    unknown.insert(unknown.find("\"csv\""), "\"bogus\": 1, ");
    expect_throws_with([&] { (void)parse(unknown); }, "unknown");
  }
  {
    std::string duplicate = good;
    duplicate.insert(duplicate.find("\"trials\""), "\"trials\": 0, ");
    expect_throws_with([&] { (void)parse(duplicate); }, "duplicate");
  }
  {
    std::string format = good;
    format.replace(format.find("crp-shard-manifest-v1"),
                   std::string("crp-shard-manifest-v1").size(),
                   "crp-shard-manifest-v999");
    expect_throws_with([&] { (void)parse(format); }, "format");
  }
}

TEST(ShardMerge, RejectsMismatchedShardSets) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const SweepOptions options{.trials = 150, .seed = 11, .threads = 1};
  std::vector<ShardRun> shards;
  for (std::size_t index = 0; index < 3; ++index) {
    shards.push_back(run_sweep_shard(
        cells, {.shard_count = 3, .shard_index = index}, options));
  }
  EXPECT_NO_THROW(merge_shards(shards));

  {
    auto broken = shards;
    broken[1].manifest.master_seed ^= 1;
    expect_throws_with([&] { (void)merge_shards(broken); }, "master seed");
  }
  {
    auto broken = shards;
    broken[2].manifest.trials += 1;
    expect_throws_with([&] { (void)merge_shards(broken); }, "trials");
  }
  {
    auto broken = shards;
    broken[0].manifest.grid_hash ^= 0xff;
    expect_throws_with([&] { (void)merge_shards(broken); }, "grid hash");
  }
  {
    auto broken = shards;
    broken[1].manifest.cd_engine = "history-tree";
    expect_throws_with([&] { (void)merge_shards(broken); },
                       "engine configuration");
  }
  {
    // Missing shard: a gap in the cell ranges.
    const std::vector<ShardRun> missing{shards[0], shards[2]};
    expect_throws_with([&] { (void)merge_shards(missing); }, "gap");
  }
  {
    // Overlap: the same shard twice.
    const std::vector<ShardRun> twice{shards[0], shards[0], shards[1],
                                      shards[2]};
    expect_throws_with([&] { (void)merge_shards(twice); }, "overlap");
  }
  {
    // A shard whose partition changed a cell seed.
    auto broken = shards;
    broken[1].manifest.cell_seeds[0] ^= 1;
    expect_throws_with([&] { (void)merge_shards(broken); }, "cell seed");
  }
  {
    std::vector<ShardRun> none;
    expect_throws_with([&] { (void)merge_shards(none); }, "no shards");
  }
}

TEST(ShardMerge, CsvMergeRejectsTamperedArtifacts) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const SweepOptions options{.trials = 150, .seed = 23, .threads = 1};
  std::vector<ShardArtifact> artifacts;
  for (std::size_t index = 0; index < 2; ++index) {
    artifacts.push_back(artifact_of(run_sweep_shard(
        cells, {.shard_count = 2, .shard_index = index}, options)));
  }
  {
    std::ostringstream out;
    EXPECT_NO_THROW(merge_shard_csvs(out, artifacts));
  }
  {
    auto broken = artifacts;
    broken[0].csv.rows.pop_back();
    broken[0].csv.row_seeds.pop_back();
    std::ostringstream out;
    expect_throws_with([&] { merge_shard_csvs(out, broken); }, "rows");
  }
  {
    auto broken = artifacts;
    broken[1].csv.header += ",extra";
    std::ostringstream out;
    expect_throws_with([&] { merge_shard_csvs(out, broken); }, "header");
  }
  {
    auto broken = artifacts;
    broken[1].csv.row_seeds[0] ^= 1;
    std::ostringstream out;
    expect_throws_with([&] { merge_shard_csvs(out, broken); }, "cell_seed");
  }
}

TEST(ShardMerge, PartialMergeReportsMissingRangesAndKeepsPresentRows) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const SweepOptions options{.trials = 150, .seed = 31, .threads = 1};
  std::vector<ShardArtifact> artifacts;  // 3 shards of 2 cells each
  for (std::size_t index = 0; index < 3; ++index) {
    artifacts.push_back(artifact_of(run_sweep_shard(
        cells, {.shard_count = 3, .shard_index = index}, options)));
  }
  std::ostringstream full;
  merge_shard_csvs(full, artifacts);

  {
    // All present: the partial merge degenerates to the strict one.
    std::ostringstream out;
    const auto report = merge_shard_csvs_partial(out, artifacts);
    EXPECT_EQ(out.str(), full.str());
    EXPECT_EQ(report.total_cells, cells.size());
    EXPECT_EQ(report.present_cells, cells.size());
    EXPECT_TRUE(report.missing.empty());
  }
  {
    // Drop the middle shard: one interior gap, and the output equals
    // the full merge with exactly that shard's rows deleted.
    const std::vector<ShardArtifact> gappy{artifacts[0], artifacts[2]};
    std::ostringstream out;
    const auto report = merge_shard_csvs_partial(out, gappy);
    ASSERT_EQ(report.missing.size(), 1u);
    EXPECT_EQ(report.missing[0].begin, artifacts[1].manifest.cell_begin);
    EXPECT_EQ(report.missing[0].end, artifacts[1].manifest.cell_end);
    EXPECT_EQ(report.present_cells, cells.size() - 2);
    std::string expected = full.str();
    for (const auto& row : artifacts[1].csv.rows) {
      const auto at = expected.find(row + "\n");
      ASSERT_NE(at, std::string::npos);
      expected.erase(at, row.size() + 1);
    }
    EXPECT_EQ(out.str(), expected);
  }
  {
    // Leading and trailing gaps are both reported.
    const std::vector<ShardArtifact> middle_only{artifacts[1]};
    std::ostringstream out;
    const auto report = merge_shard_csvs_partial(out, middle_only);
    ASSERT_EQ(report.missing.size(), 2u);
    EXPECT_EQ(report.missing[0].begin, 0u);
    EXPECT_EQ(report.missing[0].end, artifacts[1].manifest.cell_begin);
    EXPECT_EQ(report.missing[1].begin, artifacts[1].manifest.cell_end);
    EXPECT_EQ(report.missing[1].end, cells.size());
    EXPECT_EQ(report.grid_hash, artifacts[1].manifest.grid_hash);
  }
  {
    // Gaps are forgiven; overlaps and identity mismatches are not.
    const std::vector<ShardArtifact> twice{artifacts[0], artifacts[0]};
    std::ostringstream out;
    expect_throws_with(
        [&] { (void)merge_shard_csvs_partial(out, twice); }, "overlap");
    auto broken = artifacts;
    broken[1].manifest.master_seed ^= 1;
    expect_throws_with(
        [&] { (void)merge_shard_csvs_partial(out, broken); }, "master seed");
  }
}

TEST(ShardMerge, PartialMergeReportSerializesAsMachineReadableJson) {
  const PartialMergeReport report{.grid_hash = 0xabc123,
                                  .total_cells = 10,
                                  .present_cells = 6,
                                  .missing = {{.begin = 2, .end = 4},
                                              {.begin = 8, .end = 10}}};
  std::ostringstream out;
  write_partial_merge_report(out, report);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"format\": \"crp-partial-merge-v1\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"grid_hash\": \"0xabc123\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"total_cells\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"present_cells\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("[[2, 4], [8, 10]]"), std::string::npos) << json;
}

TEST(ShardCsvRead, ValidatesNumericColumnsAndToleratesQuotes) {
  // A quoted, comma-bearing algorithm name must parse, and the parsed
  // cell_seed must come out of the quoted row intact.
  const std::string header =
      "algorithm,sizes,budget,trials,cell_seed,mean,ci95,p50,p90,p99,"
      "success_rate";
  {
    std::istringstream in(header +
                          "\n\"decay, fast\",uniform,4096,100,42,1.5,0.1,"
                          "1.0,2.0,3.0,1.0\n");
    const ShardCsv csv = read_shard_csv(in);
    ASSERT_EQ(csv.rows.size(), 1u);
    EXPECT_EQ(csv.row_seeds[0], 42u);
  }
  {
    std::istringstream in(header +
                          "\ndecay,uniform,4096,100,42,nan,0.1,1.0,2.0,"
                          "3.0,1.0\n");
    expect_throws_with([&] { (void)read_shard_csv(in); }, "non-finite");
  }
  {
    std::istringstream in(header +
                          "\ndecay,uniform,4096,100,-42,1.5,0.1,1.0,2.0,"
                          "3.0,1.0\n");
    expect_throws_with([&] { (void)read_shard_csv(in); }, "cell_seed");
  }
  {
    std::istringstream in("algorithm,sizes\ndecay,uniform\n");
    expect_throws_with([&] { (void)read_shard_csv(in); }, "cell_seed");
  }
  {
    std::istringstream in(header + "\ndecay,uniform,4096\n");
    expect_throws_with([&] { (void)read_shard_csv(in); }, "fields");
  }
}

}  // namespace
}  // namespace crp::harness
