// Focused tests for the CodedSearchPolicy replay state machine: the
// class-visiting order across passes, including the subtle rule that
// zero-predicted-mass classes are searched on every fourth pass only
// (pass 0 included) — the property that keeps the algorithm both fast
// under good predictions and correct under infinitely-diverged ones.
#include "core/coded_search.h"

#include <cmath>

#include <gtest/gtest.h>

#include "info/distribution.h"
#include "predict/families.h"

namespace crp::core {
namespace {

/// Drives the policy with an all-silence history and records the range
/// probed in each round. Silence always shrinks the search window, so
/// the probe sequence deterministically walks the class schedule.
std::vector<std::size_t> silent_probe_sequence(
    const CodedSearchPolicy& policy, std::size_t rounds) {
  std::vector<std::size_t> probes;
  channel::BitString history;
  for (std::size_t r = 0; r < rounds; ++r) {
    const double p = policy.probability(history);
    probes.push_back(static_cast<std::size_t>(
        std::llround(-std::log2(p))));
    history.push_back(false);  // silence
  }
  return probes;
}

TEST(CodedSearchReplay, SteeringFeedbackReachesEveryTargetInPassZero) {
  // A probe below the target collides (probability too high for k),
  // above it stays silent. Under that ideal steering, every range —
  // zero predicted mass or not — must be probed within the first pass,
  // which is what makes infinitely-diverged predictions survivable.
  const auto prediction = info::CondensedDistribution::point_mass(6, 3);
  const CodedSearchPolicy policy(prediction);
  ASSERT_EQ(policy.classes().front(), (std::vector<std::size_t>{3}));
  for (std::size_t target = 1; target <= 6; ++target) {
    channel::BitString history;
    bool reached = false;
    for (std::size_t round = 0; round < 4 * policy.pass_length();
         ++round) {
      const auto probe = static_cast<std::size_t>(
          std::llround(-std::log2(policy.probability(history))));
      if (probe == target) {
        reached = true;
        break;
      }
      history.push_back(probe < target);  // collision iff probe small
    }
    EXPECT_TRUE(reached) << "target " << target;
  }
}

TEST(CodedSearchReplay, ZeroMassClassesSkippedOnPassesOneToThree) {
  const auto prediction = info::CondensedDistribution::point_mass(6, 3);
  const CodedSearchPolicy policy(prediction);
  const auto probes = silent_probe_sequence(policy, 60);
  // Locate the pass boundaries: a probe of range 3 starts each pass
  // (class 0 = {3} and a singleton class is exhausted after one probe).
  std::vector<std::size_t> pass_starts;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (probes[i] == 3) pass_starts.push_back(i);
  }
  ASSERT_GE(pass_starts.size(), 5u);
  // Pass 0 is long (visits all zero classes); passes 1-3 are exactly
  // one probe long (zero classes skipped); pass 4 is long again.
  const std::size_t pass0_len = pass_starts[1] - pass_starts[0];
  const std::size_t pass1_len = pass_starts[2] - pass_starts[1];
  const std::size_t pass2_len = pass_starts[3] - pass_starts[2];
  EXPECT_GT(pass0_len, 1u);
  EXPECT_EQ(pass1_len, 1u);
  EXPECT_EQ(pass2_len, 1u);
  const std::size_t pass3_start = pass_starts[3];
  const std::size_t pass4_start = pass_starts[4];
  EXPECT_EQ(pass4_start - pass3_start, 1u);  // pass 3 also short
  // Pass 4 (index 4 % 4 == 0) revisits the zero classes.
  ASSERT_GE(pass_starts.size(), 6u);
  EXPECT_GT(pass_starts[5] - pass_starts[4], 1u);
}

TEST(CodedSearchReplay, AllPositiveMassPredictionNeverSkips) {
  const auto prediction = crp::predict::uniform_over_ranges(8, 8);
  const CodedSearchPolicy policy(prediction);
  // Single class of 8 ranges, every pass identical: under all-silence
  // the binary search halves down in ceil(log2 8) + 1 = 4 probes, then
  // restarts at the median.
  const auto probes = silent_probe_sequence(policy, 12);
  EXPECT_EQ(probes[0], probes[4]);
  EXPECT_EQ(probes[1], probes[5]);
  // Probes within a pass strictly decrease (silence -> smaller ranges).
  EXPECT_GT(probes[0], probes[1]);
  EXPECT_GT(probes[1], probes[2]);
}

TEST(CodedSearchReplay, CollisionSteersToLargerRanges) {
  const auto prediction = crp::predict::uniform_over_ranges(8, 8);
  const CodedSearchPolicy policy(prediction);
  const double first = policy.probability({});
  const double after_collision = policy.probability({true});
  const double after_silence = policy.probability({false});
  // Collision -> larger range -> smaller probability; silence -> the
  // opposite.
  EXPECT_LT(after_collision, first);
  EXPECT_GT(after_silence, first);
}

TEST(CodedSearchReplay, ProbeProbabilitiesAreAlwaysPowersOfTwo) {
  const auto prediction =
      crp::predict::geometric_ranges(10, 0.4);
  const CodedSearchPolicy policy(prediction);
  channel::BitString history;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 300; ++i) {
    const double p = policy.probability(history);
    const double log2p = -std::log2(p);
    EXPECT_NEAR(log2p, std::round(log2p), 1e-12);
    EXPECT_GE(log2p, 1.0);
    EXPECT_LE(log2p, 10.0);
    history.push_back((rng() & 1) != 0);
  }
}

}  // namespace
}  // namespace crp::core
