// The columnar engine layer (channel/engine.h) vs the scalar paths it
// replaced:
//  * for each of the three no-CD engines (and the CD adapter), the
//    measure_* helpers driven through blocks must produce a
//    Measurement IDENTICAL to the scalar per-trial loop at a fixed
//    seed — same streams, same draw order, same fold;
//  * the block partition must be invisible: any thread count, and any
//    trial count relative to the block size, gives identical results;
//  * regression: the compatibility shims preserve PR 1's published
//    fixed-seed statistics (golden values captured from the PR 1
//    binary before the refactor).
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "channel/batch.h"
#include "channel/engine.h"
#include "channel/rng.h"
#include "channel/simulator.h"
#include "core/advice_deterministic.h"
#include "core/likelihood_schedule.h"
#include "harness/measure.h"
#include "harness/parallel.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp::harness {
namespace {

void expect_identical(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.samples, b.samples);  // element-wise, in trial order
  EXPECT_TRUE(a.histogram == b.histogram);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.rounds.mean, b.rounds.mean);
  EXPECT_EQ(a.rounds.p50, b.rounds.p50);
  EXPECT_EQ(a.rounds.p90, b.rounds.p90);
  EXPECT_EQ(a.rounds.p99, b.rounds.p99);
  EXPECT_EQ(a.rounds.max, b.rounds.max);
}

info::SizeDistribution table1_sizes(std::size_t n) {
  const auto condensed =
      predict::uniform_over_ranges(info::num_ranges(n), 6);
  return predict::lift(condensed, n,
                       predict::RangePlacement::kHighEndpoint);
}

TEST(ColumnarEngine, BatchMatchesScalarSamplerLoop) {
  // Scalar reference: the PR 1 batch measurement loop — one SplitMix64
  // stream per trial, one draw for k, one for the solve round.
  constexpr std::size_t n = 1 << 12;
  constexpr std::size_t kTrials = 5000;
  constexpr std::uint64_t kSeed = 404;
  const auto actual = table1_sizes(n);
  const auto condensed = actual.condense();
  const core::LikelihoodOrderedSchedule schedule(condensed);

  const channel::BatchNoCdSampler sampler(schedule);
  std::vector<channel::RunResult> runs(kTrials);
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = channel::derive_fast_rng(kSeed, t);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    const std::size_t k = actual.sample_at(unit(rng));
    runs[t] = sampler.sample(k, rng, 1 << 14);
  }
  const auto scalar = measurement_from_runs(runs);

  const auto columnar = measure_uniform_no_cd(
      schedule, actual, kTrials, kSeed,
      MeasureOptions{.max_rounds = 1 << 14,
                     .threads = 1,
                     .engine = NoCdEngine::kBatch,
                     .keep_samples = true});
  expect_identical(scalar, columnar);
}

TEST(ColumnarEngine, BinomialMatchesScalarTrialLoop) {
  constexpr std::size_t n = 1 << 10;
  constexpr std::size_t kTrials = 3000;
  constexpr std::uint64_t kSeed = 405;
  const auto actual = table1_sizes(n);
  const baselines::DecaySchedule decay(n);

  const auto scalar = measure(
      [&](std::size_t, std::mt19937_64& rng) {
        const std::size_t k = actual.sample(rng);
        return channel::run_uniform_no_cd(decay, k, rng,
                                          {.max_rounds = 1 << 14});
      },
      kTrials, kSeed);
  const auto columnar = measure_uniform_no_cd(
      decay, actual, kTrials, kSeed,
      MeasureOptions{.max_rounds = 1 << 14,
                     .threads = 1,
                     .engine = NoCdEngine::kBinomial,
                     .keep_samples = true});
  expect_identical(scalar, columnar);
}

TEST(ColumnarEngine, PerPlayerMatchesScalarTrialLoop) {
  constexpr std::size_t n = 1 << 8;
  constexpr std::size_t kTrials = 1500;
  constexpr std::uint64_t kSeed = 406;
  const baselines::DecaySchedule decay(n);

  const auto scalar = measure(
      [&](std::size_t, std::mt19937_64& rng) {
        return channel::run_uniform_no_cd_per_player(
            decay, 50, rng, {.max_rounds = 1 << 14});
      },
      kTrials, kSeed);
  const auto columnar = measure_uniform_no_cd_fixed_k(
      decay, 50, kTrials, kSeed,
      MeasureOptions{.max_rounds = 1 << 14,
                     .threads = 1,
                     .engine = NoCdEngine::kPerPlayer,
                     .keep_samples = true});
  expect_identical(scalar, columnar);
}

TEST(ColumnarEngine, CdAdapterMatchesScalarTrialLoop) {
  constexpr std::size_t n = 1 << 10;
  constexpr std::size_t kTrials = 2000;
  constexpr std::uint64_t kSeed = 407;
  const auto actual = table1_sizes(n);
  const baselines::WillardPolicy willard(n);

  const auto scalar = measure(
      [&](std::size_t, std::mt19937_64& rng) {
        const std::size_t k = actual.sample(rng);
        return channel::run_uniform_cd(willard, k, rng,
                                       {.max_rounds = 1 << 12});
      },
      kTrials, kSeed);
  const auto columnar = measure_uniform_cd(
      willard, actual, kTrials, kSeed,
      MeasureOptions{
          .max_rounds = 1 << 12, .threads = 1, .keep_samples = true});
  expect_identical(scalar, columnar);
}

TEST(ColumnarEngine, BlockPartitionIsInvisible) {
  // Trial counts straddling the block size, at several thread counts:
  // all must agree with the single-thread run (which itself visits
  // blocks in order).
  const baselines::DecaySchedule decay(1 << 10);
  const auto actual = table1_sizes(1 << 10);
  for (const std::size_t trials :
       {kTrialBlockSize - 1, kTrialBlockSize, 3 * kTrialBlockSize + 17}) {
    const MeasureOptions serial{
        .max_rounds = 1 << 14, .threads = 1, .keep_samples = true};
    const auto reference =
        measure_uniform_no_cd(decay, actual, trials, 99, serial);
    for (const std::size_t threads : {2ul, 8ul}) {
      MeasureOptions pooled = serial;
      pooled.threads = threads;
      expect_identical(
          reference,
          measure_uniform_no_cd(decay, actual, trials, 99, pooled));
    }
  }
}

TEST(ColumnarEngine, CustomEngineThroughMeasureBlocks) {
  // measure_blocks is a public extension point: a custom engine only
  // fills columns, and the fold sees trials in order.
  class EveryThirdSolves final : public channel::Engine {
   public:
    void run_many(channel::TrialBlock& block) const override {
      for (std::size_t t = 0; t < block.size(); ++t) {
        const std::size_t global = block.first_trial + t;
        block.solved[t] = global % 3 == 0 ? 1 : 0;
        block.rounds[t] = global % 3 == 0 ? global + 1 : block.max_rounds;
      }
    }
  };
  const EveryThirdSolves engine;
  const auto m =
      measure_blocks(engine, channel::SizeSource{nullptr, 2}, 10, 0,
                     MeasureOptions{.threads = 1, .keep_samples = true});
  EXPECT_EQ(m.trials, 10u);
  EXPECT_DOUBLE_EQ(m.success_rate, 0.4);
  ASSERT_EQ(m.samples.size(), 4u);
  EXPECT_EQ(m.samples.front(), 1.0);
  EXPECT_EQ(m.samples.back(), 10.0);
}

TEST(ColumnarEngine, RejectsDegenerateBlocks) {
  const baselines::DecaySchedule decay(256);
  const channel::BatchColumnarEngine engine(decay);
  EXPECT_THROW(measure_blocks(engine, channel::SizeSource{nullptr, 0}, 10,
                              0, MeasureOptions{}),
               std::invalid_argument);
}

// ---- PR 1 golden statistics --------------------------------------
//
// Captured from the PR 1 binary (scalar measurement stack) at fixed
// seeds before the columnar refactor. The compatibility shims must
// keep reproducing them bit for bit: every engine derives the same
// per-trial streams and consumes draws in the same order as the
// scalar loops did. keep_samples selects the sample-retaining fold
// these goldens were captured from; the streaming fold reproduces the
// same count/mean/quantiles (tests/accumulator_test.cpp).

double sample_sum(const Measurement& m) {
  double sum = 0.0;
  for (const double s : m.samples) sum += s;
  return sum;
}

TEST(ColumnarEngine, GoldenBatchDrawnSizes) {
  constexpr std::size_t n = 1 << 12;
  const auto condensed =
      predict::uniform_over_ranges(info::num_ranges(n), 6);
  const auto actual =
      predict::lift(condensed, n, predict::RangePlacement::kHighEndpoint);
  const core::LikelihoodOrderedSchedule schedule(condensed);
  const auto m = measure_uniform_no_cd(
      schedule, actual, 4000, 2021,
      MeasureOptions{.max_rounds = 1 << 14,
                     .threads = 1,
                     .engine = NoCdEngine::kBatch,
                     .keep_samples = true});
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(m.rounds.mean, 6.3362499999999997);
  EXPECT_DOUBLE_EQ(m.rounds.p50, 4.0);
  EXPECT_DOUBLE_EQ(m.rounds.p90, 15.099999999999909);
  EXPECT_DOUBLE_EQ(m.rounds.max, 74.0);
  EXPECT_DOUBLE_EQ(sample_sum(m), 25345.0);
}

TEST(ColumnarEngine, GoldenBatchFixedK) {
  const baselines::DecaySchedule decay(1 << 12);
  const auto m = measure_uniform_no_cd_fixed_k(
      decay, 100, 4000, 2022,
      MeasureOptions{.max_rounds = 1 << 14,
                     .threads = 1,
                     .engine = NoCdEngine::kBatch,
                     .keep_samples = true});
  EXPECT_DOUBLE_EQ(m.rounds.mean, 10.655250000000001);
  EXPECT_DOUBLE_EQ(sample_sum(m), 42621.0);
}

TEST(ColumnarEngine, GoldenBinomialDrawnSizes) {
  constexpr std::size_t n = 1 << 12;
  const auto condensed =
      predict::uniform_over_ranges(info::num_ranges(n), 6);
  const auto actual =
      predict::lift(condensed, n, predict::RangePlacement::kHighEndpoint);
  const core::LikelihoodOrderedSchedule schedule(condensed);
  const auto m = measure_uniform_no_cd(
      schedule, actual, 2000, 2023,
      MeasureOptions{.max_rounds = 1 << 14,
                     .threads = 1,
                     .engine = NoCdEngine::kBinomial,
                     .keep_samples = true});
  EXPECT_DOUBLE_EQ(m.rounds.mean, 6.3685);
  EXPECT_DOUBLE_EQ(sample_sum(m), 12737.0);
}

TEST(ColumnarEngine, GoldenCdPaths) {
  constexpr std::size_t n = 1 << 12;
  const auto actual = table1_sizes(n);
  const baselines::WillardPolicy willard(n);
  const MeasureOptions options{
      .max_rounds = 1 << 14, .threads = 1, .keep_samples = true};
  const auto drawn =
      measure_uniform_cd(willard, actual, 2000, 2025, options);
  EXPECT_DOUBLE_EQ(drawn.rounds.mean, 4.1935000000000002);
  EXPECT_DOUBLE_EQ(sample_sum(drawn), 8387.0);
  const auto fixed =
      measure_uniform_cd_fixed_k(willard, 60, 2000, 2026, options);
  EXPECT_DOUBLE_EQ(fixed.rounds.mean, 4.2394999999999996);
  EXPECT_DOUBLE_EQ(sample_sum(fixed), 8479.0);
}

TEST(ColumnarEngine, GoldenDeterministicAdvice) {
  constexpr std::size_t n = 1 << 8;
  const core::SubtreeScanProtocol scan(n, 3);
  const core::MinIdPrefixAdvice advice(n, 3);
  const auto sizes = info::SizeDistribution::uniform(32);
  const auto m = measure_deterministic_advice(
      scan, advice, sizes, n, false, 1000, 2027,
      MeasureOptions{
          .max_rounds = 8 << 8, .threads = 1, .keep_samples = true});
  EXPECT_DOUBLE_EQ(m.rounds.mean, 11.145);
  EXPECT_DOUBLE_EQ(sample_sum(m), 11145.0);

  const double wc = worst_case_deterministic_rounds(scan, advice, n, 4,
                                                    false, 200, 2028,
                                                    8 << 8);
  EXPECT_DOUBLE_EQ(wc, 32.0);
}

}  // namespace
}  // namespace crp::harness
