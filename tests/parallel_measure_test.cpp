// Determinism of the thread-pool harness: measure_parallel must
// reproduce the serial measure() bit for bit at every thread count,
// for synthetic trials and for real workloads (including the batch
// engine, whose lazily built tables are shared across workers).
#include <stdexcept>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "channel/batch.h"
#include "channel/rng.h"
#include "core/advice_deterministic.h"
#include "harness/measure.h"
#include "harness/parallel.h"
#include "info/distribution.h"

namespace crp::harness {
namespace {

void expect_identical(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.samples, b.samples);  // element-wise, in trial order
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.rounds.count, b.rounds.count);
  EXPECT_EQ(a.rounds.mean, b.rounds.mean);
  EXPECT_EQ(a.rounds.stddev, b.rounds.stddev);
  EXPECT_EQ(a.rounds.p50, b.rounds.p50);
  EXPECT_EQ(a.rounds.p90, b.rounds.p90);
  EXPECT_EQ(a.rounds.p99, b.rounds.p99);
  EXPECT_EQ(a.rounds.min, b.rounds.min);
  EXPECT_EQ(a.rounds.max, b.rounds.max);
}

TEST(MeasureParallel, BitIdenticalToSerialAtEveryThreadCount) {
  const Trial trial = [](std::size_t, std::mt19937_64& rng) {
    std::uniform_int_distribution<std::size_t> rounds(1, 500);
    const std::size_t r = rounds(rng);
    return channel::RunResult{r % 7 != 0, r, std::nullopt};
  };
  const auto serial = measure(trial, 3001, 42);
  for (std::size_t threads : {1ul, 2ul, 8ul}) {
    expect_identical(serial, measure_parallel(trial, 3001, 42, threads));
  }
}

TEST(MeasureParallel, BatchEngineTrialsAreThreadCountInvariant) {
  // The sampler's schedule and per-k tables are built lazily by
  // whichever worker gets there first; results must not depend on the
  // race outcome.
  const baselines::DecaySchedule decay(1 << 10);
  const channel::BatchNoCdSampler sampler(decay);
  const auto sizes = info::SizeDistribution::uniform(1 << 10);
  const Trial trial = [&](std::size_t, std::mt19937_64& rng) {
    const std::size_t k = sizes.sample(rng);
    return sampler.sample(k, rng, {.max_rounds = 1 << 14});
  };
  const auto serial = measure(trial, 4000, 7);
  for (std::size_t threads : {2ul, 8ul}) {
    expect_identical(serial, measure_parallel(trial, 4000, 7, threads));
  }
}

TEST(MeasureParallel, MeasureHelpersMatchSerialHelpers) {
  const baselines::DecaySchedule decay(1 << 10);
  for (const auto engine :
       {NoCdEngine::kBinomial, NoCdEngine::kBatch, NoCdEngine::kPerPlayer}) {
    MeasureOptions serial_options{.max_rounds = 1 << 14, .threads = 1};
    serial_options.engine = engine;
    auto pooled_options = serial_options;
    pooled_options.threads = 8;
    const auto serial = measure_uniform_no_cd_fixed_k(decay, 200, 2500, 97,
                                                      serial_options);
    const auto pooled = measure_uniform_no_cd_fixed_k(decay, 200, 2500, 97,
                                                      pooled_options);
    expect_identical(serial, pooled);
  }
}

TEST(MeasureParallel, DeterministicAdviceMatchesLegacySerialPath) {
  constexpr std::size_t n = 1 << 8;
  constexpr std::size_t b = 3;
  const core::SubtreeScanProtocol scan(n, b);
  const core::MinIdPrefixAdvice advice(n, b);
  const auto sizes = info::SizeDistribution::uniform(32);
  const auto legacy = measure_deterministic_advice(scan, advice, sizes, n,
                                                   false, 800, 5, 8 * n);
  // keep_samples matches the legacy fold (the plain-max_rounds entry
  // points always retain samples).
  const auto pooled = measure_deterministic_advice(
      scan, advice, sizes, n, false, 800, 5,
      MeasureOptions{.max_rounds = 8 * n, .threads = 8,
                     .keep_samples = true});
  expect_identical(legacy, pooled);
}

TEST(MeasureParallel, HandlesDegenerateTrialCounts) {
  const Trial trial = [](std::size_t, std::mt19937_64&) {
    return channel::RunResult{true, 1, std::nullopt};
  };
  const auto none = measure_parallel(trial, 0, 1, 8);
  EXPECT_EQ(none.trials, 0u);
  EXPECT_EQ(none.samples.size(), 0u);
  const auto one = measure_parallel(trial, 1, 1, 8);
  EXPECT_EQ(one.trials, 1u);
  EXPECT_EQ(one.samples.size(), 1u);
}

TEST(MeasureParallel, PropagatesTrialExceptions) {
  const Trial trial = [](std::size_t t, std::mt19937_64&) {
    if (t == 1234) throw std::runtime_error("boom");
    return channel::RunResult{true, 1, std::nullopt};
  };
  EXPECT_THROW(measure_parallel(trial, 3000, 1, 4), std::runtime_error);
}

}  // namespace
}  // namespace crp::harness
