#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "channel/rng.h"
#include "harness/fit.h"
#include "harness/measure.h"
#include "harness/stats.h"
#include "harness/table.h"

namespace crp::harness {
namespace {

TEST(Stats, SummarizesKnownSamples) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto stats = summarize(samples);
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.p50, 3.0);
}

TEST(Stats, EmptyInputYieldsZeros) {
  const auto stats = summarize(std::vector<double>{});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> samples{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0), 10.0);
  EXPECT_THROW(percentile(samples, 1.5), std::invalid_argument);
}

TEST(Measure, CountsFailuresAndSuccesses) {
  // Trials alternate: even indices solve in 3 rounds, odd never solve.
  const auto m = measure(
      [](std::size_t t, std::mt19937_64&) {
        return channel::RunResult{t % 2 == 0, t % 2 == 0 ? 3u : 100u,
                                  std::nullopt};
      },
      100, /*seed=*/1);
  EXPECT_DOUBLE_EQ(m.success_rate, 0.5);
  EXPECT_EQ(m.rounds.count, 50u);
  EXPECT_DOUBLE_EQ(m.rounds.mean, 3.0);
  EXPECT_DOUBLE_EQ(m.solved_within(3.0), 0.5);
  EXPECT_DOUBLE_EQ(m.solved_within(2.0), 0.0);
}

TEST(Measure, IsReproducibleAcrossCalls) {
  const Trial trial = [](std::size_t, std::mt19937_64& rng) {
    std::uniform_int_distribution<std::size_t> rounds(1, 100);
    return channel::RunResult{true, rounds(rng), std::nullopt};
  };
  const auto a = measure(trial, 500, 42);
  const auto b = measure(trial, 500, 42);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(RandomParticipantSet, CorrectSizeAndDistinctIds) {
  auto rng = channel::make_rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const auto set = random_participant_set(50, 20, rng);
    EXPECT_EQ(set.size(), 20u);
    auto sorted = set;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
    EXPECT_LT(sorted.back(), 50u);
  }
  EXPECT_THROW(random_participant_set(5, 6, rng), std::invalid_argument);
}

TEST(RandomParticipantSet, IsApproximatelyUniform) {
  auto rng = channel::make_rng(10);
  std::vector<std::size_t> hits(10, 0);
  constexpr std::size_t kTrials = 20000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    for (std::size_t id : random_participant_set(10, 3, rng)) ++hits[id];
  }
  for (std::size_t id = 0; id < 10; ++id) {
    EXPECT_NEAR(static_cast<double>(hits[id]) / kTrials, 0.3, 0.02);
  }
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "many", "cells"}),
               std::invalid_argument);
}

TEST(Fmt, FormatsNumbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(std::size_t{42}), "42");
}

TEST(Fit, RecoversExactLinearRelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Fit, OriginFitRecoversSlope) {
  const std::vector<double> x{1.0, 2.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 8.0};
  const auto fit = fit_through_origin(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Fit, PearsonAndSpearmanAgreeOnMonotoneLinearData) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Fit, SpearmanSeesThroughNonlinearMonotonicity) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp2(v));
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Fit, ValidatesInput) {
  const std::vector<double> x{1.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW((void)fit_linear(x, y), std::invalid_argument);
  const std::vector<double> flat{1.0, 1.0};
  const std::vector<double> any{1.0, 2.0};
  EXPECT_THROW((void)pearson(flat, any), std::invalid_argument);
}

}  // namespace
}  // namespace crp::harness
