#include "baselines/aloha.h"

#include <cmath>

#include <gtest/gtest.h>

#include "channel/rng.h"
#include "harness/measure.h"

namespace crp::baselines {
namespace {

TEST(SlottedAloha, SinglePlayerAlwaysWinsItsSlot) {
  auto rng = channel::make_rng(1);
  for (int t = 0; t < 100; ++t) {
    const auto result = run_slotted_aloha(1, 8, rng, {.max_rounds = 64});
    ASSERT_TRUE(result.solved);
    EXPECT_LE(result.rounds, 8u);
    EXPECT_EQ(result.transmissions, 1u);
  }
}

TEST(SlottedAloha, ValidatesArguments) {
  auto rng = channel::make_rng(2);
  EXPECT_THROW(run_slotted_aloha(0, 8, rng), std::invalid_argument);
  EXPECT_THROW(run_slotted_aloha(4, 0, rng), std::invalid_argument);
  EXPECT_THROW(run_backoff_aloha(0, 1, 8, rng), std::invalid_argument);
  EXPECT_THROW(run_backoff_aloha(4, 0, 8, rng), std::invalid_argument);
  EXPECT_THROW(run_backoff_aloha(4, 16, 8, rng), std::invalid_argument);
}

TEST(SlottedAloha, RespectsRoundBudget) {
  auto rng = channel::make_rng(3);
  // Window 1 with 2 players collides every slot: never solves.
  const auto result = run_slotted_aloha(2, 1, rng, {.max_rounds = 25});
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.rounds, 25u);
  EXPECT_EQ(result.transmissions, 50u);
}

TEST(SlottedAloha, TunedWindowSolvesInConstantRounds) {
  // Each slot of a W = k window holds ~Binomial(k, 1/k) transmitters,
  // so the first singleton slot arrives after ~e slots in expectation —
  // tuned ALOHA matches the fixed 1/k strategy, independent of k.
  for (std::size_t k : {8ul, 32ul, 256ul}) {
    const auto m = harness::measure(
        [k](std::size_t, std::mt19937_64& rng) {
          return run_slotted_aloha(k, k, rng, {.max_rounds = 1 << 14});
        },
        4000, /*seed=*/5);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
    EXPECT_LT(m.rounds.mean, 6.0) << "k=" << k;
  }
}

TEST(SlottedAloha, BadlySizedWindowDegrades) {
  constexpr std::size_t k = 64;
  const auto tuned = harness::measure(
      [](std::size_t, std::mt19937_64& rng) {
        return run_slotted_aloha(k, 64, rng, {.max_rounds = 1 << 14});
      },
      2000, /*seed=*/7);
  const auto tiny = harness::measure(
      [](std::size_t, std::mt19937_64& rng) {
        return run_slotted_aloha(k, 4, rng, {.max_rounds = 1 << 14});
      },
      2000, /*seed=*/7);
  ASSERT_DOUBLE_EQ(tuned.success_rate, 1.0);
  // A 4-slot window with 64 players essentially never isolates one.
  EXPECT_LT(tiny.success_rate, 0.2);
}

TEST(BackoffAloha, SolvesWithoutSizeEstimate) {
  for (std::size_t k : {2ul, 30ul, 500ul}) {
    const auto m = harness::measure(
        [k](std::size_t, std::mt19937_64& rng) {
          return run_backoff_aloha(k, 1, 1 << 12, rng,
                                   {.max_rounds = 1 << 16});
        },
        2000, /*seed=*/11);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0) << "k=" << k;
    // Doubling reaches a window ~ k after log2(k) windows whose total
    // size is <= 4k, so rounds are O(k).
    EXPECT_LT(m.rounds.mean, 6.0 * static_cast<double>(k) + 8.0)
        << "k=" << k;
  }
}

TEST(BackoffAloha, TraceRecordsSlots) {
  channel::ExecutionTrace trace;
  auto rng = channel::make_rng(13);
  const auto result = run_backoff_aloha(3, 2, 64, rng,
                                        {.max_rounds = 1 << 10,
                                         .trace = &trace});
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(trace.size(), result.rounds);
  EXPECT_EQ(trace.back().feedback, channel::Feedback::kSuccess);
}

}  // namespace
}  // namespace crp::baselines
