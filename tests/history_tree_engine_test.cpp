// The history-tree CD sampler (channel/history_engine.h) vs the
// per-round simulation adapter it accelerates:
//  * the shared expansion must agree with exact_profile_cd exactly
//    (same enumeration, so bit-equal marginals);
//  * sampled measurements must be thread-count and block-partition
//    invariant, and statistically indistinguishable from the simulated
//    CD path (same distribution, different randomness consumption);
//  * the depth-cap / pruned-branch fallback (hybrid walk) and the
//    node-cap simulation fallback must stay deterministic;
//  * golden fixed-seed statistics pin the engine's streams so draw-
//    order changes are caught deliberately.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/willard.h"
#include "channel/history_engine.h"
#include "channel/rng.h"
#include "harness/exact.h"
#include "harness/history_tree.h"
#include "harness/measure.h"
#include "harness/parallel.h"
#include "harness/sweep.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp::harness {
namespace {

using channel::HistoryTreeEngine;

void expect_identical(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.samples, b.samples);
  // Element-wise distribution equality even on the streaming path
  // (where samples are empty on both sides).
  EXPECT_TRUE(a.histogram == b.histogram);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.rounds.mean, b.rounds.mean);
  EXPECT_EQ(a.rounds.max, b.rounds.max);
}

double sample_sum(const Measurement& m) {
  double sum = 0.0;
  for (const double s : m.samples) sum += s;
  return sum;
}

info::SizeDistribution table1_sizes(std::size_t n) {
  const auto condensed =
      predict::uniform_over_ranges(info::num_ranges(n), 6);
  return predict::lift(condensed, n,
                       predict::RangePlacement::kHighEndpoint);
}

/// A constant-probability CD policy (ignores the history).
class ConstantPolicy final : public channel::CollisionPolicy {
 public:
  explicit ConstantPolicy(double p) : p_(p) {}
  double probability(const channel::BitString&) const override { return p_; }
  std::string name() const override { return "constant"; }

 private:
  double p_;
};

TEST(HistoryTreeEngine, MarginalsAgreeWithExactProfileExactly) {
  const baselines::WillardPolicy willard(1 << 16);
  const HistoryTreeEngine engine(willard);
  for (std::size_t k : {2ul, 60ul, 2500ul}) {
    const auto [tree, mode] = engine.tree_for(k, 1 << 12);
    ASSERT_NE(tree, nullptr);
    EXPECT_FALSE(tree->truncated);
    // Same enumeration, same options => bit-equal solve marginals.
    const auto profile =
        exact_profile_cd(willard, k, tree->horizon, tree->prune_below);
    ASSERT_EQ(profile.solve_by.size(), tree->horizon + 1);
    for (std::size_t r = 0; r < tree->horizon; ++r) {
      EXPECT_DOUBLE_EQ(profile.solve_by[r + 1], tree->solve_cdf[r])
          << "k=" << k << " r=" << r;
    }
    EXPECT_EQ(mode, HistoryTreeEngine::Mode::kWalk);
  }
}

TEST(HistoryTreeEngine, CrossValidatesAgainstSimulatedPathFixedK) {
  const baselines::WillardPolicy willard(1 << 16);
  const MeasureOptions simulated{.max_rounds = 1 << 12, .threads = 1};
  MeasureOptions tree = simulated;
  tree.cd_engine = CdEngine::kHistoryTree;
  for (std::size_t k : {2ul, 60ul, 2500ul}) {
    const auto m_sim =
        measure_uniform_cd_fixed_k(willard, k, 20000, /*seed=*/7, simulated);
    const auto m_tree =
        measure_uniform_cd_fixed_k(willard, k, 20000, /*seed=*/7, tree);
    EXPECT_EQ(m_sim.trials, m_tree.trials);
    EXPECT_NEAR(m_sim.success_rate, m_tree.success_rate, 0.01) << "k=" << k;
    EXPECT_NEAR(m_sim.rounds.mean, m_tree.rounds.mean,
                4.0 * m_sim.rounds.ci95 + 0.01)
        << "k=" << k;
  }
}

TEST(HistoryTreeEngine, CrossValidatesAgainstSimulatedPathDrawnSizes) {
  const baselines::WillardPolicy willard(1 << 12);
  const auto actual = table1_sizes(1 << 12);
  const MeasureOptions simulated{.max_rounds = 1 << 12, .threads = 1};
  MeasureOptions tree = simulated;
  tree.cd_engine = CdEngine::kHistoryTree;
  const auto m_sim =
      measure_uniform_cd(willard, actual, 20000, /*seed=*/11, simulated);
  const auto m_tree =
      measure_uniform_cd(willard, actual, 20000, /*seed=*/11, tree);
  EXPECT_NEAR(m_sim.success_rate, m_tree.success_rate, 0.01);
  EXPECT_NEAR(m_sim.rounds.mean, m_tree.rounds.mean,
              4.0 * m_sim.rounds.ci95 + 0.01);
}

TEST(HistoryTreeEngine, ThreadCountAndBlockPartitionInvisible) {
  const baselines::WillardPolicy willard(1 << 12);
  const auto actual = table1_sizes(1 << 12);
  MeasureOptions options{.max_rounds = 1 << 12, .threads = 1};
  options.cd_engine = CdEngine::kHistoryTree;
  for (const std::size_t trials :
       {kTrialBlockSize - 1, 3 * kTrialBlockSize + 17}) {
    const auto reference =
        measure_uniform_cd(willard, actual, trials, 99, options);
    for (const std::size_t threads : {2ul, 8ul}) {
      MeasureOptions pooled = options;
      pooled.threads = threads;
      expect_identical(reference, measure_uniform_cd(willard, actual, trials,
                                                     99, pooled));
    }
  }
}

TEST(HistoryTreeEngine, InverseCdfModeForChainTrees) {
  // k = 1: collisions are impossible, so the history tree is a single
  // silence chain — it fits any depth cap with negligible leftover
  // mass and samples through the single inverse-CDF mode. The solve
  // round is Geometric(p).
  const ConstantPolicy half(0.5);
  const HistoryTreeEngine engine(half);
  const auto [tree, mode] = engine.tree_for(1, 1 << 12);
  EXPECT_EQ(mode, HistoryTreeEngine::Mode::kInverseCdf);
  ASSERT_GE(tree->horizon, 20u);
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(tree->solve_cdf[r],
                1.0 - std::exp2(-static_cast<double>(r + 1)), 1e-12);
  }
  MeasureOptions options{.max_rounds = 1 << 12, .threads = 1};
  options.cd_engine = CdEngine::kHistoryTree;
  const auto m = measure_uniform_cd_fixed_k(half, 1, 40000, 13, options);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  EXPECT_NEAR(m.rounds.mean, 2.0, 4.0 * m.rounds.ci95);
}

TEST(HistoryTreeEngine, NeverSolvingPolicyReportsUnsolved) {
  // p = 1 with k >= 2 collides forever: the tree is a collision chain
  // whose whole mass sits on the frontier. At a budget equal to the
  // expansion horizon that frontier is exactly "unsolved", so the
  // inverse-CDF mode applies and reports every trial unsolved at the
  // budget — matching the simulated path.
  const ConstantPolicy always(1.0);
  const HistoryTreeEngine engine(always);
  const auto [tree, mode] = engine.tree_for(2, 48);
  EXPECT_EQ(mode, HistoryTreeEngine::Mode::kInverseCdf);
  EXPECT_DOUBLE_EQ(tree->solved_mass(), 0.0);
  EXPECT_DOUBLE_EQ(tree->frontier_mass, 1.0);
  MeasureOptions options{.max_rounds = 48, .threads = 1};
  options.cd_engine = CdEngine::kHistoryTree;
  const auto m = measure_uniform_cd_fixed_k(always, 2, 500, 17, options);
  EXPECT_DOUBLE_EQ(m.success_rate, 0.0);
}

TEST(HistoryTreeEngine, DepthCapFallbackIsDeterministicAndCorrect) {
  // A cap far below the budget forces nearly every trial through the
  // hybrid path: walk the 4-round expansion, then continue on the
  // per-round simulation. Results must stay thread-count invariant and
  // keep the exact distribution.
  const baselines::WillardPolicy willard(1 << 16);
  HistoryTreeEngine::Options capped;
  capped.depth_cap = 4;
  const HistoryTreeEngine engine(willard, capped);
  const auto [tree, mode] = engine.tree_for(60, 1 << 12);
  EXPECT_EQ(mode, HistoryTreeEngine::Mode::kWalk);
  EXPECT_EQ(tree->horizon, 4u);

  const channel::SizeSource sizes{nullptr, 60};
  const MeasureOptions serial{.max_rounds = 1 << 12, .threads = 1};
  const auto reference = measure_blocks(engine, sizes, 20000, 23, serial);
  for (const std::size_t threads : {2ul, 8ul}) {
    MeasureOptions pooled = serial;
    pooled.threads = threads;
    expect_identical(reference,
                     measure_blocks(engine, sizes, 20000, 23, pooled));
  }
  const auto simulated =
      measure_uniform_cd_fixed_k(willard, 60, 20000, 23, serial);
  EXPECT_NEAR(reference.rounds.mean, simulated.rounds.mean,
              4.0 * simulated.rounds.ci95 + 0.01);
}

TEST(HistoryTreeEngine, NodeCapDelegatesToSimulation) {
  const baselines::WillardPolicy willard(1 << 16);
  HistoryTreeEngine::Options tiny;
  tiny.max_nodes = 100;
  const HistoryTreeEngine engine(willard, tiny);
  const auto [tree, mode] = engine.tree_for(2500, 1 << 12);
  EXPECT_TRUE(tree->truncated);
  EXPECT_EQ(mode, HistoryTreeEngine::Mode::kSimulate);

  const channel::SizeSource sizes{nullptr, 2500};
  const MeasureOptions serial{.max_rounds = 1 << 12, .threads = 1};
  const auto m = measure_blocks(engine, sizes, 20000, 29, serial);
  for (const std::size_t threads : {2ul, 8ul}) {
    MeasureOptions pooled = serial;
    pooled.threads = threads;
    expect_identical(m, measure_blocks(engine, sizes, 20000, 29, pooled));
  }
  const auto simulated =
      measure_uniform_cd_fixed_k(willard, 2500, 20000, 29, serial);
  EXPECT_NEAR(m.rounds.mean, simulated.rounds.mean,
              4.0 * simulated.rounds.ci95 + 0.01);
}

TEST(HistoryTreeEngine, SweepSchedulerUsesTheCdEngine) {
  // The cd_engine knob must reach CD cells through run_sweep: a one-
  // cell sweep equals the direct measurement under the cell's derived
  // seed.
  const baselines::WillardPolicy willard(1 << 12);
  SweepGrid grid;
  grid.add_cell({.algorithm = {.name = "willard", .policy = &willard},
                 .sizes = {.fixed_k = 60},
                 .max_rounds = 1 << 12});
  SweepOptions options;
  options.trials = 4000;
  options.seed = 31;
  options.threads = 1;
  options.cd_engine = CdEngine::kHistoryTree;
  const auto results = run_sweep(grid, options);
  ASSERT_EQ(results.size(), 1u);

  MeasureOptions direct{.max_rounds = 1 << 12, .threads = 1};
  direct.cd_engine = CdEngine::kHistoryTree;
  const auto expected = measure_uniform_cd_fixed_k(
      willard, 60, 4000, channel::derive_stream_seed(31, 0), direct);
  expect_identical(expected, results[0].measurement);
}

TEST(HistoryTreeEngine, SharedTreeCacheMeasuresIdentically) {
  // A HistoryTreeCache hands every caller of the same policy the same
  // engine (one expansion per (policy, k, horizon) for the whole
  // sweep), and cached measurements are bit-identical to per-call
  // engines.
  const baselines::WillardPolicy willard(1 << 12);
  const channel::HistoryTreeCache cache;
  const auto first = cache.engine_for(willard);
  const auto second = cache.engine_for(willard);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);

  MeasureOptions direct{.max_rounds = 1 << 12, .threads = 1};
  direct.cd_engine = CdEngine::kHistoryTree;
  MeasureOptions cached = direct;
  cached.tree_cache = &cache;
  expect_identical(measure_uniform_cd_fixed_k(willard, 60, 4000, 41, direct),
                   measure_uniform_cd_fixed_k(willard, 60, 4000, 41, cached));
  EXPECT_EQ(cache.size(), 1u);

  // Through the sweep scheduler: two cells share the policy, and the
  // sweep (which routes every CD cell through one cache) matches the
  // cache-less direct measurements cell by cell.
  SweepGrid grid;
  grid.add_cell({.algorithm = {.name = "willard", .policy = &willard},
                 .sizes = {.fixed_k = 60},
                 .max_rounds = 1 << 12});
  grid.add_cell({.algorithm = {.name = "willard", .policy = &willard},
                 .sizes = {.fixed_k = 2500},
                 .max_rounds = 1 << 12});
  SweepOptions sweep;
  sweep.trials = 2000;
  sweep.seed = 43;
  sweep.threads = 1;
  sweep.cd_engine = CdEngine::kHistoryTree;
  const auto results = run_sweep(grid, sweep);
  ASSERT_EQ(results.size(), 2u);
  expect_identical(
      results[0].measurement,
      measure_uniform_cd_fixed_k(willard, 60, 2000,
                                 channel::derive_stream_seed(43, 0), direct));
  expect_identical(
      results[1].measurement,
      measure_uniform_cd_fixed_k(willard, 2500, 2000,
                                 channel::derive_stream_seed(43, 1), direct));
}

// ---- golden fixed-seed statistics --------------------------------
//
// Captured from this engine at introduction time. Any change to the
// per-trial stream derivation, the draw order, or the expansion (prune
// threshold, depth cap, mode selection) shows up here deliberately.

TEST(HistoryTreeEngine, GoldenFixedSeedStatistics) {
  const baselines::WillardPolicy willard(1 << 16);
  MeasureOptions options{
      .max_rounds = 1 << 12, .threads = 1, .keep_samples = true};
  options.cd_engine = CdEngine::kHistoryTree;
  const auto fixed =
      measure_uniform_cd_fixed_k(willard, 60, 2000, 2025, options);
  EXPECT_DOUBLE_EQ(fixed.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(fixed.rounds.mean, 4.7539999999999996);
  EXPECT_DOUBLE_EQ(sample_sum(fixed), 9508.0);

  const auto actual = table1_sizes(1 << 12);
  const baselines::WillardPolicy small(1 << 12);
  const auto drawn = measure_uniform_cd(small, actual, 2000, 2026, options);
  EXPECT_DOUBLE_EQ(drawn.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(drawn.rounds.mean, 4.1965000000000003);
  EXPECT_DOUBLE_EQ(sample_sum(drawn), 8393.0);
}

}  // namespace
}  // namespace crp::harness
