#!/usr/bin/env python3
"""crp_shard's documented exit-code taxonomy, asserted end to end.

The codes are a stable contract for schedulers (see the header comment
of tools/crp_shard.cpp): 0 success, 1 internal, 2 usage, 3 validation,
4 I/O, 75 resumable interrupt. This test drives the real binary
through run / interrupt / resume / merge cycles — including a SIGTERM
mid-grid and deliberately corrupted artifacts — and checks both the
codes and that corruption errors name the offending file.

Also covers the declarative grid-spec surface: `plan` output (text and
--json) must describe exactly what `run --shard` executes, a
`--grid-spec` sweep of the checked-in examples/grids/table1.json must
be byte-identical to the compiled-in table1 grid (monolithic and
shard+merge), and spec validation/readability failures must exit 3/4
with the offending field and file named.

Usage: crp_shard_cli_test.py /path/to/crp_shard [/path/to/source/tree]
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

CRP_SHARD = sys.argv[1]
SOURCE_DIR = (sys.argv[2] if len(sys.argv) > 2
              else os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FAILURES = []


def run(*args, **kwargs):
    return subprocess.run(
        [CRP_SHARD, *args], capture_output=True, text=True, **kwargs
    )


def check(label, proc, code, stderr_contains=()):
    problems = []
    if proc.returncode != code:
        problems.append(f"exit {proc.returncode}, expected {code}")
    for needle in stderr_contains:
        if needle not in proc.stderr:
            problems.append(f"stderr lacks {needle!r}")
    if problems:
        FAILURES.append(f"{label}: {'; '.join(problems)}\n"
                        f"  stderr: {proc.stderr.strip()}")
        print(f"FAIL {label}: {'; '.join(problems)}")
    else:
        print(f"ok   {label}")


def flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x01]))


def fault_env(**variables):
    """os.environ plus CRP_FAULT_* (or other) overrides, stringified."""
    env = dict(os.environ)
    env.update({key: str(value) for key, value in variables.items()})
    return env


def wait_for(predicate, label, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    FAILURES.append(f"timed out waiting for {label}")
    return False


def journal_has_cell(path):
    try:
        with open(path, "rb") as handle:
            return b"\ncell " in b"\n" + handle.read()
    except FileNotFoundError:
        return False


GRID = ["--n", "4096", "--trials", "200", "--seed", "7"]

with tempfile.TemporaryDirectory() as tmp:
    mono = os.path.join(tmp, "mono.csv")
    shards = os.path.join(tmp, "shards")
    merged = os.path.join(tmp, "merged.csv")

    # --- usage errors: exit 2 ---
    check("unknown mode", run("frobnicate"), 2)
    check("missing merge --out", run("merge", "x.json"), 2)
    check("--shard with --cells",
          run("run", "--shard", "0/2", "--cells", "0:4", "--out-dir", tmp), 2)
    check("bad integer", run("run", "--trials", "-3"), 2)
    check("resume without sharding", run("resume", *GRID), 2)
    # The env surface is as strict as the flag surface: a typo'd
    # kernel-tier cap is a hard usage error before any work runs, not
    # a silently ignored no-op.
    check("unknown CRP_KERNEL_TIER",
          run("run", *GRID, env=fault_env(CRP_KERNEL_TIER="avx1024")), 2,
          stderr_contains=["CRP_KERNEL_TIER", "avx1024"])
    check("valid CRP_KERNEL_TIER cap still runs",
          run("run", *GRID, "--trials", "20",
              env=fault_env(CRP_KERNEL_TIER="scalar")), 0,
          stderr_contains=["kernel tier scalar"])

    # --- success and resumable interrupt: exits 0 and 75 ---
    check("monolithic run", run("run", *GRID, "--out", mono), 0)
    check(
        "interrupted shard (cell budget)",
        run("run", *GRID, "--shard", "0/2", "--out-dir", shards,
            "--stop-after-cells", "1"),
        75,
        stderr_contains=["resume"],
    )
    journal = os.path.join(shards, "shard-0-of-2.journal")
    if not os.path.exists(journal):
        FAILURES.append("interrupted shard left no journal")

    # --- validation errors: exit 3 ---
    check(
        "run over an existing journal",
        run("run", *GRID, "--shard", "0/2", "--out-dir", shards),
        3,
        stderr_contains=[journal],
    )
    check(
        "resume with nothing to resume",
        run("resume", *GRID, "--shard", "1/2", "--out-dir", shards),
        3,
        stderr_contains=["nothing to resume"],
    )
    check(
        "resume under a different seed",
        run("resume", "--n", "4096", "--trials", "200", "--seed", "8",
            "--shard", "0/2", "--out-dir", shards),
        3,
        stderr_contains=["master seed"],
    )

    # --- the full resume-then-merge cycle reproduces the monolithic CSV ---
    check("resume to completion",
          run("resume", *GRID, "--shard", "0/2", "--out-dir", shards), 0)
    check("second shard",
          run("run", *GRID, "--shard", "1/2", "--out-dir", shards), 0)
    manifests = [os.path.join(shards, f"shard-{i}-of-2.manifest.json")
                 for i in range(2)]
    check("merge", run("merge", "--out", merged, *manifests), 0)
    with open(mono, "rb") as a, open(merged, "rb") as b:
        if a.read() != b.read():
            FAILURES.append("merged CSV differs from monolithic CSV")
        else:
            print("ok   resumed merge is byte-identical to monolithic")

    # --- partial merge: gaps become a machine-readable report, exit 0 ---
    partial = os.path.join(tmp, "partial.csv")
    check("partial merge with a gap",
          run("merge", "--out", partial, "--allow-partial", manifests[1]), 0)
    with open(partial + ".partial.json") as handle:
        report = handle.read()
    if "crp-partial-merge-v1" not in report or "missing_ranges" not in report:
        FAILURES.append(f"partial report malformed: {report}")
    else:
        print("ok   partial merge report is machine-readable")
    check("strict merge still rejects the gap",
          run("merge", "--out", partial, manifests[1]), 3,
          stderr_contains=["gap"])

    # --- on-disk corruption: exit 3, errors name the damaged file ---
    csv_path = os.path.join(shards, "shard-0-of-2.csv")
    with open(csv_path, "rb") as handle:
        good_csv = handle.read()
    with open(csv_path, "wb") as handle:
        handle.write(good_csv[: len(good_csv) // 2])
    check(
        "merge with a truncated shard CSV",
        run("merge", "--out", merged, *manifests),
        3,
        stderr_contains=[csv_path],
    )
    with open(csv_path, "wb") as handle:
        handle.write(good_csv)
    # Flip a byte inside the first JSON key: the strict manifest
    # parser must reject it, and the CLI must prefix the file path.
    flip_byte(manifests[0], 4)
    check(
        "merge with a bit-flipped manifest",
        run("merge", "--out", merged, *manifests),
        3,
        stderr_contains=[manifests[0]],
    )
    flip_byte(manifests[0], 4)  # restore the manifest

    # --- I/O errors: exit 4 ---
    check(
        "merge with a missing manifest",
        run("merge", "--out", merged, os.path.join(tmp, "no-such.json")),
        4,
        stderr_contains=["no-such.json"],
    )
    os.remove(csv_path)
    check(
        "merge with a missing shard CSV",
        run("merge", "--out", merged, manifests[0]),
        4,
        stderr_contains=[csv_path, manifests[0]],
    )

    # --- grid specs: plan + --grid-spec vs the compiled-in grid ---
    spec = os.path.join(SOURCE_DIR, "examples", "grids", "table1.json")
    SPEC_GRID = ["--grid-spec", spec, "--trials", "200", "--seed", "7"]
    BUILTIN_GRID = ["--grid", "table1", "--n", "1024",
                    "--trials", "200", "--seed", "7"]

    # plan-mode flag surface: exit 2.
    check("plan with --shard", run("plan", *BUILTIN_GRID, "--shard", "0/2"), 2)
    check("plan with --out", run("plan", *BUILTIN_GRID, "--out", mono), 2)
    check("--grid with --grid-spec",
          run("plan", "--grid", "table1", "--grid-spec", spec), 2)
    check("--n with --grid-spec",
          run("plan", "--grid-spec", spec, "--n", "1024"), 2)
    check("--json outside plan", run("run", *BUILTIN_GRID, "--json"), 2)
    check("--shards outside plan",
          run("run", *BUILTIN_GRID, "--shards", "3"), 2)

    # plan text output: the golden shape, identical between the
    # built-in grid and the checked-in spec below the grid label line.
    plan_builtin = run("plan", *BUILTIN_GRID, "--shards", "3")
    plan_spec = run("plan", *SPEC_GRID, "--shards", "3")
    check("plan built-in grid", plan_builtin, 0)
    check("plan spec grid", plan_spec, 0)
    builtin_lines = plan_builtin.stdout.splitlines()
    spec_lines = plan_spec.stdout.splitlines()
    golden = [
        (1, "cells: 8, "), (1, ", shards 3"),
        (2, "shard 0/3: cells [0, 2)"),
        (3, 'cell 0: algorithm "likelihood", sizes "H=0.00", '
            'budget 262144, trials 200, seed_stream 0x0, cell_seed 0x'),
        (5, "shard 1/3: cells [2, 5)"),
        (9, "shard 2/3: cells [5, 8)"),
        (12, 'cell 7: algorithm "coded", sizes "H=3.00", '
             'budget 16384, trials 200, seed_stream 0x7, cell_seed 0x'),
    ]
    if len(builtin_lines) != 13 or not builtin_lines[0].startswith("grid: "):
        FAILURES.append(f"plan text has unexpected shape: {builtin_lines}")
    elif any(needle not in builtin_lines[index] for index, needle in golden):
        FAILURES.append(f"plan text drifted from golden: {builtin_lines}")
    elif builtin_lines[1:] != spec_lines[1:]:
        FAILURES.append("plan text differs between built-in grid and spec:\n"
                        + plan_builtin.stdout + plan_spec.stdout)
    else:
        print("ok   plan text matches golden, spec == built-in")

    # plan --json: machine-readable, and identical modulo the label.
    plan_builtin_json = run("plan", *BUILTIN_GRID, "--shards", "3", "--json")
    plan_spec_json = run("plan", *SPEC_GRID, "--shards", "3", "--json")
    check("plan --json built-in grid", plan_builtin_json, 0)
    check("plan --json spec grid", plan_spec_json, 0)
    doc = json.loads(plan_builtin_json.stdout)
    spec_doc = json.loads(plan_spec_json.stdout)
    problems = []
    if doc["format"] != "crp-shard-plan-v1":
        problems.append(f"format {doc['format']!r}")
    if doc["total_cells"] != 8 or doc["shard_count"] != 3:
        problems.append("wrong totals")
    ranges = [(s["cell_begin"], s["cell_end"]) for s in doc["shards"]]
    if ranges != [(0, 2), (2, 5), (5, 8)]:
        problems.append(f"ranges {ranges}")
    cells = [c for s in doc["shards"] for c in s["cells"]]
    if [c["cell_index"] for c in cells] != list(range(8)):
        problems.append("cell indices not 0..7")
    if [c["budget"] for c in cells] != [262144, 16384] * 4:
        problems.append("budgets drifted")
    if any(c["trials"] != 200 for c in cells):
        problems.append("trials drifted")
    if [c["seed_stream"] for c in cells] != [hex(i) for i in range(8)]:
        problems.append("seed streams not pinned to grid indices")
    doc.pop("grid")
    spec_doc.pop("grid")
    if doc != spec_doc:
        problems.append("spec plan differs from built-in plan")
    if problems:
        FAILURES.append(f"plan --json: {'; '.join(problems)}")
        print(f"FAIL plan --json: {'; '.join(problems)}")
    else:
        print("ok   plan --json matches golden, spec == built-in")

    # --grid-spec end to end: monolithic and shard+merge runs must be
    # byte-identical to the compiled-in grid's monolithic CSV.
    builtin_csv = os.path.join(tmp, "builtin.csv")
    spec_csv = os.path.join(tmp, "spec.csv")
    spec_merged = os.path.join(tmp, "spec-merged.csv")
    spec_shards = os.path.join(tmp, "spec-shards")
    check("monolithic built-in run",
          run("run", *BUILTIN_GRID, "--out", builtin_csv), 0)
    check("monolithic spec run", run("run", *SPEC_GRID, "--out", spec_csv), 0)
    for i in range(3):
        check(f"spec shard {i}/3",
              run("run", *SPEC_GRID, "--shard", f"{i}/3",
                  "--out-dir", spec_shards), 0)
    spec_manifests = [
        os.path.join(spec_shards, f"shard-{i}-of-3.manifest.json")
        for i in range(3)]
    check("spec merge", run("merge", "--out", spec_merged, *spec_manifests), 0)
    with open(builtin_csv, "rb") as handle:
        builtin_bytes = handle.read()
    for label, path in [("monolithic spec CSV", spec_csv),
                        ("sharded+merged spec CSV", spec_merged)]:
        with open(path, "rb") as handle:
            if handle.read() != builtin_bytes:
                FAILURES.append(f"{label} differs from built-in grid CSV")
            else:
                print(f"ok   {label} is byte-identical to built-in grid")

    # The plan is what the shards executed: ranges and per-cell seeds
    # in the run manifests must match the --json plan exactly.
    problems = []
    for index, manifest_path in enumerate(spec_manifests):
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        planned = spec_doc["shards"][index]
        if (manifest["cell_begin"], manifest["cell_end"]) != (
                planned["cell_begin"], planned["cell_end"]):
            problems.append(f"shard {index} range mismatch")
        if manifest["cell_seeds"] != [c["cell_seed"]
                                      for c in planned["cells"]]:
            problems.append(f"shard {index} cell seeds mismatch")
    if problems:
        FAILURES.append(f"plan vs manifests: {'; '.join(problems)}")
        print(f"FAIL plan vs manifests: {'; '.join(problems)}")
    else:
        print("ok   executed manifests match the published plan")

    # Spec validation failure: exit 3, naming the file and the field.
    bad_spec = os.path.join(tmp, "bad-spec.json")
    with open(bad_spec, "w") as handle:
        handle.write('{"format": "crp-grid-spec-v1", "n": 1024,\n'
                     ' "frobnicate": 1}')
    check("invalid grid spec",
          run("run", "--grid-spec", bad_spec),
          3,
          stderr_contains=[bad_spec, 'unknown field "frobnicate"', "line 2"])
    check("plan with invalid grid spec",
          run("plan", "--grid-spec", bad_spec),
          3,
          stderr_contains=['unknown field "frobnicate"'])

    # Unreadable spec file: exit 4 (I/O, retryable), naming the path.
    missing_spec = os.path.join(tmp, "no-such-spec.json")
    check("missing grid spec",
          run("run", "--grid-spec", missing_spec),
          4,
          stderr_contains=[missing_spec])

    # --- supervise: the self-healing fleet driver ---
    # Tight backoffs keep the chaos cases fast; every merged CSV must
    # be byte-identical to the monolithic run (minus quarantined rows).
    FAST = ["--backoff-ms", "10", "--backoff-max-ms", "40"]
    mono_lines = builtin_bytes.splitlines(keepends=True)
    sup_out = os.path.join(tmp, "sup.csv")
    sup_dir = os.path.join(tmp, "sup-work")

    # Flag surface: exit 2.
    check("supervise without --out/--out-dir",
          run("supervise", *BUILTIN_GRID), 2)
    check("supervise with --shard",
          run("supervise", *BUILTIN_GRID, "--out", sup_out,
              "--out-dir", sup_dir, "--shard", "0/2"), 2)
    check("supervise with zero workers",
          run("supervise", *BUILTIN_GRID, "--out", sup_out,
              "--out-dir", sup_dir, "--workers", "0"), 2)
    check("--workers outside supervise",
          run("run", *BUILTIN_GRID, "--workers", "3"), 2)
    check("--resume outside supervise",
          run("run", *BUILTIN_GRID, "--resume"), 2)
    check("--stop-after-cells 0 rejected",
          run("run", *BUILTIN_GRID, "--shard", "0/2", "--out-dir", sup_dir,
              "--stop-after-cells", "0"), 2)
    check("supervise --resume with no journal",
          run("supervise", *BUILTIN_GRID, "--out", sup_out,
              "--out-dir", sup_dir, "--resume"), 3,
          stderr_contains=["nothing to resume"])

    # Clean fleet: converges, byte-identical, empty quarantine report.
    check("supervise clean fleet",
          run("supervise", *BUILTIN_GRID, "--out", sup_out,
              "--out-dir", sup_dir, "--workers", "3", *FAST), 0)
    with open(sup_out, "rb") as handle:
        if handle.read() != builtin_bytes:
            FAILURES.append("supervised CSV differs from monolithic CSV")
        else:
            print("ok   supervised CSV is byte-identical to monolithic")
    with open(sup_out + ".quarantine.json") as handle:
        report = json.load(handle)
    if (report["format"] != "crp-quarantine-v1"
            or report["quarantined_cells"] != 0 or report["quarantined"]):
        FAILURES.append(f"clean-run quarantine report malformed: {report}")
    else:
        print("ok   clean run ships an empty crp-quarantine-v1 report")
    check("supervise fresh over an existing journal",
          run("supervise", *BUILTIN_GRID, "--out", sup_out,
              "--out-dir", sup_dir, "--workers", "3", *FAST), 3,
          stderr_contains=["supervisor.journal"])

    # Injected kill-9 after every cell: eight crashes, one converged CSV.
    chaos_out = os.path.join(tmp, "chaos.csv")
    check("supervise under constant worker crashes",
          run("supervise", *BUILTIN_GRID, "--out", chaos_out,
              "--out-dir", os.path.join(tmp, "chaos-work"),
              "--workers", "3", *FAST,
              env=fault_env(CRP_FAULT_CRASH_AFTER_CELLS=1)), 0,
          stderr_contains=["killed by signal 9"])
    with open(chaos_out, "rb") as handle:
        if handle.read() != builtin_bytes:
            FAILURES.append("crash-chaos CSV differs from monolithic CSV")
        else:
            print("ok   crash-chaos CSV is byte-identical to monolithic")

    # Timeout escalation: a cell hung far past the budget draws
    # SIGTERM, then SIGKILL, and is eventually quarantined.
    hang_out = os.path.join(tmp, "hang.csv")
    check("supervise escalates a hung cell",
          run("supervise", *BUILTIN_GRID, "--out", hang_out,
              "--out-dir", os.path.join(tmp, "hang-work"),
              "--workers", "3", "--retry-budget", "1", *FAST,
              "--worker-timeout-ms", "300", "--kill-grace-ms", "150",
              env=fault_env(CRP_FAULT_SLEEP_MS_IN_CELL="30000@6")), 0,
          stderr_contains=["sending SIGTERM", "sending SIGKILL",
                           "quarantined cell 6"])
    with open(hang_out + ".quarantine.json") as handle:
        report = json.load(handle)
    if (report["quarantined_cells"] != 1
            or report["quarantined"][0]["cell_index"] != 6
            or "timed out" not in report["quarantined"][0]["reason"]):
        FAILURES.append(f"hung-cell quarantine report malformed: {report}")
    else:
        print("ok   hung cell lands in the quarantine report")
    with open(hang_out, "rb") as handle:
        expected = b"".join(mono_lines[:7] + mono_lines[8:])
        if handle.read() != expected:
            FAILURES.append("hung-cell CSV != monolithic minus cell 6's row")
        else:
            print("ok   hung-cell CSV is monolithic minus the quarantined row")

    # Poisoned cell: exit-3 validation failures bisect down to the
    # cell, quarantine it, and the report matches the golden shape.
    poison_out = os.path.join(tmp, "poison.csv")
    check("supervise quarantines a poisoned cell",
          run("supervise", *BUILTIN_GRID, "--out", poison_out,
              "--out-dir", os.path.join(tmp, "poison-work"),
              "--workers", "3", "--retry-budget", "1", *FAST,
              env=fault_env(CRP_FAULT_POISON_CELLS=3)), 0,
          stderr_contains=["bisecting cells", "quarantined cell 3"])
    with open(poison_out + ".quarantine.json") as handle:
        report = json.load(handle)
    golden_problems = []
    if report["format"] != "crp-quarantine-v1":
        golden_problems.append(f"format {report['format']!r}")
    if not report["grid_hash"].startswith("0x"):
        golden_problems.append("grid_hash not hex")
    if report["total_cells"] != 8 or report["quarantined_cells"] != 1:
        golden_problems.append("wrong counts")
    quarantined = report["quarantined"][0]
    if quarantined["cell_index"] != 3:
        golden_problems.append(f"cell {quarantined['cell_index']}")
    if "validation error (exit 3)" not in quarantined["reason"]:
        golden_problems.append(f"reason {quarantined['reason']!r}")
    if golden_problems:
        FAILURES.append(f"quarantine golden: {'; '.join(golden_problems)}")
        print(f"FAIL quarantine golden: {'; '.join(golden_problems)}")
    else:
        print("ok   quarantine report matches the golden shape")
    with open(poison_out, "rb") as handle:
        expected = b"".join(mono_lines[:4] + mono_lines[5:])
        if handle.read() != expected:
            FAILURES.append("poison CSV != monolithic minus cell 3's row")
        else:
            print("ok   poison CSV is monolithic minus the quarantined row")

    # Supervisor interrupt + --resume: SIGINT stops the fleet with 75;
    # the resumed supervisor replays its journal and converges.
    res_out = os.path.join(tmp, "res.csv")
    res_dir = os.path.join(tmp, "res-work")
    proc = subprocess.Popen(
        [CRP_SHARD, "supervise", *BUILTIN_GRID, "--out", res_out,
         "--out-dir", res_dir, "--workers", "2", *FAST],
        env=fault_env(CRP_FAULT_SLEEP_MS_IN_CELL=300),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    wait_for(
        lambda: os.path.isdir(res_dir) and any(
            journal_has_cell(os.path.join(res_dir, name))
            for name in os.listdir(res_dir) if name.endswith(".journal")
            and name != "supervisor.journal"),
        "a supervised worker to journal a cell")
    proc.send_signal(signal.SIGINT)
    stderr = proc.communicate(timeout=120)[1]
    if proc.returncode != 75:
        FAILURES.append(f"supervise SIGINT exited {proc.returncode}, "
                        f"expected 75\n  stderr: {stderr.strip()}")
    else:
        print("ok   supervise stops cleanly with exit 75 on SIGINT")
    check("supervise --resume to convergence",
          run("supervise", *BUILTIN_GRID, "--out", res_out,
              "--out-dir", res_dir, "--workers", "2", *FAST, "--resume"), 0,
          stderr_contains=["resuming:"])
    with open(res_out, "rb") as handle:
        if handle.read() != builtin_bytes:
            FAILURES.append("resumed supervised CSV differs from monolithic")
        else:
            print("ok   resumed supervised CSV is byte-identical")

    # --- SIGHUP mid-grid: same resumable contract as SIGINT/SIGTERM ---
    hup_dir = os.path.join(tmp, "sighup")
    hup_journal = os.path.join(hup_dir, "shard-0-of-2.journal")
    proc = subprocess.Popen(
        [CRP_SHARD, "run", *BUILTIN_GRID, "--shard", "0/2",
         "--out-dir", hup_dir],
        env=fault_env(CRP_FAULT_SLEEP_MS_IN_CELL=400),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    wait_for(lambda: journal_has_cell(hup_journal),
             "the SIGHUP worker to journal a cell")
    proc.send_signal(signal.SIGHUP)
    stderr = proc.communicate(timeout=120)[1]
    if proc.returncode != 75:
        FAILURES.append(f"SIGHUP run exited {proc.returncode}, expected 75\n"
                        f"  stderr: {stderr.strip()}")
    elif "resume" not in stderr:
        FAILURES.append(f"SIGHUP stderr lacks resume hint: {stderr.strip()}")
    else:
        print("ok   SIGHUP stops cleanly with exit 75")
    check("resume after SIGHUP",
          run("resume", *BUILTIN_GRID, "--shard", "0/2",
              "--out-dir", hup_dir), 0)

    # --- SIGTERM mid-grid: finish the cell, flush, exit 75 ---
    sig_dir = os.path.join(tmp, "sigterm")
    sig_journal = os.path.join(sig_dir, "shard-0-of-2.journal")
    proc = subprocess.Popen(
        [CRP_SHARD, "run", "--n", "65536", "--trials", "300000",
         "--shard", "0/2", "--out-dir", sig_dir],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            with open(sig_journal, "rb") as handle:
                if b"\ncell " in b"\n" + handle.read():
                    break
        except FileNotFoundError:
            pass
        time.sleep(0.02)
    proc.send_signal(signal.SIGTERM)
    stderr = proc.communicate(timeout=120)[1]
    if proc.returncode != 75:
        FAILURES.append(f"SIGTERM run exited {proc.returncode}, expected 75\n"
                        f"  stderr: {stderr.strip()}")
    elif "resume" not in stderr:
        FAILURES.append(f"SIGTERM stderr lacks resume hint: {stderr.strip()}")
    else:
        print("ok   SIGTERM stops cleanly with exit 75")
    check("resume after SIGTERM",
          run("resume", "--n", "65536", "--trials", "300000",
              "--shard", "0/2", "--out-dir", sig_dir), 0)

if FAILURES:
    print(f"\n{len(FAILURES)} failure(s):")
    for failure in FAILURES:
        print(f"  {failure}")
    sys.exit(1)
print("\nall crp_shard CLI exit-code checks passed")
