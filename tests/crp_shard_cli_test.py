#!/usr/bin/env python3
"""crp_shard's documented exit-code taxonomy, asserted end to end.

The codes are a stable contract for schedulers (see the header comment
of tools/crp_shard.cpp): 0 success, 1 internal, 2 usage, 3 validation,
4 I/O, 75 resumable interrupt. This test drives the real binary
through run / interrupt / resume / merge cycles — including a SIGTERM
mid-grid and deliberately corrupted artifacts — and checks both the
codes and that corruption errors name the offending file.

Usage: crp_shard_cli_test.py /path/to/crp_shard
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

CRP_SHARD = sys.argv[1]
FAILURES = []


def run(*args, **kwargs):
    return subprocess.run(
        [CRP_SHARD, *args], capture_output=True, text=True, **kwargs
    )


def check(label, proc, code, stderr_contains=()):
    problems = []
    if proc.returncode != code:
        problems.append(f"exit {proc.returncode}, expected {code}")
    for needle in stderr_contains:
        if needle not in proc.stderr:
            problems.append(f"stderr lacks {needle!r}")
    if problems:
        FAILURES.append(f"{label}: {'; '.join(problems)}\n"
                        f"  stderr: {proc.stderr.strip()}")
        print(f"FAIL {label}: {'; '.join(problems)}")
    else:
        print(f"ok   {label}")


def flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x01]))


GRID = ["--n", "4096", "--trials", "200", "--seed", "7"]

with tempfile.TemporaryDirectory() as tmp:
    mono = os.path.join(tmp, "mono.csv")
    shards = os.path.join(tmp, "shards")
    merged = os.path.join(tmp, "merged.csv")

    # --- usage errors: exit 2 ---
    check("unknown mode", run("frobnicate"), 2)
    check("missing merge --out", run("merge", "x.json"), 2)
    check("--shard with --cells",
          run("run", "--shard", "0/2", "--cells", "0:4", "--out-dir", tmp), 2)
    check("bad integer", run("run", "--trials", "-3"), 2)
    check("resume without sharding", run("resume", *GRID), 2)

    # --- success and resumable interrupt: exits 0 and 75 ---
    check("monolithic run", run("run", *GRID, "--out", mono), 0)
    check(
        "interrupted shard (cell budget)",
        run("run", *GRID, "--shard", "0/2", "--out-dir", shards,
            "--stop-after-cells", "1"),
        75,
        stderr_contains=["resume"],
    )
    journal = os.path.join(shards, "shard-0-of-2.journal")
    if not os.path.exists(journal):
        FAILURES.append("interrupted shard left no journal")

    # --- validation errors: exit 3 ---
    check(
        "run over an existing journal",
        run("run", *GRID, "--shard", "0/2", "--out-dir", shards),
        3,
        stderr_contains=[journal],
    )
    check(
        "resume with nothing to resume",
        run("resume", *GRID, "--shard", "1/2", "--out-dir", shards),
        3,
        stderr_contains=["nothing to resume"],
    )
    check(
        "resume under a different seed",
        run("resume", "--n", "4096", "--trials", "200", "--seed", "8",
            "--shard", "0/2", "--out-dir", shards),
        3,
        stderr_contains=["master seed"],
    )

    # --- the full resume-then-merge cycle reproduces the monolithic CSV ---
    check("resume to completion",
          run("resume", *GRID, "--shard", "0/2", "--out-dir", shards), 0)
    check("second shard",
          run("run", *GRID, "--shard", "1/2", "--out-dir", shards), 0)
    manifests = [os.path.join(shards, f"shard-{i}-of-2.manifest.json")
                 for i in range(2)]
    check("merge", run("merge", "--out", merged, *manifests), 0)
    with open(mono, "rb") as a, open(merged, "rb") as b:
        if a.read() != b.read():
            FAILURES.append("merged CSV differs from monolithic CSV")
        else:
            print("ok   resumed merge is byte-identical to monolithic")

    # --- partial merge: gaps become a machine-readable report, exit 0 ---
    partial = os.path.join(tmp, "partial.csv")
    check("partial merge with a gap",
          run("merge", "--out", partial, "--allow-partial", manifests[1]), 0)
    with open(partial + ".partial.json") as handle:
        report = handle.read()
    if "crp-partial-merge-v1" not in report or "missing_ranges" not in report:
        FAILURES.append(f"partial report malformed: {report}")
    else:
        print("ok   partial merge report is machine-readable")
    check("strict merge still rejects the gap",
          run("merge", "--out", partial, manifests[1]), 3,
          stderr_contains=["gap"])

    # --- on-disk corruption: exit 3, errors name the damaged file ---
    csv_path = os.path.join(shards, "shard-0-of-2.csv")
    with open(csv_path, "rb") as handle:
        good_csv = handle.read()
    with open(csv_path, "wb") as handle:
        handle.write(good_csv[: len(good_csv) // 2])
    check(
        "merge with a truncated shard CSV",
        run("merge", "--out", merged, *manifests),
        3,
        stderr_contains=[csv_path],
    )
    with open(csv_path, "wb") as handle:
        handle.write(good_csv)
    # Flip a byte inside the first JSON key: the strict manifest
    # parser must reject it, and the CLI must prefix the file path.
    flip_byte(manifests[0], 4)
    check(
        "merge with a bit-flipped manifest",
        run("merge", "--out", merged, *manifests),
        3,
        stderr_contains=[manifests[0]],
    )
    flip_byte(manifests[0], 4)  # restore the manifest

    # --- I/O errors: exit 4 ---
    check(
        "merge with a missing manifest",
        run("merge", "--out", merged, os.path.join(tmp, "no-such.json")),
        4,
        stderr_contains=["no-such.json"],
    )
    os.remove(csv_path)
    check(
        "merge with a missing shard CSV",
        run("merge", "--out", merged, manifests[0]),
        4,
        stderr_contains=[csv_path, manifests[0]],
    )

    # --- SIGTERM mid-grid: finish the cell, flush, exit 75 ---
    sig_dir = os.path.join(tmp, "sigterm")
    sig_journal = os.path.join(sig_dir, "shard-0-of-2.journal")
    proc = subprocess.Popen(
        [CRP_SHARD, "run", "--n", "65536", "--trials", "300000",
         "--shard", "0/2", "--out-dir", sig_dir],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            with open(sig_journal, "rb") as handle:
                if b"\ncell " in b"\n" + handle.read():
                    break
        except FileNotFoundError:
            pass
        time.sleep(0.02)
    proc.send_signal(signal.SIGTERM)
    stderr = proc.communicate(timeout=120)[1]
    if proc.returncode != 75:
        FAILURES.append(f"SIGTERM run exited {proc.returncode}, expected 75\n"
                        f"  stderr: {stderr.strip()}")
    elif "resume" not in stderr:
        FAILURES.append(f"SIGTERM stderr lacks resume hint: {stderr.strip()}")
    else:
        print("ok   SIGTERM stops cleanly with exit 75")
    check("resume after SIGTERM",
          run("resume", "--n", "65536", "--trials", "300000",
              "--shard", "0/2", "--out-dir", sig_dir), 0)

if FAILURES:
    print(f"\n{len(FAILURES)} failure(s):")
    for failure in FAILURES:
        print(f"  {failure}")
    sys.exit(1)
print("\nall crp_shard CLI exit-code checks passed")
