// The exact analysis engine, and its agreement with the Monte-Carlo
// simulator — the library's strongest internal consistency check: two
// independent implementations of the channel semantics must agree.
#include "harness/exact.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/simple.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/history_tree.h"
#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp::harness {
namespace {

TEST(SuccessProbability, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(success_probability(1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(success_probability(2, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(success_probability(5, 0.0), 0.0);
  // k = 2, p = 1/2: 2 * .5 * .5 = 0.5.
  EXPECT_NEAR(success_probability(2, 0.5), 0.5, 1e-12);
  // k = 3, p = 1/3: 3 * (1/3) * (2/3)^2 = 4/9.
  EXPECT_NEAR(success_probability(3, 1.0 / 3.0), 4.0 / 9.0, 1e-12);
  EXPECT_THROW(success_probability(2, 1.5), std::invalid_argument);
}

TEST(SuccessProbability, StableForHugeK) {
  // 10^7 players at p = 10^-7: s -> e^-1.
  const double s = success_probability(10000000, 1e-7);
  EXPECT_NEAR(s, std::exp(-1.0), 1e-3);
}

TEST(RoundOutcome, ProbabilitiesFormADistribution) {
  for (std::size_t k : {1ul, 2ul, 7ul, 100ul}) {
    for (double p : {0.0, 0.01, 0.37, 0.99, 1.0}) {
      const auto out = round_outcome_probabilities(k, p);
      EXPECT_GE(out.silence, 0.0);
      EXPECT_GE(out.success, 0.0);
      EXPECT_GE(out.collision, 0.0);
      EXPECT_NEAR(out.silence + out.success + out.collision, 1.0, 1e-12)
          << "k=" << k << " p=" << p;
    }
  }
}

TEST(ExactNoCd, FixedProbabilityIsGeometric) {
  // With constant success probability s, Pr(solved by r) = 1-(1-s)^r
  // and E[T] = 1/s.
  constexpr std::size_t k = 10;
  const auto schedule =
      baselines::FixedProbabilitySchedule::for_size_estimate(k);
  const double s = success_probability(k, 1.0 / k);
  const auto profile = exact_profile_no_cd(schedule, k, 50);
  for (std::size_t r = 1; r <= 50; ++r) {
    EXPECT_NEAR(profile.solve_by[r],
                1.0 - std::pow(1.0 - s, static_cast<double>(r)), 1e-12);
  }
  EXPECT_NEAR(exact_expected_rounds_no_cd(schedule, k), 1.0 / s, 1e-6);
}

TEST(ExactNoCd, ThrowsWhenScheduleCannotSolve) {
  const baselines::FixedProbabilitySchedule schedule(0.0);
  EXPECT_THROW(
      exact_expected_rounds_no_cd(schedule, 5, 1e-9, /*max_horizon=*/1000),
      std::runtime_error);
}

TEST(ExactNoCd, AgreesWithMonteCarloForDecay) {
  constexpr std::size_t n = 1 << 10;
  const baselines::DecaySchedule decay(n);
  for (std::size_t k : {2ul, 37ul, 800ul}) {
    const double exact = exact_expected_rounds_no_cd(decay, k);
    const auto mc =
        measure_uniform_no_cd_fixed_k(decay, k, 20000, /*seed=*/3, 1 << 16);
    EXPECT_NEAR(mc.rounds.mean, exact, 4.0 * mc.rounds.ci95 + 0.01)
        << "k=" << k;
  }
}

TEST(ExactNoCd, AgreesWithMonteCarloForLikelihoodSchedule) {
  constexpr std::size_t n = 1 << 12;
  const auto condensed =
      predict::geometric_ranges(info::num_ranges(n), 0.5);
  const core::LikelihoodOrderedSchedule schedule(condensed);
  constexpr std::size_t k = 300;
  const double exact = exact_expected_rounds_no_cd(schedule, k);
  const auto mc =
      measure_uniform_no_cd_fixed_k(schedule, k, 20000, /*seed=*/5, 1 << 16);
  EXPECT_NEAR(mc.rounds.mean, exact, 4.0 * mc.rounds.ci95 + 0.01);
}

TEST(ExactNoCd, ProfileIsMonotoneAndBounded) {
  const baselines::DecaySchedule decay(1 << 8);
  const auto profile = exact_profile_no_cd(decay, 100, 200);
  for (std::size_t r = 1; r <= 200; ++r) {
    EXPECT_GE(profile.solve_by[r], profile.solve_by[r - 1]);
    EXPECT_LE(profile.solve_by[r], 1.0 + 1e-12);
  }
  EXPECT_NEAR(profile.tail_mass, 1.0 - profile.solve_by[200], 1e-12);
}

TEST(ExactCd, WillardProfileAgreesWithMonteCarlo) {
  constexpr std::size_t n = 1 << 16;
  const baselines::WillardPolicy willard(n);
  for (std::size_t k : {2ul, 500ul, 60000ul}) {
    const auto profile = exact_profile_cd(willard, k, 24);
    const auto mc =
        measure_uniform_cd_fixed_k(willard, k, 20000, /*seed=*/7, 1 << 14);
    // Compare Pr(solved within 10 rounds).
    const double mc_by10 = mc.solved_within(10.0);
    EXPECT_NEAR(mc_by10, profile.solve_by[10], 0.015) << "k=" << k;
  }
}

TEST(ExactCd, CodedSearchExpectationMatchesMonteCarlo) {
  constexpr std::size_t n = 1 << 12;
  const auto condensed =
      predict::geometric_ranges(info::num_ranges(n), 0.5);
  const core::CodedSearchPolicy policy(condensed);
  constexpr std::size_t k = 100;
  const auto profile = exact_profile_cd(policy, k, 48);
  ASSERT_LT(profile.tail_mass, 0.005);
  const auto mc =
      measure_uniform_cd_fixed_k(policy, k, 20000, /*seed=*/9, 1 << 12);
  // The truncated expectation charges the tail at horizon + 1, so allow
  // that bias on top of the Monte-Carlo confidence interval.
  EXPECT_NEAR(mc.rounds.mean, profile.truncated_expectation,
              4.0 * mc.rounds.ci95 + 49.0 * profile.tail_mass + 0.3);
}

TEST(ExactCd, ParallelSubtreeExpansionMatchesSerialBitForBit) {
  // The profile enumeration fans out over subtrees at a fixed split
  // depth; the shard partition and merge order are scheduling-free, so
  // every thread count must reproduce the serial run exactly —
  // including the pruned-mass accounting.
  const baselines::WillardPolicy willard(1 << 16);
  for (std::size_t k : {2ul, 1000ul}) {
    const auto serial = exact_profile_cd(willard, k, 24, 1e-12,
                                         /*threads=*/1);
    for (std::size_t threads : {2ul, 4ul, 8ul}) {
      const auto parallel = exact_profile_cd(willard, k, 24, 1e-12, threads);
      ASSERT_EQ(serial.solve_by.size(), parallel.solve_by.size());
      for (std::size_t r = 0; r < serial.solve_by.size(); ++r) {
        EXPECT_EQ(serial.solve_by[r], parallel.solve_by[r])
            << "k=" << k << " threads=" << threads << " r=" << r;
      }
      EXPECT_EQ(serial.tail_mass, parallel.tail_mass);
      EXPECT_EQ(serial.truncated_expectation,
                parallel.truncated_expectation);
    }
  }

  // Same property one layer down, where the pruned/frontier masses are
  // visible directly.
  const HistoryTreeOptions base{.horizon = 20, .prune_below = 1e-10};
  HistoryTreeOptions pooled = base;
  pooled.threads = 4;
  const auto one = expand_history_tree(willard, 500, base);
  const auto four = expand_history_tree(willard, 500, pooled);
  EXPECT_EQ(one.pruned_mass, four.pruned_mass);
  EXPECT_EQ(one.frontier_mass, four.frontier_mass);
  ASSERT_EQ(one.nodes.size(), four.nodes.size());
  ASSERT_EQ(one.solve_at, four.solve_at);
  for (std::size_t i = 0; i < one.nodes.size(); ++i) {
    EXPECT_EQ(one.nodes[i].cum_success, four.nodes[i].cum_success);
    EXPECT_EQ(one.nodes[i].silence, four.nodes[i].silence);
    EXPECT_EQ(one.nodes[i].collision, four.nodes[i].collision);
  }
}

TEST(ExactCd, PruningKeepsMassAccounted) {
  const baselines::WillardPolicy willard(1 << 16);
  const auto fine = exact_profile_cd(willard, 1000, 20, 1e-14);
  const auto coarse = exact_profile_cd(willard, 1000, 20, 1e-3);
  // Aggressive pruning can only lose solved mass to the tail.
  for (std::size_t r = 0; r <= 20; ++r) {
    EXPECT_LE(coarse.solve_by[r], fine.solve_by[r] + 1e-9);
  }
  EXPECT_GE(coarse.tail_mass, fine.tail_mass - 1e-9);
}

TEST(ExactNoCd, TheoremBudgetsValidatedWithoutSampling) {
  // Corollary 2.15 checked exactly: with Y = X uniform over m ranges,
  // Pr(solved within 2^{2H} + 1 rounds) >= 1/16 for the likelihood
  // schedule, for every k placed at a range endpoint.
  constexpr std::size_t n = 1 << 16;
  const std::size_t ranges = info::num_ranges(n);
  for (std::size_t m : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    const auto condensed = predict::uniform_over_ranges(ranges, m);
    const core::LikelihoodOrderedSchedule schedule(condensed);
    const double h = condensed.entropy();
    const auto budget =
        static_cast<std::size_t>(std::exp2(2.0 * h) + 1.0);
    double average = 0.0;
    for (std::size_t i = 1; i <= m; ++i) {
      const std::size_t k = info::range_max_size(i);
      const auto profile = exact_profile_no_cd(
          schedule, k, std::min<std::size_t>(budget, 1 << 12));
      average += profile.solve_by.back() / static_cast<double>(m);
    }
    EXPECT_GE(average, 1.0 / 16.0) << "H=" << h;
  }
}

}  // namespace
}  // namespace crp::harness
