// Statistical validation of the channel engines beyond mean agreement:
// winner uniformity, per-round outcome frequencies against the exact
// closed forms, trace/result consistency, and the geometric repetition
// structure (pass-level memorylessness) of cycling schedules.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "channel/rng.h"
#include "channel/simulator.h"
#include "core/likelihood_schedule.h"
#include "harness/exact.h"
#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp::channel {
namespace {

TEST(WinnerDistribution, PerPlayerEngineIsSymmetricAcrossIds) {
  // Every participant must be equally likely to win under a uniform
  // algorithm — identity cannot matter (Section 2.2's observation).
  constexpr std::size_t k = 8;
  const baselines::DecaySchedule decay(64);
  std::vector<std::size_t> wins(k, 0);
  constexpr std::size_t kTrials = 40000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = derive_rng(77, t);
    const auto result =
        run_uniform_no_cd_per_player(decay, k, rng, {1 << 12});
    ASSERT_TRUE(result.solved);
    ++wins[*result.winner];
  }
  for (std::size_t id = 0; id < k; ++id) {
    EXPECT_NEAR(static_cast<double>(wins[id]) / kTrials, 1.0 / k, 0.01)
        << "id " << id;
  }
}

TEST(OutcomeFrequencies, MatchExactProbabilitiesPerRound) {
  // One fixed probe: empirical silence/success/collision frequencies
  // must match the closed forms in harness/exact.h.
  constexpr std::size_t k = 12;
  constexpr double p = 0.11;
  const auto expected = harness::round_outcome_probabilities(k, p);
  std::size_t silence = 0;
  std::size_t success = 0;
  std::size_t collision = 0;
  constexpr std::size_t kTrials = 200000;
  auto rng = make_rng(83);
  for (std::size_t t = 0; t < kTrials; ++t) {
    switch (feedback_for(sample_transmitters(k, p, rng))) {
      case Feedback::kSilence: ++silence; break;
      case Feedback::kSuccess: ++success; break;
      case Feedback::kCollision: ++collision; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(silence) / kTrials, expected.silence,
              0.005);
  EXPECT_NEAR(static_cast<double>(success) / kTrials, expected.success,
              0.005);
  EXPECT_NEAR(static_cast<double>(collision) / kTrials,
              expected.collision, 0.005);
}

TEST(TraceConsistency, TransmissionsEqualTraceSum) {
  const baselines::DecaySchedule decay(256);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    ExecutionTrace trace;
    auto rng = derive_rng(89, seed);
    const auto result =
        run_uniform_no_cd(decay, 100, rng, {.max_rounds = 1 << 12,
                                            .trace = &trace});
    ASSERT_TRUE(result.solved);
    std::size_t total = 0;
    for (const auto& record : trace) total += record.transmitters;
    EXPECT_EQ(result.transmissions, total);
    EXPECT_EQ(trace.size(), result.rounds);
    // Exactly the final round is a success; no earlier one.
    for (std::size_t r = 0; r + 1 < trace.size(); ++r) {
      EXPECT_NE(trace[r].feedback, Feedback::kSuccess);
    }
    EXPECT_EQ(trace.back().feedback, Feedback::kSuccess);
  }
}

TEST(PassMemorylessness, CyclingScheduleSolvesGeometricallyAcrossPasses) {
  // A repeating pass makes "solved within pass j" i.i.d. across passes:
  // Pr(T > j*L) = (1 - q)^j where q = Pr(solved in one pass). Check
  // the empirical pass-survival curve against the geometric law.
  constexpr std::size_t n = 1 << 10;
  const auto condensed =
      crp::predict::uniform_over_ranges(info::num_ranges(n), 10);
  const crp::core::LikelihoodOrderedSchedule schedule(condensed);
  const std::size_t pass = schedule.pass_length();
  constexpr std::size_t k = 200;
  constexpr std::size_t kTrials = 30000;
  std::vector<double> survived_by_pass(6, 0.0);
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = derive_rng(97, t);
    const auto result = run_uniform_no_cd(schedule, k, rng, {1 << 14});
    ASSERT_TRUE(result.solved);
    for (std::size_t j = 0; j < survived_by_pass.size(); ++j) {
      if (result.rounds > (j + 1) * pass) survived_by_pass[j] += 1.0;
    }
  }
  for (auto& v : survived_by_pass) v /= kTrials;
  const double q = 1.0 - survived_by_pass[0];
  ASSERT_GT(q, 0.05);
  for (std::size_t j = 1; j < survived_by_pass.size(); ++j) {
    const double predicted = std::pow(1.0 - q, double(j + 1));
    EXPECT_NEAR(survived_by_pass[j], predicted, 0.02)
        << "pass " << j + 1;
  }
}

TEST(ExactVsMonteCarlo, FullSolveByCurveAgreesForDecay) {
  // Not just the mean: the whole CDF must match between the exact
  // engine and the simulator.
  constexpr std::size_t n = 1 << 8;
  constexpr std::size_t k = 60;
  const baselines::DecaySchedule decay(n);
  constexpr std::size_t horizon = 40;
  const auto exact = harness::exact_profile_no_cd(decay, k, horizon);
  constexpr std::size_t kTrials = 40000;
  std::vector<double> empirical(horizon + 1, 0.0);
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = derive_rng(101, t);
    const auto result = run_uniform_no_cd(decay, k, rng, {1 << 14});
    for (std::size_t r = result.rounds; r <= horizon; ++r) {
      empirical[r] += 1.0;
    }
  }
  for (auto& v : empirical) v /= kTrials;
  for (std::size_t r = 1; r <= horizon; r += 3) {
    EXPECT_NEAR(empirical[r], exact.solve_by[r], 0.012) << "round " << r;
  }
}

}  // namespace
}  // namespace crp::channel
