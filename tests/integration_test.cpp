// End-to-end checks of the paper's headline claims, wiring every module
// together: entropy scaling (Table 1), divergence cost (Theorems 2.12 /
// 2.16), the lower-bound reduction chain (Lemmas 2.5 / 2.7), and the
// perfect-advice scaling (Table 2).
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "core/advice.h"
#include "core/advice_deterministic.h"
#include "core/advice_randomized.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/fit.h"
#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "predict/noise.h"
#include "rangefind/coding.h"
#include "rangefind/sequence.h"

namespace crp {
namespace {

constexpr std::size_t kNetwork = 1 << 16;  // n = 65536, 16 ranges

TEST(Table1Integration, NoCdRoundsGrowMonotonicallyWithEntropy) {
  const std::size_t ranges = info::num_ranges(kNetwork);
  std::vector<double> entropy;
  std::vector<double> rounds;
  for (std::size_t m : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    const auto condensed = predict::uniform_over_ranges(ranges, m);
    const auto actual = predict::lift(
        condensed, kNetwork, predict::RangePlacement::kHighEndpoint);
    const core::LikelihoodOrderedSchedule schedule(condensed);
    const auto measurement = harness::measure_uniform_no_cd(
        schedule, actual, 3000, /*seed=*/101, 1 << 16);
    ASSERT_DOUBLE_EQ(measurement.success_rate, 1.0);
    entropy.push_back(condensed.entropy());
    rounds.push_back(measurement.rounds.mean);
  }
  // Strictly increasing in entropy, and superlinear (the bound is
  // exponential in H).
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_GT(rounds[i], rounds[i - 1]) << "H=" << entropy[i];
  }
  EXPECT_GT(harness::spearman(entropy, rounds), 0.99);
  // Exponential-shape check: rounds at H=4 dwarf a linear
  // extrapolation from H=0 -> H=1.
  EXPECT_GT(rounds.back(), 4.0 * (rounds[1] - rounds[0]) +
                               rounds[0] + 1.0);
}

TEST(Table1Integration, CdRoundsStayWithinQuadraticEntropyEnvelope) {
  // The CD mean is NOT monotone in H at these scales (neighbouring
  // ranges also succeed with decent probability, so the binary search
  // saturates around a handful of rounds); the paper's claim is the
  // O((H+1)^2) envelope and the giant win over the no-CD exponential,
  // which is what we assert.
  const std::size_t ranges = info::num_ranges(kNetwork);
  std::vector<double> entropy;
  std::vector<double> rounds;
  for (std::size_t m : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    const auto condensed = predict::uniform_over_ranges(ranges, m);
    const auto actual = predict::lift(
        condensed, kNetwork, predict::RangePlacement::kHighEndpoint);
    const core::CodedSearchPolicy policy(condensed);
    const auto measurement = harness::measure_uniform_cd(
        policy, actual, 3000, /*seed=*/103, 1 << 14);
    ASSERT_DOUBLE_EQ(measurement.success_rate, 1.0);
    entropy.push_back(condensed.entropy());
    rounds.push_back(measurement.rounds.mean);
    EXPECT_LE(measurement.rounds.mean,
              4.0 * (condensed.entropy() + 1.0) *
                      (condensed.entropy() + 1.0) +
                  4.0)
        << "H=" << condensed.entropy();
  }
  // The largest-entropy point is far below the no-CD exponential
  // 2^{2H} = 256 and above the perfect-prediction floor.
  EXPECT_LT(rounds.back(), 64.0);
  EXPECT_GT(rounds.back(), rounds.front());
}

TEST(Table1Integration, CollisionDetectionBeatsNoCdAtHighEntropy) {
  const std::size_t ranges = info::num_ranges(kNetwork);
  const auto condensed = predict::uniform_over_ranges(ranges, ranges);
  const auto actual = predict::lift(
      condensed, kNetwork, predict::RangePlacement::kHighEndpoint);
  const core::LikelihoodOrderedSchedule no_cd(condensed);
  const core::CodedSearchPolicy cd(condensed);
  const auto m_no_cd = harness::measure_uniform_no_cd(
      no_cd, actual, 3000, /*seed=*/105, 1 << 16);
  const auto m_cd = harness::measure_uniform_cd(cd, actual, 3000,
                                                /*seed=*/105, 1 << 14);
  EXPECT_LT(m_cd.rounds.mean, m_no_cd.rounds.mean);
}

TEST(DivergenceIntegration, NoCdCostIncreasesWithKl) {
  // Theorem 2.12: rounds grow with D_KL(c(X) || c(Y)). Walk the
  // prediction along the segment from the truth to its (smoothed)
  // reversal: D_KL(p || lambda p + (1-lambda) o) is convex in lambda
  // with minimum 0 at lambda = 1, hence monotone along the sweep.
  const std::size_t ranges = info::num_ranges(kNetwork);
  const auto truth = predict::geometric_ranges(ranges, 0.35);
  const auto actual = predict::lift(truth, kNetwork,
                                    predict::RangePlacement::kHighEndpoint);
  const auto adversary =
      predict::smooth_with_uniform(predict::reverse_ranges(truth), 0.05);
  std::vector<double> divergence;
  std::vector<double> rounds;
  for (double lambda : {1.0, 0.6, 0.3, 0.0}) {
    const auto prediction = predict::mix(truth, adversary, lambda);
    const core::LikelihoodOrderedSchedule schedule(prediction);
    const auto measurement = harness::measure_uniform_no_cd(
        schedule, actual, 3000, /*seed=*/107, 1 << 16);
    ASSERT_DOUBLE_EQ(measurement.success_rate, 1.0);
    divergence.push_back(truth.kl_divergence(prediction));
    rounds.push_back(measurement.rounds.mean);
  }
  for (std::size_t i = 1; i < divergence.size(); ++i) {
    EXPECT_GT(divergence[i], divergence[i - 1]);
  }
  EXPECT_GT(harness::spearman(divergence, rounds), 0.9);
}

TEST(DivergenceIntegration, BoundedFactorErrorIsNearlyFree) {
  // The robustness remark after Theorem 2.12: predictions within a
  // constant factor of the truth cost only O(1).
  const std::size_t ranges = info::num_ranges(kNetwork);
  const auto truth = predict::geometric_ranges(ranges, 0.35);
  const auto actual = predict::lift(truth, kNetwork,
                                    predict::RangePlacement::kHighEndpoint);
  auto rng = channel::make_rng(109);
  const auto jittered = predict::multiplicative_jitter(truth, 1.3, rng);
  const core::LikelihoodOrderedSchedule exact(truth);
  const core::LikelihoodOrderedSchedule noisy(jittered);
  const auto m_exact = harness::measure_uniform_no_cd(
      exact, actual, 4000, /*seed=*/111, 1 << 16);
  const auto m_noisy = harness::measure_uniform_no_cd(
      noisy, actual, 4000, /*seed=*/111, 1 << 16);
  EXPECT_LT(m_noisy.rounds.mean, m_exact.rounds.mean * 2.5 + 4.0);
}

TEST(LowerBoundIntegration, DecayRespectsEntropyLowerBoundChain) {
  // Theorem 2.4 applied to the decay baseline: its measured expected
  // rounds must exceed c * 2^H / log log n for every target
  // distribution (we use the proof's own reduction constants loosely:
  // any violation by a large margin would falsify the chain).
  constexpr std::size_t n = 1 << 12;
  const std::size_t ranges = info::num_ranges(n);
  const baselines::DecaySchedule decay(n);
  const double loglog = std::log2(std::log2(static_cast<double>(n)));
  for (std::size_t m : {2ul, 4ul, 8ul, 12ul}) {
    const auto condensed = predict::uniform_over_ranges(ranges, m);
    const auto actual = predict::lift(
        condensed, n, predict::RangePlacement::kHighEndpoint);
    const auto measurement = harness::measure_uniform_no_cd(
        decay, actual, 3000, /*seed=*/113, 1 << 16);
    const double h = condensed.entropy();
    const double bound = std::exp2(h) / (16.0 * loglog);
    EXPECT_GE(measurement.rounds.mean, bound) << "H=" << h;
  }
}

TEST(LowerBoundIntegration, RfChainBoundsContentionResolutionFromBelow) {
  // The full Lemma 2.5 + 2.7 pipeline: build the RF sequence from the
  // likelihood-ordered algorithm itself, derive the target-distance
  // code, and verify E[code length] >= H — hence the algorithm cannot
  // beat the entropy bound.
  constexpr std::size_t n = 1 << 12;
  const std::size_t ranges = info::num_ranges(n);
  const double radius = std::log2(std::log2(static_cast<double>(n)));
  for (double decay_rate : {0.4, 0.8, 1.0}) {
    const auto condensed = predict::geometric_ranges(ranges, decay_rate);
    const core::LikelihoodOrderedSchedule schedule(condensed);
    const auto sequence = rangefind::rf_construction(schedule, 400, n);
    const rangefind::SequenceTargetDistanceCode code(sequence, radius);
    const auto [bits, mass] = code.expected_length(condensed);
    ASSERT_NEAR(mass, 1.0, 1e-9);
    EXPECT_GE(bits + 1e-9, condensed.entropy())
        << "decay_rate=" << decay_rate;
  }
}

TEST(Table2Integration, RandomizedNoCdFollowsLogOver2bShape) {
  // Theorem 3.6: t(n) = Theta(log n / 2^b).
  constexpr std::size_t k = 2500;
  std::vector<double> predicted;
  std::vector<double> measured;
  const double logn = std::log2(static_cast<double>(kNetwork));
  for (std::size_t b : {0ul, 1ul, 2ul, 3ul, 4ul}) {
    const core::RangeGroupAdvice advice(kNetwork, b);
    std::vector<std::size_t> participants(k);
    for (std::size_t i = 0; i < k; ++i) participants[i] = i;
    const std::size_t group =
        core::bits_to_index(advice.advise(participants));
    const core::TruncatedDecaySchedule schedule(
        advice.ranges_in_group(group));
    const auto m = harness::measure_uniform_no_cd_fixed_k(
        schedule, k, 4000, /*seed=*/117, 1 << 14);
    ASSERT_DOUBLE_EQ(m.success_rate, 1.0);
    predicted.push_back(logn / std::exp2(static_cast<double>(b)));
    measured.push_back(m.rounds.mean);
  }
  const auto fit = harness::fit_through_origin(predicted, measured);
  EXPECT_GT(fit.r_squared, 0.85);
  // The two largest-b points both sit near the O(1) floor, so demand a
  // high-but-not-perfect rank correlation plus the headline ratio.
  EXPECT_GT(harness::spearman(predicted, measured), 0.85);
  EXPECT_GT(measured.front(), 2.5 * measured.back());
}

TEST(Table2Integration, DeterministicShapesMatchTheorems34And35) {
  constexpr std::size_t n = 1 << 10;
  // No CD (Theorem 3.4): worst case ~ n / 2^b.
  std::vector<double> no_cd_worst;
  for (std::size_t b : {0ul, 2ul, 4ul}) {
    const core::SubtreeScanProtocol protocol(n, b);
    const core::MinIdPrefixAdvice advice(n, b);
    no_cd_worst.push_back(harness::worst_case_deterministic_rounds(
        protocol, advice, n, /*k=*/3, false, 150, /*seed=*/119));
  }
  EXPECT_NEAR(no_cd_worst[0] / no_cd_worst[1], 4.0, 1.2);
  EXPECT_NEAR(no_cd_worst[1] / no_cd_worst[2], 4.0, 1.2);

  // CD (Theorem 3.5): worst case ~ log n - b (additive).
  std::vector<double> cd_worst;
  for (std::size_t b : {0ul, 3ul, 6ul, 9ul}) {
    const core::TreeDescentCdProtocol protocol(n, b);
    const core::MinIdPrefixAdvice advice(n, b);
    cd_worst.push_back(harness::worst_case_deterministic_rounds(
        protocol, advice, n, /*k=*/3, true, 150, /*seed=*/121));
  }
  for (std::size_t i = 1; i < cd_worst.size(); ++i) {
    EXPECT_NEAR(cd_worst[i - 1] - cd_worst[i], 3.0, 1.5)
        << "step " << i;
  }
}

TEST(Table2Integration, RandomizedCdIsAdditiveInAdvice) {
  // Theorem 3.7: t(n) = Theta(log log n - b).
  constexpr std::size_t k = 2500;
  std::vector<double> measured;
  for (std::size_t b : {0ul, 2ul, 4ul}) {
    const core::RangeGroupAdvice advice(kNetwork, b);
    std::vector<std::size_t> participants(k);
    for (std::size_t i = 0; i < k; ++i) participants[i] = i;
    const std::size_t group =
        core::bits_to_index(advice.advise(participants));
    const core::TruncatedWillardPolicy policy(
        advice.ranges_in_group(group));
    const auto m = harness::measure_uniform_cd_fixed_k(
        policy, k, 4000, /*seed=*/123, 1 << 12);
    ASSERT_DOUBLE_EQ(m.success_rate, 1.0);
    measured.push_back(m.rounds.mean);
  }
  // Strictly improving, and the full-advice end approaches O(1).
  EXPECT_GT(measured[0], measured[1]);
  EXPECT_GT(measured[1], measured[2]);
  EXPECT_LT(measured[2], measured[0]);
}

TEST(BaselineIntegration, PredictionsInterpolateBetweenBestAndWorstCase) {
  // The introduction's framing: perfect prediction ~ O(1) (fixed 1/k),
  // no prediction ~ decay's O(log n); the likelihood schedule moves
  // between them as entropy moves 0 -> max.
  constexpr std::size_t n = 1 << 12;
  constexpr std::size_t k = 1500;
  const auto point = info::SizeDistribution::point_mass(n, k);
  // Proportional cycling revisits the predicted range nearly every
  // round, realising the O(1) expected time a point prediction allows.
  const core::LikelihoodOrderedSchedule perfect(
      point.condense(), core::CycleMode::kProportional);
  const baselines::DecaySchedule decay(n);
  const auto m_perfect = harness::measure_uniform_no_cd_fixed_k(
      perfect, k, 4000, /*seed=*/127, 1 << 14);
  const auto m_decay = harness::measure_uniform_no_cd_fixed_k(
      decay, k, 4000, /*seed=*/127, 1 << 14);
  EXPECT_LT(m_perfect.rounds.mean, m_decay.rounds.mean);
  EXPECT_LT(m_perfect.rounds.mean, 8.0);
}

}  // namespace
}  // namespace crp
