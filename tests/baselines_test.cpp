#include <cmath>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/simple.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "channel/simulator.h"
#include "harness/measure.h"
#include "info/distribution.h"

namespace crp::baselines {
namespace {

TEST(Decay, SweepsGeometricProbabilities) {
  const DecaySchedule decay(1024);  // 10 ranges -> sweep length 11
  EXPECT_EQ(decay.sweep_length(), 11u);
  EXPECT_DOUBLE_EQ(decay.probability(0), 1.0);
  EXPECT_DOUBLE_EQ(decay.probability(1), 0.5);
  EXPECT_DOUBLE_EQ(decay.probability(10), std::exp2(-10.0));
  EXPECT_DOUBLE_EQ(decay.probability(11), 1.0);  // next sweep restarts
}

TEST(Decay, ReverseSweepMirrorsForward) {
  const DecaySchedule forward(256);
  const ReverseDecaySchedule backward(256);
  const std::size_t sweep = forward.sweep_length();
  for (std::size_t r = 0; r < sweep; ++r) {
    EXPECT_DOUBLE_EQ(forward.probability(r),
                     backward.probability(sweep - 1 - r));
  }
}

TEST(Decay, SolvesAllSizesWithinExpectedLogBound) {
  constexpr std::size_t n = 1 << 12;
  const DecaySchedule decay(n);
  for (std::size_t k : {2ul, 5ul, 37ul, 512ul, 4095ul}) {
    const auto m = harness::measure_uniform_no_cd_fixed_k(
        decay, k, 3000, /*seed=*/17, /*max_rounds=*/1 << 16);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0) << "k=" << k;
    // One sweep is 13 rounds; expected rounds should be a small
    // multiple of the sweep length regardless of k.
    EXPECT_LT(m.rounds.mean, 6.0 * (info::num_ranges(n) + 1)) << "k=" << k;
  }
}

TEST(Decay, ExpectedRoundsGrowLogarithmically) {
  // Doubling n^2 -> mean rounds roughly scales with log n: compare a
  // small and a large network at worst-case k ~ n.
  const DecaySchedule small(1 << 6);
  const DecaySchedule large(1 << 12);
  const auto m_small = harness::measure_uniform_no_cd_fixed_k(
      small, (1 << 6) - 1, 4000, 3, 1 << 16);
  const auto m_large = harness::measure_uniform_no_cd_fixed_k(
      large, (1 << 12) - 1, 4000, 3, 1 << 16);
  const double ratio = m_large.rounds.mean / m_small.rounds.mean;
  // log scaling predicts roughly 13/7 ~ 1.9; allow generous slack but
  // reject linear scaling (which would be ~64x).
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 4.0);
}

TEST(Willard, ProbabilityReplayIsConsistent) {
  const WillardPolicy willard(1 << 16);  // 16 ranges
  // Empty history: mid of [1,16] = 8.
  EXPECT_DOUBLE_EQ(willard.probability({}), std::exp2(-8.0));
  // Collision: k larger than 2^8 -> [9,16], mid 12.
  EXPECT_DOUBLE_EQ(willard.probability({true}), std::exp2(-12.0));
  // Silence: [1,7], mid 4.
  EXPECT_DOUBLE_EQ(willard.probability({false}), std::exp2(-4.0));
}

TEST(Willard, SolvesAllSizesInLogLogTime) {
  constexpr std::size_t n = 1 << 16;
  const WillardPolicy willard(n);
  for (std::size_t k : {2ul, 100ul, 5000ul, 60000ul}) {
    const auto m = harness::measure_uniform_cd_fixed_k(
        willard, k, 3000, /*seed=*/29, /*max_rounds=*/1 << 14);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0) << "k=" << k;
    // log log n = 4; expect a small multiple.
    EXPECT_LT(m.rounds.mean, 40.0) << "k=" << k;
  }
}

TEST(Willard, BeatsDecayForLargeNetworks) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 40000;
  const WillardPolicy willard(n);
  const DecaySchedule decay(n);
  const auto m_willard =
      harness::measure_uniform_cd_fixed_k(willard, k, 4000, 31, 1 << 14);
  const auto m_decay = harness::measure_uniform_no_cd_fixed_k(
      decay, k, 4000, 31, 1 << 14);
  EXPECT_LT(m_willard.rounds.mean, m_decay.rounds.mean);
}

TEST(Willard, RepeatsReduceMisdirection) {
  const WillardPolicy base(1 << 16, 1);
  const WillardPolicy repeated(1 << 16, 3);
  // With repeats, the first probe persists for 3 rounds.
  EXPECT_DOUBLE_EQ(repeated.probability({}), base.probability({}));
  EXPECT_DOUBLE_EQ(repeated.probability({false}), base.probability({}));
  EXPECT_DOUBLE_EQ(repeated.probability({false, false}),
                   base.probability({}));
  EXPECT_DOUBLE_EQ(repeated.probability({false, false, false}),
                   base.probability({false}));
  // A collision anywhere in the group moves right.
  EXPECT_DOUBLE_EQ(repeated.probability({true, false, false}),
                   base.probability({true}));
}

TEST(FixedProbability, SucceedsInConstantRoundsGivenGoodEstimate) {
  for (std::size_t k : {4ul, 64ul, 1000ul}) {
    const auto schedule = FixedProbabilitySchedule::for_size_estimate(k);
    const auto m = harness::measure_uniform_no_cd_fixed_k(
        schedule, k, 5000, /*seed=*/41, /*max_rounds=*/1 << 12);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
    EXPECT_LT(m.rounds.mean, 4.0) << "k=" << k;  // ~e rounds
  }
}

TEST(FixedProbability, DegradesWithBadEstimate) {
  // An 8x size underestimate: per-round success probability drops from
  // ~1/e to ~8 e^{-8}, so the mean grows by a factor of ~100.
  constexpr std::size_t k = 1024;
  const auto good = FixedProbabilitySchedule::for_size_estimate(k);
  const auto bad = FixedProbabilitySchedule::for_size_estimate(k / 8);
  const auto m_good =
      harness::measure_uniform_no_cd_fixed_k(good, k, 2000, 43, 1 << 16);
  const auto m_bad =
      harness::measure_uniform_no_cd_fixed_k(bad, k, 500, 43, 1 << 16);
  ASSERT_DOUBLE_EQ(m_bad.success_rate, 1.0);
  EXPECT_LT(m_good.rounds.mean * 20.0, m_bad.rounds.mean);
}

TEST(FixedProbability, ValidatesInput) {
  EXPECT_THROW(FixedProbabilitySchedule(-0.5), std::invalid_argument);
  EXPECT_THROW(FixedProbabilitySchedule(1.5), std::invalid_argument);
  EXPECT_THROW(FixedProbabilitySchedule::for_size_estimate(0),
               std::invalid_argument);
}

TEST(RoundRobin, WorstCaseIsLinear) {
  constexpr std::size_t n = 128;
  const RoundRobinProtocol protocol(n);
  const std::vector<std::size_t> participants{n - 1};
  const auto result =
      channel::run_deterministic(protocol, {}, participants, false);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.rounds, n);
}

TEST(TreeDescent, ExhaustiveTriplesResolveWithinLogPlusOne) {
  constexpr std::size_t n = 16;
  const TreeDescentProtocol protocol(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        const std::vector<std::size_t> participants{a, b, c};
        const auto result = channel::run_deterministic(
            protocol, {}, participants, true, {.max_rounds = 32});
        ASSERT_TRUE(result.solved)
            << "{" << a << "," << b << "," << c << "}";
        EXPECT_LE(result.rounds, 5u);
      }
    }
  }
}

}  // namespace
}  // namespace crp::baselines
