// Tests for the extension features: the footnote-4 all-transmit
// prelude, faulty advice (Section 1.3's robustness theme), fallback
// sweeps in the truncated protocols, energy accounting, and the
// Pliam-style guesswork construction backing the Section 2.5
// conjecture.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/simple.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "channel/simulator.h"
#include "core/advice.h"
#include "core/advice_deterministic.h"
#include "core/advice_randomized.h"
#include "core/faulty_advice.h"
#include "core/likelihood_schedule.h"
#include "core/prelude.h"
#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp::core {
namespace {

// ---- prelude (footnote 4) ----

TEST(Prelude, SolvesSingletonNetworkInOneRound) {
  const auto inner =
      std::make_shared<baselines::DecaySchedule>(std::size_t{1} << 10);
  const WithAllTransmitPrelude schedule(inner);
  auto rng = channel::make_rng(1);
  const auto result = channel::run_uniform_no_cd(schedule, 1, rng);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(Prelude, ShiftsInnerScheduleByOneRound) {
  const auto inner =
      std::make_shared<baselines::DecaySchedule>(std::size_t{1} << 10);
  const WithAllTransmitPrelude schedule(inner);
  EXPECT_DOUBLE_EQ(schedule.probability(0), 1.0);
  for (std::size_t r = 1; r < 30; ++r) {
    EXPECT_DOUBLE_EQ(schedule.probability(r), inner->probability(r - 1));
  }
  EXPECT_EQ(schedule.name(), "decay+prelude");
}

TEST(Prelude, CdVersionStripsProbeFeedback) {
  const auto inner =
      std::make_shared<baselines::WillardPolicy>(std::size_t{1} << 16);
  const WithAllTransmitPreludeCd policy(inner);
  EXPECT_DOUBLE_EQ(policy.probability({}), 1.0);
  // After the probe's collision, the inner policy starts fresh.
  EXPECT_DOUBLE_EQ(policy.probability({true}), inner->probability({}));
  EXPECT_DOUBLE_EQ(policy.probability({true, false}),
                   inner->probability({false}));
}

TEST(Prelude, CdVersionStillSolvesNormalNetworks) {
  const auto inner =
      std::make_shared<baselines::WillardPolicy>(std::size_t{1} << 12);
  const WithAllTransmitPreludeCd policy(inner);
  for (std::size_t k : {1ul, 2ul, 100ul, 4000ul}) {
    const auto m = harness::measure_uniform_cd_fixed_k(
        policy, k, 1000, /*seed=*/3, 1 << 12);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0) << "k=" << k;
  }
}

TEST(Prelude, RejectsNullInner) {
  EXPECT_THROW(WithAllTransmitPrelude(nullptr), std::invalid_argument);
  EXPECT_THROW(WithAllTransmitPreludeCd(nullptr), std::invalid_argument);
}

// ---- faulty advice ----

TEST(FaultyAdviceTest, ZeroFlipProbabilityIsIdentity) {
  constexpr std::size_t n = 256;
  const auto inner = std::make_shared<MinIdPrefixAdvice>(n, 4);
  const FaultyAdvice faulty(inner, 0.0, /*seed=*/7);
  auto rng = channel::make_rng(5);
  for (int t = 0; t < 50; ++t) {
    const auto set = harness::random_participant_set(n, 6, rng);
    EXPECT_EQ(faulty.advise(set), inner->advise(set));
  }
  EXPECT_EQ(faulty.bits(), 4u);
  EXPECT_EQ(faulty.name(), "min-id-prefix+faulty");
}

TEST(FaultyAdviceTest, CorruptionIsDeterministicPerParticipantSet) {
  constexpr std::size_t n = 256;
  const auto inner = std::make_shared<MinIdPrefixAdvice>(n, 8);
  const FaultyAdvice faulty(inner, 0.5, /*seed=*/7);
  const std::vector<std::size_t> set{10, 20, 30};
  EXPECT_EQ(faulty.advise(set), faulty.advise(set));
  // A different seed gives (almost surely) different corruption on at
  // least one of several sets.
  const FaultyAdvice other(inner, 0.5, /*seed=*/8);
  bool differs = false;
  auto rng = channel::make_rng(9);
  for (int t = 0; t < 20 && !differs; ++t) {
    const auto probe = harness::random_participant_set(n, 5, rng);
    differs = faulty.advise(probe) != other.advise(probe);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultyAdviceTest, SubtreeScanStaysCorrectViaFallbackSweep) {
  // Wrong advice sends the scan to the wrong subtree; the fallback
  // full sweep still resolves, just slower.
  constexpr std::size_t n = 256;
  constexpr std::size_t b = 4;
  const SubtreeScanProtocol protocol(n, b);
  const auto inner = std::make_shared<MinIdPrefixAdvice>(n, b);
  const FaultyAdvice faulty(inner, 1.0, /*seed=*/11);  // always wrong
  auto rng = channel::make_rng(13);
  for (int t = 0; t < 50; ++t) {
    const auto set = harness::random_participant_set(n, 5, rng);
    const auto result = channel::run_deterministic(
        protocol, faulty.advise(set), set, false, {.max_rounds = 4 * n});
    ASSERT_TRUE(result.solved);
  }
}

TEST(FaultyAdviceTest, TreeDescentEscalatesOutOfWrongSubtree) {
  constexpr std::size_t n = 256;
  constexpr std::size_t b = 4;
  const TreeDescentCdProtocol protocol(n, b);
  const auto inner = std::make_shared<MinIdPrefixAdvice>(n, b);
  const FaultyAdvice faulty(inner, 1.0, /*seed=*/17);
  auto rng = channel::make_rng(19);
  for (int t = 0; t < 50; ++t) {
    const auto set = harness::random_participant_set(n, 5, rng);
    const auto result = channel::run_deterministic(
        protocol, faulty.advise(set), set, true, {.max_rounds = 8 * n});
    ASSERT_TRUE(result.solved);
    // Wrong subtree costs at most its depth before escalation to the
    // full-tree descent.
    EXPECT_LE(result.rounds, 2 * id_tree_height(n) + 2);
  }
}

TEST(FaultyAdviceTest, GracefulDegradationWithFlipRate) {
  // Expected rounds of the advised scan grow smoothly with the flip
  // rate instead of jumping to failure.
  constexpr std::size_t n = 1 << 10;
  constexpr std::size_t b = 5;
  const SubtreeScanProtocol protocol(n, b);
  const auto inner = std::make_shared<MinIdPrefixAdvice>(n, b);
  const auto actual = info::SizeDistribution::uniform(64);
  std::vector<double> means;
  for (double flip : {0.0, 0.2, 1.0}) {
    const FaultyAdvice faulty(inner, flip, /*seed=*/23);
    const auto m = harness::measure_deterministic_advice(
        protocol, faulty, actual, n, false, 600, /*seed=*/29, 8 * n);
    ASSERT_DOUBLE_EQ(m.success_rate, 1.0) << "flip=" << flip;
    means.push_back(m.rounds.mean);
  }
  EXPECT_LT(means[0], means[1]);
  EXPECT_LT(means[1], means[2]);
}

TEST(FaultyAdviceTest, ValidatesInput) {
  const auto inner = std::make_shared<MinIdPrefixAdvice>(64, 2);
  EXPECT_THROW(FaultyAdvice(nullptr, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(FaultyAdvice(inner, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(FaultyAdvice(inner, 1.1, 1), std::invalid_argument);
}

// ---- fallback sweeps in truncated protocols ----

TEST(TruncatedFallback, DecayInterleavesFallbackEveryFourthSweep) {
  const TruncatedDecaySchedule schedule({5, 6}, {1, 2, 3, 4, 5, 6, 7, 8});
  // Period: 3 group sweeps (6 rounds) + fallback (8 rounds) = 14.
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(schedule.range_for_round(r), 5 + (r % 2));
  }
  for (std::size_t r = 6; r < 14; ++r) {
    EXPECT_EQ(schedule.range_for_round(r), r - 5);
  }
  EXPECT_EQ(schedule.range_for_round(14), 5u);  // next period
}

TEST(TruncatedFallback, WrongGroupAdviceStillSolvesWithFallback) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 700;  // true range 10
  std::vector<std::size_t> all_ranges(info::num_ranges(n));
  for (std::size_t i = 0; i < all_ranges.size(); ++i) {
    all_ranges[i] = i + 1;
  }
  // Advised group {1, 2}: never contains range 10.
  const TruncatedDecaySchedule with_fallback({1, 2}, all_ranges);
  const auto m = harness::measure_uniform_no_cd_fixed_k(
      with_fallback, k, 2000, /*seed=*/31, 1 << 14);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);

  const TruncatedDecaySchedule without({1, 2});
  const auto m_without = harness::measure_uniform_no_cd_fixed_k(
      without, k, 200, /*seed=*/31, 1 << 10);
  EXPECT_LT(m_without.success_rate, 0.05);
}

TEST(TruncatedFallback, WillardFallbackRecoversFromWrongGroup) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 700;
  std::vector<std::size_t> all_ranges(info::num_ranges(n));
  for (std::size_t i = 0; i < all_ranges.size(); ++i) {
    all_ranges[i] = i + 1;
  }
  const TruncatedWillardPolicy with_fallback({1, 2}, all_ranges);
  const auto m = harness::measure_uniform_cd_fixed_k(
      with_fallback, k, 2000, /*seed=*/37, 1 << 12);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
}

TEST(TruncatedFallback, CorrectAdviceCostsOnlyConstantFactor) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 700;
  const RangeGroupAdvice advice(n, 3);
  std::vector<std::size_t> participants(k);
  for (std::size_t i = 0; i < k; ++i) participants[i] = i;
  const std::size_t group = bits_to_index(advice.advise(participants));
  std::vector<std::size_t> all_ranges(info::num_ranges(n));
  for (std::size_t i = 0; i < all_ranges.size(); ++i) {
    all_ranges[i] = i + 1;
  }
  const TruncatedDecaySchedule plain(advice.ranges_in_group(group));
  const TruncatedDecaySchedule guarded(advice.ranges_in_group(group),
                                       all_ranges);
  const auto m_plain = harness::measure_uniform_no_cd_fixed_k(
      plain, k, 3000, /*seed=*/41, 1 << 12);
  const auto m_guarded = harness::measure_uniform_no_cd_fixed_k(
      guarded, k, 3000, /*seed=*/41, 1 << 12);
  EXPECT_LT(m_guarded.rounds.mean, 3.0 * m_plain.rounds.mean + 3.0);
}

// ---- energy accounting ----

TEST(Energy, CountsTransmissionsAcrossRounds) {
  // k = 2 with p = 1 collides forever: after R rounds, 2R transmissions.
  class AllTransmit final : public channel::ProbabilitySchedule {
   public:
    double probability(std::size_t) const override { return 1.0; }
    std::string name() const override { return "all"; }
  };
  const AllTransmit schedule;
  auto rng = channel::make_rng(43);
  const auto result =
      channel::run_uniform_no_cd(schedule, 2, rng, {.max_rounds = 10});
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.transmissions, 20u);
}

TEST(Energy, SuccessfulRunsIncludeTheWinningTransmission) {
  const auto schedule =
      baselines::FixedProbabilitySchedule::for_size_estimate(1);
  auto rng = channel::make_rng(47);
  const auto result = channel::run_uniform_no_cd(schedule, 1, rng);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.transmissions, 1u);
}

TEST(Energy, DeterministicEngineCountsToo) {
  const baselines::RoundRobinProtocol protocol(16);
  const std::vector<std::size_t> participants{3};
  const auto result =
      channel::run_deterministic(protocol, {}, participants, false);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.rounds, 4u);
  EXPECT_EQ(result.transmissions, 1u);  // silent until its slot
}

TEST(Energy, GoodPredictionsSaveEnergyNotJustTime) {
  constexpr std::size_t n = 1 << 12;
  const auto actual = info::SizeDistribution::point_mass(n, 1000);
  const LikelihoodOrderedSchedule predicted(actual.condense());
  const baselines::DecaySchedule decay(n);
  double predicted_energy = 0.0;
  double decay_energy = 0.0;
  constexpr std::size_t kTrials = 1500;
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng_a = channel::derive_rng(51, t);
    auto rng_b = channel::derive_rng(53, t);
    predicted_energy += static_cast<double>(
        channel::run_uniform_no_cd(predicted, 1000, rng_a, {1 << 14})
            .transmissions);
    decay_energy += static_cast<double>(
        channel::run_uniform_no_cd(decay, 1000, rng_b, {1 << 14})
            .transmissions);
  }
  EXPECT_LT(predicted_energy, decay_energy);
}

// ---- Pliam construction (Section 2.5 conjecture support) ----

TEST(Guesswork, MatchesHandComputedValue) {
  const info::CondensedDistribution source{{0.5, 0.3, 0.2}};
  // Likelihood order 1, 2, 3: E[G] = .5*1 + .3*2 + .2*3 = 1.7.
  EXPECT_NEAR(crp::predict::expected_guesswork(source), 1.7, 1e-12);
}

TEST(Guesswork, SpikedUniformSeparatesGuessworkFromEntropy) {
  // Pliam's point: E[G] / 2^H is unbounded. With mass 1/2 on a spike
  // and 1/2 spread over m-1 symbols, H ~ 1 + (1/2) log2 m but
  // E[G] ~ m/4.
  double previous_ratio = 0.0;
  for (std::size_t m : {64ul, 256ul, 1024ul, 4096ul}) {
    const auto source = crp::predict::spiked_uniform(m, 0.5);
    const double ratio = crp::predict::expected_guesswork(source) /
                         std::exp2(source.entropy());
    EXPECT_GT(ratio, previous_ratio) << "m=" << m;
    previous_ratio = ratio;
  }
  EXPECT_GT(previous_ratio, 4.0);  // already far beyond any constant
}

TEST(Guesswork, UniformSourceGuessworkIsHalfAlphabet) {
  const auto uniform = info::CondensedDistribution::uniform(100);
  EXPECT_NEAR(crp::predict::expected_guesswork(uniform), 50.5, 1e-9);
}

TEST(Guesswork, ValidatesSpikeParameters) {
  EXPECT_THROW(crp::predict::spiked_uniform(1, 0.5),
               std::invalid_argument);
  EXPECT_THROW(crp::predict::spiked_uniform(8, 0.0),
               std::invalid_argument);
  EXPECT_THROW(crp::predict::spiked_uniform(8, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace crp::core
