#include "info/distribution.h"

#include <cmath>
#include <gtest/gtest.h>

#include "channel/rng.h"

namespace crp::info {
namespace {

TEST(RangeGeometry, NumRangesMatchesCeilLog2) {
  EXPECT_EQ(num_ranges(2), 1u);
  EXPECT_EQ(num_ranges(3), 2u);
  EXPECT_EQ(num_ranges(4), 2u);
  EXPECT_EQ(num_ranges(5), 3u);
  EXPECT_EQ(num_ranges(8), 3u);
  EXPECT_EQ(num_ranges(9), 4u);
  EXPECT_EQ(num_ranges(1024), 10u);
  EXPECT_EQ(num_ranges(1025), 11u);
}

TEST(RangeGeometry, RejectsDegenerateNetworks) {
  EXPECT_THROW(num_ranges(0), std::invalid_argument);
  EXPECT_THROW(num_ranges(1), std::invalid_argument);
}

TEST(RangeGeometry, RangeOfSizeMatchesPaperExamples) {
  // Section 2.2: i = 1 is associated with just the value 2, i = 2 with
  // 3..4, i = 3 with 5..8, and so on.
  EXPECT_EQ(range_of_size(2), 1u);
  EXPECT_EQ(range_of_size(3), 2u);
  EXPECT_EQ(range_of_size(4), 2u);
  EXPECT_EQ(range_of_size(5), 3u);
  EXPECT_EQ(range_of_size(8), 3u);
  EXPECT_EQ(range_of_size(9), 4u);
  EXPECT_EQ(range_of_size(16), 4u);
  EXPECT_EQ(range_of_size(17), 5u);
}

TEST(RangeGeometry, EndpointsBracketEveryRange) {
  for (std::size_t i = 1; i <= 20; ++i) {
    EXPECT_EQ(range_of_size(range_min_size(i)), i);
    EXPECT_EQ(range_of_size(range_max_size(i)), i);
    if (i > 1) {
      EXPECT_EQ(range_min_size(i), range_max_size(i - 1) + 1);
    }
  }
}

TEST(RangeGeometry, EveryRepresentableSizeBelongsToExactlyOneRange) {
  for (std::size_t k = 2; k <= 4096; ++k) {
    const std::size_t i = range_of_size(k);
    EXPECT_GE(k, range_min_size(i)) << "k=" << k;
    EXPECT_LE(k, range_max_size(i)) << "k=" << k;
  }
}

TEST(SizeDistribution, RejectsMalformedInput) {
  EXPECT_THROW(SizeDistribution({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(SizeDistribution({0.5, 0.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(SizeDistribution({0.0, 0.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(SizeDistribution({0.0, 0.0, -0.1, 1.1}),
               std::invalid_argument);
}

TEST(SizeDistribution, PointMassHasZeroEntropy) {
  const auto dist = SizeDistribution::point_mass(1024, 100);
  EXPECT_DOUBLE_EQ(dist.entropy(), 0.0);
  EXPECT_DOUBLE_EQ(dist.prob(100), 1.0);
  EXPECT_DOUBLE_EQ(dist.prob(99), 0.0);
  EXPECT_EQ(dist.support_size(), 1u);
  EXPECT_DOUBLE_EQ(dist.condense().entropy(), 0.0);
}

TEST(SizeDistribution, UniformEntropyIsLogSupport) {
  const auto dist = SizeDistribution::uniform(1025);  // sizes 2..1025
  EXPECT_NEAR(dist.entropy(), std::log2(1024.0), 1e-9);
}

TEST(SizeDistribution, CondenseAggregatesGeometricRanges) {
  // Mass 0.5 on size 2 (range 1), 0.25 on 3 and 4 combined (range 2),
  // 0.25 on 7 (range 3).
  std::vector<double> probs(9, 0.0);
  probs[2] = 0.5;
  probs[3] = 0.125;
  probs[4] = 0.125;
  probs[7] = 0.25;
  const SizeDistribution dist{std::move(probs)};
  const auto condensed = dist.condense();
  ASSERT_EQ(condensed.size(), 3u);
  EXPECT_NEAR(condensed.prob(1), 0.5, 1e-12);
  EXPECT_NEAR(condensed.prob(2), 0.25, 1e-12);
  EXPECT_NEAR(condensed.prob(3), 0.25, 1e-12);
}

TEST(SizeDistribution, CondensedEntropyNeverExceedsRawEntropy) {
  // Condensing is a deterministic function of X, so H(c(X)) <= H(X).
  const auto uniform = SizeDistribution::uniform(4096);
  EXPECT_LE(uniform.condense().entropy(), uniform.entropy() + 1e-12);
}

TEST(SizeDistribution, SamplingMatchesProbabilities) {
  const auto dist = SizeDistribution::from_pairs(
      64, std::vector<std::pair<std::size_t, double>>{
              {4, 0.5}, {17, 0.3}, {63, 0.2}});
  auto rng = channel::make_rng(7);
  constexpr std::size_t kTrials = 200000;
  std::size_t count4 = 0;
  std::size_t count17 = 0;
  std::size_t count63 = 0;
  for (std::size_t t = 0; t < kTrials; ++t) {
    switch (dist.sample(rng)) {
      case 4: ++count4; break;
      case 17: ++count17; break;
      case 63: ++count63; break;
      default: FAIL() << "sampled a zero-probability size";
    }
  }
  EXPECT_NEAR(static_cast<double>(count4) / kTrials, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(count17) / kTrials, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(count63) / kTrials, 0.2, 0.01);
}

TEST(SizeDistribution, MeanMatchesHandComputation) {
  const auto dist = SizeDistribution::from_pairs(
      16, std::vector<std::pair<std::size_t, double>>{{2, 0.5}, {10, 0.5}});
  EXPECT_NEAR(dist.mean(), 6.0, 1e-12);
}

TEST(CondensedDistribution, UniformHasMaximumEntropy) {
  const auto condensed = CondensedDistribution::uniform(16);
  EXPECT_NEAR(condensed.entropy(), 4.0, 1e-12);
}

TEST(CondensedDistribution, KlDivergenceSelfIsZero) {
  const auto condensed = CondensedDistribution::uniform(8);
  EXPECT_DOUBLE_EQ(condensed.kl_divergence(condensed), 0.0);
}

TEST(CondensedDistribution, KlDivergenceInfiniteOnMissingSupport) {
  const auto p = CondensedDistribution::uniform(4);
  const auto q = CondensedDistribution::point_mass(4, 2);
  EXPECT_TRUE(std::isinf(p.kl_divergence(q)));
  // The other direction is finite: point mass vs uniform.
  EXPECT_NEAR(q.kl_divergence(p), 2.0, 1e-12);
}

TEST(CondensedDistribution, KlDivergenceRejectsAlphabetMismatch) {
  const auto p = CondensedDistribution::uniform(4);
  const auto q = CondensedDistribution::uniform(5);
  EXPECT_THROW((void)p.kl_divergence(q), std::invalid_argument);
}

TEST(CondensedDistribution, LikelihoodOrderSortsByProbability) {
  const CondensedDistribution condensed{{0.1, 0.4, 0.2, 0.3}};
  const auto order = condensed.ranges_by_likelihood();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 4u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 1u);
}

TEST(CondensedDistribution, LikelihoodOrderBreaksTiesTowardSmallRanges) {
  const CondensedDistribution condensed{{0.25, 0.25, 0.25, 0.25}};
  const auto order = condensed.ranges_by_likelihood();
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(CondensedDistribution, SampleStaysInAlphabet) {
  const auto condensed = CondensedDistribution::uniform(5);
  auto rng = channel::make_rng(3);
  for (int t = 0; t < 1000; ++t) {
    const std::size_t i = condensed.sample(rng);
    EXPECT_GE(i, 1u);
    EXPECT_LE(i, 5u);
  }
}

// Property sweep: lifting any of a family of distributions and
// re-condensing is the identity, and entropies are finite and bounded.
class CondensedRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CondensedRoundTrip, EntropyBoundedByLogAlphabet) {
  const std::size_t n = GetParam();
  const auto uniform = SizeDistribution::uniform(n);
  const auto condensed = uniform.condense();
  EXPECT_LE(condensed.entropy(),
            std::log2(static_cast<double>(condensed.size())) + 1e-9);
  double total = 0.0;
  for (std::size_t i = 1; i <= condensed.size(); ++i) {
    total += condensed.prob(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CondensedRoundTrip,
                         ::testing::Values(2, 3, 4, 7, 8, 9, 64, 100, 1024,
                                           4096, 100000));

}  // namespace
}  // namespace crp::info
