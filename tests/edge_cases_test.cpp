// Edge cases the happy-path tests don't reach: non-power-of-two
// network sizes (ragged id trees and range partitions), predictions
// with infinite divergence (zero mass on the true range), minimum-size
// networks, and extreme parameter corners.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "channel/simulator.h"
#include "core/advice.h"
#include "core/advice_deterministic.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp {
namespace {

// ---- non-power-of-two network sizes ----

class RaggedNetwork : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RaggedNetwork, DecayAndWillardSolveEveryFeasibleSize) {
  const std::size_t n = GetParam();
  const baselines::DecaySchedule decay(n);
  const baselines::WillardPolicy willard(n);
  for (std::size_t k : {std::size_t{2}, (n + 2) / 2, n}) {
    const auto m_decay = harness::measure_uniform_no_cd_fixed_k(
        decay, k, 500, /*seed=*/1, 1 << 16);
    EXPECT_DOUBLE_EQ(m_decay.success_rate, 1.0) << "n=" << n << " k=" << k;
    const auto m_willard = harness::measure_uniform_cd_fixed_k(
        willard, k, 500, /*seed=*/2, 1 << 14);
    EXPECT_DOUBLE_EQ(m_willard.success_rate, 1.0)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(RaggedNetwork, PredictionAlgorithmsSolveUniformActuals) {
  const std::size_t n = GetParam();
  const auto actual = info::SizeDistribution::uniform(n);
  const auto condensed = actual.condense();
  const core::LikelihoodOrderedSchedule schedule(condensed);
  const core::CodedSearchPolicy policy(condensed);
  const auto m_no_cd = harness::measure_uniform_no_cd(
      schedule, actual, 500, /*seed=*/3, 1 << 16);
  EXPECT_DOUBLE_EQ(m_no_cd.success_rate, 1.0) << "n=" << n;
  const auto m_cd = harness::measure_uniform_cd(policy, actual, 500,
                                                /*seed=*/4, 1 << 14);
  EXPECT_DOUBLE_EQ(m_cd.success_rate, 1.0) << "n=" << n;
}

TEST_P(RaggedNetwork, DeterministicAdviceProtocolsHandleRaggedIdTrees) {
  const std::size_t n = GetParam();
  const std::size_t height = core::id_tree_height(n);
  for (std::size_t b : {std::size_t{0}, std::size_t{1}, height / 2}) {
    const core::SubtreeScanProtocol scan(n, b);
    const core::TreeDescentCdProtocol descent(n, b);
    const core::MinIdPrefixAdvice advice(n, b);
    auto rng = channel::make_rng(5 + n + b);
    for (int trial = 0; trial < 30; ++trial) {
      const std::size_t k =
          std::min<std::size_t>(n, 2 + static_cast<std::size_t>(rng() % 7));
      const auto participants = harness::random_participant_set(n, k, rng);
      const auto bits = advice.advise(participants);
      const auto scan_result = channel::run_deterministic(
          scan, bits, participants, false, {.max_rounds = 4 * n});
      ASSERT_TRUE(scan_result.solved) << "n=" << n << " b=" << b;
      const auto descent_result = channel::run_deterministic(
          descent, bits, participants, true, {.max_rounds = 4 * n});
      ASSERT_TRUE(descent_result.solved) << "n=" << n << " b=" << b;
      EXPECT_LE(descent_result.rounds, height - b + 1)
          << "n=" << n << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RaggedNetwork,
                         ::testing::Values(3, 5, 6, 7, 100, 1000, 12345));

// ---- infinite divergence: prediction gives zero mass to the truth ----

TEST(InfiniteDivergence, LikelihoodScheduleStillSolvesEventually) {
  // The prediction puts zero mass on the true range; the likelihood
  // ordering still enumerates every range per pass, so the algorithm
  // stays correct — only slower (the true range sorts last).
  constexpr std::size_t n = 1 << 12;
  const std::size_t ranges = info::num_ranges(n);
  const auto prediction = info::CondensedDistribution::point_mass(ranges, 2);
  const auto truth = info::SizeDistribution::point_mass(n, 3000);  // rng 12
  ASSERT_TRUE(std::isinf(truth.condense().kl_divergence(prediction)));
  const core::LikelihoodOrderedSchedule schedule(prediction);
  const auto m = harness::measure_uniform_no_cd(schedule, truth, 1000,
                                                /*seed=*/7, 1 << 16);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  // The true range is probed late in each pass but still every pass.
  EXPECT_GT(m.rounds.mean, 5.0);
}

TEST(InfiniteDivergence, CodedSearchFirstPassCoversZeroMassClasses) {
  constexpr std::size_t n = 1 << 12;
  const std::size_t ranges = info::num_ranges(n);
  const auto prediction = info::CondensedDistribution::point_mass(ranges, 2);
  const auto truth = info::SizeDistribution::point_mass(n, 3000);
  const core::CodedSearchPolicy policy(prediction);
  const auto m = harness::measure_uniform_cd(policy, truth, 1000,
                                             /*seed=*/8, 1 << 14);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
}

TEST(InfiniteDivergence, ProportionalCyclingAlsoRetainsCoverage) {
  constexpr std::size_t n = 1 << 12;
  const std::size_t ranges = info::num_ranges(n);
  const auto prediction = info::CondensedDistribution::point_mass(ranges, 2);
  const auto truth = info::SizeDistribution::point_mass(n, 3000);
  const core::LikelihoodOrderedSchedule schedule(
      prediction, core::CycleMode::kProportional);
  const auto m = harness::measure_uniform_no_cd(schedule, truth, 1000,
                                                /*seed=*/9, 1 << 16);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
}

// ---- minimum-size corners ----

TEST(MinimumNetwork, NEquals2EverythingDegeneratesGracefully) {
  constexpr std::size_t n = 2;  // single range, k = 2 forced
  EXPECT_EQ(info::num_ranges(n), 1u);
  const auto actual = info::SizeDistribution::point_mass(n, 2);
  const core::LikelihoodOrderedSchedule schedule(actual.condense());
  EXPECT_DOUBLE_EQ(schedule.probability(0), 0.5);
  const auto m = harness::measure_uniform_no_cd(schedule, actual, 2000,
                                                /*seed=*/10, 1 << 10);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  // k = 2, p = 1/2: success probability 1/2 per round, mean 2.
  EXPECT_NEAR(m.rounds.mean, 2.0, 0.1);

  const core::CodedSearchPolicy policy(actual.condense());
  const auto m_cd = harness::measure_uniform_cd(policy, actual, 2000,
                                                /*seed=*/11, 1 << 10);
  EXPECT_DOUBLE_EQ(m_cd.success_rate, 1.0);
}

TEST(MinimumNetwork, AdviceProtocolsAtNEquals2) {
  const core::SubtreeScanProtocol scan(2, 0);
  const core::TreeDescentCdProtocol descent(2, 1);
  const core::MinIdPrefixAdvice advice0(2, 0);
  const core::MinIdPrefixAdvice advice1(2, 1);
  const std::vector<std::size_t> both{0, 1};
  const auto scan_result = channel::run_deterministic(
      scan, advice0.advise(both), both, false, {.max_rounds = 8});
  ASSERT_TRUE(scan_result.solved);
  EXPECT_EQ(scan_result.rounds, 1u);  // min id 0 owns slot 0
  const auto descent_result = channel::run_deterministic(
      descent, advice1.advise(both), both, true, {.max_rounds = 8});
  ASSERT_TRUE(descent_result.solved);
  EXPECT_EQ(descent_result.rounds, 1u);  // full advice names id 0
}

TEST(ExtremeSkew, NearOnePointMassPredictionsAreFinite) {
  // A prediction with 1 - 1e-12 mass on one range: entropy ~ 0, Huffman
  // still yields a valid code, and the schedule is well-formed.
  const std::size_t ranges = 16;
  const auto prediction =
      predict::bimodal_ranges(ranges, 5, 11, 1e-12);
  EXPECT_LT(prediction.entropy(), 1e-9);
  const core::LikelihoodOrderedSchedule schedule(prediction);
  EXPECT_DOUBLE_EQ(schedule.probability(0), std::exp2(-5.0));
  const core::CodedSearchPolicy policy(prediction);
  EXPECT_DOUBLE_EQ(policy.probability({}), std::exp2(-5.0));
}

TEST(LargeNetwork, MillionNodeNetworkStaysTractable) {
  constexpr std::size_t n = 1 << 20;
  EXPECT_EQ(info::num_ranges(n), 20u);
  const auto actual = predict::log_normal_sizes(n, 10.0, 1.0);
  const core::LikelihoodOrderedSchedule schedule(actual.condense());
  const auto m = harness::measure_uniform_no_cd(schedule, actual, 300,
                                                /*seed=*/13, 1 << 18);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
}

}  // namespace
}  // namespace crp
