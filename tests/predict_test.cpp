#include <cmath>

#include <gtest/gtest.h>

#include "channel/rng.h"
#include "predict/families.h"
#include "predict/noise.h"

namespace crp::predict {
namespace {

TEST(Families, UniformOverRangesHasLogEntropy) {
  for (std::size_t m : {1ul, 2ul, 4ul, 8ul}) {
    const auto condensed = uniform_over_ranges(16, m);
    EXPECT_NEAR(condensed.entropy(), std::log2(static_cast<double>(m)),
                1e-12);
  }
}

TEST(Families, GeometricEntropySweepsSmoothly) {
  const auto nearly_point = geometric_ranges(16, 0.05);
  const auto halfway = geometric_ranges(16, 0.5);
  const auto uniformish = geometric_ranges(16, 1.0);
  EXPECT_LT(nearly_point.entropy(), halfway.entropy());
  EXPECT_LT(halfway.entropy(), uniformish.entropy());
  EXPECT_NEAR(uniformish.entropy(), 4.0, 1e-9);
}

TEST(Families, ZipfExponentSharpens) {
  EXPECT_GT(zipf_ranges(16, 0.5).entropy(), zipf_ranges(16, 2.0).entropy());
}

TEST(Families, BimodalEntropyIsBinaryEntropy) {
  const auto condensed = bimodal_ranges(16, 3, 11, 0.25);
  const double expected =
      -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(condensed.entropy(), expected, 1e-12);
}

TEST(Families, MixInterpolates) {
  const auto a = uniform_over_ranges(8, 1);
  const auto b = uniform_over_ranges(8, 8);
  const auto mixed = mix(a, b, 0.5);
  EXPECT_NEAR(mixed.prob(1), 0.5 + 0.5 / 8.0, 1e-12);
  EXPECT_NEAR(mixed.prob(5), 0.5 / 8.0, 1e-12);
}

TEST(Families, LiftThenCondenseIsIdentity) {
  constexpr std::size_t n = 1 << 10;
  const auto condensed = zipf_ranges(info::num_ranges(n), 1.1);
  for (auto placement : {RangePlacement::kLowEndpoint,
                         RangePlacement::kHighEndpoint,
                         RangePlacement::kUniform}) {
    const auto lifted = lift(condensed, n, placement);
    const auto back = lifted.condense();
    ASSERT_EQ(back.size(), condensed.size());
    for (std::size_t i = 1; i <= condensed.size(); ++i) {
      EXPECT_NEAR(back.prob(i), condensed.prob(i), 1e-9)
          << "placement=" << static_cast<int>(placement) << " i=" << i;
    }
  }
}

TEST(Families, LiftRejectsAlphabetMismatch) {
  const auto condensed = uniform_over_ranges(4, 4);
  EXPECT_THROW(lift(condensed, 1 << 10, RangePlacement::kUniform),
               std::invalid_argument);
}

TEST(Families, ZipfSizesAndLogNormalAreValidDistributions) {
  const auto zipf = zipf_sizes(1 << 12, 1.0);
  EXPECT_GT(zipf.entropy(), 0.0);
  const auto lognormal = log_normal_sizes(1 << 12, 5.0, 1.0);
  EXPECT_GT(lognormal.entropy(), 0.0);
  // Log-normal concentrates near e^5 ~ 148: range 8 should dominate.
  const auto condensed = lognormal.condense();
  std::size_t argmax = 1;
  for (std::size_t i = 2; i <= condensed.size(); ++i) {
    if (condensed.prob(i) > condensed.prob(argmax)) argmax = i;
  }
  EXPECT_EQ(argmax, 8u);
}

TEST(Noise, MultiplicativeJitterHasBoundedDivergence) {
  // The paper's robustness remark: probabilities off by a bounded
  // constant factor keep D_KL = O(1). With factor c, D <= log2 c^2.
  auto rng = channel::make_rng(5);
  const auto truth = zipf_ranges(16, 1.0);
  for (double factor : {1.5, 2.0, 4.0}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto noisy = multiplicative_jitter(truth, factor, rng);
      const double d = truth.kl_divergence(noisy);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 2.0 * std::log2(factor) + 1e-9) << "factor=" << factor;
    }
  }
}

TEST(Noise, SmoothingDivergenceShrinksWithEps) {
  const auto truth = geometric_ranges(16, 0.4);
  const double d_large = truth.kl_divergence(smooth_with_uniform(truth, 0.9));
  const double d_small = truth.kl_divergence(smooth_with_uniform(truth, 0.1));
  const double d_zero = truth.kl_divergence(smooth_with_uniform(truth, 0.0));
  EXPECT_LT(d_small, d_large);
  EXPECT_NEAR(d_zero, 0.0, 1e-12);
}

TEST(Noise, TemperatureOneIsIdentity) {
  const auto truth = zipf_ranges(8, 1.3);
  const auto same = temperature_scale(truth, 1.0);
  EXPECT_NEAR(truth.kl_divergence(same), 0.0, 1e-12);
}

TEST(Noise, TemperatureFlattensOrSharpens) {
  const auto truth = geometric_ranges(8, 0.5);
  EXPECT_GT(temperature_scale(truth, 0.3).entropy(), truth.entropy());
  EXPECT_LT(temperature_scale(truth, 3.0).entropy(), truth.entropy());
}

TEST(Noise, ReverseKeepsEntropySwapsOrder) {
  const auto truth = geometric_ranges(8, 0.5);
  const auto reversed = reverse_ranges(truth);
  EXPECT_NEAR(truth.entropy(), reversed.entropy(), 1e-12);
  EXPECT_GT(truth.kl_divergence(reversed), 0.5);
}

TEST(Noise, ShiftMovesMass) {
  const auto truth = info::CondensedDistribution::point_mass(8, 2);
  const auto shifted = shift_ranges(truth, 3);
  EXPECT_NEAR(shifted.prob(5), 1.0, 1e-12);
}

TEST(Noise, EmpiricalPredictorConvergesWithSamples) {
  constexpr std::size_t n = 1 << 12;
  const auto truth = log_normal_sizes(n, 5.0, 0.8);
  const auto condensed_truth = truth.condense();
  auto rng = channel::make_rng(17);
  const auto few = empirical_predictor(truth, 10, 0.5, rng);
  const auto many = empirical_predictor(truth, 20000, 0.5, rng);
  const double d_few = condensed_truth.kl_divergence(few);
  const double d_many = condensed_truth.kl_divergence(many);
  EXPECT_LT(d_many, d_few);
  EXPECT_LT(d_many, 0.05);
}

TEST(Noise, ParameterValidation) {
  auto rng = channel::make_rng(1);
  const auto truth = uniform_over_ranges(8, 8);
  EXPECT_THROW(multiplicative_jitter(truth, 0.5, rng),
               std::invalid_argument);
  EXPECT_THROW(smooth_with_uniform(truth, -0.1), std::invalid_argument);
  EXPECT_THROW(temperature_scale(truth, 0.0), std::invalid_argument);
  const auto sizes = info::SizeDistribution::uniform(64);
  EXPECT_THROW(empirical_predictor(sizes, 10, 0.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace crp::predict
