#include "core/likelihood_schedule.h"

#include <cmath>

#include <gtest/gtest.h>

#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "predict/noise.h"

namespace crp::core {
namespace {

TEST(LikelihoodSchedule, VisitsRangesInLikelihoodOrder) {
  const info::CondensedDistribution prediction{{0.1, 0.6, 0.3}};
  const LikelihoodOrderedSchedule schedule(prediction);
  EXPECT_EQ(schedule.ordering(), (std::vector<std::size_t>{2, 3, 1}));
  EXPECT_DOUBLE_EQ(schedule.probability(0), 0.25);    // range 2
  EXPECT_DOUBLE_EQ(schedule.probability(1), 0.125);   // range 3
  EXPECT_DOUBLE_EQ(schedule.probability(2), 0.5);     // range 1
  // Repeats the pass.
  EXPECT_DOUBLE_EQ(schedule.probability(3), schedule.probability(0));
}

TEST(LikelihoodSchedule, PointMassPredictionProbesItFirst) {
  const auto prediction = info::CondensedDistribution::point_mass(10, 6);
  const LikelihoodOrderedSchedule schedule(prediction);
  EXPECT_EQ(schedule.ordering().front(), 6u);
  EXPECT_DOUBLE_EQ(schedule.probability(0), std::exp2(-6.0));
}

TEST(LikelihoodSchedule, PerfectPredictionSolvesInConstantRounds) {
  // X = point mass on size 700 (range 10 of n=1024); prediction = X.
  constexpr std::size_t n = 1024;
  const auto actual = info::SizeDistribution::point_mass(n, 700);
  const LikelihoodOrderedSchedule schedule(actual.condense());
  const auto m = harness::measure_uniform_no_cd(schedule, actual, 4000,
                                                /*seed=*/11, 1 << 14);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  // Round 1 probes p = 2^-10 with k = 700: success prob ~ k p e^{-kp}
  // ~ 0.34, repeated each pass of 10 rounds; mean is small.
  EXPECT_LT(m.rounds.mean, 30.0);
}

TEST(LikelihoodSchedule, UniformPredictionDegradesToDecayLikeBehaviour) {
  constexpr std::size_t n = 1 << 12;
  const auto actual = info::SizeDistribution::uniform(n);
  const LikelihoodOrderedSchedule schedule(actual.condense());
  const auto m = harness::measure_uniform_no_cd(schedule, actual, 3000,
                                                /*seed=*/13, 1 << 16);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  // All 12 ranges are swept per pass; expect a few passes.
  EXPECT_GT(m.rounds.mean, 3.0);
  EXPECT_LT(m.rounds.mean, 20.0 * 12.0);
}

TEST(LikelihoodSchedule, BadPredictionIsSlowerThanGoodPrediction) {
  // Theorem 2.12's divergence cost, qualitatively: a prediction whose
  // likelihood order is reversed must cost more rounds.
  constexpr std::size_t n = 1 << 10;
  const auto condensed_truth =
      crp::predict::geometric_ranges(info::num_ranges(n), 0.5);
  const auto actual =
      crp::predict::lift(condensed_truth, n,
                         crp::predict::RangePlacement::kHighEndpoint);
  const LikelihoodOrderedSchedule good(condensed_truth);
  const auto reversed = crp::predict::reverse_ranges(condensed_truth);
  const LikelihoodOrderedSchedule bad(reversed);
  const auto m_good = harness::measure_uniform_no_cd(good, actual, 3000,
                                                     /*seed=*/17, 1 << 16);
  const auto m_bad = harness::measure_uniform_no_cd(bad, actual, 3000,
                                                    /*seed=*/17, 1 << 16);
  EXPECT_LT(m_good.rounds.mean, m_bad.rounds.mean);
}

TEST(LikelihoodSchedule, ProportionalModeSchedulesLikelyRangesMoreOften) {
  const info::CondensedDistribution prediction{{0.7, 0.2, 0.1}};
  const LikelihoodOrderedSchedule schedule(prediction,
                                           CycleMode::kProportional);
  std::size_t hits_range1 = 0;
  const std::size_t pass = schedule.pass_length();
  for (std::size_t r = 0; r < pass; ++r) {
    if (schedule.range_for_round(r) == 1) ++hits_range1;
  }
  EXPECT_GT(static_cast<double>(hits_range1) / static_cast<double>(pass),
            0.4);
}

TEST(LikelihoodSchedule, ProportionalModeStillCoversEveryRange) {
  const info::CondensedDistribution prediction{{0.98, 0.01, 0.01}};
  const LikelihoodOrderedSchedule schedule(prediction,
                                           CycleMode::kProportional);
  std::vector<bool> seen(4, false);
  for (std::size_t r = 0; r < schedule.pass_length(); ++r) {
    seen[schedule.range_for_round(r)] = true;
  }
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[3]);
}

TEST(LikelihoodSchedule, ProportionalBeatsRepeatOnSkewedTruth) {
  // When the truth is heavily skewed toward one range, revisiting that
  // range more often (footnote 6's "clever cycling") lowers expected
  // rounds relative to sweeping all ranges each pass.
  constexpr std::size_t n = 1 << 14;
  const auto condensed =
      crp::predict::bimodal_ranges(info::num_ranges(n), 14, 2, 0.05);
  const auto actual = crp::predict::lift(
      condensed, n, crp::predict::RangePlacement::kHighEndpoint);
  const LikelihoodOrderedSchedule repeat(condensed, CycleMode::kRepeatPass);
  const LikelihoodOrderedSchedule proportional(condensed,
                                               CycleMode::kProportional);
  const auto m_repeat = harness::measure_uniform_no_cd(
      repeat, actual, 4000, /*seed=*/19, 1 << 16);
  const auto m_prop = harness::measure_uniform_no_cd(
      proportional, actual, 4000, /*seed=*/19, 1 << 16);
  EXPECT_LT(m_prop.rounds.mean, m_repeat.rounds.mean);
}

// Theorem 2.12 / Corollary 2.15 success-probability form: with Y = X,
// the one-shot pass succeeds within O(2^{2H}) rounds with probability
// at least 1/16. Swept over a family of entropies.
class OneShotBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OneShotBound, SucceedsWithinTheoremBudgetWithConstantProbability) {
  constexpr std::size_t n = 1 << 16;
  const std::size_t m = GetParam();  // uniform over first m ranges
  const auto condensed =
      crp::predict::uniform_over_ranges(info::num_ranges(n), m);
  const auto actual = crp::predict::lift(
      condensed, n, crp::predict::RangePlacement::kHighEndpoint);
  const LikelihoodOrderedSchedule schedule(condensed);
  const double h = condensed.entropy();  // = log2 m
  const double budget = std::exp2(2.0 * h) + 1.0;  // O(2^{2H}), constant 1
  const auto measurement = harness::measure_uniform_no_cd(
      schedule, actual, 4000, /*seed=*/23, 1 << 16);
  EXPECT_GE(measurement.solved_within(budget), 1.0 / 16.0)
      << "H=" << h << " budget=" << budget;
}

INSTANTIATE_TEST_SUITE_P(EntropySweep, OneShotBound,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace crp::core
