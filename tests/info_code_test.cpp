#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "info/code.h"
#include "info/coding_theorems.h"
#include "info/entropy.h"
#include "info/huffman.h"

namespace crp::info {
namespace {

std::vector<double> random_distribution(std::size_t alphabet,
                                        std::mt19937_64& rng,
                                        double zero_fraction = 0.0) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<double> probs(alphabet);
  double total = 0.0;
  for (auto& p : probs) {
    p = unit(rng) < zero_fraction ? 0.0 : unit(rng) + 1e-6;
    total += p;
  }
  if (total == 0.0) {
    probs[0] = 1.0;
    total = 1.0;
  }
  for (auto& p : probs) p /= total;
  return probs;
}

TEST(PrefixCode, DetectsPrefixViolations) {
  const PrefixCode good({{false}, {true, false}, {true, true}});
  EXPECT_TRUE(good.is_prefix_free());
  const PrefixCode bad({{false}, {false, true}});
  EXPECT_FALSE(bad.is_prefix_free());
  const PrefixCode duplicate({{true}, {true}});
  EXPECT_FALSE(duplicate.is_prefix_free());
}

TEST(PrefixCode, KraftSumOfCompleteCodeIsOne) {
  const PrefixCode code({{false}, {true, false}, {true, true}});
  EXPECT_DOUBLE_EQ(code.kraft_sum(), 1.0);
}

TEST(PrefixCode, ExpectedLengthWeighsByProbability) {
  const PrefixCode code({{false}, {true, false}, {true, true}});
  EXPECT_DOUBLE_EQ(
      code.expected_length(std::vector<double>{0.5, 0.25, 0.25}), 1.5);
}

TEST(PrefixCode, DecodePrefixRoundTrips) {
  const PrefixCode code({{false}, {true, false}, {true, true}});
  for (std::size_t s = 0; s < 3; ++s) {
    auto bits = code.word(s);
    bits.push_back(true);  // trailing garbage must not confuse decoding
    const auto decoded = code.decode_prefix(bits);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->first, s);
    EXPECT_EQ(decoded->second, code.word(s).size());
  }
  EXPECT_FALSE(code.decode_prefix(std::vector<bool>{}).has_value());
}

TEST(CanonicalCode, RejectsKraftViolation) {
  const std::vector<std::size_t> lengths{1, 1, 1};
  EXPECT_THROW(canonical_code_from_lengths(lengths), std::invalid_argument);
}

TEST(CanonicalCode, BuildsPrefixFreeCodeFromValidLengths) {
  const std::vector<std::size_t> lengths{2, 1, 3, 3};
  const auto code = canonical_code_from_lengths(lengths);
  EXPECT_TRUE(code.is_prefix_free());
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    EXPECT_EQ(code.length(s), lengths[s]);
  }
}

TEST(FixedLengthCode, UsesCeilLog2Bits) {
  EXPECT_EQ(fixed_length_code(2).length(0), 1u);
  EXPECT_EQ(fixed_length_code(5).length(0), 3u);
  EXPECT_EQ(fixed_length_code(8).length(0), 3u);
  EXPECT_EQ(fixed_length_code(9).length(0), 4u);
  EXPECT_TRUE(fixed_length_code(9).is_prefix_free());
}

TEST(Huffman, MatchesKnownOptimalLengths) {
  // Classic example: probabilities 0.4, 0.3, 0.2, 0.1 -> lengths
  // 1, 2, 3, 3 (expected length 1.9).
  const std::vector<double> probs{0.4, 0.3, 0.2, 0.1};
  const auto code = huffman_code(probs);
  EXPECT_TRUE(code.is_prefix_free());
  EXPECT_NEAR(code.expected_length(probs), 1.9, 1e-12);
}

TEST(Huffman, DyadicSourceIsCodedAtEntropyExactly) {
  const std::vector<double> probs{0.5, 0.25, 0.125, 0.125};
  const auto code = huffman_code(probs);
  EXPECT_DOUBLE_EQ(code.expected_length(probs), shannon_entropy(probs));
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  const auto code = huffman_code(std::vector<double>{1.0});
  EXPECT_EQ(code.alphabet_size(), 1u);
  EXPECT_EQ(code.length(0), 1u);
}

TEST(Huffman, ZeroProbabilitySymbolsStillGetValidCodewords) {
  const std::vector<double> probs{0.5, 0.5, 0.0, 0.0};
  const auto code = huffman_code(probs);
  EXPECT_TRUE(code.is_prefix_free());
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GE(code.length(s), 1u);
  }
  // Zero-probability symbols must not beat positive-probability ones.
  EXPECT_LE(code.length(0), code.length(2));
  EXPECT_LE(code.length(1), code.length(3));
}

TEST(Huffman, DeterministicAcrossCalls) {
  std::mt19937_64 rng(5);
  const auto probs = random_distribution(17, rng);
  const auto a = huffman_lengths(probs);
  const auto b = huffman_lengths(probs);
  EXPECT_EQ(a, b);
}

TEST(ShannonFano, LengthsAreCeilNegLog) {
  const std::vector<double> probs{0.5, 0.25, 0.125, 0.125};
  const auto code = shannon_fano_code(probs);
  EXPECT_EQ(code.length(0), 1u);
  EXPECT_EQ(code.length(1), 2u);
  EXPECT_EQ(code.length(2), 3u);
  EXPECT_EQ(code.length(3), 3u);
  EXPECT_TRUE(code.is_prefix_free());
}

TEST(ShannonFano, HandlesZeroSymbolsWithoutBreakingKraft) {
  const std::vector<double> probs{0.5, 0.5, 0.0, 0.0, 0.0};
  const auto code = shannon_fano_code(probs);
  EXPECT_TRUE(code.is_prefix_free());
  EXPECT_LE(code.kraft_sum(), 1.0 + 1e-12);
}

// ---- Property sweeps over random sources ----

class CodingTheorems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodingTheorems, HuffmanSatisfiesSourceCodingTheorem) {
  // Theorem 2.2: H(X) <= E[S]; Huffman also achieves E[S] < H(X) + 1.
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const auto probs = random_distribution(GetParam() + 2, rng);
    const auto code = huffman_code(probs);
    const auto check = check_source_coding(code, probs);
    EXPECT_TRUE(check.lower_bound_holds)
        << "H=" << check.entropy << " E[S]=" << check.expected_length;
    EXPECT_TRUE(check.upper_bound_holds)
        << "H=" << check.entropy << " E[S]=" << check.expected_length;
  }
}

TEST_P(CodingTheorems, HuffmanIsNeverBeatenByShannonFano) {
  std::mt19937_64 rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto probs = random_distribution(GetParam() + 2, rng);
    const auto huffman = huffman_code(probs);
    const auto fano = shannon_fano_code(probs);
    EXPECT_LE(huffman.expected_length(probs),
              fano.expected_length(probs) + 1e-12);
  }
}

TEST_P(CodingTheorems, MismatchedShannonFanoObeysTheorem23) {
  // Theorem 2.3 with the Shannon code built for Y and symbols drawn
  // from X: H(X) + D_KL(X||Y) <= E[S] <= H(X) + D_KL(X||Y) + 1.
  std::mt19937_64 rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = random_distribution(GetParam() + 2, rng);
    const auto y = random_distribution(GetParam() + 2, rng);
    const auto code = shannon_fano_code(y);
    const auto check = check_mismatched_coding(code, x, y);
    EXPECT_TRUE(check.lower_bound_holds)
        << "H=" << check.entropy << " D=" << check.divergence
        << " E[S]=" << check.expected_length;
    EXPECT_TRUE(check.upper_bound_holds)
        << "H=" << check.entropy << " D=" << check.divergence
        << " E[S]=" << check.expected_length;
  }
}

TEST_P(CodingTheorems, AnyPrefixCodeBeatsEntropyFromBelowNever) {
  // Kraft-McMillan consequence: no uniquely decodable code has
  // E[S] < H. Checked for Huffman under arbitrary *evaluation* sources
  // built for a different design source.
  std::mt19937_64 rng(GetParam() * 101 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = random_distribution(GetParam() + 2, rng);
    const auto y = random_distribution(GetParam() + 2, rng);
    const auto code = huffman_code(y);
    // The implied distribution of the code dominates: E_x[S] >= H(x)
    // would need Kraft > 1 to fail.
    EXPECT_GE(code.expected_length(x) + 1e-9, shannon_entropy(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, CodingTheorems,
                         ::testing::Values(2, 3, 5, 9, 16, 33, 64));

}  // namespace
}  // namespace crp::info
