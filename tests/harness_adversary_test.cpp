#include "harness/adversary.h"

#include <gtest/gtest.h>

#include "baselines/simple.h"
#include "core/advice.h"
#include "core/advice_deterministic.h"
#include "harness/measure.h"
#include "harness/sparkline.h"

namespace crp::harness {
namespace {

TEST(ExactWorstCaseTest, SubtreeScanMatchesClosedForm) {
  // Worst case of the b-bit subtree scan over pairs (k = 2): the min
  // active id sits at the last-but-reachable position of its advised
  // subtree. For b > 0 the second participant can live in a later
  // subtree, so the min id reaches the subtree's final leaf: 2^{h-b}
  // rounds. For b = 0 there is no later subtree — the min of a pair is
  // at most id n - 2, giving n - 1 rounds.
  constexpr std::size_t n = 32;  // height h = 5
  for (std::size_t b : {0ul, 2ul, 4ul}) {
    const core::SubtreeScanProtocol protocol(n, b);
    const core::MinIdPrefixAdvice advice(n, b);
    const auto worst = exact_worst_case(protocol, advice, n, 2, false);
    EXPECT_TRUE(worst.all_solved);
    const std::size_t expected =
        b == 0 ? n - 1 : (std::size_t{1} << (5 - b));
    EXPECT_EQ(worst.rounds, expected) << "b=" << b;
    EXPECT_EQ(worst.sets_checked, 32u * 31u / 2u);
  }
}

TEST(ExactWorstCaseTest, TreeDescentMatchesHeightMinusAdvice) {
  // For b > 0 the adversary parks the min id on the advised subtree's
  // right edge with every other active outside the subtree: the descent
  // takes all h - b halving probes PLUS the final singleton probe,
  // h - b + 1 rounds (= protocol.max_rounds()). For b = 0 the "others
  // outside the subtree" trick is impossible and the classic h rounds
  // are exact.
  constexpr std::size_t n = 32;  // height h = 5
  for (std::size_t b : {0ul, 2ul, 4ul}) {
    const core::TreeDescentCdProtocol protocol(n, b);
    const core::MinIdPrefixAdvice advice(n, b);
    const auto worst = exact_worst_case(protocol, advice, n, 3, true);
    EXPECT_TRUE(worst.all_solved);
    const std::size_t expected = b == 0 ? 5 : 5 - b + 1;
    EXPECT_EQ(worst.rounds, expected) << "b=" << b;
    EXPECT_LE(worst.rounds, protocol.max_rounds());
  }
}

TEST(ExactWorstCaseTest, SamplerNeverExceedsExactAndOftenMatches) {
  // The sampled approximation is a lower bound on the exact worst case;
  // with the crafted head/tail probes it should match exactly here.
  constexpr std::size_t n = 64;
  constexpr std::size_t b = 2;
  const core::SubtreeScanProtocol scan(n, b);
  const core::TreeDescentCdProtocol descent(n, b);
  const core::MinIdPrefixAdvice advice(n, b);
  const auto exact_scan = exact_worst_case(scan, advice, n, 3, false);
  const double sampled_scan = worst_case_deterministic_rounds(
      scan, advice, n, 3, false, 100, /*seed=*/1);
  EXPECT_LE(sampled_scan, static_cast<double>(exact_scan.rounds));
  EXPECT_EQ(sampled_scan, static_cast<double>(exact_scan.rounds));

  const auto exact_descent = exact_worst_case(descent, advice, n, 3, true);
  const double sampled_descent = worst_case_deterministic_rounds(
      descent, advice, n, 3, true, 100, /*seed=*/2);
  EXPECT_LE(sampled_descent, static_cast<double>(exact_descent.rounds));
  EXPECT_EQ(sampled_descent, static_cast<double>(exact_descent.rounds));
}

TEST(ExactWorstCaseTest, WitnessReproducesTheMaximum) {
  constexpr std::size_t n = 32;
  const core::SubtreeScanProtocol protocol(n, 1);
  const core::MinIdPrefixAdvice advice(n, 1);
  const auto worst = exact_worst_case(protocol, advice, n, 2, false);
  const auto bits = advice.advise(worst.witness);
  const auto rerun = channel::run_deterministic(
      protocol, bits, worst.witness, false, {.max_rounds = 1 << 10});
  ASSERT_TRUE(rerun.solved);
  EXPECT_EQ(rerun.rounds, worst.rounds);
}

TEST(ExactWorstCaseTest, AllSizesTakesTheMaximum) {
  constexpr std::size_t n = 16;
  const baselines::RoundRobinProtocol protocol(n);
  const core::MinIdPrefixAdvice advice(n, 0);
  const auto worst =
      exact_worst_case_all_sizes(protocol, advice, n, 3, false);
  // Round-robin's worst single participant is id 15 -> 16 rounds.
  EXPECT_EQ(worst.rounds, n);
  EXPECT_TRUE(worst.all_solved);
}

TEST(ExactWorstCaseTest, ParallelEnumerationMatchesSerial) {
  // The block-parallel enumeration (rank unranking + lexicographic
  // advance) must reproduce the serial scan exactly — maximum, witness
  // (first maximum in rank order), set count, and all_solved — at any
  // thread count, including thread counts that do not divide the
  // C(n, k) = 41664 sets here.
  constexpr std::size_t n = 64;
  constexpr std::size_t b = 2;
  const core::SubtreeScanProtocol protocol(n, b);
  const core::MinIdPrefixAdvice advice(n, b);
  const auto serial =
      exact_worst_case(protocol, advice, n, 3, false, 1 << 16, 1);
  for (std::size_t threads : {2ul, 5ul, 8ul}) {
    const auto parallel =
        exact_worst_case(protocol, advice, n, 3, false, 1 << 16, threads);
    EXPECT_EQ(parallel.rounds, serial.rounds) << "threads=" << threads;
    EXPECT_EQ(parallel.witness, serial.witness) << "threads=" << threads;
    EXPECT_EQ(parallel.sets_checked, serial.sets_checked);
    EXPECT_EQ(parallel.all_solved, serial.all_solved);
  }
}

TEST(ExactWorstCaseTest, ValidatesArguments) {
  const baselines::RoundRobinProtocol protocol(8);
  const core::MinIdPrefixAdvice advice(8, 0);
  EXPECT_THROW(exact_worst_case(protocol, advice, 8, 0, false),
               std::invalid_argument);
  EXPECT_THROW(exact_worst_case(protocol, advice, 8, 9, false),
               std::invalid_argument);
}

TEST(Sparkline, RendersMonotoneCurve) {
  const std::vector<double> curve{0.0, 0.25, 0.5, 0.75, 1.0};
  const std::string art = sparkline(curve, 5);
  ASSERT_EQ(art.size(), 5u);
  EXPECT_EQ(art.front(), ' ');  // zero renders empty
  EXPECT_EQ(art.back(), '@');   // one renders full
}

TEST(Sparkline, HandlesDegenerateInputs) {
  EXPECT_EQ(sparkline(std::vector<double>{}, 10), "");
  EXPECT_EQ(sparkline(std::vector<double>{0.5}, 0), "");
  EXPECT_EQ(sparkline(std::vector<double>{2.0}, 1), "@");   // clamped
  EXPECT_EQ(sparkline(std::vector<double>{-1.0}, 1), " ");  // clamped
}

TEST(Sparkline, StridesLongInputs) {
  std::vector<double> ramp(1000);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<double>(i) / 999.0;
  }
  const std::string art = sparkline(ramp, 20);
  EXPECT_EQ(art.size(), 20u);
  EXPECT_EQ(art.back(), '@');
}

}  // namespace
}  // namespace crp::harness
