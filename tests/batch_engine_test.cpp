// Statistical cross-validation of the analytic batch engine
// (channel/batch.h) against the binomial and per-player simulators and
// the exact closed forms of harness/exact.h: same distribution of solve
// rounds (full CDF, not just the mean), same energy distribution under
// conditional reconstruction, exact per-round fallback when a trace is
// requested, and correct handling of the degenerate schedules.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "channel/batch.h"
#include "channel/rng.h"
#include "channel/simulator.h"
#include "core/likelihood_schedule.h"
#include "harness/exact.h"
#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp::channel {
namespace {

class ConstantSchedule final : public ProbabilitySchedule {
 public:
  explicit ConstantSchedule(double p) : p_(p) {}
  double probability(std::size_t) const override { return p_; }
  std::size_t period() const override { return 1; }
  std::string name() const override { return "constant"; }

 private:
  double p_;
};

/// Same decay probabilities but *without* the period() hint, forcing
/// the sampler down the lazily tabulated aperiodic path.
class UnhintedDecay final : public ProbabilitySchedule {
 public:
  explicit UnhintedDecay(std::size_t n) : decay_(n) {}
  double probability(std::size_t round) const override {
    return decay_.probability(round);
  }
  std::string name() const override { return "unhinted-decay"; }

 private:
  baselines::DecaySchedule decay_;
};

TEST(BatchEngine, SolveByCurveMatchesExactProfile) {
  // The whole CDF of the sampled solve round must match the closed
  // form, as it already does for the per-round simulator.
  constexpr std::size_t n = 1 << 8;
  constexpr std::size_t k = 60;
  const baselines::DecaySchedule decay(n);
  constexpr std::size_t horizon = 40;
  const auto exact = harness::exact_profile_no_cd(decay, k, horizon);
  const BatchNoCdSampler sampler(decay);
  constexpr std::size_t kTrials = 40000;
  std::vector<double> empirical(horizon + 1, 0.0);
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = derive_rng(103, t);
    const auto result = sampler.sample(k, rng, {.max_rounds = 1 << 14});
    ASSERT_TRUE(result.solved);
    for (std::size_t r = result.rounds; r <= horizon; ++r) {
      empirical[r] += 1.0;
    }
  }
  for (auto& v : empirical) v /= kTrials;
  for (std::size_t r = 1; r <= horizon; r += 3) {
    EXPECT_NEAR(empirical[r], exact.solve_by[r], 0.012) << "round " << r;
  }
}

TEST(BatchEngine, AperiodicPathMatchesExactProfile) {
  constexpr std::size_t n = 1 << 8;
  constexpr std::size_t k = 25;
  const UnhintedDecay schedule(n);
  ASSERT_EQ(schedule.period(), 0u);
  constexpr std::size_t horizon = 30;
  const auto exact = harness::exact_profile_no_cd(schedule, k, horizon);
  const BatchNoCdSampler sampler(schedule);
  constexpr std::size_t kTrials = 30000;
  std::vector<double> empirical(horizon + 1, 0.0);
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = derive_rng(107, t);
    const auto result = sampler.sample(k, rng, {.max_rounds = 1 << 14});
    ASSERT_TRUE(result.solved);
    for (std::size_t r = result.rounds; r <= horizon; ++r) {
      empirical[r] += 1.0;
    }
  }
  for (auto& v : empirical) v /= kTrials;
  for (std::size_t r = 1; r <= horizon; r += 3) {
    EXPECT_NEAR(empirical[r], exact.solve_by[r], 0.012) << "round " << r;
  }
}

TEST(BatchEngine, ThreeEnginesAgreeOnRoundDistribution) {
  // batch vs binomial vs per-player at fixed seeds: equal means (within
  // Monte-Carlo noise) and equal tail quantiles.
  constexpr std::size_t n = 1 << 10;
  constexpr std::size_t k = 100;
  constexpr std::size_t kTrials = 20000;
  const baselines::DecaySchedule decay(n);
  const harness::MeasureOptions base{.max_rounds = 1 << 14, .threads = 1};
  auto batch = base;
  batch.engine = harness::NoCdEngine::kBatch;
  auto binomial = base;
  binomial.engine = harness::NoCdEngine::kBinomial;
  auto per_player = base;
  per_player.engine = harness::NoCdEngine::kPerPlayer;
  const auto m_batch =
      harness::measure_uniform_no_cd_fixed_k(decay, k, kTrials, 11, batch);
  const auto m_binomial =
      harness::measure_uniform_no_cd_fixed_k(decay, k, kTrials, 12, binomial);
  const auto m_players = harness::measure_uniform_no_cd_fixed_k(
      decay, k, kTrials, 13, per_player);
  EXPECT_DOUBLE_EQ(m_batch.success_rate, 1.0);
  EXPECT_NEAR(m_batch.rounds.mean, m_binomial.rounds.mean,
              0.05 * m_binomial.rounds.mean);
  EXPECT_NEAR(m_batch.rounds.mean, m_players.rounds.mean,
              0.05 * m_players.rounds.mean);
  EXPECT_NEAR(m_batch.rounds.p90, m_binomial.rounds.p90,
              0.1 * m_binomial.rounds.p90 + 1.0);
}

TEST(BatchEngine, AgreesUnderDrawnSizesAndLikelihoodSchedule) {
  // The Table 1 configuration in miniature: likelihood-ordered
  // schedule, sizes drawn from the lifted prediction.
  constexpr std::size_t n = 1 << 10;
  const auto condensed =
      predict::uniform_over_ranges(info::num_ranges(n), 6);
  const auto actual =
      predict::lift(condensed, n, predict::RangePlacement::kHighEndpoint);
  const core::LikelihoodOrderedSchedule schedule(condensed);
  constexpr std::size_t kTrials = 20000;
  const harness::MeasureOptions batch{.max_rounds = 1 << 14,
                                      .threads = 1,
                                      .engine = harness::NoCdEngine::kBatch};
  const harness::MeasureOptions binomial{
      .max_rounds = 1 << 14,
      .threads = 1,
      .engine = harness::NoCdEngine::kBinomial};
  const auto m_batch =
      harness::measure_uniform_no_cd(schedule, actual, kTrials, 21, batch);
  const auto m_binomial = harness::measure_uniform_no_cd(schedule, actual,
                                                         kTrials, 22, binomial);
  EXPECT_NEAR(m_batch.rounds.mean, m_binomial.rounds.mean,
              0.06 * m_binomial.rounds.mean);
  for (double budget : {5.0, 20.0, 80.0}) {
    EXPECT_NEAR(m_batch.solved_within(budget),
                m_binomial.solved_within(budget), 0.015)
        << "budget " << budget;
  }
}

TEST(BatchEngine, ConditionalEnergyMatchesSimulatedEnergy) {
  constexpr std::size_t n = 1 << 8;
  constexpr std::size_t k = 40;
  const baselines::DecaySchedule decay(n);
  const BatchNoCdSampler sampler(decay);
  constexpr std::size_t kTrials = 20000;
  double batch_energy = 0.0;
  double sim_energy = 0.0;
  double batch_rounds = 0.0;
  double sim_rounds = 0.0;
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng_a = derive_rng(31, t);
    auto rng_b = derive_rng(32, t);
    const auto a = sampler.sample(
        k, rng_a, {.max_rounds = 1 << 14, .sample_transmissions = true});
    const auto b = run_uniform_no_cd(decay, k, rng_b, {1 << 14});
    ASSERT_TRUE(a.solved);
    ASSERT_TRUE(b.solved);
    batch_energy += static_cast<double>(a.transmissions);
    sim_energy += static_cast<double>(b.transmissions);
    batch_rounds += static_cast<double>(a.rounds);
    sim_rounds += static_cast<double>(b.rounds);
  }
  batch_energy /= kTrials;
  sim_energy /= kTrials;
  EXPECT_NEAR(batch_energy, sim_energy, 0.05 * sim_energy);
  EXPECT_NEAR(batch_rounds / kTrials, sim_rounds / kTrials,
              0.05 * sim_rounds / kTrials);
}

TEST(BatchEngine, EnergyIsZeroUnlessRequested) {
  const baselines::DecaySchedule decay(256);
  const BatchNoCdSampler sampler(decay);
  auto rng = make_rng(5);
  const auto result = sampler.sample(50, rng, {.max_rounds = 1 << 14});
  EXPECT_TRUE(result.solved);
  EXPECT_EQ(result.transmissions, 0u);
}

TEST(BatchEngine, TraceFallbackIsBitIdenticalToSimulator) {
  const baselines::DecaySchedule decay(256);
  const BatchNoCdSampler sampler(decay);
  for (std::uint64_t t = 0; t < 50; ++t) {
    ExecutionTrace trace_batch;
    ExecutionTrace trace_sim;
    auto rng_a = derive_rng(41, t);
    auto rng_b = derive_rng(41, t);
    const auto a = sampler.sample(
        100, rng_a, {.max_rounds = 1 << 12, .trace = &trace_batch});
    const auto b = run_uniform_no_cd(
        decay, 100, rng_b, {.max_rounds = 1 << 12, .trace = &trace_sim});
    EXPECT_EQ(a.solved, b.solved);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.transmissions, b.transmissions);
    ASSERT_EQ(trace_batch.size(), trace_sim.size());
    for (std::size_t r = 0; r < trace_batch.size(); ++r) {
      EXPECT_EQ(trace_batch[r].transmitters, trace_sim[r].transmitters);
    }
  }
}

TEST(BatchEngine, DegenerateSchedules) {
  auto rng = make_rng(6);
  // Zero probability: never solves, reports the full budget.
  const ConstantSchedule zero(0.0);
  const auto unsolved =
      run_uniform_no_cd_batch(zero, 5, rng, {.max_rounds = 100});
  EXPECT_FALSE(unsolved.solved);
  EXPECT_EQ(unsolved.rounds, 100u);
  // All-transmit with two players: guaranteed collision forever.
  const ConstantSchedule one(1.0);
  const auto collided =
      run_uniform_no_cd_batch(one, 2, rng, {.max_rounds = 50});
  EXPECT_FALSE(collided.solved);
  // All-transmit with a single player: immediate success.
  const auto solo = run_uniform_no_cd_batch(one, 1, rng, {.max_rounds = 50});
  EXPECT_TRUE(solo.solved);
  EXPECT_EQ(solo.rounds, 1u);
  // k = 0 is rejected like the simulator rejects it.
  EXPECT_THROW(run_uniform_no_cd_batch(zero, 0, rng), std::invalid_argument);
}

TEST(BatchEngine, GeometricTailSpansManyPeriods) {
  // Tiny constant success probability: the solve round is geometric
  // with mean 1/s, reaching thousands of periods; exercises the
  // analytic whole-period skipping.
  constexpr std::size_t k = 2;
  constexpr double p = 0.005;
  const ConstantSchedule schedule(p);
  const double s = 2.0 * p * (1.0 - p);  // k p (1-p)^{k-1}
  const BatchNoCdSampler sampler(schedule);
  constexpr std::size_t kTrials = 30000;
  double total = 0.0;
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = derive_rng(51, t);
    const auto result = sampler.sample(k, rng, {.max_rounds = 1 << 20});
    ASSERT_TRUE(result.solved);
    total += static_cast<double>(result.rounds);
  }
  EXPECT_NEAR(total / kTrials, 1.0 / s, 0.03 / s);
}

TEST(BatchEngine, SureSuccessRoundInPeriodMatchesExactProfile) {
  // k = 1 on reverse decay: the last round of every sweep has p = 1,
  // so one period's log-survival is -inf. Regression test: the period
  // arithmetic must special-case this (0 * -inf is NaN, which once
  // collapsed the whole distribution onto round 1).
  const baselines::ReverseDecaySchedule schedule(64);  // period 7
  const BatchNoCdSampler sampler(schedule);
  constexpr std::size_t kPeriod = 7;
  const auto exact = harness::exact_profile_no_cd(schedule, 1, kPeriod);
  constexpr std::size_t kTrials = 30000;
  std::vector<double> empirical(kPeriod + 1, 0.0);
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = derive_rng(71, t);
    const auto result = sampler.sample(1, rng, {.max_rounds = 1 << 10});
    ASSERT_TRUE(result.solved);
    ASSERT_LE(result.rounds, kPeriod);
    for (std::size_t r = result.rounds; r <= kPeriod; ++r) {
      empirical[r] += 1.0;
    }
  }
  for (auto& v : empirical) v /= kTrials;
  EXPECT_DOUBLE_EQ(exact.solve_by[kPeriod], 1.0);
  for (std::size_t r = 1; r <= kPeriod; ++r) {
    EXPECT_NEAR(empirical[r], exact.solve_by[r], 0.012) << "round " << r;
  }
}

TEST(BatchEngine, RespectsMaxRoundsMidPeriod) {
  // A budget that is not a multiple of the period: solve rounds past
  // the budget must be reported unsolved at exactly the budget.
  const baselines::DecaySchedule decay(1 << 10);  // period 11
  const BatchNoCdSampler sampler(decay);
  constexpr std::size_t kBudget = 7;  // < one period
  std::size_t solved = 0;
  for (std::uint64_t t = 0; t < 2000; ++t) {
    auto rng = derive_rng(61, t);
    const auto result = sampler.sample(50, rng, {.max_rounds = kBudget});
    if (result.solved) {
      ++solved;
      EXPECT_LE(result.rounds, kBudget);
    } else {
      EXPECT_EQ(result.rounds, kBudget);
    }
  }
  EXPECT_GT(solved, 0u);
  EXPECT_LT(solved, 2000u);
}

}  // namespace
}  // namespace crp::channel
