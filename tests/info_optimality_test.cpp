// Brute-force verification that huffman_code is truly optimal: for
// small alphabets, enumerate EVERY Kraft-feasible length vector and
// confirm no uniquely decodable code beats Huffman's expected length.
// This pins the "optimal code f" assumption of Sections 2.5/2.6 to
// ground truth rather than folklore.
#include <cmath>
#include <functional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "info/code.h"
#include "info/entropy.h"
#include "info/huffman.h"

namespace crp::info {
namespace {

/// Minimum expected length over all length vectors satisfying the
/// Kraft inequality with per-symbol lengths in [1, max_len].
double brute_force_optimum(const std::vector<double>& probs,
                           std::size_t max_len) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> lengths(probs.size(), 1);
  std::function<void(std::size_t, double)> recurse =
      [&](std::size_t index, double kraft_used) {
        if (index == probs.size()) {
          double expected = 0.0;
          for (std::size_t s = 0; s < probs.size(); ++s) {
            expected += probs[s] * static_cast<double>(lengths[s]);
          }
          best = std::min(best, expected);
          return;
        }
        for (std::size_t len = 1; len <= max_len; ++len) {
          const double cost = std::exp2(-static_cast<double>(len));
          if (kraft_used + cost > 1.0 + 1e-12) continue;
          lengths[index] = len;
          recurse(index + 1, kraft_used + cost);
        }
      };
  recurse(0, 0.0);
  return best;
}

class HuffmanOptimality : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanOptimality, MatchesBruteForceOnRandomSources) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<std::size_t> alphabet_size(2, 5);
  std::uniform_real_distribution<double> unit(0.05, 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t alphabet = alphabet_size(rng);
    std::vector<double> probs(alphabet);
    double total = 0.0;
    for (auto& p : probs) {
      p = unit(rng);
      total += p;
    }
    for (auto& p : probs) p /= total;

    const auto code = huffman_code(probs);
    const double huffman = code.expected_length(probs);
    const double optimum = brute_force_optimum(probs, alphabet + 2);
    EXPECT_NEAR(huffman, optimum, 1e-9)
        << "alphabet=" << alphabet << " trial=" << trial;
    // And the sandwich H <= optimum <= H + 1 that Theorem 2.2 plus
    // Shannon's achievability give.
    const double h = shannon_entropy(probs);
    EXPECT_GE(optimum + 1e-9, h);
    EXPECT_LE(optimum, h + 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanOptimality,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(HuffmanOptimality, KnownHardCase) {
  // Fibonacci-like probabilities produce maximally skewed codes.
  const std::vector<double> probs{8.0 / 20, 5.0 / 20, 3.0 / 20,
                                  2.0 / 20, 1.0 / 20, 1.0 / 20};
  const auto code = huffman_code(probs);
  EXPECT_NEAR(code.expected_length(probs),
              brute_force_optimum(probs, 8), 1e-9);
  EXPECT_TRUE(code.is_prefix_free());
}

TEST(CanonicalCode, ShorterLengthsGetLexicographicallySmallerWords) {
  const std::vector<std::size_t> lengths{3, 1, 3, 2};
  const auto code = canonical_code_from_lengths(lengths);
  // Symbol 1 (length 1) must be "0"; symbol 3 (length 2) "10"; the two
  // length-3 symbols "110" and "111" in symbol order.
  EXPECT_EQ(code.word(1), (Codeword{false}));
  EXPECT_EQ(code.word(3), (Codeword{true, false}));
  EXPECT_EQ(code.word(0), (Codeword{true, true, false}));
  EXPECT_EQ(code.word(2), (Codeword{true, true, true}));
}

TEST(CanonicalCode, RoundTripsThroughDecodePrefixForRandomLengths) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::size_t> extra(0, 3);
  for (int trial = 0; trial < 50; ++trial) {
    // Build a Kraft-feasible length vector greedily.
    std::vector<std::size_t> lengths;
    double kraft = 0.0;
    while (lengths.size() < 8) {
      const std::size_t len = 2 + extra(rng);
      const double cost = std::exp2(-static_cast<double>(len));
      if (kraft + cost > 1.0) break;
      kraft += cost;
      lengths.push_back(len);
    }
    if (lengths.size() < 2) continue;
    const auto code = canonical_code_from_lengths(lengths);
    ASSERT_TRUE(code.is_prefix_free());
    for (std::size_t s = 0; s < lengths.size(); ++s) {
      auto bits = code.word(s);
      bits.push_back(true);
      bits.push_back(false);
      const auto decoded = code.decode_prefix(bits);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(decoded->first, s);
    }
  }
}

}  // namespace
}  // namespace crp::info
