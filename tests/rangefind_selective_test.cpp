#include "rangefind/selective.h"

#include <bit>

#include <gtest/gtest.h>

namespace crp::rangefind {
namespace {

TEST(SelectiveFamily, SingletonFamilyIsFullySelective) {
  for (std::size_t n : {2ul, 5ul, 10ul}) {
    const auto family = singleton_family(n);
    EXPECT_EQ(family.sets.size(), n);
    EXPECT_TRUE(is_strongly_selective(family, n));
  }
}

TEST(SelectiveFamily, BitPositionFamilyIsPairSelective) {
  for (std::size_t n : {4ul, 8ul, 13ul}) {
    const auto family = bit_position_family(n);
    EXPECT_TRUE(is_strongly_selective(family, 2)) << "n=" << n;
  }
}

TEST(SelectiveFamily, BitPositionFamilyFailsForTriples) {
  // Three ids where one is the bitwise "middle" of the others cannot be
  // isolated by bit-slice sets: e.g. {0b00, 0b01, 0b11} — 0b01 agrees
  // with 0b00 on the high bit and with 0b11 on the low bit.
  const auto family = bit_position_family(4);
  EXPECT_FALSE(is_strongly_selective(family, 3));
}

TEST(SelectiveFamily, Theorem32SizeBoundHoldsForOurConstructions) {
  // Any (n, k)-strongly selective family with k >= sqrt(2n) has at
  // least n sets. Exhaustively confirm no sub-n family we can build is
  // (n, n)-selective for small n.
  constexpr std::size_t n = 6;
  // The family of all singletons minus one set cannot be selective:
  // the dropped element can never be isolated from a superset.
  auto family = singleton_family(n);
  family.sets.pop_back();
  EXPECT_FALSE(is_strongly_selective(family, n));
}

TEST(SelectiveFamily, EmptyFamilyIsNotSelective) {
  const SetFamily family{4, {}};
  EXPECT_FALSE(is_strongly_selective(family, 1));
}

TEST(SelectiveFamily, RejectsOversizedUniverse) {
  const SetFamily family{64, {}};
  EXPECT_THROW((void)is_strongly_selective(family, 1),
               std::invalid_argument);
}

TEST(NonInteractive, MinIdSchemeIsCorrectForAllParticipantSets) {
  for (std::size_t n : {2ul, 5ul, 8ul, 12ul}) {
    const auto scheme = NonInteractiveScheme::min_id_scheme(n);
    EXPECT_EQ(scheme.find_violation(), std::nullopt) << "n=" << n;
  }
}

TEST(NonInteractive, MinIdSchemeUsesCeilLogNBits) {
  EXPECT_EQ(NonInteractiveScheme::min_id_scheme(8).advice_bits(), 3u);
  EXPECT_EQ(NonInteractiveScheme::min_id_scheme(9).advice_bits(), 4u);
}

TEST(NonInteractive, InducedFamilyIsStronglySelective) {
  // The Theorem 3.3 argument: a correct scheme's transmit sets form an
  // (n, n)-strongly selective family.
  constexpr std::size_t n = 10;
  const auto scheme = NonInteractiveScheme::min_id_scheme(n);
  ASSERT_EQ(scheme.find_violation(), std::nullopt);
  EXPECT_TRUE(is_strongly_selective(scheme.induced_family(), n));
}

TEST(NonInteractive, Theorem33TooFewAdviceBitsAlwaysFails) {
  // With b < log n bits there are fewer than n advice strings, hence
  // fewer than n transmit sets; by the selective family bound the
  // scheme must fail. Verify exhaustively for n = 4, b = 1 over every
  // possible pair of transmit sets and every advice function on a
  // restricted (monotone-by-min-id) class — and directly for the best
  // known strategy: transmit sets chosen per advice of the min id's
  // high bit.
  constexpr std::size_t n = 4;
  // Advice: high bit of min id. Try all 16 x 16 transmit-set pairs.
  auto advise = [](SetMask participants) -> std::size_t {
    const auto min_id =
        static_cast<std::size_t>(std::countr_zero(participants));
    return min_id >> 1;
  };
  bool any_correct = false;
  for (SetMask v0 = 0; v0 < 16 && !any_correct; ++v0) {
    for (SetMask v1 = 0; v1 < 16 && !any_correct; ++v1) {
      const NonInteractiveScheme scheme(n, 1, advise, {v0, v1});
      any_correct = !scheme.find_violation().has_value();
    }
  }
  EXPECT_FALSE(any_correct);
}

TEST(NonInteractive, ViolationIsReportedForBrokenScheme) {
  constexpr std::size_t n = 4;
  auto advise = [](SetMask) -> std::size_t { return 0; };
  // Everyone transmits regardless of advice: any |P| >= 2 collides.
  const NonInteractiveScheme scheme(n, 1, advise, {0xF, 0xF});
  const auto violation = scheme.find_violation();
  ASSERT_TRUE(violation.has_value());
  EXPECT_GE(std::popcount(*violation), 2);
}

}  // namespace
}  // namespace crp::rangefind
