#include "info/entropy.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace crp::info {
namespace {

TEST(ShannonEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<double>{1.0}), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<double>{0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(
      shannon_entropy(std::vector<double>{0.25, 0.25, 0.25, 0.25}), 2.0);
}

TEST(ShannonEntropy, ZeroEntriesContributeNothing) {
  EXPECT_DOUBLE_EQ(
      shannon_entropy(std::vector<double>{0.5, 0.0, 0.5, 0.0}), 1.0);
}

TEST(ShannonEntropy, DyadicDistribution) {
  // H = 1/2*1 + 1/4*2 + 1/8*3 + 1/8*3 = 1.75.
  EXPECT_DOUBLE_EQ(
      shannon_entropy(std::vector<double>{0.5, 0.25, 0.125, 0.125}), 1.75);
}

TEST(KlDivergence, GibbsInequalityHoldsOnRandomPairs) {
  // Property: D_KL(p || q) >= 0 with equality iff p == q.
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> unit(0.01, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> p(8);
    std::vector<double> q(8);
    double sp = 0.0;
    double sq = 0.0;
    for (int i = 0; i < 8; ++i) {
      p[static_cast<std::size_t>(i)] = unit(rng);
      q[static_cast<std::size_t>(i)] = unit(rng);
      sp += p[static_cast<std::size_t>(i)];
      sq += q[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < 8; ++i) {
      p[static_cast<std::size_t>(i)] /= sp;
      q[static_cast<std::size_t>(i)] /= sq;
    }
    EXPECT_GE(kl_divergence(p, q), 0.0);
    EXPECT_DOUBLE_EQ(kl_divergence(p, p), 0.0);
  }
}

TEST(KlDivergence, AsymmetricKnownValue) {
  const std::vector<double> p{0.75, 0.25};
  const std::vector<double> q{0.5, 0.5};
  const double expected =
      0.75 * std::log2(0.75 / 0.5) + 0.25 * std::log2(0.25 / 0.5);
  EXPECT_NEAR(kl_divergence(p, q), expected, 1e-12);
  EXPECT_NE(kl_divergence(p, q), kl_divergence(q, p));
}

TEST(KlDivergence, InfiniteWhenSupportEscapes) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{1.0, 0.0};
  EXPECT_TRUE(std::isinf(kl_divergence(p, q)));
}

TEST(CrossEntropy, DecomposesAsEntropyPlusDivergence) {
  const std::vector<double> p{0.7, 0.2, 0.1};
  const std::vector<double> q{0.3, 0.3, 0.4};
  EXPECT_NEAR(cross_entropy(p, q),
              shannon_entropy(p) + kl_divergence(p, q), 1e-12);
}

TEST(BinaryEntropy, SymmetricWithPeakAtHalf) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_NEAR(binary_entropy(0.3), binary_entropy(0.7), 1e-12);
  EXPECT_THROW(binary_entropy(-0.1), std::invalid_argument);
  EXPECT_THROW(binary_entropy(1.1), std::invalid_argument);
}

}  // namespace
}  // namespace crp::info
