// Fault injection for the checkpoint layer (harness/checkpoint.h):
// the journal survives a kill at *every* cell and every byte. A
// failing or short-writing sink at the Nth append, truncation at
// every byte offset, a bit flip in every byte, and duplicate records
// must each leave the journal either resumable (valid prefix, torn
// tail truncated on resume) or rejected with an error naming the file
// and byte offset — never silently replayed. The centerpiece
// assertion everywhere: resume-then-merge is byte-identical to the
// monolithic CSV.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "harness/checkpoint.h"
#include "harness/shard.h"
#include "harness/sweep.h"
#include "info/distribution.h"

namespace crp::harness {
namespace {

std::filesystem::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   (std::string("crp_fault_") + info->test_suite_name() + "_" +
                    info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The shard_test fixture: 6 cells across two schedules, a CD policy,
/// and two workloads.
struct Fixture {
  Fixture()
      : decay(1 << 10),
        slow_decay(1 << 6),
        willard(1 << 10),
        uniform(info::SizeDistribution::uniform(1 << 10)) {}

  SweepGrid grid() const {
    SweepGrid grid;
    grid.add_algorithm({.name = "decay", .schedule = &decay})
        .add_algorithm({.name = "slow-decay", .schedule = &slow_decay})
        .add_algorithm({.name = "willard", .policy = &willard})
        .add_sizes({.name = "uniform", .distribution = &uniform})
        .add_sizes({.name = "k=100", .fixed_k = 100})
        .add_budget(1 << 12);
    return grid;
  }

  baselines::DecaySchedule decay;
  baselines::DecaySchedule slow_decay;
  baselines::WillardPolicy willard;
  info::SizeDistribution uniform;
};

const SweepOptions kOptions{.trials = 120, .seed = 77, .threads = 1};

/// How the Nth append dies.
enum class FaultMode {
  kFailBeforeWrite,  ///< nothing reaches the file (clean IoError)
  kShortWrite,       ///< half the record reaches the file (torn tail)
  kFailAfterWrite,   ///< everything reached the file, the error came
                     ///< after durability (e.g. a late fsync failure)
};

/// Wraps the real file sink and injects one failure at the Nth
/// append, leaving the on-disk journal exactly as a crash would.
class FaultInjectionSink final : public CheckpointSink {
 public:
  FaultInjectionSink(std::unique_ptr<CheckpointSink> inner,
                     std::size_t fail_at_append, FaultMode mode)
      : inner_(std::move(inner)), fail_at_(fail_at_append), mode_(mode) {}

  void append(std::string_view bytes) override {
    ++appends_;
    if (appends_ == fail_at_) {
      switch (mode_) {
        case FaultMode::kFailBeforeWrite:
          throw IoError("injected fault: append failed before any write");
        case FaultMode::kShortWrite:
          inner_->append(bytes.substr(0, bytes.size() / 2));
          inner_->sync();
          throw IoError("injected fault: short write (torn record)");
        case FaultMode::kFailAfterWrite:
          inner_->append(bytes);
          inner_->sync();
          throw IoError("injected fault: failure after a durable write");
      }
    }
    inner_->append(bytes);
  }
  void sync() override { inner_->sync(); }

 private:
  std::unique_ptr<CheckpointSink> inner_;
  std::size_t fail_at_ = 0;
  std::size_t appends_ = 0;
  FaultMode mode_;
};

CheckpointSinkFactory faulty_factory(std::size_t fail_at_append,
                                     FaultMode mode) {
  return [fail_at_append, mode](const std::string& path) {
    return std::make_unique<FaultInjectionSink>(
        open_file_checkpoint_sink(path), fail_at_append, mode);
  };
}

/// A completed checkpointed run's journal bytes plus its final CSV —
/// the reference artifacts every damage scenario is checked against.
struct Reference {
  std::string journal;
  std::string csv;
  std::vector<CheckpointRecord> records;
  std::size_t header_bytes = 0;
};

Reference build_reference(const std::filesystem::path& dir,
                          std::span<const SweepCell> cells,
                          const ShardOptions& shard) {
  CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / "reference.journal").string();
  const auto run =
      run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);
  EXPECT_EQ(run.status, CheckpointRunStatus::kCompleted);
  Reference reference;
  reference.journal = read_file(checkpoint.journal_path);
  reference.csv = run.csv;
  const auto journal = read_checkpoint_journal(checkpoint.journal_path);
  reference.records = journal.records;
  reference.header_bytes = reference.journal.size();
  for (const auto& record : journal.records) {
    reference.header_bytes -= format_checkpoint_record(record).size();
  }
  return reference;
}

TEST(FaultInjection, KillAtEveryCellInEveryModeResumesByteIdentical) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const ShardOptions shard{.shard_count = 1, .shard_index = 0};
  const auto dir = test_dir();
  const Reference reference = build_reference(dir, cells, shard);

  for (const FaultMode mode :
       {FaultMode::kFailBeforeWrite, FaultMode::kShortWrite,
        FaultMode::kFailAfterWrite}) {
    for (std::size_t fail_at = 1; fail_at <= cells.size(); ++fail_at) {
      const auto label = "mode " + std::to_string(static_cast<int>(mode)) +
                         " fail_at " + std::to_string(fail_at);
      const auto kill_dir =
          dir / ("kill-" + std::to_string(static_cast<int>(mode)) + "-" +
                 std::to_string(fail_at));
      std::filesystem::create_directories(kill_dir);
      CheckpointRunOptions checkpoint;
      checkpoint.journal_path = (kill_dir / "shard.journal").string();
      checkpoint.sink_factory = faulty_factory(fail_at, mode);
      EXPECT_THROW((void)run_sweep_shard_checkpointed(cells, shard, kOptions,
                                                      checkpoint),
                   IoError)
          << label;

      // The journal left behind must already be a valid prefix (plus,
      // for the short write, a detectably-torn tail).
      const auto damaged = read_checkpoint_journal(checkpoint.journal_path);
      const std::size_t durable =
          mode == FaultMode::kFailAfterWrite ? fail_at : fail_at - 1;
      EXPECT_EQ(damaged.records.size(), durable) << label;
      EXPECT_EQ(damaged.torn_bytes > 0, mode == FaultMode::kShortWrite)
          << label;

      checkpoint.sink_factory = nullptr;
      checkpoint.resume = true;
      const auto resumed =
          run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);
      EXPECT_EQ(resumed.status, CheckpointRunStatus::kCompleted) << label;
      EXPECT_EQ(resumed.replayed_cells, durable) << label;
      EXPECT_EQ(resumed.csv, reference.csv) << label;
      // The healed journal equals the reference byte for byte: the
      // torn tail was truncated and every re-executed record matches.
      EXPECT_EQ(read_file(checkpoint.journal_path), reference.journal)
          << label;
    }
  }
}

TEST(FaultInjection, TruncationAtEveryByteIsTornOrHeaderDamage) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  const Reference reference =
      build_reference(dir, cells, {.shard_count = 1, .shard_index = 0});
  const auto path = (dir / "truncated.journal").string();

  // Record boundaries: after the header, then after each record.
  std::vector<std::size_t> boundaries = {reference.header_bytes};
  for (const auto& record : reference.records) {
    boundaries.push_back(boundaries.back() +
                         format_checkpoint_record(record).size());
  }

  for (std::size_t cut = 0; cut < reference.journal.size(); ++cut) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << reference.journal.substr(0, cut);
    out.close();
    if (cut < reference.header_bytes) {
      // The header block is written atomically — a file that ends
      // inside it cannot come from a crash and must be rejected,
      // naming the file.
      try {
        (void)read_checkpoint_journal(path);
        FAIL() << "header truncation at byte " << cut << " was accepted";
      } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
            << error.what();
      }
    } else {
      // Inside the record region every truncation is a legal crash:
      // the valid prefix is the greatest record boundary <= cut and
      // the rest is torn tail.
      const auto journal = read_checkpoint_journal(path);
      std::size_t expected_valid = boundaries.front();
      std::size_t expected_records = 0;
      for (std::size_t i = 1; i < boundaries.size(); ++i) {
        if (boundaries[i] <= cut) {
          expected_valid = boundaries[i];
          expected_records = i;
        }
      }
      EXPECT_EQ(journal.valid_bytes, expected_valid) << "cut at " << cut;
      EXPECT_EQ(journal.torn_bytes, cut - expected_valid) << "cut at " << cut;
      ASSERT_EQ(journal.records.size(), expected_records) << "cut at " << cut;
      for (std::size_t i = 0; i < expected_records; ++i) {
        EXPECT_EQ(journal.records[i].row, reference.records[i].row);
      }
    }
  }
}

TEST(FaultInjection, BitFlipIsNeverSilentlyReplayed) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  const Reference reference =
      build_reference(dir, cells, {.shard_count = 1, .shard_index = 0});
  const auto path = (dir / "flipped.journal").string();

  for (std::size_t offset = 0; offset < reference.journal.size(); ++offset) {
    std::string flipped = reference.journal;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x01);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << flipped;
    out.close();
    // Every single-bit flip must either be rejected — an error naming
    // the file and a byte offset — or classified as a torn tail whose
    // valid prefix carries only *undamaged* records (a flip in a
    // length field can legally make the file look short). What can
    // never happen: a damaged record replayed as valid.
    try {
      const auto journal = read_checkpoint_journal(path);
      EXPECT_GT(journal.torn_bytes, 0u)
          << "flip at byte " << offset << " was silently accepted";
      ASSERT_LE(journal.records.size(), reference.records.size());
      for (std::size_t i = 0; i < journal.records.size(); ++i) {
        EXPECT_EQ(journal.records[i].row, reference.records[i].row)
            << "flip at byte " << offset << " corrupted a replayed record";
      }
    } catch (const std::invalid_argument& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(path), std::string::npos)
          << "error does not name the file: " << what;
      EXPECT_NE(what.find("at byte "), std::string::npos)
          << "error does not name the offset: " << what;
    }
  }
}

TEST(FaultInjection, CorruptedChecksumNamesFileAndExactOffset) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  const Reference reference =
      build_reference(dir, cells, {.shard_count = 1, .shard_index = 0});
  const auto path = (dir / "corrupt.journal").string();

  // Flip a byte inside the *second* record's row payload: the framing
  // still parses, so only the checksum can catch it — and the error
  // must point at that record's start offset, not the file start.
  ASSERT_GE(reference.records.size(), 2u);
  const std::size_t second_start =
      reference.header_bytes +
      format_checkpoint_record(reference.records[0]).size();
  const std::string second = format_checkpoint_record(reference.records[1]);
  const std::size_t payload_offset = second_start + second.find('\n') + 3;
  std::string corrupted = reference.journal;
  ASSERT_NE(corrupted[payload_offset], 'Z');
  corrupted[payload_offset] = 'Z';
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << corrupted;
  out.close();

  try {
    (void)read_checkpoint_journal(path);
    FAIL() << "corrupted checksum was accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("at byte " + std::to_string(second_start)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  }
}

TEST(FaultInjection, DuplicateRecordRejectedAtItsOffset) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  const Reference reference =
      build_reference(dir, cells, {.shard_count = 1, .shard_index = 0});
  const auto path = (dir / "duplicate.journal").string();

  // Append a byte-exact copy of the first record at the end: framing
  // and checksum are valid, so only the exactly-once index tracking
  // can reject it.
  const std::string duplicate =
      format_checkpoint_record(reference.records.front());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << reference.journal << duplicate;
  out.close();

  try {
    (void)read_checkpoint_journal(path);
    FAIL() << "duplicate record was accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("duplicate record for cell"), std::string::npos)
        << what;
    EXPECT_NE(
        what.find("at byte " + std::to_string(reference.journal.size())),
        std::string::npos)
        << what;
  }
}

TEST(FaultInjection, ResumeThenMergeByteIdenticalToMonolithic) {
  // The acceptance scenario end to end: three shards, each killed
  // mid-grid by a different fault mode, each resumed, the artifacts
  // merged — the result must equal the monolithic CSV byte for byte.
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  std::ostringstream monolithic;
  write_sweep_csv(monolithic, run_sweep(cells, kOptions));

  const FaultMode modes[] = {FaultMode::kFailBeforeWrite,
                             FaultMode::kShortWrite,
                             FaultMode::kFailAfterWrite};
  std::vector<ShardArtifact> artifacts;
  for (std::size_t index = 0; index < 3; ++index) {
    const ShardOptions shard{.shard_count = 3, .shard_index = index};
    CheckpointRunOptions checkpoint;
    checkpoint.journal_path =
        (dir / ("shard-" + std::to_string(index) + ".journal")).string();
    checkpoint.sink_factory = faulty_factory(1, modes[index]);
    EXPECT_THROW(
        (void)run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint),
        IoError);
    checkpoint.sink_factory = nullptr;
    checkpoint.resume = true;
    const auto resumed =
        run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);
    ASSERT_EQ(resumed.status, CheckpointRunStatus::kCompleted);

    ShardArtifact artifact;
    artifact.manifest = resumed.manifest;
    std::istringstream csv_in(resumed.csv);
    artifact.csv = read_shard_csv(csv_in);
    artifacts.push_back(std::move(artifact));
  }
  std::ostringstream merged;
  merge_shard_csvs(merged, artifacts);
  EXPECT_EQ(merged.str(), monolithic.str());
}

}  // namespace
}  // namespace crp::harness
