// The streaming accumulator layer (harness/accumulate.h) vs the
// sample-vector fold it replaces, and the branchless inverse-CDF probe
// vs the partition_point search it replaces:
//  * histogram-fold count/min/max/mean/quantiles/success must match
//    the vector fold bit for bit at fixed seeds (stddev/ci95 to
//    floating-point rounding), with keep_samples on and off, across
//    thread counts and block-size-straddling trial counts;
//  * RoundHistogram / MomentAccumulator merges must be exact and
//    merge-order free;
//  * BatchNoCdSampler::probe_first_below must equal
//    std::partition_point on randomized snapshots, comparison for
//    comparison, so every fixed-seed golden of the batch paths
//    survives the pass-2 rewrite.
#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "channel/batch.h"
#include "channel/engine.h"
#include "core/likelihood_schedule.h"
#include "harness/accumulate.h"
#include "harness/measure.h"
#include "harness/parallel.h"
#include "harness/stats.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp::harness {
namespace {

/// The exactly-equal half of the contract: everything except
/// stddev/ci95 is bit-identical between the vector and histogram
/// folds.
void expect_stats_identical(const SummaryStats& a, const SummaryStats& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_NEAR(a.stddev, b.stddev, 1e-9 * (1.0 + std::abs(a.stddev)));
  EXPECT_NEAR(a.ci95, b.ci95, 1e-9 * (1.0 + std::abs(a.ci95)));
}

info::SizeDistribution table1_sizes(std::size_t n) {
  const auto condensed =
      predict::uniform_over_ranges(info::num_ranges(n), 6);
  return predict::lift(condensed, n,
                       predict::RangePlacement::kHighEndpoint);
}

TEST(RoundHistogram, MatchesSummarizeOnKnownValues) {
  RoundHistogram hist;
  std::vector<double> samples;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> rounds(1, 40);
  for (int t = 0; t < 5000; ++t) {
    if (t % 11 == 0) {
      hist.add_unsolved();
      continue;
    }
    const std::uint64_t r = rounds(rng);
    hist.add_solved(r);
    samples.push_back(static_cast<double>(r));
  }
  EXPECT_EQ(hist.trials(), 5000u);
  EXPECT_EQ(hist.solved(), samples.size());
  const auto expected = summarize(samples);
  expect_stats_identical(expected, hist.summary());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(percentile(samples, q), percentile_counts(hist.counts(), q))
        << "q=" << q;
  }
  const auto at_most = [&](double budget) {
    return static_cast<std::uint64_t>(
        std::count_if(samples.begin(), samples.end(),
                      [budget](double r) { return r <= budget; }));
  };
  for (const double budget : {0.0, 1.0, 7.5, 40.0, 1000.0}) {
    EXPECT_EQ(hist.solved_by(budget), at_most(budget)) << budget;
  }
}

TEST(RoundHistogram, MergeIsExactAndOrderFree) {
  // Partition one stream of outcomes into shards, merge them in two
  // different orders: both must equal the unsharded fold exactly.
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<std::uint64_t> rounds(1, 2000);
  RoundHistogram whole;
  std::vector<RoundHistogram> shards(7);
  for (int t = 0; t < 20000; ++t) {
    const std::uint64_t r = rounds(rng);
    if (r % 5 == 0) {
      whole.add_unsolved();
      shards[t % shards.size()].add_unsolved();
    } else {
      whole.add_solved(r);
      shards[t % shards.size()].add_solved(r);
    }
  }
  RoundHistogram forward;
  for (const auto& shard : shards) forward.merge(shard);
  RoundHistogram backward;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    backward.merge(*it);
  }
  for (const RoundHistogram* merged : {&forward, &backward}) {
    EXPECT_TRUE(*merged == whole);  // bin capacity differences ignored
    EXPECT_EQ(merged->trials(), whole.trials());
    EXPECT_EQ(merged->solved(), whole.solved());
    const auto a = whole.summary();
    const auto b = merged->summary();
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);  // same integer state -> same doubles
    EXPECT_EQ(a.p99, b.p99);
  }
}

TEST(MomentAccumulator, MatchesDirectMomentsAndMerges) {
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<std::uint64_t> values(0, 10000);
  MomentAccumulator whole;
  MomentAccumulator left;
  MomentAccumulator right;
  std::vector<double> raw;
  for (int t = 0; t < 4000; ++t) {
    const std::uint64_t v = values(rng);
    whole.add(v);
    (t % 2 == 0 ? left : right).add(v);
    raw.push_back(static_cast<double>(v));
  }
  const auto direct = summarize(raw);
  EXPECT_EQ(whole.count(), 4000u);
  EXPECT_DOUBLE_EQ(whole.mean(), direct.mean);
  EXPECT_NEAR(whole.stddev(), direct.stddev, 1e-9 * direct.stddev);
  EXPECT_EQ(static_cast<double>(whole.min()), direct.min);
  EXPECT_EQ(static_cast<double>(whole.max()), direct.max);

  MomentAccumulator merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.mean(), whole.mean());      // identical integer sums
  EXPECT_EQ(merged.stddev(), whole.stddev());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
}

TEST(StreamingFold, MatchesVectorFoldBitForBit) {
  // The tentpole contract, end to end through measure_*: at a fixed
  // seed the streaming fold reproduces the sample-retaining fold's
  // count, extrema, mean, quantiles, success rate, and success curve
  // exactly — for the analytic no-CD engine, the exact binomial
  // engine, and the CD adapter.
  constexpr std::size_t n = 1 << 12;
  const auto actual = table1_sizes(n);
  const auto condensed = actual.condense();
  const core::LikelihoodOrderedSchedule schedule(condensed);
  const baselines::DecaySchedule decay(n);
  const baselines::WillardPolicy willard(n);

  MeasureOptions keep{.max_rounds = 1 << 14, .threads = 1,
                      .keep_samples = true};
  MeasureOptions stream = keep;
  stream.keep_samples = false;

  const auto check = [&](const Measurement& kept,
                         const Measurement& streamed) {
    EXPECT_EQ(kept.trials, streamed.trials);
    EXPECT_EQ(kept.success_rate, streamed.success_rate);
    expect_stats_identical(kept.rounds, streamed.rounds);
    EXPECT_TRUE(streamed.samples.empty());
    for (const double budget : {1.0, 3.0, 10.0, 100.0}) {
      EXPECT_EQ(kept.solved_within(budget), streamed.solved_within(budget))
          << budget;
    }
  };

  keep.engine = stream.engine = NoCdEngine::kBatch;
  check(measure_uniform_no_cd(schedule, actual, 6000, 404, keep),
        measure_uniform_no_cd(schedule, actual, 6000, 404, stream));
  keep.engine = stream.engine = NoCdEngine::kBinomial;
  check(measure_uniform_no_cd(decay, actual, 2000, 405, keep),
        measure_uniform_no_cd(decay, actual, 2000, 405, stream));
  check(measure_uniform_cd_fixed_k(willard, 60, 2000, 406, keep),
        measure_uniform_cd_fixed_k(willard, 60, 2000, 406, stream));
}

TEST(StreamingFold, ThreadCountAndPartitionInvisible) {
  // Streaming accumulators live per worker, but their state is
  // integral, so the merged Measurement — including stddev, which is
  // derived once from the merged bins — is bit-identical at every
  // thread count and for trial counts straddling the block size.
  const baselines::DecaySchedule decay(1 << 10);
  const auto actual = table1_sizes(1 << 10);
  for (const std::size_t trials :
       {kTrialBlockSize - 1, kTrialBlockSize, 3 * kTrialBlockSize + 17}) {
    const MeasureOptions serial{.max_rounds = 1 << 14, .threads = 1};
    const auto reference =
        measure_uniform_no_cd(decay, actual, trials, 99, serial);
    for (const std::size_t threads : {2ul, 5ul, 8ul}) {
      MeasureOptions pooled = serial;
      pooled.threads = threads;
      const auto m = measure_uniform_no_cd(decay, actual, trials, 99, pooled);
      EXPECT_EQ(reference.trials, m.trials);
      EXPECT_EQ(reference.success_rate, m.success_rate);
      EXPECT_EQ(reference.rounds.count, m.rounds.count);
      EXPECT_EQ(reference.rounds.mean, m.rounds.mean);
      EXPECT_EQ(reference.rounds.stddev, m.rounds.stddev);
      EXPECT_EQ(reference.rounds.ci95, m.rounds.ci95);
      EXPECT_EQ(reference.rounds.p50, m.rounds.p50);
      EXPECT_EQ(reference.rounds.p90, m.rounds.p90);
      EXPECT_EQ(reference.rounds.p99, m.rounds.p99);
      EXPECT_EQ(reference.rounds.min, m.rounds.min);
      EXPECT_EQ(reference.rounds.max, m.rounds.max);
    }
  }
}

TEST(StreamingFold, TransmissionMomentsMatchAcrossFoldModes) {
  // The energy column is opt-in; both fold modes accumulate the same
  // exact integer moments from it.
  const baselines::DecaySchedule decay(1 << 10);
  MeasureOptions keep{.max_rounds = 1 << 14,
                      .threads = 1,
                      .engine = NoCdEngine::kBinomial,
                      .keep_samples = true,
                      .measure_transmissions = true};
  MeasureOptions stream = keep;
  stream.keep_samples = false;
  const auto kept = measure_uniform_no_cd_fixed_k(decay, 100, 3000, 7, keep);
  const auto streamed =
      measure_uniform_no_cd_fixed_k(decay, 100, 3000, 7, stream);
  EXPECT_EQ(kept.transmissions.count(), 3000u);
  EXPECT_GT(kept.transmissions.mean(), 0.0);
  EXPECT_EQ(kept.transmissions.count(), streamed.transmissions.count());
  EXPECT_EQ(kept.transmissions.mean(), streamed.transmissions.mean());
  EXPECT_EQ(kept.transmissions.stddev(), streamed.transmissions.stddev());
  EXPECT_EQ(kept.transmissions.min(), streamed.transmissions.min());
  EXPECT_EQ(kept.transmissions.max(), streamed.transmissions.max());

  // Off by default: no accumulation happens.
  const auto off = measure_uniform_no_cd_fixed_k(
      decay, 100, 500, 7,
      MeasureOptions{.max_rounds = 1 << 14,
                     .threads = 1,
                     .engine = NoCdEngine::kBinomial});
  EXPECT_EQ(off.transmissions.count(), 0u);
}

// ---- pass-2 branchless probe vs partition_point ------------------

/// An aperiodic schedule (period() = 0) so snapshots exercise the
/// lazily grown tables too.
class HarmonicSchedule final : public channel::ProbabilitySchedule {
 public:
  double probability(std::size_t round) const override {
    return 1.0 / (2.0 + static_cast<double>(round));
  }
  std::string name() const override { return "harmonic"; }
};

std::size_t partition_point_reference(
    const channel::BatchNoCdSampler::SolveTable& table, double target) {
  const auto& ls = table.log_survival;
  const auto it = std::partition_point(
      ls.begin() + 1, ls.end(),
      [target](double v) { return v >= target; });
  return static_cast<std::size_t>(it - ls.begin());
}

TEST(BranchlessProbe, MatchesPartitionPointOnRandomizedSnapshots) {
  constexpr std::size_t kMaxRounds = 1 << 14;
  const baselines::DecaySchedule decay(1 << 10);     // periodic
  const HarmonicSchedule harmonic;                   // aperiodic
  const channel::BatchNoCdSampler periodic(decay);
  const channel::BatchNoCdSampler aperiodic(harmonic);
  std::mt19937_64 rng(2026);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (const std::size_t k : {1ul, 2ul, 17ul, 300ul, 5000ul}) {
    for (int draw = 0; draw < 2000; ++draw) {
      const double target =
          channel::BatchNoCdSampler::target_for(unit(rng));
      for (const auto* sampler : {&periodic, &aperiodic}) {
        const auto table = sampler->snapshot(k, target, kMaxRounds);
        const std::size_t expected =
            partition_point_reference(*table, target);
        const std::size_t probed =
            channel::BatchNoCdSampler::probe_first_below(*table, target);
        ASSERT_EQ(probed, expected)
            << "k=" << k << " target=" << target
            << " span=" << table->log_survival.size();
      }
    }
  }

  // Degenerate targets: u = 0 (target 0, nothing below) and targets
  // beyond everything tabulated.
  const auto table = periodic.snapshot(2, -1e300, kMaxRounds);
  EXPECT_EQ(channel::BatchNoCdSampler::probe_first_below(*table, 0.0),
            partition_point_reference(*table, 0.0));
  EXPECT_EQ(channel::BatchNoCdSampler::probe_first_below(*table, -1e300),
            partition_point_reference(*table, -1e300));
}

TEST(BranchlessProbe, SolveRoundUnchangedAcrossEngines) {
  // End to end: the batch engine's sampled solve rounds at a fixed
  // seed are what they were before the rewrite — pinned against the
  // scalar sampler loop, which shares search()'s probe.
  const baselines::DecaySchedule decay(1 << 10);
  const channel::BatchNoCdSampler sampler(decay);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int draw = 0; draw < 5000; ++draw) {
    const double u = unit(rng);
    const double target = channel::BatchNoCdSampler::target_for(u);
    const auto table = sampler.snapshot(120, target, 1 << 14);
    // search() == probe-based round, modulo the periodic skip logic,
    // which partition_point_reference can emulate only within one
    // period; restrict to targets the first period answers.
    const std::size_t reference = partition_point_reference(*table, target);
    if (reference < table->log_survival.size()) {
      EXPECT_EQ(sampler.search(*table, target, 1 << 14), reference);
    }
  }
}

}  // namespace
}  // namespace crp::harness
