// The sweep scheduler (harness/sweep.h): per-cell derived seeds make a
// whole grid replayable from one master seed, independent of thread
// count, execution order, and grid composition; results line up with
// direct measure_* calls; and the table/CSV renderers emit one row per
// cell.
#include <sstream>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "harness/csv.h"
#include "harness/sweep.h"
#include "info/distribution.h"

namespace crp::harness {
namespace {

void expect_identical(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.samples, b.samples);
  // Full per-round distribution, not just the derived summary — on
  // the streaming path (empty samples) this is the element-wise
  // comparison that keeps the check from going vacuous.
  EXPECT_TRUE(a.histogram == b.histogram);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.rounds.mean, b.rounds.mean);
  EXPECT_EQ(a.rounds.p90, b.rounds.p90);
}

/// A small mixed grid: two schedules and one policy crossed with two
/// workloads.
struct Fixture {
  Fixture()
      : decay(1 << 10),
        slow_decay(1 << 6),
        willard(1 << 10),
        uniform(info::SizeDistribution::uniform(1 << 10)) {}

  SweepGrid grid() const {
    SweepGrid grid;
    grid.add_algorithm({.name = "decay", .schedule = &decay})
        .add_algorithm({.name = "slow-decay", .schedule = &slow_decay})
        .add_algorithm({.name = "willard", .policy = &willard})
        .add_sizes({.name = "uniform", .distribution = &uniform})
        .add_sizes({.name = "k=100", .fixed_k = 100})
        .add_budget(1 << 12);
    return grid;
  }

  baselines::DecaySchedule decay;
  baselines::DecaySchedule slow_decay;
  baselines::WillardPolicy willard;
  info::SizeDistribution uniform;
};

TEST(Sweep, GridCrossProductShape) {
  const Fixture f;
  const auto cells = f.grid().cells();
  ASSERT_EQ(cells.size(), 6u);  // 3 algorithms x 2 workloads x 1 budget
  EXPECT_EQ(cells[0].algorithm.name, "decay");
  EXPECT_EQ(cells[0].sizes.name, "uniform");
  EXPECT_EQ(cells[0].max_rounds, std::size_t{1} << 12);
  EXPECT_EQ(cells.back().algorithm.name, "willard");
  EXPECT_EQ(cells.back().sizes.fixed_k, 100u);
}

TEST(Sweep, ExplicitCellsPrecedeCrossProduct) {
  const Fixture f;
  SweepGrid grid;
  grid.add_cell({.algorithm = {.name = "paired", .schedule = &f.decay},
                 .sizes = {.name = "k=7", .fixed_k = 7}});
  grid.add_algorithm({.name = "decay", .schedule = &f.decay})
      .add_sizes({.name = "uniform", .distribution = &f.uniform});
  const auto cells = grid.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].algorithm.name, "paired");
  EXPECT_EQ(cells[1].algorithm.name, "decay");
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  // Same grid, same master seed, every threading regime — including
  // threads > cells (inner parallelism) and 1 < threads <= cells
  // (whole cells on the pool) — must produce identical measurements.
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto reference =
      run_sweep(cells, {.trials = 600, .seed = 31, .threads = 1});
  ASSERT_EQ(reference.size(), cells.size());
  for (const std::size_t threads : {2ul, 3ul, 16ul}) {
    const auto pooled =
        run_sweep(cells, {.trials = 600, .seed = 31, .threads = threads});
    ASSERT_EQ(pooled.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      expect_identical(reference[i].measurement, pooled[i].measurement);
      EXPECT_EQ(reference[i].cell_seed, pooled[i].cell_seed);
    }
  }
}

TEST(Sweep, CellsMatchDirectMeasurement) {
  // A sweep is exactly the corresponding measure_* calls at the
  // derived per-cell seeds.
  const Fixture f;
  const auto cells = f.grid().cells();
  const SweepOptions options{.trials = 500, .seed = 77, .threads = 1};
  const auto results = run_sweep(cells, options);
  const MeasureOptions direct{.max_rounds = 1 << 12, .threads = 1};
  expect_identical(
      results[0].measurement,
      measure_uniform_no_cd(f.decay, f.uniform, 500,
                            channel::derive_stream_seed(77, 0), direct));
  expect_identical(results[1].measurement,
                   measure_uniform_no_cd_fixed_k(
                       f.decay, 100, 500,
                       channel::derive_stream_seed(77, 1), direct));
  expect_identical(
      results[5].measurement,
      measure_uniform_cd_fixed_k(f.willard, 100, 500,
                                 channel::derive_stream_seed(77, 5),
                                 direct));
}

TEST(Sweep, PinnedSeedStreamsSurviveGridFiltering) {
  // A cell with an explicit seed_stream measures identically no matter
  // which other cells share the grid (the crp_sim registry contract).
  const Fixture f;
  const SweepCell pinned{.algorithm = {.name = "decay",
                                       .schedule = &f.decay},
                         .sizes = {.name = "uniform",
                                   .distribution = &f.uniform},
                         .max_rounds = 1 << 12,
                         .seed_stream = 42};
  const SweepCell other{.algorithm = {.name = "willard",
                                      .policy = &f.willard},
                        .sizes = {.name = "k=100", .fixed_k = 100},
                        .max_rounds = 1 << 12};
  const SweepOptions options{.trials = 400, .seed = 5, .threads = 1};
  const std::vector<SweepCell> alone{pinned};
  const std::vector<SweepCell> paired{other, pinned};
  const auto r_alone = run_sweep(alone, options);
  const auto r_paired = run_sweep(paired, options);
  expect_identical(r_alone[0].measurement, r_paired[1].measurement);
  EXPECT_EQ(r_alone[0].cell_seed, r_paired[1].cell_seed);
}

TEST(Sweep, PerCellTrialOverrides) {
  const Fixture f;
  SweepGrid grid;
  grid.add_cell({.algorithm = {.name = "decay", .schedule = &f.decay},
                 .sizes = {.fixed_k = 50},
                 .max_rounds = 1 << 12,
                 .trials = 123});
  const auto results =
      run_sweep(grid.cells(), {.trials = 999, .seed = 1, .threads = 1});
  EXPECT_EQ(results[0].measurement.trials, 123u);
}

TEST(Sweep, RejectsAlgorithmlessCells) {
  const Fixture f;
  const std::vector<SweepCell> cells{
      SweepCell{.algorithm = {.name = "nothing"},
                .sizes = {.distribution = &f.uniform}}};
  EXPECT_THROW(run_sweep(cells, {.trials = 10, .threads = 1}),
               std::invalid_argument);
}

TEST(Sweep, TableAndCsvEmitOneRowPerCell) {
  const Fixture f;
  const auto results =
      run_sweep(f.grid().cells(), {.trials = 200, .seed = 9, .threads = 1});
  const Table table = sweep_table(results);
  EXPECT_EQ(table.rows(), results.size());
  EXPECT_EQ(table.columns(), 10u);

  std::ostringstream csv;
  write_sweep_csv(csv, results);
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(csv.str());
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, results.size() + 1);  // header + one per cell
  EXPECT_NE(csv.str().find("algorithm,sizes,budget,trials,cell_seed,mean"),
            std::string::npos);
}

TEST(Sweep, CsvCellSeedRoundTrips) {
  // The cell_seed column must carry the exact derived seed: parsing it
  // back and re-running the cell's measure_* call under it reproduces
  // the row — the contract a multi-process shard driver relies on.
  const Fixture f;
  const SweepOptions options{.trials = 300, .seed = 123, .threads = 1};
  const auto results = run_sweep(f.grid().cells(), options);
  std::ostringstream csv;
  write_sweep_csv(csv, results);

  std::istringstream in(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  std::size_t seed_column = 0;
  {
    std::istringstream header(line);
    std::string cell;
    while (std::getline(header, cell, ',') && cell != "cell_seed") {
      ++seed_column;
    }
    EXPECT_EQ(cell, "cell_seed");
  }
  for (const auto& result : results) {
    ASSERT_TRUE(std::getline(in, line));
    std::istringstream row(line);
    std::string cell;
    for (std::size_t c = 0; c <= seed_column; ++c) {
      ASSERT_TRUE(std::getline(row, cell, ','));
    }
    const std::uint64_t parsed = std::stoull(cell);
    EXPECT_EQ(parsed, result.cell_seed);
  }

  // Replay one cell from the parsed seed alone.
  const auto replay = measure_uniform_no_cd(
      f.decay, f.uniform, 300, results[0].cell_seed,
      MeasureOptions{.max_rounds = 1 << 12, .threads = 1});
  expect_identical(replay, results[0].measurement);
}

TEST(Sweep, CsvQuotesCommaAndQuoteBearingNames) {
  // A name containing a comma or a double quote must survive the CSV
  // round trip instead of silently splitting its row (RFC-4180
  // quoting in CsvWriter, quote-aware split_csv_row on the way back).
  const Fixture f;
  SweepGrid grid;
  grid.add_cell({.algorithm = {.name = "decay, tuned \"v2\"",
                               .schedule = &f.decay},
                 .sizes = {.name = "uniform, n=1024",
                           .distribution = &f.uniform},
                 .max_rounds = 1 << 12});
  const auto results =
      run_sweep(grid.cells(), {.trials = 100, .seed = 4, .threads = 1});
  std::ostringstream csv;
  write_sweep_csv(csv, results);

  std::istringstream in(csv.str());
  std::string header_line;
  std::string row_line;
  ASSERT_TRUE(std::getline(in, header_line));
  ASSERT_TRUE(std::getline(in, row_line));
  const auto header = split_csv_row(header_line);
  const auto row = split_csv_row(row_line);
  ASSERT_EQ(row.size(), header.size());  // the row did not split
  EXPECT_EQ(row[0], "decay, tuned \"v2\"");
  EXPECT_EQ(row[1], "uniform, n=1024");
  // The raw line carries both names RFC-4180 quoted.
  EXPECT_EQ(
      row_line.rfind("\"decay, tuned \"\"v2\"\"\",\"uniform, n=1024\",", 0),
      0u);
}

TEST(Sweep, PinnedSeedStreamRejectsReservedSentinel) {
  // kSeedStreamFromIndex is reserved: an explicit pin of 0xFFFF...F is
  // indistinguishable from the default and would silently decay to
  // index-derived seeds, so the pinning helper throws instead.
  EXPECT_THROW(pinned_seed_stream(kSeedStreamFromIndex),
               std::invalid_argument);
  EXPECT_EQ(pinned_seed_stream(0), 0u);
  EXPECT_EQ(pinned_seed_stream(~std::uint64_t{0} - 1),
            ~std::uint64_t{0} - 1);
}

}  // namespace
}  // namespace crp::harness
