#include "channel/simulator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/simple.h"
#include "channel/rng.h"

namespace crp::channel {
namespace {

class ConstantSchedule final : public ProbabilitySchedule {
 public:
  explicit ConstantSchedule(double p) : p_(p) {}
  double probability(std::size_t) const override { return p_; }
  std::string name() const override { return "constant"; }

 private:
  double p_;
};

/// Probes with probability 1 until the first collision, then 1/4.
class CollisionReactivePolicy final : public CollisionPolicy {
 public:
  double probability(const BitString& history) const override {
    for (bool collided : history) {
      if (collided) return 0.25;
    }
    return 1.0;
  }
  std::string name() const override { return "collision-reactive"; }
};

TEST(Feedback, MapsTransmitterCounts) {
  EXPECT_EQ(feedback_for(0), Feedback::kSilence);
  EXPECT_EQ(feedback_for(1), Feedback::kSuccess);
  EXPECT_EQ(feedback_for(2), Feedback::kCollision);
  EXPECT_EQ(feedback_for(100), Feedback::kCollision);
}

TEST(Feedback, ToStringIsHumanReadable) {
  EXPECT_EQ(to_string(Feedback::kSilence), "silence");
  EXPECT_EQ(to_string(Feedback::kSuccess), "success");
  EXPECT_EQ(to_string(Feedback::kCollision), "collision");
}

TEST(SampleTransmitters, DegenerateProbabilities) {
  auto rng = make_rng(1);
  EXPECT_EQ(sample_transmitters(10, 0.0, rng), 0u);
  EXPECT_EQ(sample_transmitters(10, 1.0, rng), 10u);
  EXPECT_EQ(sample_transmitters(0, 0.5, rng), 0u);
  EXPECT_THROW(sample_transmitters(10, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(sample_transmitters(10, 1.5, rng), std::invalid_argument);
}

TEST(SampleTransmitters, MeanMatchesBinomial) {
  auto rng = make_rng(2);
  constexpr std::size_t kTrials = 100000;
  double total = 0.0;
  for (std::size_t t = 0; t < kTrials; ++t) {
    total += static_cast<double>(sample_transmitters(20, 0.3, rng));
  }
  EXPECT_NEAR(total / kTrials, 6.0, 0.05);
}

TEST(RunUniformNoCd, SingleParticipantSucceedsImmediately) {
  const ConstantSchedule schedule(1.0);
  auto rng = make_rng(3);
  const auto result = run_uniform_no_cd(schedule, 1, rng);
  EXPECT_TRUE(result.solved);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(RunUniformNoCd, ZeroProbabilityNeverSolves) {
  const ConstantSchedule schedule(0.0);
  auto rng = make_rng(4);
  const auto result = run_uniform_no_cd(schedule, 5, rng,
                                        {.max_rounds = 100});
  EXPECT_FALSE(result.solved);
  EXPECT_EQ(result.rounds, 100u);
}

TEST(RunUniformNoCd, AllTransmitNeverSolvesWithTwoPlayers) {
  const ConstantSchedule schedule(1.0);
  auto rng = make_rng(5);
  const auto result = run_uniform_no_cd(schedule, 2, rng,
                                        {.max_rounds = 50});
  EXPECT_FALSE(result.solved);
}

TEST(RunUniformNoCd, OptimalProbabilityGivesGeometricRounds) {
  // With p = 1/k, success probability per round is about 1/e; expected
  // rounds ~ e for moderate k. Check the measured mean is near e.
  constexpr std::size_t k = 32;
  const ConstantSchedule schedule(1.0 / k);
  double total = 0.0;
  constexpr std::size_t kTrials = 20000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng = derive_rng(99, t);
    const auto result = run_uniform_no_cd(schedule, k, rng);
    ASSERT_TRUE(result.solved);
    total += static_cast<double>(result.rounds);
  }
  const double mean = total / kTrials;
  // Success prob per round: k * (1/k) * (1 - 1/k)^{k-1} -> 1/e ~ .3679.
  const double p_round = 32.0 * (1.0 / 32.0) * std::pow(1.0 - 1.0 / 32.0, 31);
  EXPECT_NEAR(mean, 1.0 / p_round, 0.05);
}

TEST(RunUniformNoCd, TraceRecordsEveryRound) {
  const ConstantSchedule schedule(0.0);
  ExecutionTrace trace;
  auto rng = make_rng(6);
  (void)run_uniform_no_cd(schedule, 3, rng,
                          {.max_rounds = 7, .trace = &trace});
  ASSERT_EQ(trace.size(), 7u);
  for (const auto& record : trace) {
    EXPECT_EQ(record.probability, 0.0);
    EXPECT_EQ(record.transmitters, 0u);
    EXPECT_EQ(record.feedback, Feedback::kSilence);
  }
}

TEST(RunUniformCd, PolicySeesCollisionHistory) {
  // Two players with p = 1 collide forever unless the policy reacts;
  // CollisionReactivePolicy drops to 1/4 after the first collision and
  // then must eventually succeed.
  const CollisionReactivePolicy policy;
  auto rng = make_rng(7);
  const auto result = run_uniform_cd(policy, 2, rng, {.max_rounds = 10000});
  EXPECT_TRUE(result.solved);
  EXPECT_GT(result.rounds, 1u);  // round 1 is a guaranteed collision
}

TEST(RunUniformCd, HistoryBitsMatchTrace) {
  const CollisionReactivePolicy policy;
  ExecutionTrace trace;
  auto rng = make_rng(8);
  const auto result =
      run_uniform_cd(policy, 2, rng, {.max_rounds = 10000, .trace = &trace});
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(trace.size(), result.rounds);
  EXPECT_EQ(trace.front().feedback, Feedback::kCollision);
  EXPECT_EQ(trace.back().feedback, Feedback::kSuccess);
}

TEST(RunDeterministic, RoundRobinFindsSmallestIdInItsSlot) {
  const baselines::RoundRobinProtocol protocol(16);
  const std::vector<std::size_t> participants{5, 9, 12};
  const auto result = run_deterministic(protocol, {}, participants, false);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.rounds, 6u);  // id 5 transmits in 0-based round 5
  ASSERT_TRUE(result.winner.has_value());
  EXPECT_EQ(*result.winner, 5u);
}

TEST(RunDeterministic, RejectsEmptyParticipants) {
  const baselines::RoundRobinProtocol protocol(16);
  EXPECT_THROW(
      run_deterministic(protocol, {}, std::vector<std::size_t>{}, false),
      std::invalid_argument);
}

TEST(RunDeterministic, NoCdPlayersObserveOnlySilence) {
  // A protocol that would misbehave if it ever saw a collision bit:
  // transmit iff all observed history is silence and the round matches
  // the player's id.
  class SilenceAsserting final : public DeterministicProtocol {
   public:
    bool transmits(std::size_t player_id, const BitString&,
                   std::size_t round,
                   std::span<const Feedback> history) const override {
      for (Feedback f : history) {
        EXPECT_EQ(f, Feedback::kSilence);
      }
      return player_id == round;
    }
    std::string name() const override { return "silence-asserting"; }
  };
  const SilenceAsserting protocol;
  // ids 3 and 4: rounds 0..2 are silent, round 3 succeeds. In a
  // collision-detection-free world the players never learn anything.
  const std::vector<std::size_t> participants{3, 4};
  const auto result = run_deterministic(protocol, {}, participants, false);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.rounds, 4u);
}

TEST(RunDeterministic, TreeDescentResolvesInLogRounds) {
  const baselines::TreeDescentProtocol protocol(64);
  const std::vector<std::size_t> participants{3, 17, 45, 60};
  const auto result = run_deterministic(protocol, {}, participants, true,
                                        {.max_rounds = 64});
  ASSERT_TRUE(result.solved);
  EXPECT_LE(result.rounds, 7u);  // log2(64) + 1
}

TEST(RunDeterministic, TreeDescentHandlesEveryPairExhaustively) {
  constexpr std::size_t n = 32;
  const baselines::TreeDescentProtocol protocol(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const std::vector<std::size_t> participants{a, b};
      const auto result = run_deterministic(protocol, {}, participants,
                                            true, {.max_rounds = 2 * n});
      ASSERT_TRUE(result.solved) << "a=" << a << " b=" << b;
      EXPECT_LE(result.rounds, 6u) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Engines, BinomialAndPerPlayerAgreeOnSuccessRate) {
  // Cross-validation: same schedule, same k; the two engines must give
  // statistically indistinguishable mean rounds.
  constexpr std::size_t k = 10;
  const ConstantSchedule schedule(0.1);
  double mean_binomial = 0.0;
  double mean_players = 0.0;
  constexpr std::size_t kTrials = 30000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng_a = derive_rng(1234, t);
    auto rng_b = derive_rng(5678, t);
    mean_binomial +=
        static_cast<double>(run_uniform_no_cd(schedule, k, rng_a).rounds);
    mean_players += static_cast<double>(
        run_uniform_no_cd_per_player(schedule, k, rng_b).rounds);
  }
  mean_binomial /= kTrials;
  mean_players /= kTrials;
  EXPECT_NEAR(mean_binomial, mean_players, 0.08 * mean_binomial);
}

TEST(Rng, FastStreamsAreReproducibleAndNotShiftedCopies) {
  auto a = derive_fast_rng(42, 7);
  auto b = derive_fast_rng(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  // Regression: SplitMix64 advances its state by the same golden-ratio
  // increment derive_rng mixes with, so seeding streams at arithmetic
  // offsets would make stream t a one-draw-shifted copy of stream
  // t + 1, serially correlating consecutive batch trials. The
  // finalizer mix must break that alignment.
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    auto ahead = derive_fast_rng(42, stream);
    auto next = derive_fast_rng(42, stream + 1);
    (void)ahead();  // advance stream `stream` by one draw
    bool differs = false;
    for (int i = 0; i < 4; ++i) {
      if (ahead() != next()) {
        differs = true;
        break;
      }
    }
    EXPECT_TRUE(differs) << "stream " << stream;
  }
}

TEST(Rng, DerivedStreamsAreReproducible) {
  auto a = derive_rng(42, 7);
  auto b = derive_rng(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  auto c = derive_rng(42, 8);
  bool differs = false;
  auto d = derive_rng(42, 7);
  for (int i = 0; i < 100; ++i) {
    if (c() != d()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace crp::channel
