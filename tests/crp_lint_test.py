#!/usr/bin/env python3
"""Self-test for tools/crp_lint.py (registered as ctest `crp_lint_test`).

Three gates:

1. **Fixture exactness** — running the linter over tests/lint_fixtures
   (a miniature repo tree of deliberate violations) must produce
   *exactly* the findings annotated in the fixtures themselves
   (`// expect-lint: <rule-id>...` trailing markers, or
   `// expect-next-line-lint:` when the violating line's comment slot
   is taken by a pragma under test).  Exact set equality means every
   negative control — `expected_time(` not tripping `time(`, lookups
   not tripping the fold rule, a well-formed allow() pragma
   suppressing — is asserted too, and a new rule cannot land without
   fixture coverage.

2. **Pragma policy** — an allow() without a reason, naming an unknown
   rule, or malformed is reported under `lint-pragma` AND the
   underlying violation still fires (both are in the fixture
   expectations).

3. **Live tree cleanliness** — the linter's default scan of the real
   repo (src/, tools/, bench/, examples/, CMakeLists.txt) exits 0.

Usage: crp_lint_test.py [REPO_ROOT]
"""

import re
import subprocess
import sys
from pathlib import Path

EXPECT_RE = re.compile(r"(?://|#)\s*expect-lint:\s*([A-Za-z0-9 -]+?)\s*$")
EXPECT_NEXT_RE = re.compile(
    r"(?://|#)\s*expect-next-line-lint:\s*([A-Za-z0-9 -]+?)\s*$")
FINDING_RE = re.compile(r"^(.*?):(\d+): ([A-Za-z0-9-]+): ")

failures = []


def check(condition, label):
    print(("PASS" if condition else "FAIL") + f": {label}")
    if not condition:
        failures.append(label)


def expected_findings(fixture_root: Path):
    expected = set()
    for path in sorted(fixture_root.rglob("*")):
        if not path.is_file() or path.suffix not in {
                ".cpp", ".h", ".hpp", ".cc", ".txt", ".cmake"}:
            continue
        rel = path.relative_to(fixture_root).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, 1):
            match = EXPECT_RE.search(line)
            if match:
                for rule in match.group(1).split():
                    expected.add((rel, lineno, rule))
            match = EXPECT_NEXT_RE.search(line)
            if match:
                for rule in match.group(1).split():
                    expected.add((rel, lineno + 1, rule))
    return expected


def run_lint(repo: Path, *args):
    return subprocess.run(
        [sys.executable, str(repo / "tools" / "crp_lint.py"), *args],
        capture_output=True, text=True)


def parse_findings(stdout: str):
    found = set()
    for line in stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            found.add((match.group(1), int(match.group(2)), match.group(3)))
    return found


def main():
    repo = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    fixture_root = repo / "tests" / "lint_fixtures"

    # Gate 1+2: the fixture tree, exactly.
    expected = expected_findings(fixture_root)
    check(len(expected) >= 20, f"fixtures annotate >= 20 findings "
                               f"(got {len(expected)})")
    result = run_lint(repo, "--root", str(fixture_root))
    check(result.returncode == 1,
          f"linter exits 1 on the violation fixtures "
          f"(got {result.returncode})")
    found = parse_findings(result.stdout)
    missing = expected - found
    surplus = found - expected
    check(not missing, f"every annotated violation fires (missing: "
                       f"{sorted(missing)})")
    check(not surplus, f"no unannotated findings — negative controls "
                       f"hold (surplus: {sorted(surplus)})")

    # Every shipped rule must have fixture coverage, so a rule cannot
    # rot into never-firing without this test noticing.
    listed = run_lint(repo, "--list-rules")
    check(listed.returncode == 0, "--list-rules exits 0")
    rule_ids = {line.split()[0] for line in listed.stdout.splitlines()
                if line and not line.startswith(" ")}
    fired = {rule for (_, _, rule) in expected if rule != "lint-pragma"}
    check(rule_ids == fired,
          f"every catalogued rule fires in the fixtures "
          f"(catalogue {sorted(rule_ids)} vs fired {sorted(fired)})")
    check(any(rule == "lint-pragma" for (_, _, rule) in expected),
          "the pragma policy (reasonless/unknown/malformed allow) is "
          "covered")

    # Gate 3: the live tree is clean under the default scan.
    live = run_lint(repo)
    check(live.returncode == 0,
          f"live tree lints clean (exit {live.returncode}):\n"
          + live.stdout)

    print(f"\n{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
