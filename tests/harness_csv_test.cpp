#include "harness/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace crp::harness {
namespace {

TEST(CsvRead, ParsesSimpleDistribution) {
  std::istringstream in("size,probability\n10,0.5\n20,0.25\n30,0.25\n");
  const auto dist = read_size_distribution_csv(in, 64);
  EXPECT_DOUBLE_EQ(dist.prob(10), 0.5);
  EXPECT_DOUBLE_EQ(dist.prob(20), 0.25);
  EXPECT_DOUBLE_EQ(dist.prob(30), 0.25);
  EXPECT_DOUBLE_EQ(dist.prob(11), 0.0);
}

TEST(CsvRead, RenormalizesUnnormalizedWeights) {
  std::istringstream in("4,2\n8,2\n");
  const auto dist = read_size_distribution_csv(in, 16);
  EXPECT_DOUBLE_EQ(dist.prob(4), 0.5);
  EXPECT_DOUBLE_EQ(dist.prob(8), 0.5);
}

TEST(CsvRead, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a learned model\n\n5,1.0\n");
  const auto dist = read_size_distribution_csv(in, 16);
  EXPECT_DOUBLE_EQ(dist.prob(5), 1.0);
}

TEST(CsvRead, AccumulatesDuplicateSizes) {
  std::istringstream in("7,0.5\n7,0.5\n");
  const auto dist = read_size_distribution_csv(in, 16);
  EXPECT_DOUBLE_EQ(dist.prob(7), 1.0);
}

TEST(CsvRead, RejectsMalformedRows) {
  {
    std::istringstream in("5\n");
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("1,0.5\n");  // size < 2
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("100,0.5\n");  // size > n
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("5,-0.5\n");
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("5.5,0.5\n");  // non-integer size
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("5,0.5\nsize,probability\n");  // header mid-file
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
}

TEST(CsvRead, RejectsNonFiniteFieldsWithLineNumbers) {
  // strtod happily parses nan/inf, and "nan" passes a `prob < 0.0`
  // check (NaN comparisons are false) — both must be rejected as
  // malformed, not silently folded into the normalization total.
  for (const char* row : {"5,nan", "5,inf", "5,-inf", "nan,0.5", "inf,0.5",
                          "5,NAN", "5,Infinity"}) {
    std::istringstream in(std::string("4,0.25\n") + row + "\n");
    try {
      read_size_distribution_csv(in, 16);
      FAIL() << "accepted non-finite row \"" << row << "\"";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
          << "row \"" << row << "\": error lacks the line number: "
          << error.what();
    }
  }
  {
    // First data line too — non-finite must not be mistaken for a
    // header row.
    std::istringstream in("nan,0.5\n");
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
}

TEST(CsvRead, MissingFileThrows) {
  EXPECT_THROW(
      read_size_distribution_csv_file("/nonexistent/path.csv", 16),
      std::invalid_argument);
}

TEST(CsvRoundTrip, WriteThenReadRecoversDistribution) {
  const auto original = info::SizeDistribution::from_pairs(
      64, std::vector<std::pair<std::size_t, double>>{
              {4, 0.25}, {17, 0.5}, {63, 0.25}});
  std::stringstream buffer;
  write_size_distribution_csv(buffer, original);
  const auto recovered = read_size_distribution_csv(buffer, 64);
  for (std::size_t k = 2; k <= 64; ++k) {
    EXPECT_NEAR(recovered.prob(k), original.prob(k), 1e-12) << "k=" << k;
  }
}

TEST(CsvFieldParsers, StrictUnsignedAndFiniteParsing) {
  EXPECT_EQ(parse_csv_unsigned("0"), 0u);
  EXPECT_EQ(parse_csv_unsigned("18446744073709551615"),
            ~std::uint64_t{0});  // UINT64_MAX exactly
  for (const char* bad : {"", "-1", "+1", "1.5", "1e3", "nan", "inf",
                          "18446744073709551616", " 1", "1 "}) {
    EXPECT_FALSE(parse_csv_unsigned(bad).has_value()) << bad;
  }
  EXPECT_EQ(parse_csv_finite("1.5"), 1.5);
  EXPECT_EQ(parse_csv_finite("-2"), -2.0);
  for (const char* bad : {"", "nan", "inf", "-inf", "NAN", "Infinity",
                          "1.5x", "x"}) {
    EXPECT_FALSE(parse_csv_finite(bad).has_value()) << bad;
  }
}

TEST(CsvQuoting, QuoteAndSplitRoundTrip) {
  // Plain fields pass through untouched (existing outputs stay
  // byte-stable); fields with commas/quotes/newlines get RFC-4180
  // treatment and split_csv_row undoes it exactly.
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote(""), "");
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_quote("line\nbreak"), "\"line\nbreak\"");

  for (const std::vector<std::string> fields :
       {std::vector<std::string>{"a", "b", "c"},
        std::vector<std::string>{"a,b", "c\"d", ""},
        std::vector<std::string>{"", "", ""},
        std::vector<std::string>{"x"}}) {
    std::string line;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) line += ',';
      line += csv_quote(fields[i]);
    }
    EXPECT_EQ(split_csv_row(line), fields) << "line: " << line;
  }

  EXPECT_EQ(split_csv_row("a,"),
            (std::vector<std::string>{"a", ""}));  // trailing empty field
  EXPECT_EQ(split_csv_row("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_THROW(split_csv_row("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(split_csv_row("\"a\"garbage,b"), std::invalid_argument);
}

TEST(CsvWriterTest, QuotesCellsOnWrite) {
  std::ostringstream out;
  CsvWriter writer(out, {"name", "value"});
  writer.row({"a,b", "1"});
  writer.row({"q\"q", "2"});
  EXPECT_EQ(out.str(), "name,value\n\"a,b\",1\n\"q\"\"q\",2\n");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  writer.row({"1", "2"});
  writer.row({"x", "y"});
  EXPECT_EQ(out.str(), "a,b\n1,2\nx,y\n");
  EXPECT_THROW(writer.row({"too", "many", "cells"}),
               std::invalid_argument);
}

TEST(CsvWriterTest, MeasurementCellsMatchHeaderWidth) {
  Measurement m;
  m.trials = 10;
  m.success_rate = 0.9;
  m.samples = {1.0, 2.0, 3.0};
  m.rounds = summarize(m.samples);
  EXPECT_EQ(CsvWriter::measurement_cells(m).size(),
            CsvWriter::measurement_header().size());
}

}  // namespace
}  // namespace crp::harness
