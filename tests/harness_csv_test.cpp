#include "harness/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace crp::harness {
namespace {

TEST(CsvRead, ParsesSimpleDistribution) {
  std::istringstream in("size,probability\n10,0.5\n20,0.25\n30,0.25\n");
  const auto dist = read_size_distribution_csv(in, 64);
  EXPECT_DOUBLE_EQ(dist.prob(10), 0.5);
  EXPECT_DOUBLE_EQ(dist.prob(20), 0.25);
  EXPECT_DOUBLE_EQ(dist.prob(30), 0.25);
  EXPECT_DOUBLE_EQ(dist.prob(11), 0.0);
}

TEST(CsvRead, RenormalizesUnnormalizedWeights) {
  std::istringstream in("4,2\n8,2\n");
  const auto dist = read_size_distribution_csv(in, 16);
  EXPECT_DOUBLE_EQ(dist.prob(4), 0.5);
  EXPECT_DOUBLE_EQ(dist.prob(8), 0.5);
}

TEST(CsvRead, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a learned model\n\n5,1.0\n");
  const auto dist = read_size_distribution_csv(in, 16);
  EXPECT_DOUBLE_EQ(dist.prob(5), 1.0);
}

TEST(CsvRead, AccumulatesDuplicateSizes) {
  std::istringstream in("7,0.5\n7,0.5\n");
  const auto dist = read_size_distribution_csv(in, 16);
  EXPECT_DOUBLE_EQ(dist.prob(7), 1.0);
}

TEST(CsvRead, RejectsMalformedRows) {
  {
    std::istringstream in("5\n");
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("1,0.5\n");  // size < 2
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("100,0.5\n");  // size > n
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("5,-0.5\n");
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("5.5,0.5\n");  // non-integer size
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
  {
    std::istringstream in("5,0.5\nsize,probability\n");  // header mid-file
    EXPECT_THROW(read_size_distribution_csv(in, 16), std::invalid_argument);
  }
}

TEST(CsvRead, MissingFileThrows) {
  EXPECT_THROW(
      read_size_distribution_csv_file("/nonexistent/path.csv", 16),
      std::invalid_argument);
}

TEST(CsvRoundTrip, WriteThenReadRecoversDistribution) {
  const auto original = info::SizeDistribution::from_pairs(
      64, std::vector<std::pair<std::size_t, double>>{
              {4, 0.25}, {17, 0.5}, {63, 0.25}});
  std::stringstream buffer;
  write_size_distribution_csv(buffer, original);
  const auto recovered = read_size_distribution_csv(buffer, 64);
  for (std::size_t k = 2; k <= 64; ++k) {
    EXPECT_NEAR(recovered.prob(k), original.prob(k), 1e-12) << "k=" << k;
  }
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  writer.row({"1", "2"});
  writer.row({"x", "y"});
  EXPECT_EQ(out.str(), "a,b\n1,2\nx,y\n");
  EXPECT_THROW(writer.row({"too", "many", "cells"}),
               std::invalid_argument);
}

TEST(CsvWriterTest, MeasurementCellsMatchHeaderWidth) {
  Measurement m;
  m.trials = 10;
  m.success_rate = 0.9;
  m.samples = {1.0, 2.0, 3.0};
  m.rounds = summarize(m.samples);
  EXPECT_EQ(CsvWriter::measurement_cells(m).size(),
            CsvWriter::measurement_header().size());
}

}  // namespace
}  // namespace crp::harness
