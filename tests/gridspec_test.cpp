// The grid-spec contract (harness/gridspec.h), pinned from two sides:
//
//  - Differential: the checked-in examples/grids/table1.json must be
//    indistinguishable from the compiled-in table1 grid — same
//    grid_fingerprint, same per-cell seeds under every shard count,
//    and a sharded-merged sweep CSV byte-identical to the compiled
//    grid's monolithic one. This is what makes a spec the portable,
//    recompile-free identity of a sweep.
//
//  - Rejection surface: a property/fuzz pass over a canonical spec —
//    dropped/duplicated/renamed fields, nan/inf/negative/out-of-range
//    injections, truncation at every byte, random byte flips — where
//    every mutation must be rejected with the offending field named
//    (or parse into the byte-identical grid), never a crash or a
//    silent default. CI runs this file under ASan/UBSan too.
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/rng.h"
#include "harness/checkpoint.h"
#include "harness/csv.h"
#include "harness/gridspec.h"
#include "harness/grids.h"
#include "harness/shard.h"
#include "harness/sweep.h"

namespace {

using crp::harness::GridSpec;
using crp::harness::grid_fingerprint;
using crp::harness::parse_grid_spec;
using crp::harness::read_grid_spec_file;
using crp::harness::SweepCell;

std::string table1_spec_path() {
  return std::string(CRP_SOURCE_DIR) + "/examples/grids/table1.json";
}

std::span<const SweepCell> cells_of(const std::vector<SweepCell>& cells) {
  return std::span<const SweepCell>(cells);
}

// ---- differential: spec vs compiled-in table1 ----

struct CompiledTable1 {
  std::vector<crp::harness::Table1EntropyPoint> points;
  std::vector<SweepCell> cells;
};

CompiledTable1 compiled_table1(std::size_t n) {
  CompiledTable1 grid;
  grid.points = crp::harness::table1_entropy_points(n);
  grid.cells = crp::harness::table1_upper_bound_grid(grid.points).cells();
  return grid;
}

TEST(GridSpecTable1, FingerprintAndCellsMatchCompiledGrid) {
  const GridSpec spec = read_grid_spec_file(table1_spec_path());
  const CompiledTable1 compiled = compiled_table1(1024);

  ASSERT_EQ(spec.n, 1024u);
  ASSERT_EQ(spec.cells.size(), compiled.cells.size());
  for (std::size_t i = 0; i < compiled.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(spec.cells[i].algorithm.name, compiled.cells[i].algorithm.name);
    EXPECT_EQ(spec.cells[i].sizes.name, compiled.cells[i].sizes.name);
    EXPECT_EQ(spec.cells[i].max_rounds, compiled.cells[i].max_rounds);
    EXPECT_EQ(spec.cells[i].trials, compiled.cells[i].trials);
    EXPECT_EQ(spec.cells[i].seed_stream, compiled.cells[i].seed_stream);
  }
  EXPECT_EQ(grid_fingerprint(cells_of(spec.cells)),
            grid_fingerprint(cells_of(compiled.cells)));
}

TEST(GridSpecTable1, CellSeedsMatchCompiledGridAcrossShardCounts) {
  const GridSpec spec = read_grid_spec_file(table1_spec_path());
  const CompiledTable1 compiled = compiled_table1(1024);
  const std::uint64_t master_seed = 20210526;

  for (std::size_t shard_count = 1; shard_count <= 4; ++shard_count) {
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      SCOPED_TRACE("shard " + std::to_string(shard) + "/" +
                   std::to_string(shard_count));
      crp::harness::ShardOptions options;
      options.shard_index = shard;
      options.shard_count = shard_count;
      const auto spec_plan =
          crp::harness::plan_shards(cells_of(spec.cells), options);
      const auto compiled_plan =
          crp::harness::plan_shards(cells_of(compiled.cells), options);
      ASSERT_EQ(spec_plan.cell_begin, compiled_plan.cell_begin);
      ASSERT_EQ(spec_plan.cell_end, compiled_plan.cell_end);
      ASSERT_EQ(spec_plan.cells.size(), compiled_plan.cells.size());
      for (std::size_t j = 0; j < spec_plan.cells.size(); ++j) {
        EXPECT_EQ(spec_plan.cells[j].seed_stream,
                  compiled_plan.cells[j].seed_stream);
        EXPECT_EQ(crp::channel::derive_stream_seed(
                      master_seed, spec_plan.cells[j].seed_stream),
                  crp::channel::derive_stream_seed(
                      master_seed, compiled_plan.cells[j].seed_stream));
      }
    }
  }
}

TEST(GridSpecTable1, ShardedMergedCsvByteIdenticalToCompiledMonolithic) {
  const GridSpec spec = read_grid_spec_file(table1_spec_path());
  const CompiledTable1 compiled = compiled_table1(1024);
  crp::harness::SweepOptions sweep;
  sweep.trials = 24;
  sweep.seed = 99;

  // The reference: the compiled-in grid, one process, no sharding.
  const auto reference = crp::harness::run_sweep(cells_of(compiled.cells),
                                                 sweep);
  std::ostringstream reference_csv;
  crp::harness::write_sweep_csv(reference_csv, reference);

  for (std::size_t shard_count = 1; shard_count <= 4; ++shard_count) {
    SCOPED_TRACE(std::to_string(shard_count) + " shard(s)");
    std::vector<crp::harness::ShardRun> runs;
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      crp::harness::ShardOptions options;
      options.shard_index = shard;
      options.shard_count = shard_count;
      runs.push_back(crp::harness::run_sweep_shard(cells_of(spec.cells),
                                                   options, sweep));
    }
    const auto merged = crp::harness::merge_shards(
        std::span<const crp::harness::ShardRun>(runs));
    std::ostringstream merged_csv;
    crp::harness::write_sweep_csv(merged_csv, merged);
    EXPECT_EQ(merged_csv.str(), reference_csv.str());
  }
}

// ---- the canonical fuzzing substrate ----
//
// One field per construct so drop/duplicate/rename mutations are plain
// substring replacements; exercises every source family, both
// algorithm types with their knobs, all three non-CSV size kinds,
// per-cell trials/seed_stream overrides, and a product block.
constexpr const char* kCanonicalSpec = R"({
  "format": "crp-grid-spec-v1",
  "name": "fuzz-canonical",
  "n": 64,
  "sources": {
    "u": {"family": "uniform_ranges", "m": 2},
    "g": {"family": "geometric_ranges", "decay": 0.5},
    "z": {"family": "zipf_ranges", "s": 1.0},
    "b": {"family": "bimodal_ranges", "range_a": 1, "range_b": 6, "eps": 0.25},
    "p": {"family": "spiked_uniform", "spike_mass": 0.5}
  },
  "algorithms": {
    "lik": {"type": "likelihood", "source": "u", "cycle": "proportional"},
    "cod": {"type": "coded", "source": "g", "backend": "shannon-fano"}
  },
  "sizes": {
    "lo": {"type": "lift", "source": "b", "placement": "low"},
    "tab": {"type": "support", "entries": [[4, 0.25], [8, 0.75]]},
    "k16": {"type": "fixed_k", "k": 16}
  },
  "cells": [
    {"algorithm": "lik", "sizes": "tab", "budget": 4096, "trials": 12, "seed_stream": "0x2a"},
    {"algorithm": "cod", "sizes": "lo", "budget": 512}
  ],
  "product": {
    "algorithms": ["lik", "cod"],
    "sizes": ["k16"],
    "budgets": [256, 1024]
  }
})";

/// Replaces the unique occurrence of `from`; fails the test when the
/// mutation anchor has drifted from kCanonicalSpec.
std::string mutate(const std::string& from, const std::string& to) {
  std::string text = kCanonicalSpec;
  const auto at = text.find(from);
  EXPECT_NE(at, std::string::npos) << "mutation anchor not found: " << from;
  EXPECT_EQ(text.find(from, at + 1), std::string::npos)
      << "mutation anchor is ambiguous: " << from;
  if (at == std::string::npos) return text;
  text.replace(at, from.size(), to);
  return text;
}

/// The rejection contract: parsing must throw std::invalid_argument
/// whose message names the offending field (the `needle`).
void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    (void)parse_grid_spec(text);
    FAIL() << "expected a rejection mentioning: " << needle;
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "rejection message \"" << error.what()
        << "\" does not mention: " << needle;
  }
}

TEST(GridSpecParser, CanonicalSpecParses) {
  const GridSpec spec = parse_grid_spec(kCanonicalSpec);
  EXPECT_EQ(spec.name, "fuzz-canonical");
  EXPECT_EQ(spec.n, 64u);
  // 2 explicit cells + (2 algorithms × 1 sizes × 2 budgets).
  ASSERT_EQ(spec.cells.size(), 6u);
  EXPECT_EQ(spec.cells[0].trials, 12u);
  EXPECT_EQ(spec.cells[0].seed_stream, 0x2au);
  EXPECT_EQ(spec.cells[1].trials, 0u);
  EXPECT_EQ(spec.cells[1].seed_stream, crp::harness::kSeedStreamFromIndex);
  EXPECT_EQ(spec.cells[2].sizes.fixed_k, 16u);
  EXPECT_EQ(spec.cells[2].max_rounds, 256u);
  EXPECT_EQ(spec.cells[3].max_rounds, 1024u);
  EXPECT_EQ(spec.cells[4].algorithm.name, "cod");
}

TEST(GridSpecParser, ParseIsDeterministic) {
  const GridSpec first = parse_grid_spec(kCanonicalSpec);
  const GridSpec second = parse_grid_spec(kCanonicalSpec);
  EXPECT_EQ(grid_fingerprint(cells_of(first.cells)),
            grid_fingerprint(cells_of(second.cells)));
}

TEST(GridSpecParser, ProductBlockMatchesSweepGridCrossOrder) {
  // The spec's product block must append cells in exactly the order
  // SweepGrid::cells() crosses its axes, or a spec "equivalent" to a
  // compiled grid would shuffle cell indices (and with them seeds).
  const GridSpec spec = parse_grid_spec(kCanonicalSpec);
  crp::harness::SweepGrid grid;
  for (std::size_t i = 0; i < 2; ++i) grid.add_cell(spec.cells[i]);
  grid.add_algorithm(spec.cells[0].algorithm);  // lik
  grid.add_algorithm(spec.cells[1].algorithm);  // cod
  grid.add_sizes(spec.cells[2].sizes);          // k16
  grid.add_budget(256);
  grid.add_budget(1024);
  EXPECT_EQ(grid_fingerprint(cells_of(spec.cells)),
            grid_fingerprint(cells_of(grid.cells())));
}

// ---- shared support-table validator (csv.h) ----

TEST(GridSpecParser, InlineSupportTableMatchesCsvReader) {
  const GridSpec spec = parse_grid_spec(kCanonicalSpec);
  std::istringstream csv("size,probability\n4,0.25\n8,0.75\n");
  const auto from_csv = crp::harness::read_size_distribution_csv(csv, 64);
  const auto* from_spec = spec.cells[0].sizes.distribution;
  ASSERT_NE(from_spec, nullptr);
  ASSERT_EQ(from_spec->n(), from_csv.n());
  for (std::size_t k = 2; k <= from_csv.n(); ++k) {
    EXPECT_EQ(from_spec->prob(k), from_csv.prob(k)) << "k = " << k;
  }
}

TEST(GridSpecParser, CsvSizesResolveAgainstSpecDirectory) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "gridspec_csv_sizes";
  fs::create_directories(dir);
  {
    std::ofstream csv(dir / "dist.csv");
    csv << "size,probability\n4,0.25\n8,0.75\n";
  }
  {
    std::ofstream spec_file(dir / "spec.json");
    spec_file << mutate("{\"type\": \"support\", "
                        "\"entries\": [[4, 0.25], [8, 0.75]]}",
                        "{\"type\": \"csv\", \"path\": \"dist.csv\"}");
  }
  const GridSpec from_file = read_grid_spec_file((dir / "spec.json").string());
  const GridSpec inline_table = parse_grid_spec(kCanonicalSpec);
  // Same validator behind both entry points: identical fingerprints.
  EXPECT_EQ(grid_fingerprint(cells_of(from_file.cells)),
            grid_fingerprint(cells_of(inline_table.cells)));
}

TEST(GridSpecParser, MissingCsvReferenceIsIoError) {
  EXPECT_THROW(
      (void)parse_grid_spec(
          mutate("{\"type\": \"support\", "
                 "\"entries\": [[4, 0.25], [8, 0.75]]}",
                 "{\"type\": \"csv\", \"path\": \"no-such-dist.csv\"}")),
      crp::harness::IoError);
}

TEST(GridSpecParser, UnreadableSpecFileIsIoError) {
  EXPECT_THROW((void)read_grid_spec_file("/no/such/spec.json"),
               crp::harness::IoError);
}

// ---- targeted rejection surface: every mutation names its field ----

TEST(GridSpecReject, MissingFields) {
  expect_rejected(mutate("\"format\": \"crp-grid-spec-v1\",", ""),
                  "missing field \"format\"");
  expect_rejected(mutate("\"n\": 64,", ""), "missing field \"n\"");
  expect_rejected(mutate("\"family\": \"uniform_ranges\", ", ""),
                  "missing field \"family\" of source \"u\"");
  expect_rejected(mutate("\"source\": \"u\", ", ""),
                  "missing field \"source\" of algorithm \"lik\"");
  expect_rejected(mutate(", \"placement\": \"low\"", ""),
                  "missing field \"placement\" of sizes \"lo\"");
  expect_rejected(mutate("\"budget\": 512", "\"budget\": 512, \"x\": 1"),
                  "unknown field \"x\" of cell [1]");
  expect_rejected(mutate(", \"budget\": 512", ""),
                  "missing field \"budget\" of cell [1]");
}

TEST(GridSpecReject, DuplicateFields) {
  expect_rejected(mutate("\"n\": 64,", "\"n\": 64, \"n\": 64,"),
                  "duplicate field \"n\"");
  expect_rejected(
      mutate("\"budget\": 512", "\"budget\": 512, \"budget\": 512"),
      "duplicate field \"budget\"");
  expect_rejected(mutate("\"m\": 2", "\"m\": 2, \"m\": 2"),
                  "duplicate field \"m\"");
}

TEST(GridSpecReject, RenamedFields) {
  expect_rejected(mutate("\"m\": 2", "\"mm\": 2"),
                  "unknown field \"mm\" of source \"u\"");
  expect_rejected(mutate("\"budget\": 512", "\"budgett\": 512"),
                  "unknown field \"budgett\" of cell [1]");
  expect_rejected(mutate("\"name\": \"fuzz-canonical\",",
                         "\"label\": \"fuzz-canonical\","),
                  "unknown field \"label\" of the spec");
  expect_rejected(mutate("\"decay\": 0.5", "\"rate\": 0.5"),
                  "unknown field \"rate\" of source \"g\"");
}

TEST(GridSpecReject, NonFiniteAndMalformedNumbers) {
  // Bare words never tokenize; the error still names the field path.
  expect_rejected(mutate("\"m\": 2", "\"m\": nan"), "sources.u.m");
  expect_rejected(mutate("\"decay\": 0.5", "\"decay\": inf"),
                  "sources.g.decay");
  // An overflowing exponent parses to inf and must still be rejected.
  expect_rejected(mutate("\"decay\": 0.5", "\"decay\": 1e999"),
                  "field \"decay\" of source \"g\" must be a finite number");
  expect_rejected(mutate("\"trials\": 12", "\"trials\": -3"),
                  "field \"trials\" of cell [0] must be a plain "
                  "non-negative integer");
  expect_rejected(mutate("\"n\": 64", "\"n\": 64.5"),
                  "field \"n\" must be a plain non-negative integer");
  expect_rejected(mutate("[8, 0.75]", "[8, nan]"),
                  "sizes.tab.entries[1][1]");
}

TEST(GridSpecReject, OutOfRangeValues) {
  expect_rejected(mutate("\"m\": 2", "\"m\": 7"),
                  "field \"m\" of source \"u\" must lie in [1, 6]");
  expect_rejected(mutate("\"decay\": 0.5", "\"decay\": 1.5"),
                  "field \"decay\" of source \"g\" must lie in (0, 1]");
  expect_rejected(mutate("\"eps\": 0.25", "\"eps\": 1.5"),
                  "field \"eps\" of source \"b\" must lie in [0, 1]");
  expect_rejected(mutate("\"spike_mass\": 0.5", "\"spike_mass\": 0"),
                  "field \"spike_mass\" of source \"p\" must lie in (0, 1)");
  expect_rejected(mutate("[4, 0.25]", "[4, -0.25]"),
                  "negative probability");
  expect_rejected(mutate("[4, 0.25]", "[4.5, 0.25]"),
                  "size must be an integer in [2, n]");
  expect_rejected(mutate("\"budget\": 512", "\"budget\": 0"),
                  "field \"budget\" of cell [1] must be >= 1");
  expect_rejected(mutate("\"trials\": 12", "\"trials\": 0"),
                  "field \"trials\" of cell [0] must be >= 1");
  expect_rejected(mutate("\"k\": 16", "\"k\": 1"),
                  "field \"k\" of sizes \"k16\" must be >= 2");
}

TEST(GridSpecReject, BadEnumerationsAndReferences) {
  expect_rejected(mutate("\"format\": \"crp-grid-spec-v1\"",
                         "\"format\": \"crp-grid-spec-v2\""),
                  "unsupported spec format \"crp-grid-spec-v2\"");
  expect_rejected(mutate("\"placement\": \"low\"",
                         "\"placement\": \"middle\""),
                  "field \"placement\" of sizes \"lo\"");
  expect_rejected(mutate("\"cycle\": \"proportional\"",
                         "\"cycle\": \"sometimes\""),
                  "field \"cycle\" of algorithm \"lik\"");
  expect_rejected(mutate("\"family\": \"zipf_ranges\"",
                         "\"family\": \"pareto_ranges\""),
                  "no known family \"pareto_ranges\"");
  expect_rejected(mutate("\"algorithm\": \"cod\"", "\"algorithm\": \"xxx\""),
                  "references undefined algorithm \"xxx\"");
  expect_rejected(mutate("\"sizes\": [\"k16\"]", "\"sizes\": [\"k99\"]"),
                  "references undefined sizes \"k99\"");
}

TEST(GridSpecReject, SeedStreamHexAndSentinel) {
  expect_rejected(mutate("\"seed_stream\": \"0x2a\"",
                         "\"seed_stream\": \"0xzz\""),
                  "field \"seed_stream\" of cell [0]");
  expect_rejected(mutate("\"seed_stream\": \"0x2a\"",
                         "\"seed_stream\": \"42\""),
                  "must be an \"0x...\" hex string");
  // The reserved derive-from-index sentinel must be rejected by name,
  // not silently decay to index-derived seeds (harness/sweep.h).
  expect_rejected(mutate("\"seed_stream\": \"0x2a\"",
                         "\"seed_stream\": \"0xffffffffffffffff\""),
                  "reserved");
}

// ---- property/fuzz: no crash, no silent default, no wrong grid ----

TEST(GridSpecFuzz, TruncationAtEveryByteRejectsOrRoundTrips) {
  const std::string canonical = kCanonicalSpec;
  const std::uint64_t reference =
      grid_fingerprint(cells_of(parse_grid_spec(canonical).cells));
  for (std::size_t length = 0; length <= canonical.size(); ++length) {
    SCOPED_TRACE("prefix length " + std::to_string(length));
    try {
      const GridSpec spec = parse_grid_spec(canonical.substr(0, length));
      // Only a prefix that is still a complete spec (the full text,
      // possibly minus trailing whitespace) may parse — and then it
      // must be the *same* grid, never a silently different one.
      EXPECT_EQ(grid_fingerprint(cells_of(spec.cells)), reference);
    } catch (const std::invalid_argument& error) {
      // Every rejection carries position info.
      EXPECT_NE(std::string(error.what()).find("grid spec: line"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST(GridSpecFuzz, RandomByteFlipsNeverCrash) {
  const std::string canonical = kCanonicalSpec;
  const std::uint64_t reference =
      grid_fingerprint(cells_of(parse_grid_spec(canonical).cells));
  std::mt19937 rng(0xC0FFEE);  // fixed seed: reproducible corpus
  std::uniform_int_distribution<std::size_t> position(0,
                                                      canonical.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string text = canonical;
    const std::size_t at = position(rng);
    text[at] = static_cast<char>(byte(rng));
    SCOPED_TRACE("iteration " + std::to_string(iteration) + ", byte " +
                 std::to_string(at));
    try {
      const GridSpec spec = parse_grid_spec(text);
      // A flip that still parses (e.g. a digit or a name character
      // changed) must yield a *valid* grid: non-empty, fingerprint
      // computable. Identity to the reference is only required when
      // the text is unchanged.
      EXPECT_FALSE(spec.cells.empty());
      (void)grid_fingerprint(cells_of(spec.cells));
      if (text == canonical) {
        EXPECT_EQ(grid_fingerprint(cells_of(spec.cells)), reference);
      }
    } catch (const std::invalid_argument&) {
      // Named rejection: the expected outcome for most flips.
    }
    // Anything else (segfault, ASan report, std::bad_alloc, a foreign
    // exception type) fails the test/job.
  }
}

}  // namespace
