#include <cmath>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "rangefind/sequence.h"
#include "rangefind/tree.h"

namespace crp::rangefind {
namespace {

TEST(Sequence, SolveFindsFirstInRadiusPosition) {
  const RangeFindingSequence seq({5, 1, 9, 3});
  EXPECT_EQ(seq.solve(5, 0.0), std::optional<std::size_t>(1));
  EXPECT_EQ(seq.solve(2, 1.0), std::optional<std::size_t>(2));
  EXPECT_EQ(seq.solve(8, 1.0), std::optional<std::size_t>(3));
  EXPECT_EQ(seq.solve(20, 2.0), std::nullopt);
}

TEST(Sequence, ExpectedTimeWeighsTargets) {
  const RangeFindingSequence seq({1, 2, 3});
  const info::CondensedDistribution targets{{0.5, 0.25, 0.25}};
  // Radius 0: target i solved at step i.
  EXPECT_NEAR(seq.expected_time(targets, 0.0),
              0.5 * 1 + 0.25 * 2 + 0.25 * 3, 1e-12);
  // Radius 1: target 1 and 2 solved at step 1, target 3 at step 2.
  EXPECT_NEAR(seq.expected_time(targets, 1.0),
              0.5 * 1 + 0.25 * 1 + 0.25 * 2, 1e-12);
}

TEST(Sequence, CoversDetectsGaps) {
  const RangeFindingSequence seq({1, 5});
  EXPECT_TRUE(seq.covers(5, 2.0));   // radius 2 reaches 1..3 and 3..5
  EXPECT_FALSE(seq.covers(5, 1.5));  // target 3 is 2 away from both
  EXPECT_FALSE(seq.covers(8, 1.0));
}

TEST(RfConstruction, InterleavesGuessesAndRotor) {
  // Decay probabilities 1, 1/2, 1/4 -> guesses clamp(log2(1/p)) =
  // 1, 1, 2; rotor cycles 1, 2, 3 (n = 8 has 3 ranges).
  const baselines::DecaySchedule decay(8);
  const auto seq = rf_construction(decay, 3, 8);
  ASSERT_EQ(seq.size(), 6u);
  EXPECT_EQ(seq.guesses(), (std::vector<std::size_t>{1, 1, 1, 2, 2, 3}));
}

TEST(RfConstruction, RotorGuaranteesCoverageWithinTwoSweeps) {
  // Lemma 2.7 Case 2: every range must appear within the first
  // 2 * ceil(log n) positions regardless of the schedule.
  const baselines::DecaySchedule decay(1 << 10);
  const std::size_t num_ranges = info::num_ranges(1 << 10);
  const auto seq = rf_construction(decay, 2 * num_ranges, 1 << 10);
  for (std::size_t target = 1; target <= num_ranges; ++target) {
    const auto step = seq.solve(target, 0.0);
    ASSERT_TRUE(step.has_value()) << "target " << target;
    EXPECT_LE(*step, 2 * 2 * num_ranges);
  }
}

TEST(RfConstruction, DecayInducesFastRangeFinding) {
  // Lemma 2.7's conclusion, empirically: the sequence built from decay
  // solves range finding for every target within ~2x the position at
  // which decay first uses the right probability.
  constexpr std::size_t n = 1 << 12;
  const baselines::DecaySchedule decay(n);
  const auto seq = rf_construction(decay, 200, n);
  const std::size_t num_ranges = info::num_ranges(n);
  for (std::size_t target = 1; target <= num_ranges; ++target) {
    const auto step = seq.solve(target, 0.0);
    ASSERT_TRUE(step.has_value());
    // Decay probes range `target` at 0-based round target (p = 2^-t),
    // position target+1; doubled by interleaving.
    EXPECT_LE(*step, 2 * (target + 1) + 2);
  }
}

TEST(RfConstruction, RejectsZeroRounds) {
  const baselines::DecaySchedule decay(8);
  EXPECT_THROW(rf_construction(decay, 0, 8), std::invalid_argument);
}

TEST(Tree, CanonicalContainsEveryRangeAtBoundedDepth) {
  for (std::size_t num_ranges : {1ul, 2ul, 3ul, 7ul, 16ul, 33ul}) {
    const auto tree = RangeFindingTree::canonical(num_ranges);
    std::size_t max_depth_bound = 1;
    while ((std::size_t{1} << max_depth_bound) < num_ranges + 1) {
      ++max_depth_bound;
    }
    for (std::size_t target = 1; target <= num_ranges; ++target) {
      const auto depth = tree.solve(target, 0.0);
      ASSERT_TRUE(depth.has_value())
          << "ranges=" << num_ranges << " target=" << target;
      EXPECT_LE(*depth, max_depth_bound + 1);
    }
  }
}

TEST(Tree, SolvePathDescendsToTheSolvingNode) {
  const auto tree = RangeFindingTree::canonical(7);
  // Root is labeled 1 (BFS order); target 1 solved at the root.
  const auto path = tree.solve_path(1, 0.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
  const auto deeper = tree.solve_path(7, 0.0);
  ASSERT_TRUE(deeper.has_value());
  EXPECT_EQ(deeper->size(), 2u);  // label 7 sits on level 3 (depth 3)
}

TEST(Tree, FromPolicyGraftsAllRanges) {
  constexpr std::size_t n = 1 << 10;  // 10 ranges
  const baselines::WillardPolicy willard(n);
  const auto tree = RangeFindingTree::from_policy(willard, n, 8);
  const std::size_t num_ranges = info::num_ranges(n);
  for (std::size_t target = 1; target <= num_ranges; ++target) {
    EXPECT_TRUE(tree.solve(target, 0.0).has_value()) << target;
  }
}

TEST(Tree, WillardTreeSolvesFastForEveryTarget) {
  // Willard's binary search hits every range within ceil(log2 L) + 1
  // probes, so the induced range finding tree solves every target at
  // depth O(log L) even before the grafted T*.
  constexpr std::size_t n = 1 << 16;  // 16 ranges
  const baselines::WillardPolicy willard(n);
  const auto tree = RangeFindingTree::from_policy(willard, n, 6);
  for (std::size_t target = 1; target <= info::num_ranges(n); ++target) {
    const auto depth = tree.solve(target, 0.0);
    ASSERT_TRUE(depth.has_value()) << target;
    EXPECT_LE(*depth, 5u) << target;  // ceil(log2 16) + 1
  }
}

TEST(Tree, ExpectedTimeTracksDistribution) {
  const auto tree = RangeFindingTree::canonical(7);
  const auto concentrated = info::CondensedDistribution::point_mass(7, 1);
  const auto spread = info::CondensedDistribution::uniform(7);
  EXPECT_LT(tree.expected_time(concentrated, 0.0),
            tree.expected_time(spread, 0.0));
}

TEST(Tree, RejectsMalformedNodes) {
  EXPECT_THROW(RangeFindingTree({{0, -1, -1}}), std::invalid_argument);
  EXPECT_THROW(RangeFindingTree({{1, 5, -1}}), std::invalid_argument);
  EXPECT_THROW(RangeFindingTree(std::vector<RangeFindingTree::Node>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace crp::rangefind
