#include "estimate/estimator.h"

#include <gtest/gtest.h>

#include "channel/rng.h"
#include "harness/measure.h"
#include "info/distribution.h"

namespace crp::estimate {
namespace {

TEST(EstimateWithin, ComparesGeometricRanges) {
  EXPECT_TRUE(estimate_within(64, 64, 0));
  EXPECT_TRUE(estimate_within(64, 100, 1));   // ranges 6 vs 7
  EXPECT_FALSE(estimate_within(64, 100, 0));
  EXPECT_TRUE(estimate_within(8, 1000, 7));   // ranges 3 vs 10
  EXPECT_FALSE(estimate_within(8, 1000, 6));
  EXPECT_FALSE(estimate_within(1, 64, 10));   // degenerate inputs
}

TEST(EstimateNoCd, ValidatesArguments) {
  auto rng = channel::make_rng(1);
  EXPECT_THROW(estimate_size_no_cd(0, 64, rng), std::invalid_argument);
  EXPECT_THROW(estimate_size_no_cd(4, 64, rng, 0), std::invalid_argument);
  EXPECT_THROW(estimate_size_cd(0, 64, rng), std::invalid_argument);
  EXPECT_THROW(estimate_size_cd(4, 64, rng, 0), std::invalid_argument);
}

TEST(EstimateNoCd, ProducesConstantFactorEstimates) {
  constexpr std::size_t n = 1 << 14;
  for (std::size_t k : {2ul, 40ul, 1000ul, 16000ul}) {
    std::size_t good = 0;
    constexpr std::size_t kTrials = 2000;
    for (std::size_t t = 0; t < kTrials; ++t) {
      auto rng = channel::derive_rng(11, t);
      const auto result =
          estimate_size_no_cd(k, n, rng, 1, {.max_rounds = 1 << 14});
      ASSERT_TRUE(result.estimate.has_value()) << "k=" << k;
      if (estimate_within(*result.estimate, k, 2)) ++good;
    }
    // A lone transmission at probe 2^-i is overwhelmingly likely only
    // when 2^i = Theta(k); allow a modest failure rate from lucky
    // lone transmissions at distant probes.
    EXPECT_GT(static_cast<double>(good) / kTrials, 0.85) << "k=" << k;
  }
}

TEST(EstimateNoCd, RoundsScaleWithLogN) {
  constexpr std::size_t k = 100;
  double mean_small = 0.0;
  double mean_large = 0.0;
  constexpr std::size_t kTrials = 3000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng_a = channel::derive_rng(13, t);
    auto rng_b = channel::derive_rng(17, t);
    mean_small += static_cast<double>(
        estimate_size_no_cd(k, 1 << 8, rng_a, 1, {1 << 14}).rounds);
    mean_large += static_cast<double>(
        estimate_size_no_cd(k, 1 << 16, rng_b, 1, {1 << 14}).rounds);
  }
  mean_small /= kTrials;
  mean_large /= kTrials;
  EXPECT_GT(mean_large, mean_small);
  EXPECT_LT(mean_large, 8.0 * mean_small);  // log, not polynomial, growth
}

TEST(EstimateCd, FasterThanNoCdEstimation) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 3000;
  double mean_no_cd = 0.0;
  double mean_cd = 0.0;
  constexpr std::size_t kTrials = 3000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    auto rng_a = channel::derive_rng(19, t);
    auto rng_b = channel::derive_rng(23, t);
    mean_no_cd += static_cast<double>(
        estimate_size_no_cd(k, n, rng_a, 1, {1 << 14}).rounds);
    mean_cd += static_cast<double>(
        estimate_size_cd(k, n, rng_b, 1, {1 << 14}).rounds);
  }
  EXPECT_LT(mean_cd, mean_no_cd);
}

TEST(EstimateCd, ProducesUsableEstimates) {
  constexpr std::size_t n = 1 << 16;
  for (std::size_t k : {4ul, 500ul, 50000ul}) {
    std::size_t good = 0;
    constexpr std::size_t kTrials = 2000;
    for (std::size_t t = 0; t < kTrials; ++t) {
      auto rng = channel::derive_rng(29, t);
      const auto result =
          estimate_size_cd(k, n, rng, 3, {.max_rounds = 1 << 14});
      ASSERT_TRUE(result.estimate.has_value());
      if (estimate_within(*result.estimate, k, 3)) ++good;
    }
    EXPECT_GT(static_cast<double>(good) / kTrials, 0.8) << "k=" << k;
  }
}

TEST(EstimateCd, RepeatsImproveAccuracy) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 3000;
  const auto accuracy = [&](std::size_t repeats) {
    std::size_t good = 0;
    constexpr std::size_t kTrials = 3000;
    for (std::size_t t = 0; t < kTrials; ++t) {
      auto rng = channel::derive_rng(31 + repeats, t);
      const auto result =
          estimate_size_cd(k, n, rng, repeats, {.max_rounds = 1 << 14});
      if (result.estimate && estimate_within(*result.estimate, k, 2)) {
        ++good;
      }
    }
    return static_cast<double>(good) / kTrials;
  };
  EXPECT_GT(accuracy(5), accuracy(1) - 0.02);  // never materially worse
}

TEST(EstimatePipeline, EstimateThenTransmitSolvesFast) {
  // The classical pipeline the paper alludes to: estimate k, then run
  // the fixed 1/k-hat transmitter. End-to-end rounds should be
  // O(log log n) + O(1) with collision detection.
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 5000;
  const auto m = harness::measure(
      [&](std::size_t, std::mt19937_64& rng) {
        auto est = estimate_size_cd(k, n, rng, 3, {1 << 12});
        if (!est.estimate) {
          return channel::RunResult{false, est.rounds, std::nullopt, 0};
        }
        // Note: the estimation itself may have already resolved
        // contention (a lone transmission); that counts as success.
        const double p = 1.0 / static_cast<double>(*est.estimate);
        std::size_t rounds = est.rounds;
        for (int extra = 0; extra < 4096; ++extra) {
          ++rounds;
          if (channel::sample_transmitters(k, p, rng) == 1) {
            return channel::RunResult{true, rounds, std::nullopt, 0};
          }
        }
        return channel::RunResult{false, rounds, std::nullopt, 0};
      },
      4000, /*seed=*/37);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  EXPECT_LT(m.rounds.mean, 40.0);
}

}  // namespace
}  // namespace crp::estimate
