// The kernel layer's determinism contract (channel/kernels/kernels.h):
// the scalar backend is the reference, and every vector tier the host
// offers must reproduce it bit for bit — same uniforms, same targets,
// same round indices — on randomized and adversarial inputs alike.
// Absent tiers are SKIPPED visibly (never silently passed), so a CI
// log always says which equivalences actually ran on that host.
//
// Also pinned here:
//  * pass 1 against the real RNG objects it hoisted: one
//    derive_fast_rng stream per trial driven through a freshly
//    constructed std::uniform_real_distribution, the draw sequence the
//    kernels re-derive arithmetically;
//  * canonical_unit against std::uniform_real_distribution over a
//    scripted URBG, word by word, including the clamp at 1.0;
//  * log1p_neg within 1 ulp of libm's log1p over (-1, 0];
//  * the probe descents against std::upper_bound / the scalar
//    search_one on tables with exact ties, single entries, all--inf
//    padding, and lane counts that do not divide any vector width.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "channel/engine.h"
#include "channel/history_engine.h"
#include "channel/kernels/kernels.h"
#include "channel/protocol.h"
#include "channel/rng.h"
#include "core/likelihood_schedule.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace crp::channel::kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<Tier> all_tiers() {
  return {Tier::kScalar, Tier::kAvx2, Tier::kAvx512};
}

/// A probe table holder: pads a log-survival prefix array the way
/// BatchNoCdSampler::finalize_probe_table does and keeps the storage
/// alive behind the borrowed view.
struct OwnedProbeTable {
  std::vector<double> padded;
  ProbeTable view;

  OwnedProbeTable(std::vector<double> log_survival, bool periodic,
                  std::size_t max_rounds) {
    const std::size_t size = std::bit_ceil(log_survival.size());
    padded.assign(size, -kInf);
    std::copy(log_survival.begin(), log_survival.end(), padded.begin());
    view = {padded.data(), padded.size(), log_survival.size(),
            periodic,      log_survival.back(), max_rounds};
  }
};

/// A CDF holder with the sentinel/padding layout probe_cdf expects.
struct OwnedCdfTable {
  std::vector<double> padded;
  std::vector<double> cdf;
  CdfTable view;

  explicit OwnedCdfTable(std::vector<double> entries) : cdf(entries) {
    padded.assign(std::bit_ceil(entries.size() + 1), kInf);
    padded[0] = 0.0;
    std::copy(entries.begin(), entries.end(), padded.begin() + 1);
    view = {padded.data(), padded.size(), entries.size()};
  }
};

// ---- scalar reference properties ----

TEST(KernelScalar, Pass1MatchesHoistedDistributionDrawSequence) {
  // The kernels replaced a loop that constructed a fresh
  // std::uniform_real_distribution per trial; the draw sequence must
  // survive the hoist bit for bit.
  const Ops* scalar = ops_for(Tier::kScalar);
  ASSERT_NE(scalar, nullptr);
  for (const std::uint64_t seed : {0ULL, 404ULL, 0xfffffffffffffff0ULL}) {
    for (const std::size_t count : {std::size_t{1}, std::size_t{33},
                                    std::size_t{1000}}) {
      const std::size_t first_trial = seed % 97;
      std::vector<double> u(count), uk(count), u2(count);
      scalar->pass1_uniform(seed, first_trial, count, u.data());
      scalar->pass1_uniform_pair(seed, first_trial, count, uk.data(),
                                 u2.data());
      for (std::size_t t = 0; t < count; ++t) {
        SplitMix64 rng = derive_fast_rng(seed, first_trial + t);
        std::uniform_real_distribution<double> unit(0.0, 1.0);
        const double want_first = unit(rng);
        const double want_second = unit(rng);
        EXPECT_EQ(u[t], want_first);
        EXPECT_EQ(uk[t], want_first);
        EXPECT_EQ(u2[t], want_second);
      }
    }
  }
}

TEST(KernelScalar, CanonicalUnitMatchesLibstdcppWordForWord) {
  /// Replays one scripted 64-bit word through the real distribution.
  struct ScriptedUrbg {
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }
    result_type word;
    result_type operator()() { return word; }
  };
  const std::uint64_t words[] = {
      0ULL,
      1ULL,
      0x7fffffffffffffffULL,
      0x8000000000000000ULL,
      0xfffffffffffff7ffULL,  // last word below the clamp region
      0xfffffffffffff800ULL,  // first word whose double rounds to 1.0
      ~0ULL,
  };
  for (const std::uint64_t w : words) {
    ScriptedUrbg urbg{w};
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    const double want = unit(urbg);
    EXPECT_EQ(canonical_unit(w), want) << "word " << w;
    EXPECT_LT(canonical_unit(w), 1.0);
  }
}

TEST(KernelScalar, Log1pNegWithinOneUlpOfLibm) {
  EXPECT_EQ(log1p_neg(0.0), 0.0);
  EXPECT_EQ(log1p_neg(-0.0), -0.0);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int i = 0; i < 200000; ++i) {
    double x;
    switch (i % 3) {
      case 0: x = -unit(rng); break;                       // bulk
      case 1: x = -unit(rng) * 0x1p-28; break;             // tiny branch
      default: x = -1.0 + unit(rng) * 0x1p-20; break;      // deep end
    }
    const double got = log1p_neg(x);
    const double want = std::log1p(x);
    // ulp distance via the ordered integer embedding (both negative
    // or both zero here).
    const auto a = std::bit_cast<std::int64_t>(got);
    const auto b = std::bit_cast<std::int64_t>(want);
    EXPECT_LE(std::llabs(a - b), 1) << "x = " << x;
  }
}

TEST(KernelScalar, ProbeCdfOneMatchesUpperBoundWithTies) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int rep = 0; rep < 300; ++rep) {
    const std::size_t n = 1 + rng() % 40;
    std::vector<double> cdf(n);
    for (auto& c : cdf) c = unit(rng);
    std::sort(cdf.begin(), cdf.end());
    if (rep % 2 == 1 && n >= 3) {
      cdf[n / 2] = cdf[n / 2 - 1];  // force an exact tie
      std::sort(cdf.begin(), cdf.end());
    }
    const OwnedCdfTable table(cdf);
    for (int q = 0; q < 50; ++q) {
      double u;
      switch (q % 4) {
        case 0: u = unit(rng); break;
        case 1: u = cdf[rng() % n]; break;  // query ties an entry
        case 2: u = 0.0; break;
        default: u = 1.0; break;            // past every entry
      }
      const auto want = static_cast<std::size_t>(
          std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      EXPECT_EQ(probe_cdf_one(table.view, u), want);
    }
  }
}

// ---- cross-tier bit equality, one fixture per tier ----

class KernelTierTest : public ::testing::TestWithParam<Tier> {
 protected:
  void SetUp() override {
    if (ops_for(GetParam()) == nullptr) {
      GTEST_SKIP() << "tier " << tier_name(GetParam())
                   << " not available on this host/build";
    }
  }
  const Ops& tier_ops() { return *ops_for(GetParam()); }
  const Ops& scalar_ops() { return *ops_for(Tier::kScalar); }
};

TEST_P(KernelTierTest, Pass1Bitwise) {
  for (std::size_t count = 0; count <= 33; ++count) {
    std::vector<double> u(count + 1, -1.0), uref(count + 1, -1.0);
    std::vector<double> uk(count + 1, -1.0), ukref(count + 1, -1.0);
    tier_ops().pass1_uniform(404, 7, count, u.data());
    scalar_ops().pass1_uniform(404, 7, count, uref.data());
    EXPECT_EQ(u, uref) << "count " << count;
    tier_ops().pass1_uniform_pair(404, 7, count, uk.data(), u.data());
    scalar_ops().pass1_uniform_pair(404, 7, count, ukref.data(), uref.data());
    EXPECT_EQ(u, uref) << "count " << count;
    EXPECT_EQ(uk, ukref) << "count " << count;  // and no overrun past count
  }
}

TEST_P(KernelTierTest, MapTargetsBitwise) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t count = 1; count <= 33; ++count) {
    std::vector<double> u(count);
    for (auto& x : u) x = unit(rng);
    u[0] = 0.0;  // the log1p_neg(-0.0) edge
    if (count > 1) u[1] = std::nextafter(1.0, 0.0);  // deepest target
    std::vector<double> got = u, want = u;
    tier_ops().map_targets(got.data(), count);
    scalar_ops().map_targets(want.data(), count);
    for (std::size_t t = 0; t < count; ++t) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[t]),
                std::bit_cast<std::uint64_t>(want[t]))
          << "count " << count << " lane " << t;
    }
  }
}

TEST_P(KernelTierTest, ProbeRoundsBitwiseOnAdversarialTables) {
  // Tables chosen for the descent's edge cases: a single entry (no
  // padding, nothing to descend), a sure-success round (-inf inside
  // the entries), certain periodic tables, a tiny period that forces
  // deep analytic skips and period-edge retries, and a budget clamp.
  const std::vector<OwnedProbeTable> tables = [] {
    std::vector<OwnedProbeTable> v;
    v.emplace_back(std::vector<double>{0.0}, false, 100);       // single entry
    v.emplace_back(std::vector<double>{0.0}, true, 100);
    v.emplace_back(std::vector<double>{0.0, -kInf}, false, 100);  // sure round
    v.emplace_back(std::vector<double>{0.0, -kInf}, true, 100);   // certain
    v.emplace_back(std::vector<double>{0.0, -0.25}, true, 1000);  // tiny period
    v.emplace_back(std::vector<double>{0.0, -0.5, -1.0, -1.5}, false, 100);
    v.emplace_back(std::vector<double>{0.0, -0.5, -1.0, -1.5}, true, 6);
    v.emplace_back(std::vector<double>{0.0, -0.0, -0.0, -1.0}, false, 100);
    return v;
  }();
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (const auto& table : tables) {
    for (std::size_t count = 1; count <= 33; ++count) {
      std::vector<double> targets(count);
      for (std::size_t t = 0; t < count; ++t) {
        switch (t % 4) {
          case 0: targets[t] = log1p_neg(-unit(rng)); break;
          case 1:  // exactly a table value: the strict `<` tie case
            targets[t] = table.padded[rng() % table.view.rounds];
            break;
          case 2: targets[t] = -0.0; break;
          default: targets[t] = -0.25 * static_cast<double>(rng() % 64);
        }
        if (std::isinf(targets[t])) targets[t] = -1.0;  // finite draws only
      }
      std::vector<std::uint64_t> got(count, ~0ULL), want(count, ~0ULL);
      tier_ops().probe_rounds(table.view, targets.data(), count, got.data());
      scalar_ops().probe_rounds(table.view, targets.data(), count,
                                want.data());
      EXPECT_EQ(got, want) << "rounds " << table.view.rounds << " periodic "
                           << table.view.periodic << " count " << count;
      for (std::size_t t = 0; t < count; ++t) {
        EXPECT_EQ(want[t], search_one(table.view, targets[t]));
      }
    }
  }
}

TEST_P(KernelTierTest, ProbeCdfBitwise) {
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t entries = 1; entries <= 40; ++entries) {
    std::vector<double> cdf(entries);
    for (auto& c : cdf) c = unit(rng);
    std::sort(cdf.begin(), cdf.end());
    if (entries >= 2) cdf[entries - 1] = cdf[entries - 2];  // trailing tie
    const OwnedCdfTable table(cdf);
    for (std::size_t count = 1; count <= 17; ++count) {
      std::vector<double> u(count);
      for (std::size_t t = 0; t < count; ++t) {
        u[t] = t % 2 == 0 ? unit(rng) : cdf[rng() % entries];
      }
      std::vector<std::uint64_t> got(count, ~0ULL), want(count, ~0ULL);
      tier_ops().probe_cdf(table.view, u.data(), count, got.data());
      scalar_ops().probe_cdf(table.view, u.data(), count, want.data());
      EXPECT_EQ(got, want) << "entries " << entries << " count " << count;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, KernelTierTest,
                         ::testing::ValuesIn(all_tiers()),
                         [](const ::testing::TestParamInfo<Tier>& info) {
                           return tier_name(info.param);
                         });

// ---- engine-level equivalence under forced tiers ----

/// A constant-probability CD policy (ignores the history).
class ConstantPolicy final : public CollisionPolicy {
 public:
  explicit ConstantPolicy(double p) : p_(p) {}
  double probability(const BitString&) const override { return p_; }
  std::string name() const override { return "constant"; }

 private:
  double p_;
};

/// Runs `engine` over a block partition at a forced tier and returns
/// the result columns.
std::pair<std::vector<std::uint8_t>, std::vector<std::uint64_t>>
run_at_tier(Tier tier, const Engine& engine, const SizeSource& sizes,
            std::size_t trials, std::size_t max_rounds) {
  EXPECT_TRUE(force_tier(tier));
  std::vector<std::uint8_t> solved(trials);
  std::vector<std::uint64_t> rounds(trials);
  // A block size that no lane width divides, to exercise the tails.
  for (std::size_t first = 0; first < trials; first += 257) {
    const std::size_t count = std::min<std::size_t>(257, trials - first);
    TrialBlock block{404, first, max_rounds, sizes,
                     std::span(solved.data() + first, count),
                     std::span(rounds.data() + first, count),
                     {}};
    engine.run_many(block);
  }
  return {std::move(solved), std::move(rounds)};
}

TEST(KernelEngineEquivalence, ResultColumnsIdenticalAcrossTiers) {
  // The whole point of the contract: a result column depends on
  // (seed, first_trial) only, never on the dispatched ISA.
  const auto condensed =
      predict::uniform_over_ranges(info::num_ranges(1 << 12), 6);
  const auto actual = predict::lift(condensed, 1 << 12,
                                    predict::RangePlacement::kHighEndpoint);
  const core::LikelihoodOrderedSchedule schedule(condensed);
  const BatchColumnarEngine batch(schedule);
  const ConstantPolicy half(0.5);
  const HistoryTreeEngine history(half);

  struct Case {
    const Engine* engine;
    SizeSource sizes;
    const char* label;
  };
  const Case cases[] = {
      {&batch, {&actual, 0}, "batch drawn sizes"},
      {&batch, {nullptr, 60}, "batch fixed k"},
      {&history, {nullptr, 1}, "history inverse-CDF"},
  };

  const Tier original = tier();
  std::size_t compared = 0;
  for (const Case& c : cases) {
    const auto reference =
        run_at_tier(Tier::kScalar, *c.engine, c.sizes, 4099, 1 << 12);
    for (const Tier t : {Tier::kAvx2, Tier::kAvx512}) {
      if (ops_for(t) == nullptr) continue;
      const auto got = run_at_tier(t, *c.engine, c.sizes, 4099, 1 << 12);
      EXPECT_EQ(got.first, reference.first) << c.label << " @ "
                                            << tier_name(t);
      EXPECT_EQ(got.second, reference.second) << c.label << " @ "
                                              << tier_name(t);
      ++compared;
    }
  }
  ASSERT_TRUE(force_tier(original));
  if (compared == 0) {
    GTEST_SKIP() << "no vector tier available; scalar-only host/build";
  }
}

TEST(KernelDispatch, ReportsAConsistentTier) {
  EXPECT_EQ(kernel_tier(), tier());
  EXPECT_STREQ(kernel_tier_name(), tier_name(tier()));
  EXPECT_NE(ops_for(Tier::kScalar), nullptr);  // scalar always exists
  EXPECT_NE(ops_for(tier()), nullptr);         // dispatch picked a real tier
}

TEST(KernelDispatch, ParseTierIsStrict) {
  // The CRP_KERNEL_TIER env surface: every documented name round-trips
  // through tier_name, everything else is a hard error — a typo'd cap
  // must never silently dispatch a different tier.
  EXPECT_EQ(parse_tier("scalar"), Tier::kScalar);
  EXPECT_EQ(parse_tier("avx2"), Tier::kAvx2);
  EXPECT_EQ(parse_tier("avx512"), Tier::kAvx512);
  for (const Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    EXPECT_EQ(parse_tier(tier_name(t)), t);
  }
  EXPECT_THROW(parse_tier("avx-512"), std::invalid_argument);
  EXPECT_THROW(parse_tier("AVX2"), std::invalid_argument);
  EXPECT_THROW(parse_tier("scalar "), std::invalid_argument);
  EXPECT_THROW(parse_tier(""), std::invalid_argument);
}

TEST(KernelDispatch, ForceTierRejectsNonTierValues) {
  // A bad cast is a caller bug (throw); a valid-but-absent tier is a
  // capability gap (false). The distinction keeps skip-vs-fail honest
  // in the tier-parameterized suites.
  const Tier original = tier();
  EXPECT_THROW(force_tier(static_cast<Tier>(99)), std::invalid_argument);
  EXPECT_THROW(force_tier(static_cast<Tier>(-1)), std::invalid_argument);
  EXPECT_EQ(tier(), original);  // nothing changed
  ASSERT_TRUE(force_tier(original));
}

}  // namespace
}  // namespace crp::channel::kernels
