#include "core/coded_search.h"

#include <cmath>

#include <gtest/gtest.h>

#include "harness/measure.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "predict/noise.h"

namespace crp::core {
namespace {

TEST(CodedSearch, ClassesArePartitionOfRangesSortedByCodeLength) {
  const auto prediction = crp::predict::geometric_ranges(12, 0.5);
  const CodedSearchPolicy policy(prediction);
  const auto& classes = policy.classes();
  const auto& lengths = policy.class_lengths();
  ASSERT_EQ(classes.size(), lengths.size());
  // Lengths strictly increase across classes.
  for (std::size_t c = 1; c < lengths.size(); ++c) {
    EXPECT_LT(lengths[c - 1], lengths[c]);
  }
  // Every range appears exactly once.
  std::vector<int> seen(13, 0);
  for (const auto& cls : classes) {
    for (std::size_t i = 1; i < cls.size(); ++i) {
      EXPECT_LT(cls[i - 1], cls[i]);  // ascending within class
    }
    for (std::size_t r : cls) {
      ASSERT_GE(r, 1u);
      ASSERT_LE(r, 12u);
      ++seen[r];
    }
  }
  for (std::size_t r = 1; r <= 12; ++r) {
    EXPECT_EQ(seen[r], 1) << "range " << r;
  }
}

TEST(CodedSearch, PointMassPredictionProbesItsRangeFirst) {
  const auto prediction = info::CondensedDistribution::point_mass(10, 7);
  const CodedSearchPolicy policy(prediction);
  EXPECT_DOUBLE_EQ(policy.probability({}), std::exp2(-7.0));
}

TEST(CodedSearch, FirstProbeIsTheMostLikelyClassMedian) {
  // Uniform over 2 of 8 ranges: both get 1-bit codes, the remaining six
  // get longer ones; the first probe must come from the short class.
  const auto prediction = crp::predict::uniform_over_ranges(8, 2);
  const CodedSearchPolicy policy(prediction);
  const double p0 = policy.probability({});
  EXPECT_TRUE(p0 == std::exp2(-1.0) || p0 == std::exp2(-2.0));
}

TEST(CodedSearch, SolvesAllSizesWithCollisionDetection) {
  constexpr std::size_t n = 1 << 14;
  const auto actual = info::SizeDistribution::uniform(n);
  const CodedSearchPolicy policy(actual.condense());
  for (std::size_t k : {2ul, 33ul, 1000ul, 16000ul}) {
    const auto m = harness::measure_uniform_cd_fixed_k(
        policy, k, 2000, /*seed=*/51, /*max_rounds=*/1 << 14);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0) << "k=" << k;
  }
}

TEST(CodedSearch, PerfectPredictionIsNearConstantTime) {
  constexpr std::size_t n = 1 << 14;
  const auto actual = info::SizeDistribution::point_mass(n, 9000);
  const CodedSearchPolicy policy(actual.condense());
  const auto m = harness::measure_uniform_cd(policy, actual, 4000,
                                             /*seed=*/53, 1 << 12);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  EXPECT_LT(m.rounds.mean, 10.0);
}

TEST(CodedSearch, HuffmanAndShannonFanoBackendsBothSolve) {
  constexpr std::size_t n = 1 << 12;
  const auto condensed =
      crp::predict::zipf_ranges(info::num_ranges(n), 1.2);
  const auto actual = crp::predict::lift(
      condensed, n, crp::predict::RangePlacement::kHighEndpoint);
  const CodedSearchPolicy huffman(condensed, CodeBackend::kHuffman);
  const CodedSearchPolicy fano(condensed, CodeBackend::kShannonFano);
  const auto m_huffman = harness::measure_uniform_cd(
      huffman, actual, 3000, /*seed=*/57, 1 << 14);
  const auto m_fano = harness::measure_uniform_cd(
      fano, actual, 3000, /*seed=*/57, 1 << 14);
  EXPECT_DOUBLE_EQ(m_huffman.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(m_fano.success_rate, 1.0);
  // The optimal code should not be materially worse.
  EXPECT_LT(m_huffman.rounds.mean, m_fano.rounds.mean * 1.5);
}

TEST(CodedSearch, MisleadingPredictionCostsRounds) {
  constexpr std::size_t n = 1 << 14;
  const auto condensed =
      crp::predict::geometric_ranges(info::num_ranges(n), 0.45);
  const auto actual = crp::predict::lift(
      condensed, n, crp::predict::RangePlacement::kHighEndpoint);
  const CodedSearchPolicy good(condensed);
  const CodedSearchPolicy bad(crp::predict::reverse_ranges(condensed));
  const auto m_good = harness::measure_uniform_cd(good, actual, 3000,
                                                  /*seed=*/59, 1 << 14);
  const auto m_bad = harness::measure_uniform_cd(bad, actual, 3000,
                                                 /*seed=*/59, 1 << 14);
  EXPECT_LT(m_good.rounds.mean, m_bad.rounds.mean);
}

TEST(CodedSearch, PassLengthIsSumOfPerClassSearchCosts) {
  const auto prediction = crp::predict::uniform_over_ranges(8, 8);
  const CodedSearchPolicy policy(prediction);
  // Uniform over 8 ranges: all codes 3 bits, single class of size 8,
  // binary search needs ceil(log2 8) + 1 = 4 probes.
  ASSERT_EQ(policy.classes().size(), 1u);
  EXPECT_EQ(policy.pass_length(), 4u);
}

// Theorem 2.16 / Corollary 2.18 form: with Y = X, the one-shot attempt
// succeeds within O((H + 1)^2) rounds with constant probability.
class CdOneShotBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CdOneShotBound, SucceedsWithinQuadraticEntropyBudget) {
  constexpr std::size_t n = 1 << 16;
  const std::size_t m = GetParam();
  const auto condensed =
      crp::predict::uniform_over_ranges(info::num_ranges(n), m);
  const auto actual = crp::predict::lift(
      condensed, n, crp::predict::RangePlacement::kHighEndpoint);
  const CodedSearchPolicy policy(condensed);
  const double h = condensed.entropy();
  // O((H + D + 1)^2) with D = 0; constant 4 absorbs the per-class
  // search overhead.
  const double budget = 4.0 * (h + 1.0) * (h + 1.0) + 4.0;
  const auto measurement = harness::measure_uniform_cd(
      policy, actual, 4000, /*seed=*/61, 1 << 14);
  EXPECT_GE(measurement.solved_within(budget), 0.25)
      << "H=" << h << " budget=" << budget;
}

INSTANTIATE_TEST_SUITE_P(EntropySweep, CdOneShotBound,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace crp::core
