// Fixture: det-no-wallclock-rng — every way of smuggling wall-clock
// state or OS entropy into a result path, plus negative controls that
// must NOT fire.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace crp::harness {

double expected_time(double x);  // negative control: not `time(`

unsigned long bad_seed_source() {
  std::random_device device;  // expect-lint: det-no-wallclock-rng
  return device();
}

unsigned long bad_c_seed() {
  std::srand(42);  // expect-lint: det-no-wallclock-rng
  return static_cast<unsigned long>(rand());  // expect-lint: det-no-wallclock-rng
}

long bad_wallclock_seed() {
  return static_cast<long>(time(nullptr));  // expect-lint: det-no-wallclock-rng
}

long bad_chrono_seed() {
  // system_clock is the wall clock; steady_clock (negative control
  // below) is a duration source and allowed.
  return std::chrono::system_clock::now().time_since_epoch().count();  // expect-lint: det-no-wallclock-rng
}

long fine_duration_source() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

double fine_call_sites() {
  // Word-boundary negative controls: none of these are `time(`/`rand(`.
  return expected_time(1.0) + strtod("1", nullptr);
}

}  // namespace crp::harness
