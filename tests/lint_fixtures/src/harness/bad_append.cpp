// Fixture: dur-fsync-append — journal appends with no fsync anywhere
// in the file: the kernel may report the append complete and then
// lose it on power failure, breaking the torn-tail recovery contract.
#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <string>

namespace crp::harness {

int bad_journal_fd(const std::string& path) {
  return ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);  // expect-lint: dur-fsync-append
}

void bad_journal_stream(const std::string& path, const std::string& record) {
  std::ofstream journal(path, std::ios::app);  // expect-lint: dur-atomic-artifacts dur-fsync-append
  journal << record;
}

}  // namespace crp::harness
