// Fixture (negative control): an append-mode journal writer that
// fsyncs is exactly the checkpoint.cpp discipline — dur-fsync-append
// must stay quiet here.
#include <fcntl.h>
#include <unistd.h>

#include <string>
#include <string_view>

namespace crp::harness {

void good_journal_append(const std::string& path, std::string_view bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd >= 0) {
    ::write(fd, bytes.data(), bytes.size());
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace crp::harness
