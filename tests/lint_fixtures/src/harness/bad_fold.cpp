// Fixture: det-no-unordered-iteration — iteration over hash
// containers in a result path (order is unspecified and varies across
// libstdc++ versions), with lookup-only negative controls.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace crp::harness {

struct BadFold {
  std::unordered_map<std::string, std::uint64_t> totals;
  std::unordered_set<std::string> seen;

  std::uint64_t fold_in_hash_order() const {
    std::uint64_t sum = 0;
    for (const auto& entry : totals) {  // expect-lint: det-no-unordered-iteration
      sum += entry.second;
    }
    return sum;
  }

  std::size_t walk_with_iterators() const {
    std::size_t count = 0;
    for (auto it = seen.begin(); it != seen.end(); ++it) {  // expect-lint: det-no-unordered-iteration
      ++count;
    }
    return count;
  }

  // Negative controls: point lookups and inserts are order-free and
  // allowed; so is iterating an *ordered* map.
  bool fine_lookup(const std::string& key) const {
    return totals.find(key) != totals.end() && seen.count(key) != 0;
  }

  std::uint64_t fine_ordered_fold(
      const std::map<std::string, std::uint64_t>& ordered) const {
    std::uint64_t sum = 0;
    for (const auto& entry : ordered) sum += entry.second;
    return sum;
  }
};

}  // namespace crp::harness
