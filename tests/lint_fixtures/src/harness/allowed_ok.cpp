// Fixture (negative control): every pragma form that *should*
// suppress — trailing same-line, pragma-only line above, and a
// pragma whose reason wraps onto continuation comment lines. This
// file must produce zero findings.
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_map>

namespace crp::harness {

unsigned long sanctioned_entropy() {
  std::random_device device;  // crp-lint: allow(det-no-wallclock-rng) -- fixture: sanctioned one-off entropy tap
  return device();
}

// crp-lint: allow(det-no-wallclock-rng) -- fixture: the pragma-only
// form, reason wrapped across continuation comments, still covers the
// next code line.
long sanctioned_wallclock() { return time(nullptr); }

std::size_t sanctioned_debug_dump(
    const std::unordered_map<std::string, int>& table) {
  std::size_t count = 0;
  // crp-lint: allow(det-no-unordered-iteration) -- fixture: count-only fold, order-free
  for (const auto& entry : table) count += entry.second > 0 ? 1 : 0;
  return count;
}

}  // namespace crp::harness
