// Fixture: dur-atomic-artifacts — final artifacts written through
// bare streams/FILE*, which a crash or full disk leaves half-written
// under the final name.
#include <cstdio>
#include <fstream>
#include <string>

namespace crp::harness {

void bad_csv_writer(const std::string& path, const std::string& rows) {
  std::ofstream out(path);  // expect-lint: dur-atomic-artifacts
  out << rows;
}

void bad_c_writer(const std::string& path, const std::string& rows) {
  FILE* f = std::fopen(path.c_str(), "w");  // expect-lint: dur-atomic-artifacts
  if (f != nullptr) {
    std::fwrite(rows.data(), 1, rows.size(), f);
    std::fclose(f);
  }
}

}  // namespace crp::harness
