// Fixture: lint-pragma — suppressions that do not meet the pragma
// contract. A reasonless or malformed allow() is itself a finding AND
// does not suppress the underlying violation.
#include <ctime>
#include <random>

namespace crp::harness {

// expect-next-line-lint: lint-pragma det-no-wallclock-rng
std::random_device g_no_reason;  // crp-lint: allow(det-no-wallclock-rng)

// expect-next-line-lint: lint-pragma det-no-wallclock-rng
long g_unknown_rule = time(nullptr);  // crp-lint: allow(det-no-such-rule) -- not a rule

// expect-next-line-lint: lint-pragma det-no-wallclock-rng
long g_malformed = time(nullptr);  // crp-lint: please ignore this line

}  // namespace crp::harness
