// Fixture: det-no-fp-contract — a per-TU contraction override. One
// fused multiply-add in one TU rounds differently from the scalar
// kernel reference and breaks the ISA-independence leg bitwise.
#pragma STDC FP_CONTRACT ON  // expect-lint: det-no-fp-contract

namespace crp::core {

double bad_fused_dot(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace crp::core
