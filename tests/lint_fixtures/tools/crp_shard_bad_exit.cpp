// Fixture: exit-taxonomy — magic exit codes and taxonomy bypasses in
// the scheduler-facing driver paths, plus the sanctioned named-constant
// form as a negative control.
#include <cstdlib>

namespace {
constexpr int kExitValidation = 3;
}

void bad_magic_exit(bool corrupt) {
  if (corrupt) {
    std::exit(3);  // expect-lint: exit-taxonomy
  }
}

void bad_underscore_exit() {
  _exit(75);  // expect-lint: exit-taxonomy
}

void bad_abort() {
  abort();  // expect-lint: exit-taxonomy
}

void fine_named_exit(bool corrupt) {
  if (corrupt) {
    std::exit(kExitValidation);
  }
}
