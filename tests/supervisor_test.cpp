// The supervisor's pure decision layer (harness/supervisor.h): every
// retry/backoff/timeout/quarantine path of RetryPolicy under a
// FakeClock — backoff growth and clamping, jitter determinism from a
// pinned seed, progress resetting the budget, budget exhaustion
// escalating to bisection and then quarantine, the SIGTERM→SIGKILL
// timeout ladder — plus bisect_midpoint, subtract_quarantined, and
// the crp-supervisor-journal-v1 round trip with torn-tail and
// corruption discipline. No test here sleeps or spawns a process;
// the live fleet loop is exercised end-to-end by
// tests/crp_shard_cli_test.py and the CI chaos gate.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/checkpoint.h"
#include "harness/supervisor.h"

namespace crp::harness {
namespace {

std::filesystem::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   (std::string("crp_supervisor_") + info->test_suite_name() +
                    "_" + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

RetryPolicyConfig no_jitter_config() {
  RetryPolicyConfig config;
  config.base_backoff_ms = 100;
  config.backoff_multiplier = 2.0;
  config.max_backoff_ms = 1'000;
  config.jitter_fraction = 0.0;
  config.retry_budget = 2;
  return config;
}

// ---------------------------------------------------------------------------
// Config validation

TEST(RetryPolicyConfigTest, RejectsNonsense) {
  auto bad = [](auto mutate) {
    RetryPolicyConfig config;
    mutate(config);
    EXPECT_THROW(RetryPolicy{config}, std::invalid_argument);
  };
  bad([](RetryPolicyConfig& c) { c.base_backoff_ms = -1; });
  bad([](RetryPolicyConfig& c) { c.backoff_multiplier = 0.5; });
  bad([](RetryPolicyConfig& c) { c.max_backoff_ms = c.base_backoff_ms - 1; });
  bad([](RetryPolicyConfig& c) { c.jitter_fraction = -0.1; });
  bad([](RetryPolicyConfig& c) { c.jitter_fraction = 1.0; });
  bad([](RetryPolicyConfig& c) { c.worker_timeout_ms = -5; });
  bad([](RetryPolicyConfig& c) { c.kill_grace_ms = -5; });
  EXPECT_NO_THROW(RetryPolicy{RetryPolicyConfig{}});
}

// ---------------------------------------------------------------------------
// Backoff growth + jitter

TEST(BackoffTest, GrowsExponentiallyAndClamps) {
  const RetryPolicy policy(no_jitter_config());
  EXPECT_EQ(policy.backoff_ms(1, 0, 4), 100);
  EXPECT_EQ(policy.backoff_ms(2, 0, 4), 200);
  EXPECT_EQ(policy.backoff_ms(3, 0, 4), 400);
  EXPECT_EQ(policy.backoff_ms(4, 0, 4), 800);
  EXPECT_EQ(policy.backoff_ms(5, 0, 4), 1'000);   // clamped
  EXPECT_EQ(policy.backoff_ms(50, 0, 4), 1'000);  // stays clamped
  EXPECT_THROW(policy.backoff_ms(0, 0, 4), std::invalid_argument);
}

TEST(BackoffTest, JitterIsDeterministicFromSeedRangeAndAttempt) {
  RetryPolicyConfig config = no_jitter_config();
  config.jitter_fraction = 0.25;
  config.jitter_seed = 0x1234;
  const RetryPolicy policy(config);
  const RetryPolicy twin(config);
  for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
    // Same config => identical schedule, call after call.
    EXPECT_EQ(policy.backoff_ms(attempt, 3, 7),
              twin.backoff_ms(attempt, 3, 7));
    EXPECT_EQ(policy.backoff_ms(attempt, 3, 7),
              policy.backoff_ms(attempt, 3, 7));
  }
  // A different seed moves the draw; so do a different range and a
  // different attempt (that is the de-synchronization point).
  RetryPolicyConfig reseeded = config;
  reseeded.jitter_seed = 0x5678;
  EXPECT_NE(RetryPolicy(reseeded).backoff_ms(1, 3, 7),
            policy.backoff_ms(1, 3, 7));
  EXPECT_NE(policy.backoff_ms(1, 0, 7), policy.backoff_ms(1, 3, 7));
}

TEST(BackoffTest, JitterStaysWithinTheConfiguredBand) {
  RetryPolicyConfig config = no_jitter_config();
  config.jitter_fraction = 0.25;
  config.jitter_seed = 42;
  const RetryPolicy policy(config);
  for (std::size_t range = 0; range < 32; ++range) {
    const std::int64_t ms = policy.backoff_ms(1, range, range + 1);
    EXPECT_GE(ms, 75);   // 100 * (1 - 0.25)
    EXPECT_LE(ms, 125);  // 100 * (1 + 0.25)
  }
}

// ---------------------------------------------------------------------------
// The decision table

TEST(DecideTest, SuccessIsDone) {
  const RetryPolicy policy(no_jitter_config());
  JobState state{.cell_begin = 0, .cell_end = 4, .attempts = 1};
  EXPECT_EQ(policy.decide(state, WorkerOutcome::kSuccess, true).kind,
            ActionKind::kDone);
}

TEST(DecideTest, ResumableRetriesImmediatelyWhileProgressing) {
  const RetryPolicy policy(no_jitter_config());
  JobState state{.cell_begin = 0, .cell_end = 4, .attempts = 2};
  const Decision decision =
      policy.decide(state, WorkerOutcome::kResumable, true);
  EXPECT_EQ(decision.kind, ActionKind::kRetryNow);
  EXPECT_EQ(state.attempts, 0);  // progress wiped the failure streak
}

TEST(DecideTest, ResumableWithoutProgressChargesTheBudget) {
  const RetryPolicy policy(no_jitter_config());  // budget 2
  JobState state{.cell_begin = 0, .cell_end = 4};
  EXPECT_EQ(policy.decide(state, WorkerOutcome::kResumable, false).kind,
            ActionKind::kRetryNow);
  EXPECT_EQ(policy.decide(state, WorkerOutcome::kResumable, false).kind,
            ActionKind::kRetryNow);
  // Third consecutive no-progress stop crosses the budget of 2.
  EXPECT_EQ(policy.decide(state, WorkerOutcome::kResumable, false).kind,
            ActionKind::kBisect);
}

TEST(DecideTest, TransientFailuresBackOffThenEscalate) {
  const RetryPolicy policy(no_jitter_config());  // budget 2, no jitter
  for (const WorkerOutcome outcome :
       {WorkerOutcome::kIoError, WorkerOutcome::kCrash,
        WorkerOutcome::kTimeout}) {
    JobState state{.cell_begin = 0, .cell_end = 4};
    Decision first = policy.decide(state, outcome, false);
    EXPECT_EQ(first.kind, ActionKind::kRetryAfter);
    EXPECT_EQ(first.delay_ms, 100);
    Decision second = policy.decide(state, outcome, false);
    EXPECT_EQ(second.kind, ActionKind::kRetryAfter);
    EXPECT_EQ(second.delay_ms, 200);  // exponential growth
    EXPECT_EQ(policy.decide(state, outcome, false).kind, ActionKind::kBisect);
  }
}

TEST(DecideTest, ProgressResetsTheFailureStreak) {
  const RetryPolicy policy(no_jitter_config());  // budget 2
  JobState state{.cell_begin = 0, .cell_end = 4};
  policy.decide(state, WorkerOutcome::kCrash, false);
  policy.decide(state, WorkerOutcome::kCrash, false);
  EXPECT_EQ(state.attempts, 2);
  // A crash that still journaled a new cell is a healthy worker on a
  // flaky box: the streak resets, and the next failure is attempt 1.
  const Decision decision = policy.decide(state, WorkerOutcome::kCrash, true);
  EXPECT_EQ(decision.kind, ActionKind::kRetryAfter);
  EXPECT_EQ(state.attempts, 1);
  EXPECT_EQ(decision.delay_ms, 100);
}

TEST(DecideTest, ValidationEscalatesImmediately) {
  const RetryPolicy policy(no_jitter_config());
  JobState multi{.cell_begin = 0, .cell_end = 4};
  EXPECT_EQ(policy.decide(multi, WorkerOutcome::kValidation, false).kind,
            ActionKind::kBisect);
  JobState single{.cell_begin = 3, .cell_end = 4};
  EXPECT_EQ(policy.decide(single, WorkerOutcome::kValidation, true).kind,
            ActionKind::kQuarantine);
}

TEST(DecideTest, SingleCellBudgetExhaustionQuarantines) {
  const RetryPolicy policy(no_jitter_config());  // budget 2
  JobState state{.cell_begin = 5, .cell_end = 6};
  EXPECT_EQ(policy.decide(state, WorkerOutcome::kTimeout, false).kind,
            ActionKind::kRetryAfter);
  EXPECT_EQ(policy.decide(state, WorkerOutcome::kTimeout, false).kind,
            ActionKind::kRetryAfter);
  EXPECT_EQ(policy.decide(state, WorkerOutcome::kTimeout, false).kind,
            ActionKind::kQuarantine);
}

TEST(DecideTest, RejectsEmptyRanges) {
  const RetryPolicy policy(no_jitter_config());
  JobState state{.cell_begin = 4, .cell_end = 4};
  EXPECT_THROW(policy.decide(state, WorkerOutcome::kSuccess, false),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Timeout ladder under a fake clock

TEST(TimeoutTest, FullSigtermSigkillLadder) {
  RetryPolicyConfig config = no_jitter_config();
  config.worker_timeout_ms = 500;
  config.kill_grace_ms = 200;
  const RetryPolicy policy(config);
  FakeClock clock;

  const std::int64_t started = clock.now_ms();
  EXPECT_EQ(policy.timeout_action(clock.now_ms(), started, std::nullopt),
            TimeoutAction::kNone);
  clock.advance_ms(499);
  EXPECT_EQ(policy.timeout_action(clock.now_ms(), started, std::nullopt),
            TimeoutAction::kNone);
  clock.advance_ms(1);  // the budget boundary is inclusive
  EXPECT_EQ(policy.timeout_action(clock.now_ms(), started, std::nullopt),
            TimeoutAction::kSigterm);

  const std::int64_t term_sent = clock.now_ms();
  clock.advance_ms(199);
  EXPECT_EQ(policy.timeout_action(clock.now_ms(), started, term_sent),
            TimeoutAction::kNone);
  clock.advance_ms(1);
  EXPECT_EQ(policy.timeout_action(clock.now_ms(), started, term_sent),
            TimeoutAction::kSigkill);
}

TEST(TimeoutTest, ZeroTimeoutNeverSigterms) {
  const RetryPolicy policy(no_jitter_config());  // worker_timeout_ms = 0
  FakeClock clock;
  clock.advance_ms(1'000'000);
  EXPECT_EQ(policy.timeout_action(clock.now_ms(), 0, std::nullopt),
            TimeoutAction::kNone);
  // ... but grace escalation still applies when SIGTERM was sent for
  // another reason (graceful shutdown).
  EXPECT_EQ(policy.timeout_action(clock.now_ms(), 0, 0),
            TimeoutAction::kSigkill);
}

// ---------------------------------------------------------------------------
// Bisection + quarantine set arithmetic

TEST(BisectTest, MidpointSplitsAndRejectsTooSmall) {
  EXPECT_EQ(bisect_midpoint(0, 4), 2);
  EXPECT_EQ(bisect_midpoint(2, 5), 3);
  EXPECT_EQ(bisect_midpoint(6, 8), 7);
  EXPECT_THROW(bisect_midpoint(3, 4), std::invalid_argument);
  EXPECT_THROW(bisect_midpoint(4, 4), std::invalid_argument);
}

TEST(SubtractQuarantinedTest, SplitsAroundQuarantinedCells) {
  const std::vector<std::size_t> quarantined{3, 4, 7};
  const auto runs = subtract_quarantined(2, 9, quarantined);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].begin, 2u);
  EXPECT_EQ(runs[0].end, 3u);
  EXPECT_EQ(runs[1].begin, 5u);
  EXPECT_EQ(runs[1].end, 7u);
  EXPECT_EQ(runs[2].begin, 8u);
  EXPECT_EQ(runs[2].end, 9u);
}

TEST(SubtractQuarantinedTest, EdgeCases) {
  EXPECT_TRUE(subtract_quarantined(3, 4, std::vector<std::size_t>{3}).empty());
  const auto untouched =
      subtract_quarantined(0, 4, std::vector<std::size_t>{});
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_EQ(untouched[0].begin, 0u);
  EXPECT_EQ(untouched[0].end, 4u);
  // Quarantined cells outside the range are ignored.
  const auto outside =
      subtract_quarantined(0, 4, std::vector<std::size_t>{9});
  ASSERT_EQ(outside.size(), 1u);
  EXPECT_EQ(outside[0].end, 4u);
}

// ---------------------------------------------------------------------------
// Journal round trip + damage discipline

SupervisorJournal identity() {
  SupervisorJournal journal;
  journal.grid_hash = 0xdeadbeefcafef00dULL;
  journal.master_seed = 0x1122334455667788ULL;
  journal.trials = 600;
  journal.total_cells = 8;
  journal.workers = 3;
  journal.engine = "batch";
  journal.cd_engine = "simulate";
  return journal;
}

std::string write_journal(const std::filesystem::path& path,
                          const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
  out.close();
  return path.string();
}

TEST(SupervisorJournalTest, RoundTripsHeaderAndRecords) {
  const auto dir = test_dir();
  const QuarantinedCell cell{.cell_index = 3,
                             .attempts = 2,
                             .reason = "validation error (exit 3)"};
  const BisectRecord split{.cell_begin = 2, .mid = 3, .cell_end = 5};
  const std::string bytes = format_supervisor_header(identity()) +
                            format_supervisor_bisect(split) +
                            format_supervisor_quarantine(cell);
  const auto path = write_journal(dir / "supervisor.journal", bytes);

  const SupervisorJournal journal = read_supervisor_journal(path);
  EXPECT_EQ(journal.grid_hash, identity().grid_hash);
  EXPECT_EQ(journal.master_seed, identity().master_seed);
  EXPECT_EQ(journal.trials, 600u);
  EXPECT_EQ(journal.total_cells, 8u);
  EXPECT_EQ(journal.workers, 3u);
  EXPECT_EQ(journal.engine, "batch");
  EXPECT_EQ(journal.cd_engine, "simulate");
  ASSERT_EQ(journal.bisections.size(), 1u);
  EXPECT_EQ(journal.bisections[0].cell_begin, 2u);
  EXPECT_EQ(journal.bisections[0].mid, 3u);
  EXPECT_EQ(journal.bisections[0].cell_end, 5u);
  ASSERT_EQ(journal.quarantined.size(), 1u);
  EXPECT_EQ(journal.quarantined[0].cell_index, 3u);
  EXPECT_EQ(journal.quarantined[0].attempts, 2u);
  EXPECT_EQ(journal.quarantined[0].reason, "validation error (exit 3)");
  EXPECT_EQ(journal.torn_bytes, 0u);
  EXPECT_EQ(journal.valid_bytes, bytes.size());
}

TEST(SupervisorJournalTest, TornTailIsReportedNotFatal) {
  const auto dir = test_dir();
  const std::string record = format_supervisor_quarantine(
      {.cell_index = 1, .attempts = 3, .reason = "timed out"});
  const std::string whole = format_supervisor_header(identity()) + record;
  // Truncating anywhere inside the appended record must parse as the
  // header alone plus a reported torn tail — never as corruption.
  for (const std::size_t keep : {1ul, record.size() / 2, record.size() - 1}) {
    const std::string bytes =
        whole.substr(0, whole.size() - record.size() + keep);
    const auto path = write_journal(dir / "torn.journal", bytes);
    const SupervisorJournal journal = read_supervisor_journal(path);
    EXPECT_TRUE(journal.quarantined.empty());
    EXPECT_EQ(journal.torn_bytes, keep) << "keep=" << keep;
    EXPECT_EQ(journal.valid_bytes + journal.torn_bytes, bytes.size());
  }
}

TEST(SupervisorJournalTest, CorruptionThrows) {
  const auto dir = test_dir();
  const std::string header = format_supervisor_header(identity());
  const std::string quarantine = format_supervisor_quarantine(
      {.cell_index = 1, .attempts = 3, .reason = "timed out"});

  // Flipped payload byte: checksum mismatch.
  std::string flipped = header + quarantine;
  flipped[header.size() + quarantine.find("timed")] ^= 0x01;
  EXPECT_THROW(
      read_supervisor_journal(write_journal(dir / "flip.journal", flipped)),
      std::invalid_argument);

  // Damaged header: atomically written, so never "torn".
  std::string bad_header = header;
  bad_header[bad_header.find("0x") + 2] ^= 0x01;
  EXPECT_THROW(read_supervisor_journal(
                   write_journal(dir / "header.journal", bad_header)),
               std::invalid_argument);

  // Duplicate quarantine for the same cell: the supervisor never
  // writes one, so reading one means the file is damaged.
  EXPECT_THROW(
      read_supervisor_journal(write_journal(dir / "dup.journal",
                                            header + quarantine + quarantine)),
      std::invalid_argument);

  // Bisect record that is not a strict split.
  EXPECT_THROW(read_supervisor_journal(write_journal(
                   dir / "split.journal",
                   header + format_supervisor_bisect(
                                {.cell_begin = 3, .mid = 3, .cell_end = 5}))),
               std::invalid_argument);

  // Unknown record tag.
  EXPECT_THROW(
      read_supervisor_journal(write_journal(
          dir / "tag.journal", header + "frobnicate 1 2 3 0x0\n\n.\n")),
      std::invalid_argument);

  EXPECT_THROW(read_supervisor_journal((dir / "missing.journal").string()),
               IoError);
}

// ---------------------------------------------------------------------------
// Quarantine report serialization

TEST(QuarantineReportTest, SerializesTheV1Format) {
  std::ostringstream out;
  const std::vector<QuarantinedCell> cells{
      {.cell_index = 3, .attempts = 4, .reason = "validation error"},
      {.cell_index = 6, .attempts = 2, .reason = "a \"quoted\" reason"},
  };
  write_quarantine_report(out, 0xabcULL, 8, cells);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"format\": \"crp-quarantine-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"grid_hash\": \"0xabc\""), std::string::npos);
  EXPECT_NE(json.find("\"total_cells\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined_cells\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cell_index\": 3"), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\" reason"), std::string::npos);

  std::ostringstream empty;
  write_quarantine_report(empty, 0x1ULL, 8, {});
  EXPECT_NE(empty.str().find("\"quarantined\": []"), std::string::npos);
}

}  // namespace
}  // namespace crp::harness
